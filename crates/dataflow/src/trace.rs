//! Flight-recorder trace journal.
//!
//! Where [`crate::metrics`] answers "how did the run go overall", the
//! journal answers "what happened, in order": every task attempt on the
//! scheduler becomes a start/end span keyed by `(stage, partition,
//! attempt)`, every injected fault and retry is an event, every operator
//! records a span when it completes, and every shuffle logs a wave. The
//! journal is the single source of truth — [`RunMetrics`] is *derived* from
//! it (see [`RunTrace::derive_metrics`]) — and it serialises, so Labs run
//! provenance can carry the full recording for post-hoc comparison.

use std::collections::BTreeMap;
use std::time::Instant;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::metrics::{NodeMetrics, RunMetrics};

/// One structured event. `seq` is dense and assigned at record time;
/// `at_us` is microseconds since the journal's epoch (its creation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    pub seq: u64,
    pub at_us: u64,
    pub kind: TraceEventKind,
}

/// What happened.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEventKind {
    /// The journal (and hence the run) began.
    RunStarted,
    /// A task attempt began on a scheduler worker.
    TaskStarted {
        stage: usize,
        partition: usize,
        attempt: u32,
    },
    /// The matching end of a [`TraceEventKind::TaskStarted`] span. `ok` is
    /// false for injected faults and task errors alike.
    TaskFinished {
        stage: usize,
        partition: usize,
        attempt: u32,
        ok: bool,
    },
    /// The fault plan killed this attempt before the task body ran.
    FaultInjected {
        stage: usize,
        partition: usize,
        attempt: u32,
    },
    /// A failed attempt was rescheduled; `attempt` is the *new* attempt.
    TaskRetried {
        stage: usize,
        partition: usize,
        attempt: u32,
    },
    /// A retry was scheduled with a backoff delay; `attempt` is the attempt
    /// the delay precedes. Recorded instead of an immediate `TaskRetried`
    /// dispatch — the `TaskRetried` event follows when the delay elapses.
    BackoffScheduled {
        stage: usize,
        partition: usize,
        attempt: u32,
        delay_us: u64,
    },
    /// The watchdog declared a running attempt dead: it exceeded the task
    /// deadline and was cancelled cooperatively. The attempt's own
    /// `TaskFinished` still arrives when the worker notices.
    TaskTimedOut {
        stage: usize,
        partition: usize,
        attempt: u32,
        deadline_us: u64,
    },
    /// A task body panicked; the panic was isolated into a classified
    /// error rather than unwinding through the worker pool.
    TaskPanicked {
        stage: usize,
        partition: usize,
        attempt: u32,
        message: String,
    },
    /// A speculative backup attempt was launched for a straggling task;
    /// `attempt` is the backup's attempt number.
    SpeculativeLaunched {
        stage: usize,
        partition: usize,
        attempt: u32,
    },
    /// This attempt finished first in a speculation race and its result was
    /// taken.
    SpeculativeWon {
        stage: usize,
        partition: usize,
        attempt: u32,
    },
    /// This attempt lost a speculation race and was cancelled.
    SpeculativeLost {
        stage: usize,
        partition: usize,
        attempt: u32,
    },
    /// The run was cancelled cooperatively (permanent failure or exhausted
    /// budgets): in-flight workers stop claiming tasks.
    RunCancelled { stage: usize, reason: String },
    /// An operator completed (rows and timing across all its partitions).
    OperatorFinished {
        operator: String,
        stage: usize,
        rows_out: u64,
        elapsed_us: u64,
        shuffle_bytes: u64,
    },
    /// One shuffle wave moved rows between partition sets.
    ShuffleWave {
        /// Number of key columns (0 = keyless gather).
        keys: usize,
        rows: u64,
        bytes: u64,
        sources: usize,
        targets: usize,
    },
    /// Batches evaluated by a narrow operator: one batch per partition
    /// under the vectorized engine, zero under the row-oracle engine
    /// (which interprets row-at-a-time). Journal-only — derived
    /// [`RunMetrics`] ignore it, so engine modes stay metrics-compatible
    /// while `labs::compare` can still diff the counts.
    OperatorBatches {
        operator: String,
        stage: usize,
        batches: u64,
        fused: bool,
    },
    /// A chain of narrow operators was fused into a single per-partition
    /// pass (no intermediate tables between them). Journal-only.
    NarrowChainFused {
        stage: usize,
        operators: Vec<String>,
    },
    /// A completed shuffle wave was durably checkpointed: its partitioned
    /// output is on disk, CRC-framed and fsynced, keyed by `wave` (the
    /// run's dense shuffle-wave index). Journal-only — derived
    /// [`RunMetrics`] ignore it, so checkpointed and checkpoint-off runs
    /// stay metrics-compatible.
    StageCheckpointed {
        stage: usize,
        wave: usize,
        partitions: usize,
        bytes: u64,
    },
    /// A wave's output was restored from its checkpoint instead of being
    /// recomputed: zero `TaskStarted` events exist for it. Journal-only.
    StageRestored {
        stage: usize,
        wave: usize,
        partitions: usize,
        rows: u64,
    },
    /// A morsel (a small row range of one partition) was claimed by a
    /// pipeline worker. `worker` is the executing worker's index.
    /// Journal-only — derived [`RunMetrics`] ignore it, so pipelined and
    /// stage-barrier runs stay metrics-compatible.
    MorselDispatched {
        stage: usize,
        partition: usize,
        morsel: usize,
        rows: u64,
        worker: usize,
    },
    /// The morsel was executed by a worker other than the one whose deque
    /// it was seeded into — a work-steal. Journal-only.
    MorselStolen {
        stage: usize,
        partition: usize,
        morsel: usize,
        /// The worker whose deque originally held the morsel.
        home: usize,
        /// The worker that stole and executed it.
        worker: usize,
    },
    /// The matching end of a [`TraceEventKind::MorselDispatched`].
    /// Journal-only.
    MorselCompleted {
        stage: usize,
        partition: usize,
        morsel: usize,
    },
    /// A fused pipeline wave finished pushing all its morsels. Carries the
    /// per-worker load balance: `slowest_worker_us / mean_worker_us` is the
    /// *worker* skew, which (unlike the per-partition task skew) shows what
    /// stealing bought — a skewed partition's task span still covers the
    /// whole wave even when idle workers helped finish it. Journal-only.
    PipelineCompleted {
        stage: usize,
        partitions: usize,
        morsels: u64,
        stolen: u64,
        workers: usize,
        slowest_worker_us: u64,
        mean_worker_us: f64,
    },
    /// A source batch entered the bounded in-flight buffer. `depth` is the
    /// buffer occupancy *after* the push — the backpressure proof reads
    /// these and asserts `depth <= cap` at every event. Journal-only —
    /// derived [`RunMetrics`] ignore it, so continuous and oracle stream
    /// runs stay metrics-compatible.
    BatchIngested { offset: u64, rows: u64, depth: u64 },
    /// The source blocked because the in-flight buffer was full: the engine
    /// fell behind and backpressure throttled ingestion for `waited_us`.
    /// Journal-only.
    BackpressureStall { offset: u64, waited_us: u64 },
    /// The event-time watermark moved forward after observing a batch.
    /// Journal-only.
    WatermarkAdvanced { offset: u64, watermark_ms: i64 },
    /// Rows older than the watermark were folded into state anyway
    /// (`LatePolicy::Absorb`). Journal-only.
    LateDataAbsorbed { offset: u64, rows: u64 },
    /// Rows older than the watermark were diverted to the side channel
    /// (`LatePolicy::SideChannel`). Journal-only.
    LateDataSideChannelled { offset: u64, rows: u64 },
    /// Rows older than the watermark were discarded (`LatePolicy::Drop`).
    /// Journal-only.
    LateDataDropped { offset: u64, rows: u64 },
    /// End-to-end acknowledgement: the batch's state delta and offset are
    /// durable (WAL-committed and fsynced) — a crash after this event
    /// resumes *past* this batch. `latency_us` spans dequeue to ack.
    /// Journal-only.
    BatchAcked {
        offset: u64,
        rows: u64,
        latency_us: u64,
    },
    /// A continuous stream run recovered its state from the ack log and
    /// will begin at `next_offset`; acked batches are not re-executed.
    /// Journal-only.
    StreamResumed {
        next_offset: u64,
        watermark_ms: Option<i64>,
    },
    /// A buffer-pool read missed the pool and loaded the page from its
    /// backing file. `pool_bytes` is the resident pool size *after* the
    /// fault — the bounded-memory proof reads these and asserts
    /// `pool_bytes <= budget` at every event. Journal-only — derived
    /// [`RunMetrics`] ignore it, so budgeted and unbudgeted runs stay
    /// metrics-compatible.
    PageFaulted {
        file: u64,
        page: u32,
        bytes: u64,
        pool_bytes: u64,
    },
    /// The clock hand reclaimed a page frame to make room; `dirty` pages
    /// were written back to their backing file first. Journal-only.
    PageEvicted {
        file: u64,
        page: u32,
        bytes: u64,
        dirty: bool,
        pool_bytes: u64,
    },
    /// An operator exceeded its memory budget and spilled a run of rows to
    /// a paged file. `op` names the spilling operator family (`shuffle`,
    /// `aggregate`); `target` is the partition the run belongs to.
    /// Journal-only.
    SpillStarted {
        op: String,
        target: usize,
        rows: u64,
        bytes: u64,
    },
    /// Spilled runs were read back and merged with the in-memory tail to
    /// produce the partition's final output. Journal-only.
    SpillMerged {
        op: String,
        target: usize,
        runs: usize,
        rows: u64,
        bytes: u64,
    },
    /// The run finalised into a [`RunMetrics`].
    RunFinished {
        total_elapsed_us: u64,
        result_rows: u64,
        result_partitions: u64,
    },
}

/// Thread-safe append-only event journal. Workers on every scheduler thread
/// record into the same journal; one short mutex hold per event keeps the
/// overhead far below the cost of the task bodies being measured.
#[derive(Debug)]
pub struct TraceJournal {
    epoch: Instant,
    events: Mutex<Vec<TraceEvent>>,
}

impl Default for TraceJournal {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceJournal {
    /// A fresh journal whose epoch is now; records [`TraceEventKind::RunStarted`].
    pub fn new() -> Self {
        let journal = TraceJournal {
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
        };
        journal.record(TraceEventKind::RunStarted);
        journal
    }

    /// Append an event, assigning its sequence number and timestamp.
    pub fn record(&self, kind: TraceEventKind) {
        let at_us = self.epoch.elapsed().as_micros() as u64;
        let mut events = self.events.lock();
        let seq = events.len() as u64;
        events.push(TraceEvent { seq, at_us, kind });
    }

    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// An owned, serialisable copy of everything recorded so far.
    pub fn snapshot(&self) -> RunTrace {
        RunTrace {
            events: self.events.lock().clone(),
        }
    }
}

/// The serialisable recording of one run: every event, in sequence order.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RunTrace {
    pub events: Vec<TraceEvent>,
}

/// One matched task span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskSpan {
    pub stage: usize,
    pub partition: usize,
    pub attempt: u32,
    pub start_us: u64,
    pub end_us: u64,
    pub ok: bool,
}

impl TaskSpan {
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// Per-stage roll-up of the journal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSummary {
    pub stage: usize,
    /// Task attempts started in this stage.
    pub tasks: u64,
    pub retries: u64,
    pub faults: u64,
    /// Duration of the slowest completed task attempt, µs.
    pub slowest_task_us: u64,
    /// Mean duration over completed task attempts, µs.
    pub mean_task_us: f64,
    /// Slowest / mean task duration; 1.0 when there is nothing to compare.
    /// A barrier stage finishes when its slowest task does, so this is the
    /// straggler factor the stage pays over its average.
    pub skew_ratio: f64,
    /// Operators that completed in this stage, in completion order.
    pub operators: Vec<String>,
    pub rows_out: u64,
    pub shuffle_bytes: u64,
    /// Total backoff delay scheduled before retries in this stage, µs.
    #[serde(default)]
    pub backoff_us: u64,
    /// Attempts declared dead by the deadline watchdog.
    #[serde(default)]
    pub timeouts: u64,
    /// Attempts that panicked (isolated into classified errors).
    #[serde(default)]
    pub panics: u64,
    /// Speculative backup attempts launched / won in this stage.
    #[serde(default)]
    pub speculative_launched: u64,
    #[serde(default)]
    pub speculative_won: u64,
    /// Morsels pushed through fused pipelines in this stage (0 when the
    /// stage ran under the stage-barrier scheduler).
    #[serde(default)]
    pub morsels: u64,
    /// Morsels executed by a worker other than their home worker.
    #[serde(default)]
    pub stolen: u64,
}

/// Whole-run roll-up: what `toreador trace` renders.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    pub stages: Vec<StageSummary>,
    /// Sum over stages of the slowest task — the barrier-to-barrier lower
    /// bound on wall clock, no matter how many workers are added.
    pub critical_path_us: u64,
    pub total_tasks: u64,
    pub total_retries: u64,
    pub total_faults: u64,
    pub shuffle_waves: u64,
    /// Whole-run resilience cost (backoff, timeouts, panics, speculation).
    #[serde(default)]
    pub resilience: ResilienceTotals,
    /// Whole-run morsel-pipeline activity (zero under the barrier path).
    #[serde(default)]
    pub pipelines: PipelineTotals,
    /// Whole-run continuous-streaming activity (zero for batch runs and
    /// the pre-materialised oracle path).
    #[serde(default)]
    pub stream: StreamTotals,
    /// Whole-run out-of-core activity (zero when everything fit in the
    /// memory budget, or no budget was set).
    #[serde(default)]
    pub spill: SpillTotals,
}

/// Aggregate resilience cost of a run, counted from the journal. What
/// `labs::compare` diffs between runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ResilienceTotals {
    pub retries: u64,
    pub faults: u64,
    /// Total scheduled backoff delay, µs.
    pub backoff_us: u64,
    pub timeouts: u64,
    pub panics: u64,
    pub speculative_launched: u64,
    pub speculative_won: u64,
    pub cancellations: u64,
}

impl ResilienceTotals {
    /// True when the run paid no resilience cost at all.
    pub fn is_zero(&self) -> bool {
        *self == ResilienceTotals::default()
    }

    /// Field-wise sum (for aggregating across a campaign's engine runs).
    pub fn merge(&self, other: &ResilienceTotals) -> ResilienceTotals {
        ResilienceTotals {
            retries: self.retries + other.retries,
            faults: self.faults + other.faults,
            backoff_us: self.backoff_us + other.backoff_us,
            timeouts: self.timeouts + other.timeouts,
            panics: self.panics + other.panics,
            speculative_launched: self.speculative_launched + other.speculative_launched,
            speculative_won: self.speculative_won + other.speculative_won,
            cancellations: self.cancellations + other.cancellations,
        }
    }
}

/// Aggregate morsel-pipeline activity of a run, counted from the journal.
/// What `labs::compare` diffs between a pipelined run and a barrier run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineTotals {
    /// Pipeline waves completed.
    pub pipelines: u64,
    /// Morsels dispatched across all pipeline waves.
    pub morsels: u64,
    /// Morsels executed by a worker other than their home worker.
    pub stolen: u64,
    /// Worst per-wave worker-balance skew (slowest worker busy time over
    /// mean worker busy time); 1.0 when no pipeline ran or load was even.
    pub worker_skew: f64,
}

impl Default for PipelineTotals {
    fn default() -> Self {
        PipelineTotals {
            pipelines: 0,
            morsels: 0,
            stolen: 0,
            worker_skew: 1.0,
        }
    }
}

impl PipelineTotals {
    /// True when the run never entered the morsel path.
    pub fn is_zero(&self) -> bool {
        self.pipelines == 0 && self.morsels == 0 && self.stolen == 0
    }

    /// Count-wise sum, keeping the worst worker skew (for aggregating
    /// across a campaign's engine runs).
    pub fn merge(&self, other: &PipelineTotals) -> PipelineTotals {
        PipelineTotals {
            pipelines: self.pipelines + other.pipelines,
            morsels: self.morsels + other.morsels,
            stolen: self.stolen + other.stolen,
            worker_skew: self.worker_skew.max(other.worker_skew),
        }
    }
}

/// Aggregate continuous-streaming activity of a run, counted from the
/// journal. What `labs::compare` diffs between streaming runs and what the
/// backpressure / late-data acceptance proofs read.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StreamTotals {
    /// Batches whose state delta and offset reached the WAL (end-to-end
    /// acknowledged).
    pub batches_acked: u64,
    /// Input rows across all acked batches.
    pub rows_acked: u64,
    /// Times the producer blocked on a full in-flight buffer.
    pub stalls: u64,
    /// Total time the producer spent blocked, µs.
    pub stall_us: u64,
    /// Deepest journalled in-flight buffer occupancy. The backpressure
    /// bound: never exceeds the configured cap.
    pub max_in_flight: u64,
    /// Watermark advances observed.
    pub watermark_advances: u64,
    /// Final event-time watermark, ms (None when no batch carried rows).
    pub final_watermark_ms: Option<i64>,
    /// Late rows folded into state under `LatePolicy::Absorb`.
    pub late_absorbed: u64,
    /// Late rows diverted under `LatePolicy::SideChannel`.
    pub late_side_channelled: u64,
    /// Late rows discarded under `LatePolicy::Drop`.
    pub late_dropped: u64,
    /// Resume points seen (offset the run restarted from, when it did).
    pub resumes: u64,
}

impl StreamTotals {
    /// True when the run never entered the continuous streaming loop.
    pub fn is_zero(&self) -> bool {
        *self == StreamTotals::default()
    }

    /// Count-wise sum, keeping the deepest buffer and latest watermark
    /// (for aggregating across a campaign's engine runs).
    pub fn merge(&self, other: &StreamTotals) -> StreamTotals {
        StreamTotals {
            batches_acked: self.batches_acked + other.batches_acked,
            rows_acked: self.rows_acked + other.rows_acked,
            stalls: self.stalls + other.stalls,
            stall_us: self.stall_us + other.stall_us,
            max_in_flight: self.max_in_flight.max(other.max_in_flight),
            watermark_advances: self.watermark_advances + other.watermark_advances,
            final_watermark_ms: match (self.final_watermark_ms, other.final_watermark_ms) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            },
            late_absorbed: self.late_absorbed + other.late_absorbed,
            late_side_channelled: self.late_side_channelled + other.late_side_channelled,
            late_dropped: self.late_dropped + other.late_dropped,
            resumes: self.resumes + other.resumes,
        }
    }
}

/// Aggregate out-of-core activity of a run, counted from the journal. What
/// `labs::compare` diffs between a budgeted run and an in-memory run, and
/// what the bounded-memory acceptance proof reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SpillTotals {
    /// Runs spilled to paged files when a budget was exceeded.
    pub spills: u64,
    /// Rows across all spilled runs.
    pub spilled_rows: u64,
    /// Encoded bytes across all spilled runs.
    pub spilled_bytes: u64,
    /// Merge passes that read spilled runs back into partition output.
    pub merges: u64,
    /// Spilled runs consumed across all merge passes.
    pub merged_runs: u64,
    /// Buffer-pool misses that loaded a page from disk.
    pub page_faults: u64,
    /// Page frames reclaimed by the clock hand.
    pub page_evictions: u64,
    /// Deepest journalled resident pool size, bytes. The bounded-memory
    /// invariant: never exceeds the configured budget (rounded up to one
    /// page).
    pub peak_pool_bytes: u64,
}

impl SpillTotals {
    /// True when the run never left memory.
    pub fn is_zero(&self) -> bool {
        *self == SpillTotals::default()
    }

    /// Count-wise sum, keeping the deepest pool (for aggregating across a
    /// campaign's engine runs).
    pub fn merge(&self, other: &SpillTotals) -> SpillTotals {
        SpillTotals {
            spills: self.spills + other.spills,
            spilled_rows: self.spilled_rows + other.spilled_rows,
            spilled_bytes: self.spilled_bytes + other.spilled_bytes,
            merges: self.merges + other.merges,
            merged_runs: self.merged_runs + other.merged_runs,
            page_faults: self.page_faults + other.page_faults,
            page_evictions: self.page_evictions + other.page_evictions,
            peak_pool_bytes: self.peak_pool_bytes.max(other.peak_pool_bytes),
        }
    }
}

/// Full export bundle for the CLI's `--format json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceReport {
    pub summary: TraceSummary,
    pub events: Vec<TraceEvent>,
}

impl RunTrace {
    /// Match start events to their end events. Unfinished spans (a crashed
    /// worker) are omitted — callers that care test start/end pairing
    /// directly on the events.
    pub fn task_spans(&self) -> Vec<TaskSpan> {
        let mut open: BTreeMap<(usize, usize, u32), u64> = BTreeMap::new();
        let mut spans = Vec::new();
        for e in &self.events {
            match e.kind {
                TraceEventKind::TaskStarted {
                    stage,
                    partition,
                    attempt,
                } => {
                    open.insert((stage, partition, attempt), e.at_us);
                }
                TraceEventKind::TaskFinished {
                    stage,
                    partition,
                    attempt,
                    ok,
                } => {
                    if let Some(start_us) = open.remove(&(stage, partition, attempt)) {
                        spans.push(TaskSpan {
                            stage,
                            partition,
                            attempt,
                            start_us,
                            end_us: e.at_us,
                            ok,
                        });
                    }
                }
                _ => {}
            }
        }
        spans
    }

    /// Rebuild a [`RunMetrics`] from the journal alone. This is what
    /// [`crate::metrics::MetricsCollector::finish`] returns; the legacy
    /// tally path is kept as `finish_legacy` so tests can prove the two
    /// agree byte-for-byte.
    pub fn derive_metrics(
        &self,
        total_elapsed_us: u64,
        result_rows: u64,
        result_partitions: u64,
    ) -> RunMetrics {
        let mut nodes = Vec::new();
        let mut tasks_run = 0u64;
        let mut task_retries = 0u64;
        for e in &self.events {
            match &e.kind {
                TraceEventKind::OperatorFinished {
                    operator,
                    stage,
                    rows_out,
                    elapsed_us,
                    shuffle_bytes,
                } => nodes.push(NodeMetrics {
                    operator: operator.clone(),
                    stage: *stage,
                    rows_out: *rows_out,
                    elapsed_us: *elapsed_us,
                    shuffle_bytes: *shuffle_bytes,
                }),
                TraceEventKind::TaskStarted { .. } => tasks_run += 1,
                TraceEventKind::TaskRetried { .. } => task_retries += 1,
                _ => {}
            }
        }
        RunMetrics {
            nodes,
            total_elapsed_us,
            tasks_run,
            task_retries,
            result_rows,
            result_partitions,
        }
    }

    /// Total operator-attributed elapsed time per operator name, µs.
    pub fn operator_elapsed_us(&self) -> BTreeMap<String, u64> {
        let mut totals: BTreeMap<String, u64> = BTreeMap::new();
        for e in &self.events {
            if let TraceEventKind::OperatorFinished {
                operator,
                elapsed_us,
                ..
            } = &e.kind
            {
                *totals.entry(operator.clone()).or_insert(0) += elapsed_us;
            }
        }
        totals
    }

    /// Batches evaluated per operator, with whether the operator ran
    /// inside a fused narrow chain. Zero entries mean the run used the
    /// row-oracle engine (no batches at all) — comparing this map across
    /// two runs is how engine modes diff cleanly.
    pub fn operator_batches(&self) -> BTreeMap<String, (u64, bool)> {
        let mut totals: BTreeMap<String, (u64, bool)> = BTreeMap::new();
        for e in &self.events {
            if let TraceEventKind::OperatorBatches {
                operator,
                batches,
                fused,
                ..
            } = &e.kind
            {
                let entry = totals.entry(operator.clone()).or_insert((0, false));
                entry.0 += batches;
                entry.1 |= fused;
            }
        }
        totals
    }

    /// The worst per-stage straggler factor, if any stage ran tasks.
    pub fn max_skew_ratio(&self) -> Option<f64> {
        self.summarize()
            .stages
            .iter()
            .filter(|s| s.tasks > 0)
            .map(|s| s.skew_ratio)
            .fold(None, |acc, r| Some(acc.map_or(r, |a: f64| a.max(r))))
    }

    /// Roll the journal up per stage.
    pub fn summarize(&self) -> TraceSummary {
        let mut stages: BTreeMap<usize, StageSummary> = BTreeMap::new();
        let blank = |stage| StageSummary {
            stage,
            tasks: 0,
            retries: 0,
            faults: 0,
            slowest_task_us: 0,
            mean_task_us: 0.0,
            skew_ratio: 1.0,
            operators: Vec::new(),
            rows_out: 0,
            shuffle_bytes: 0,
            backoff_us: 0,
            timeouts: 0,
            panics: 0,
            speculative_launched: 0,
            speculative_won: 0,
            morsels: 0,
            stolen: 0,
        };
        let mut shuffle_waves = 0u64;
        let mut cancellations = 0u64;
        let mut pipelines = PipelineTotals::default();
        let mut stream = StreamTotals::default();
        let mut spill = SpillTotals::default();
        for e in &self.events {
            match &e.kind {
                TraceEventKind::TaskStarted { stage, .. } => {
                    stages.entry(*stage).or_insert_with(|| blank(*stage)).tasks += 1;
                }
                TraceEventKind::TaskRetried { stage, .. } => {
                    stages
                        .entry(*stage)
                        .or_insert_with(|| blank(*stage))
                        .retries += 1;
                }
                TraceEventKind::FaultInjected { stage, .. } => {
                    stages.entry(*stage).or_insert_with(|| blank(*stage)).faults += 1;
                }
                TraceEventKind::OperatorFinished {
                    operator,
                    stage,
                    rows_out,
                    shuffle_bytes,
                    ..
                } => {
                    let s = stages.entry(*stage).or_insert_with(|| blank(*stage));
                    s.operators.push(operator.clone());
                    s.rows_out += rows_out;
                    s.shuffle_bytes += shuffle_bytes;
                }
                TraceEventKind::ShuffleWave { .. } => shuffle_waves += 1,
                TraceEventKind::BackoffScheduled {
                    stage, delay_us, ..
                } => {
                    stages
                        .entry(*stage)
                        .or_insert_with(|| blank(*stage))
                        .backoff_us += delay_us;
                }
                TraceEventKind::TaskTimedOut { stage, .. } => {
                    stages
                        .entry(*stage)
                        .or_insert_with(|| blank(*stage))
                        .timeouts += 1;
                }
                TraceEventKind::TaskPanicked { stage, .. } => {
                    stages.entry(*stage).or_insert_with(|| blank(*stage)).panics += 1;
                }
                TraceEventKind::SpeculativeLaunched { stage, .. } => {
                    stages
                        .entry(*stage)
                        .or_insert_with(|| blank(*stage))
                        .speculative_launched += 1;
                }
                TraceEventKind::SpeculativeWon { stage, .. } => {
                    stages
                        .entry(*stage)
                        .or_insert_with(|| blank(*stage))
                        .speculative_won += 1;
                }
                TraceEventKind::RunCancelled { .. } => cancellations += 1,
                TraceEventKind::MorselDispatched { stage, .. } => {
                    stages
                        .entry(*stage)
                        .or_insert_with(|| blank(*stage))
                        .morsels += 1;
                }
                TraceEventKind::MorselStolen { stage, .. } => {
                    stages.entry(*stage).or_insert_with(|| blank(*stage)).stolen += 1;
                }
                TraceEventKind::PipelineCompleted {
                    morsels,
                    stolen,
                    slowest_worker_us,
                    mean_worker_us,
                    ..
                } => {
                    pipelines.pipelines += 1;
                    pipelines.morsels += morsels;
                    pipelines.stolen += stolen;
                    let skew = if *mean_worker_us > 0.0 {
                        *slowest_worker_us as f64 / mean_worker_us
                    } else {
                        1.0
                    };
                    pipelines.worker_skew = pipelines.worker_skew.max(skew);
                }
                TraceEventKind::BatchIngested { depth, .. } => {
                    stream.max_in_flight = stream.max_in_flight.max(*depth);
                }
                TraceEventKind::BackpressureStall { waited_us, .. } => {
                    stream.stalls += 1;
                    stream.stall_us += waited_us;
                }
                TraceEventKind::WatermarkAdvanced { watermark_ms, .. } => {
                    stream.watermark_advances += 1;
                    stream.final_watermark_ms = Some(
                        stream
                            .final_watermark_ms
                            .map_or(*watermark_ms, |w| w.max(*watermark_ms)),
                    );
                }
                TraceEventKind::LateDataAbsorbed { rows, .. } => stream.late_absorbed += rows,
                TraceEventKind::LateDataSideChannelled { rows, .. } => {
                    stream.late_side_channelled += rows;
                }
                TraceEventKind::LateDataDropped { rows, .. } => stream.late_dropped += rows,
                TraceEventKind::BatchAcked { rows, .. } => {
                    stream.batches_acked += 1;
                    stream.rows_acked += rows;
                }
                TraceEventKind::StreamResumed { .. } => stream.resumes += 1,
                TraceEventKind::PageFaulted {
                    pool_bytes: pool, ..
                } => {
                    spill.page_faults += 1;
                    spill.peak_pool_bytes = spill.peak_pool_bytes.max(*pool);
                }
                TraceEventKind::PageEvicted {
                    pool_bytes: pool, ..
                } => {
                    spill.page_evictions += 1;
                    spill.peak_pool_bytes = spill.peak_pool_bytes.max(*pool);
                }
                TraceEventKind::SpillStarted { rows, bytes, .. } => {
                    spill.spills += 1;
                    spill.spilled_rows += rows;
                    spill.spilled_bytes += bytes;
                }
                TraceEventKind::SpillMerged { runs, .. } => {
                    spill.merges += 1;
                    spill.merged_runs += *runs as u64;
                }
                _ => {}
            }
        }
        // Task timing per stage from the matched spans.
        let mut durations: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
        for span in self.task_spans() {
            durations
                .entry(span.stage)
                .or_default()
                .push(span.duration_us());
        }
        for (stage, ds) in durations {
            let s = stages.entry(stage).or_insert_with(|| blank(stage));
            s.slowest_task_us = ds.iter().copied().max().unwrap_or(0);
            s.mean_task_us = ds.iter().sum::<u64>() as f64 / ds.len() as f64;
            s.skew_ratio = if s.mean_task_us > 0.0 {
                s.slowest_task_us as f64 / s.mean_task_us
            } else {
                1.0
            };
        }
        let stages: Vec<StageSummary> = stages.into_values().collect();
        TraceSummary {
            critical_path_us: stages.iter().map(|s| s.slowest_task_us).sum(),
            total_tasks: stages.iter().map(|s| s.tasks).sum(),
            total_retries: stages.iter().map(|s| s.retries).sum(),
            total_faults: stages.iter().map(|s| s.faults).sum(),
            shuffle_waves,
            resilience: ResilienceTotals {
                retries: stages.iter().map(|s| s.retries).sum(),
                faults: stages.iter().map(|s| s.faults).sum(),
                backoff_us: stages.iter().map(|s| s.backoff_us).sum(),
                timeouts: stages.iter().map(|s| s.timeouts).sum(),
                panics: stages.iter().map(|s| s.panics).sum(),
                speculative_launched: stages.iter().map(|s| s.speculative_launched).sum(),
                speculative_won: stages.iter().map(|s| s.speculative_won).sum(),
                cancellations,
            },
            pipelines,
            stream,
            spill,
            stages,
        }
    }

    /// The run's aggregate morsel-pipeline activity (waves, morsels, steals,
    /// worst worker-balance skew), counted from the journal.
    pub fn pipeline_totals(&self) -> PipelineTotals {
        self.summarize().pipelines
    }

    /// The run's aggregate resilience cost (retries, backoff, timeouts,
    /// panics, speculation, cancellations), counted from the journal.
    pub fn resilience_totals(&self) -> ResilienceTotals {
        self.summarize().resilience
    }

    /// The run's aggregate continuous-streaming activity (acked batches,
    /// backpressure stalls, watermark motion, late-data accounting),
    /// counted from the journal.
    pub fn stream_totals(&self) -> StreamTotals {
        self.summarize().stream
    }

    /// The run's aggregate out-of-core activity (spilled runs, merges,
    /// page faults/evictions, peak pool residency), counted from the
    /// journal.
    pub fn spill_totals(&self) -> SpillTotals {
        self.summarize().spill
    }

    /// Summary plus the raw events, for JSON export.
    pub fn report(&self) -> TraceReport {
        TraceReport {
            summary: self.summarize(),
            events: self.events.clone(),
        }
    }
}

impl TraceSummary {
    /// Render as an aligned text table with a critical-path footer.
    pub fn render(&self) -> String {
        let header = vec![
            "stage".to_owned(),
            "tasks".to_owned(),
            "retries".to_owned(),
            "faults".to_owned(),
            "slowest(us)".to_owned(),
            "skew".to_owned(),
            "rows_out".to_owned(),
            "shuffle(B)".to_owned(),
            "operators".to_owned(),
        ];
        let mut grid: Vec<Vec<String>> = vec![header];
        for s in &self.stages {
            grid.push(vec![
                s.stage.to_string(),
                s.tasks.to_string(),
                s.retries.to_string(),
                s.faults.to_string(),
                s.slowest_task_us.to_string(),
                format!("{:.2}", s.skew_ratio),
                s.rows_out.to_string(),
                s.shuffle_bytes.to_string(),
                s.operators.join(", "),
            ]);
        }
        let widths: Vec<usize> = (0..grid[0].len())
            .map(|c| grid.iter().map(|r| r[c].len()).max().unwrap_or(0))
            .collect();
        let mut out = String::new();
        for row in &grid {
            for (c, cell) in row.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                out.extend(std::iter::repeat(' ').take(widths[c] - cell.len()));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "critical path: {} us over {} stage(s); {} task(s), {} retried, {} fault(s), {} shuffle wave(s)\n",
            self.critical_path_us,
            self.stages.len(),
            self.total_tasks,
            self.total_retries,
            self.total_faults,
            self.shuffle_waves,
        ));
        let r = &self.resilience;
        if !r.is_zero() {
            out.push_str(&format!(
                "resilience: {} retried, {} us backoff, {} timeout(s), {} panic(s), {} speculative ({} won), {} cancellation(s)\n",
                r.retries,
                r.backoff_us,
                r.timeouts,
                r.panics,
                r.speculative_launched,
                r.speculative_won,
                r.cancellations,
            ));
        }
        let p = &self.pipelines;
        if !p.is_zero() {
            out.push_str(&format!(
                "pipelines: {} pipeline wave(s), {} morsel(s), {} stolen, worker skew {:.2}\n",
                p.pipelines, p.morsels, p.stolen, p.worker_skew,
            ));
        }
        let st = &self.stream;
        if !st.is_zero() {
            out.push_str(&format!(
                "stream: {} batch(es) acked ({} rows), {} stall(s) ({} us), max in-flight {}, \
                 watermark {} (advanced {}x), late {} absorbed / {} side-channelled / {} dropped\n",
                st.batches_acked,
                st.rows_acked,
                st.stalls,
                st.stall_us,
                st.max_in_flight,
                st.final_watermark_ms
                    .map_or_else(|| "-".to_owned(), |w| format!("{w} ms")),
                st.watermark_advances,
                st.late_absorbed,
                st.late_side_channelled,
                st.late_dropped,
            ));
        }
        let sp = &self.spill;
        if !sp.is_zero() {
            out.push_str(&format!(
                "spill: {} run(s) spilled ({} rows, {} B), {} merge(s) over {} run(s), \
                 {} page fault(s), {} eviction(s), peak pool {} B\n",
                sp.spills,
                sp.spilled_rows,
                sp.spilled_bytes,
                sp.merges,
                sp.merged_runs,
                sp.page_faults,
                sp.page_evictions,
                sp.peak_pool_bytes,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn journal_with_two_stage_run() -> TraceJournal {
        let j = TraceJournal::new();
        // Stage 0: two clean tasks and an operator.
        for p in 0..2 {
            j.record(TraceEventKind::TaskStarted {
                stage: 0,
                partition: p,
                attempt: 0,
            });
            j.record(TraceEventKind::TaskFinished {
                stage: 0,
                partition: p,
                attempt: 0,
                ok: true,
            });
        }
        j.record(TraceEventKind::OperatorFinished {
            operator: "Scan t".to_owned(),
            stage: 0,
            rows_out: 100,
            elapsed_us: 40,
            shuffle_bytes: 0,
        });
        // A wave, then stage 1 with a fault + retry.
        j.record(TraceEventKind::ShuffleWave {
            keys: 1,
            rows: 100,
            bytes: 2_048,
            sources: 2,
            targets: 4,
        });
        j.record(TraceEventKind::TaskStarted {
            stage: 1,
            partition: 0,
            attempt: 0,
        });
        j.record(TraceEventKind::FaultInjected {
            stage: 1,
            partition: 0,
            attempt: 0,
        });
        j.record(TraceEventKind::TaskFinished {
            stage: 1,
            partition: 0,
            attempt: 0,
            ok: false,
        });
        j.record(TraceEventKind::TaskRetried {
            stage: 1,
            partition: 0,
            attempt: 1,
        });
        j.record(TraceEventKind::TaskStarted {
            stage: 1,
            partition: 0,
            attempt: 1,
        });
        j.record(TraceEventKind::TaskFinished {
            stage: 1,
            partition: 0,
            attempt: 1,
            ok: true,
        });
        j.record(TraceEventKind::OperatorFinished {
            operator: "Aggregate".to_owned(),
            stage: 1,
            rows_out: 5,
            elapsed_us: 120,
            shuffle_bytes: 2_048,
        });
        j
    }

    #[test]
    fn sequence_numbers_are_dense_and_ordered() {
        let trace = journal_with_two_stage_run().snapshot();
        for (i, e) in trace.events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
        assert!(matches!(trace.events[0].kind, TraceEventKind::RunStarted));
        for w in trace.events.windows(2) {
            assert!(w[0].at_us <= w[1].at_us, "timestamps must be monotone");
        }
    }

    #[test]
    fn spans_match_starts_to_finishes() {
        let trace = journal_with_two_stage_run().snapshot();
        let spans = trace.task_spans();
        assert_eq!(spans.len(), 4);
        assert!(spans.iter().filter(|s| !s.ok).count() == 1);
        let faulted = spans
            .iter()
            .find(|s| s.stage == 1 && s.attempt == 0)
            .unwrap();
        assert!(!faulted.ok);
    }

    #[test]
    fn derived_metrics_count_events() {
        let trace = journal_with_two_stage_run().snapshot();
        let m = trace.derive_metrics(1_000, 5, 4);
        assert_eq!(m.tasks_run, 4);
        assert_eq!(m.task_retries, 1);
        assert_eq!(m.nodes.len(), 2);
        assert_eq!(m.nodes[0].operator, "Scan t");
        assert_eq!(m.total_shuffle_bytes(), 2_048);
        assert_eq!(m.result_rows, 5);
    }

    #[test]
    fn summary_rolls_up_per_stage() {
        let trace = journal_with_two_stage_run().snapshot();
        let s = trace.summarize();
        assert_eq!(s.stages.len(), 2);
        assert_eq!(s.stages[0].tasks, 2);
        assert_eq!(s.stages[1].retries, 1);
        assert_eq!(s.stages[1].faults, 1);
        assert_eq!(s.stages[1].shuffle_bytes, 2_048);
        assert_eq!(s.total_tasks, 4);
        assert_eq!(s.shuffle_waves, 1);
        assert_eq!(
            s.critical_path_us,
            s.stages.iter().map(|x| x.slowest_task_us).sum::<u64>()
        );
        let rendered = s.render();
        assert!(rendered.contains("critical path"));
        assert!(rendered.contains("skew"));
        assert!(rendered.contains("Aggregate"));
    }

    #[test]
    fn operator_totals_and_skew() {
        let trace = journal_with_two_stage_run().snapshot();
        let totals = trace.operator_elapsed_us();
        assert_eq!(totals.get("Scan t"), Some(&40));
        assert_eq!(totals.get("Aggregate"), Some(&120));
        assert!(trace.max_skew_ratio().unwrap() >= 1.0);
    }

    #[test]
    fn traces_serialize_round_trip() {
        let trace = journal_with_two_stage_run().snapshot();
        let j = serde_json::to_string(&trace).unwrap();
        let back: RunTrace = serde_json::from_str(&j).unwrap();
        assert_eq!(trace, back);
        let report = trace.report();
        let j = serde_json::to_string_pretty(&report).unwrap();
        let back: TraceReport = serde_json::from_str(&j).unwrap();
        assert_eq!(report, back);
    }

    fn journal_with_resilience_events() -> TraceJournal {
        let j = journal_with_two_stage_run();
        j.record(TraceEventKind::TaskStarted {
            stage: 2,
            partition: 0,
            attempt: 0,
        });
        j.record(TraceEventKind::TaskTimedOut {
            stage: 2,
            partition: 0,
            attempt: 0,
            deadline_us: 1_000,
        });
        j.record(TraceEventKind::TaskFinished {
            stage: 2,
            partition: 0,
            attempt: 0,
            ok: false,
        });
        j.record(TraceEventKind::BackoffScheduled {
            stage: 2,
            partition: 0,
            attempt: 1,
            delay_us: 400,
        });
        j.record(TraceEventKind::TaskRetried {
            stage: 2,
            partition: 0,
            attempt: 1,
        });
        j.record(TraceEventKind::TaskStarted {
            stage: 2,
            partition: 0,
            attempt: 1,
        });
        j.record(TraceEventKind::TaskPanicked {
            stage: 2,
            partition: 0,
            attempt: 1,
            message: "boom".to_owned(),
        });
        j.record(TraceEventKind::TaskFinished {
            stage: 2,
            partition: 0,
            attempt: 1,
            ok: false,
        });
        j.record(TraceEventKind::TaskStarted {
            stage: 2,
            partition: 1,
            attempt: 0,
        });
        j.record(TraceEventKind::SpeculativeLaunched {
            stage: 2,
            partition: 1,
            attempt: 1,
        });
        j.record(TraceEventKind::TaskStarted {
            stage: 2,
            partition: 1,
            attempt: 1,
        });
        j.record(TraceEventKind::TaskFinished {
            stage: 2,
            partition: 1,
            attempt: 1,
            ok: true,
        });
        j.record(TraceEventKind::SpeculativeWon {
            stage: 2,
            partition: 1,
            attempt: 1,
        });
        j.record(TraceEventKind::SpeculativeLost {
            stage: 2,
            partition: 1,
            attempt: 0,
        });
        j.record(TraceEventKind::TaskFinished {
            stage: 2,
            partition: 1,
            attempt: 0,
            ok: false,
        });
        j.record(TraceEventKind::RunCancelled {
            stage: 2,
            reason: "budget spent".to_owned(),
        });
        j
    }

    #[test]
    fn resilience_events_roll_up_per_stage_and_run() {
        let trace = journal_with_resilience_events().snapshot();
        let s = trace.summarize();
        let stage2 = s.stages.iter().find(|x| x.stage == 2).unwrap();
        assert_eq!(stage2.timeouts, 1);
        assert_eq!(stage2.panics, 1);
        assert_eq!(stage2.backoff_us, 400);
        assert_eq!(stage2.speculative_launched, 1);
        assert_eq!(stage2.speculative_won, 1);
        let totals = trace.resilience_totals();
        assert_eq!(totals.timeouts, 1);
        assert_eq!(totals.panics, 1);
        assert_eq!(totals.backoff_us, 400);
        assert_eq!(totals.speculative_launched, 1);
        assert_eq!(totals.speculative_won, 1);
        assert_eq!(totals.cancellations, 1);
        assert_eq!(totals.retries, s.total_retries);
        assert!(!totals.is_zero());
        let merged = totals.merge(&totals);
        assert_eq!(merged.timeouts, 2);
        assert_eq!(merged.backoff_us, 800);
        let rendered = s.render();
        assert!(rendered.contains("resilience:"), "{rendered}");
        assert!(rendered.contains("1 timeout(s)"));
        assert!(rendered.contains("1 panic(s)"));
    }

    #[test]
    fn resilience_footer_absent_for_calm_runs() {
        let trace = journal_with_two_stage_run().snapshot();
        let s = trace.summarize();
        // This journal has a retry + fault, so the footer appears …
        assert!(s.render().contains("resilience:"));
        // … but a genuinely calm run omits it.
        let calm = TraceJournal::new();
        calm.record(TraceEventKind::TaskStarted {
            stage: 0,
            partition: 0,
            attempt: 0,
        });
        calm.record(TraceEventKind::TaskFinished {
            stage: 0,
            partition: 0,
            attempt: 0,
            ok: true,
        });
        let summary = calm.snapshot().summarize();
        assert!(summary.resilience.is_zero());
        assert!(!summary.render().contains("resilience:"));
    }

    #[test]
    fn resilience_events_do_not_disturb_derived_metrics() {
        // derive_metrics must keep counting only starts/retries/operators,
        // so the legacy-parity invariant holds with the new kinds present.
        let trace = journal_with_resilience_events().snapshot();
        let m = trace.derive_metrics(1_000, 5, 4);
        let starts = trace
            .events
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::TaskStarted { .. }))
            .count() as u64;
        let retries = trace
            .events
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::TaskRetried { .. }))
            .count() as u64;
        assert_eq!(m.tasks_run, starts);
        assert_eq!(m.task_retries, retries);
        assert_eq!(m.nodes.len(), 2, "operator list unchanged");
    }

    fn journal_with_pipeline_events() -> TraceJournal {
        let j = journal_with_two_stage_run();
        for (m, worker) in [(0usize, 0usize), (1, 0), (2, 1)] {
            j.record(TraceEventKind::MorselDispatched {
                stage: 0,
                partition: 0,
                morsel: m,
                rows: 64,
                worker,
            });
            if m == 2 {
                j.record(TraceEventKind::MorselStolen {
                    stage: 0,
                    partition: 0,
                    morsel: m,
                    home: 0,
                    worker,
                });
            }
            j.record(TraceEventKind::MorselCompleted {
                stage: 0,
                partition: 0,
                morsel: m,
            });
        }
        j.record(TraceEventKind::PipelineCompleted {
            stage: 0,
            partitions: 1,
            morsels: 3,
            stolen: 1,
            workers: 2,
            slowest_worker_us: 300,
            mean_worker_us: 250.0,
        });
        j
    }

    #[test]
    fn pipeline_events_roll_up_per_stage_and_run() {
        let trace = journal_with_pipeline_events().snapshot();
        let s = trace.summarize();
        let stage0 = s.stages.iter().find(|x| x.stage == 0).unwrap();
        assert_eq!(stage0.morsels, 3);
        assert_eq!(stage0.stolen, 1);
        let p = trace.pipeline_totals();
        assert_eq!(p.pipelines, 1);
        assert_eq!(p.morsels, 3);
        assert_eq!(p.stolen, 1);
        assert!((p.worker_skew - 1.2).abs() < 1e-9, "skew {}", p.worker_skew);
        assert!(!p.is_zero());
        let merged = p.merge(&PipelineTotals {
            pipelines: 1,
            morsels: 5,
            stolen: 0,
            worker_skew: 1.7,
        });
        assert_eq!(merged.pipelines, 2);
        assert_eq!(merged.morsels, 8);
        assert_eq!(merged.worker_skew, 1.7, "merge keeps the worst skew");
        let rendered = s.render();
        assert!(rendered.contains("pipelines:"), "{rendered}");
        assert!(rendered.contains("1 stolen"));
        // A run that never pipelined omits the footer.
        let barrier = journal_with_two_stage_run().snapshot().summarize();
        assert!(barrier.pipelines.is_zero());
        assert!(!barrier.render().contains("pipelines:"));
    }

    #[test]
    fn pipeline_events_do_not_disturb_derived_metrics() {
        // Morsel events are journal-only: derive_metrics must keep counting
        // only starts/retries/operators so the finish()/finish_legacy()
        // parity invariant holds for pipelined runs.
        let trace = journal_with_pipeline_events().snapshot();
        let m = trace.derive_metrics(1_000, 5, 4);
        assert_eq!(m.tasks_run, 4);
        assert_eq!(m.task_retries, 1);
        assert_eq!(m.nodes.len(), 2);
    }

    fn journal_with_spill_events() -> TraceJournal {
        let j = journal_with_two_stage_run();
        j.record(TraceEventKind::SpillStarted {
            op: "shuffle".to_owned(),
            target: 2,
            rows: 500,
            bytes: 12_000,
        });
        j.record(TraceEventKind::PageFaulted {
            file: 1,
            page: 0,
            bytes: 32_768,
            pool_bytes: 32_768,
        });
        j.record(TraceEventKind::PageEvicted {
            file: 1,
            page: 0,
            bytes: 32_768,
            dirty: true,
            pool_bytes: 65_536,
        });
        j.record(TraceEventKind::SpillStarted {
            op: "aggregate".to_owned(),
            target: 2,
            rows: 100,
            bytes: 3_000,
        });
        j.record(TraceEventKind::SpillMerged {
            op: "shuffle".to_owned(),
            target: 2,
            runs: 2,
            rows: 600,
            bytes: 15_000,
        });
        j
    }

    #[test]
    fn spill_events_roll_up_and_render() {
        let trace = journal_with_spill_events().snapshot();
        let totals = trace.spill_totals();
        assert_eq!(totals.spills, 2);
        assert_eq!(totals.spilled_rows, 600);
        assert_eq!(totals.spilled_bytes, 15_000);
        assert_eq!(totals.merges, 1);
        assert_eq!(totals.merged_runs, 2);
        assert_eq!(totals.page_faults, 1);
        assert_eq!(totals.page_evictions, 1);
        assert_eq!(totals.peak_pool_bytes, 65_536);
        assert!(!totals.is_zero());
        let merged = totals.merge(&SpillTotals {
            spills: 1,
            spilled_rows: 10,
            spilled_bytes: 100,
            merges: 1,
            merged_runs: 1,
            page_faults: 0,
            page_evictions: 0,
            peak_pool_bytes: 10,
        });
        assert_eq!(merged.spills, 3);
        assert_eq!(merged.merged_runs, 3);
        assert_eq!(merged.peak_pool_bytes, 65_536, "merge keeps deepest pool");
        let rendered = trace.summarize().render();
        assert!(rendered.contains("spill:"), "{rendered}");
        assert!(rendered.contains("2 run(s) spilled"));
        assert!(rendered.contains("peak pool 65536 B"));
        // An in-memory run omits the footer.
        let calm = journal_with_two_stage_run().snapshot().summarize();
        assert!(calm.spill.is_zero());
        assert!(!calm.render().contains("spill:"));
    }

    #[test]
    fn spill_events_do_not_disturb_derived_metrics() {
        // Spill and page events are journal-only: derive_metrics must keep
        // counting only starts/retries/operators so the finish() /
        // finish_legacy() parity invariant holds for budgeted runs.
        let trace = journal_with_spill_events().snapshot();
        let m = trace.derive_metrics(1_000, 5, 4);
        assert_eq!(m.tasks_run, 4);
        assert_eq!(m.task_retries, 1);
        assert_eq!(m.nodes.len(), 2);
    }

    #[test]
    fn journal_is_usable_from_many_threads() {
        let j = TraceJournal::new();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let j = &j;
                scope.spawn(move || {
                    for i in 0..100 {
                        j.record(TraceEventKind::TaskStarted {
                            stage: 0,
                            partition: t * 100 + i,
                            attempt: 0,
                        });
                    }
                });
            }
        });
        let trace = j.snapshot();
        assert_eq!(trace.events.len(), 801); // RunStarted + 800
                                             // No lost or duplicated sequence numbers.
        for (i, e) in trace.events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
    }
}
