//! Offline integrity scrubbing for dataflow durability artifacts.
//!
//! [`scan_tree`] walks a directory tree and assigns every artifact it
//! understands a typed verdict, reusing the taxonomy from
//! [`toreador_store::fsck`]:
//!
//! * **store directories** (anything [`toreador_store::fsck::looks_like_store_dir`]
//!   recognises) are delegated wholesale to the store scanner — WAL
//!   segments, snapshots, the streaming ack log;
//! * **checkpoint run directories** hold a `manifest.json` (JSON-parsed:
//!   clean or corrupt) and `wave-NNNN.ckpt` files, each fully re-verified
//!   through the same loader a resume uses ([`crate::checkpoint`]) —
//!   every frame CRC plus the header's per-partition row counts and
//!   checksums. Waves are published atomically, so *any* damage — torn
//!   tail included — is **corrupt**, never truncatable: a partial wave
//!   is not a shorter wave, and a wave without its manifest is an
//!   **orphan** (nothing can ever resume from it);
//! * **spill artifacts** (`*.pages`) and unpublished atomic writes
//!   (`*.tmp`) are **orphans** by construction: spill files are scratch
//!   that never outlives its run, and a `.tmp` was never published. Both
//!   are exactly what [`crate::pager::SpillManager`]'s sweep removes.
//!
//! Repair goes through [`toreador_store::fsck::repair`], which acts on
//! the verdict alone: orphans are removed, corruption is reported but
//! never guessed at.

use std::path::Path;

use toreador_store::fsck::{looks_like_store_dir, scan_store_dir, Artifact, Verdict};
use toreador_store::io::io_for;

use crate::checkpoint::{load_wave, parse_wave_name, CheckpointManifest};
use crate::error::{FlowError, Result};

/// Recursively scan `root`, returning one [`Artifact`] per file fsck
/// understands (sorted by path). Unknown files are ignored — fsck judges
/// only what it can prove something about.
pub fn scan_tree(root: &Path) -> Result<Vec<Artifact>> {
    let mut out = Vec::new();
    scan_dir(root, &mut out)?;
    out.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(out)
}

fn scan_dir(dir: &Path, out: &mut Vec<Artifact>) -> Result<()> {
    if looks_like_store_dir(dir) {
        out.extend(scan_store_dir(dir).map_err(|e| FlowError::Checkpoint(e.to_string()))?);
        return Ok(());
    }
    let io = io_for(dir);
    let entries = io
        .list_dir(dir)
        .map_err(|e| FlowError::Checkpoint(format!("list {}: {e}", dir.display())))?;
    let has_manifest = entries
        .iter()
        .any(|p| p.file_name().is_some_and(|n| n == "manifest.json"));
    for path in entries {
        let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
            continue;
        };
        if !io.exists(&path) {
            continue; // raced with a concurrent sweep
        }
        if is_dir(&path) {
            scan_dir(&path, out)?;
        } else if name == "manifest.json" {
            out.push(scan_manifest(&path));
        } else if let Some(wave) = parse_wave_name(&name) {
            out.push(scan_wave(&path, wave, has_manifest));
        } else if name.ends_with(".pages") {
            out.push(Artifact {
                path,
                kind: "spill",
                verdict: Verdict::Orphan {
                    detail: "spill scratch; never outlives its run".to_owned(),
                },
            });
        } else if name.ends_with(".tmp") {
            out.push(Artifact {
                path,
                kind: "temp",
                verdict: Verdict::Orphan {
                    detail: "unpublished atomic write".to_owned(),
                },
            });
        }
    }
    Ok(())
}

/// `list_dir` yields plain paths; only real directories recurse. Injected
/// synthetic backends answer `exists` but not `is_dir`, so fall back to
/// the filesystem here — fsck is an offline tool over real directories.
fn is_dir(path: &Path) -> bool {
    path.is_dir()
}

fn scan_manifest(path: &Path) -> Artifact {
    let verdict = match io_for(path).read_to_string(path) {
        Err(e) => Verdict::Corrupt {
            detail: format!("unreadable manifest: {e}"),
        },
        Ok(text) => match serde_json::from_str::<CheckpointManifest>(&text) {
            Ok(_) => Verdict::Clean,
            Err(e) => Verdict::Corrupt {
                detail: format!("malformed manifest: {e}"),
            },
        },
    };
    Artifact {
        path: path.to_owned(),
        kind: "manifest",
        verdict,
    }
}

fn scan_wave(path: &Path, wave: usize, has_manifest: bool) -> Artifact {
    let verdict = if !has_manifest {
        Verdict::Orphan {
            detail: "wave file without a manifest; nothing can resume from it".to_owned(),
        }
    } else {
        match load_wave(path, wave) {
            Ok(_) => Verdict::Clean,
            Err(e) => Verdict::Corrupt {
                detail: format!("waves publish atomically, so damage is never a torn tail: {e}"),
            },
        }
    };
    Artifact {
        path: path.to_owned(),
        kind: "wave",
        verdict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use std::fs;
    use std::path::PathBuf;

    use toreador_data::generate;

    use crate::checkpoint::{CheckpointSpec, RunCheckpoint, FORMAT_VERSION};

    fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("toreador-flow-fsck-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn manifest(run_id: &str) -> CheckpointManifest {
        CheckpointManifest {
            format_version: FORMAT_VERSION,
            run_id: run_id.to_owned(),
            plan_fingerprint: "aaaa".into(),
            config_fingerprint: "bbbb".into(),
            input_fingerprint: "cccc".into(),
            chaos_seed: 0,
            partitions: 2,
        }
    }

    fn seed_checkpoint(root: &Path) -> PathBuf {
        let spec = CheckpointSpec {
            root: root.to_owned(),
            run_id: "run".into(),
            resume: false,
        };
        let ckpt = RunCheckpoint::create(&spec, &manifest("run")).unwrap();
        let t = generate::clickstream(120, 7);
        ckpt.persist_wave(3, 0, &[t]).unwrap();
        spec.dir()
    }

    #[test]
    fn clean_checkpoint_tree_scans_clean() {
        let root = tmp_root("clean");
        seed_checkpoint(&root);
        let arts = scan_tree(&root).unwrap();
        assert!(arts.iter().any(|a| a.kind == "manifest"));
        assert!(arts.iter().any(|a| a.kind == "wave"));
        assert!(arts.iter().all(|a| a.verdict.is_clean()), "{arts:?}");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn bit_flipped_wave_is_classified_corrupt() {
        let root = tmp_root("wave-flip");
        let dir = seed_checkpoint(&root);
        let wave = dir.join("wave-0000.ckpt");
        let mut bytes = fs::read(&wave).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&wave, &bytes).unwrap();
        let arts = scan_tree(&root).unwrap();
        let bad = arts.iter().find(|a| a.path == wave).unwrap();
        assert!(bad.verdict.is_corrupt(), "{:?}", bad.verdict);
        // Corruption is never auto-repaired.
        assert!(toreador_store::fsck::repair(bad).unwrap().is_none());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn truncated_wave_is_corrupt_not_truncatable() {
        let root = tmp_root("wave-torn");
        let dir = seed_checkpoint(&root);
        let wave = dir.join("wave-0000.ckpt");
        let bytes = fs::read(&wave).unwrap();
        fs::write(&wave, &bytes[..bytes.len() - 3]).unwrap();
        let arts = scan_tree(&root).unwrap();
        let bad = arts.iter().find(|a| a.path == wave).unwrap();
        assert!(
            bad.verdict.is_corrupt(),
            "waves publish atomically, so a torn wave is corrupt: {:?}",
            bad.verdict
        );
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn garbled_manifest_is_corrupt_and_orphan_wave_is_removable() {
        let root = tmp_root("manifest");
        let dir = seed_checkpoint(&root);
        fs::write(dir.join("manifest.json"), b"{ not json").unwrap();
        let arts = scan_tree(&root).unwrap();
        let m = arts.iter().find(|a| a.kind == "manifest").unwrap();
        assert!(m.verdict.is_corrupt(), "{:?}", m.verdict);

        // Without any manifest at all, the wave is an orphan and repair
        // removes it.
        fs::remove_file(dir.join("manifest.json")).unwrap();
        let arts = scan_tree(&root).unwrap();
        let w = arts.iter().find(|a| a.kind == "wave").unwrap();
        assert!(
            matches!(w.verdict, Verdict::Orphan { .. }),
            "{:?}",
            w.verdict
        );
        assert_eq!(
            toreador_store::fsck::repair(w).unwrap().as_deref(),
            Some("removed")
        );
        assert!(!w.path.exists());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn spill_and_tmp_files_are_orphans_and_store_dirs_delegate() {
        let root = tmp_root("mixed");
        let spill = root.join("spill");
        fs::create_dir_all(&spill).unwrap();
        fs::write(spill.join("run-000001.pages"), b"scratch").unwrap();
        fs::write(spill.join("run-000002.pages.tmp"), b"orphan").unwrap();
        // A nested store directory is judged by the store scanner.
        let store = root.join("store");
        {
            use toreador_store::log::{DurableLog, LogConfig};
            let (mut log, _) = DurableLog::open(&store, LogConfig::default()).unwrap();
            log.append(b"rec").unwrap();
            log.sync().unwrap();
        }
        let arts = scan_tree(&root).unwrap();
        assert!(
            arts.iter()
                .filter(|a| a.kind == "spill" || a.kind == "temp")
                .all(|a| matches!(a.verdict, Verdict::Orphan { .. })),
            "{arts:?}"
        );
        assert!(
            arts.iter().any(|a| a.kind == "wal-segment"),
            "store dir delegated: {arts:?}"
        );
        fs::remove_dir_all(&root).unwrap();
    }
}
