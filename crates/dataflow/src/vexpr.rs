//! Vectorized expression evaluation: plan-time binding + batch kernels.
//!
//! [`BoundExpr`] is an [`Expr`] compiled against a schema **once**: column
//! names are resolved to indices, every node's output type is inferred, and
//! the fallibility of each subtree (can it raise a runtime error, i.e. does
//! it contain a cast that can fail?) is precomputed. Evaluation then runs
//! each operator over whole [`Column`] vectors with type-specialized kernels
//! (int/float/str lanes), combining null masks word-wise through
//! [`Validity`], and produces **selection vectors** (`Vec<u32>` of surviving
//! row indices) for predicates instead of `Vec<bool>` masks.
//!
//! Semantics are bit-for-bit those of the row-at-a-time oracle
//! ([`Expr::eval`] / [`Expr::eval_table`] / [`Expr::eval_mask`]), including:
//!
//! * null propagation (`AND`/`OR` with a null operand yield null — the
//!   engine's simplified three-valued logic),
//! * short-circuit error skipping: rows where the row oracle would never
//!   evaluate a fallible subexpression (the right side of `AND`/`OR`, the
//!   untaken `IF` branch, later `COALESCE` arguments) are excluded via
//!   selection-lazy evaluation, so a failing cast on a dead row errors in
//!   neither engine,
//! * wrapping integer arithmetic, `Div` always computing as float with
//!   divide-by-zero yielding null, `Mod`-by-zero yielding null, `Ln` of a
//!   non-positive value yielding null,
//! * float comparisons via `f64::total_cmp` (NaN equals NaN, -0.0 < +0.0),
//!   matching [`toreador_data::value::Value::total_cmp`].
//!
//! The equivalence is enforced by the differential property suite in
//! `tests/cross_crate_properties.rs`.

use std::borrow::Cow;
use std::cmp::Ordering;

use toreador_data::column::{Column, Validity};
use toreador_data::schema::Schema;
use toreador_data::table::Table;
use toreador_data::value::{DataType, Value};

use crate::error::{FlowError, Result};
use crate::expr::{cast_value, eval_binary, eval_func, BinOp, Expr, Func, UnOp};

/// An expression compiled against a schema: indices instead of names, types
/// resolved at every node, literals kept as scalars until broadcast.
#[derive(Debug, Clone)]
pub struct BoundExpr {
    ty: DataType,
    /// Whether evaluating this subtree can raise a runtime error (only
    /// casts can, after binding has type-checked everything else).
    fallible: bool,
    /// Whether this subtree declines vectorization: an `IF`/`COALESCE`
    /// whose branches mix Int and Float carries *runtime* value types that
    /// differ from the statically unified type (the row engine coerces only
    /// at the table boundary), which a single-typed column cannot
    /// represent. Such trees — and everything above them — evaluate through
    /// the bound row interpreter instead, preserving row-oracle semantics
    /// exactly. Mixed-type branches are rare; every other tree vectorizes.
    dynamic: bool,
    node: BoundNode,
}

#[derive(Debug, Clone)]
enum BoundNode {
    Col(usize),
    Lit(Value),
    Binary {
        op: BinOp,
        left: Box<BoundExpr>,
        right: Box<BoundExpr>,
    },
    Unary {
        op: UnOp,
        operand: Box<BoundExpr>,
    },
    Call {
        func: Func,
        arg: Box<BoundExpr>,
    },
    Coalesce(Vec<BoundExpr>),
    If {
        cond: Box<BoundExpr>,
        then: Box<BoundExpr>,
        otherwise: Box<BoundExpr>,
    },
    Cast {
        expr: Box<BoundExpr>,
        to: DataType,
    },
}

/// The result of evaluating one bound node over a batch: a full column, a
/// borrowed input column (bare column references copy nothing), a deferred
/// gather (a column restricted to a selection, materialized only if a
/// consumer needs ownership), or a scalar (constant subtrees stay scalar
/// until a consumer broadcasts them).
pub enum Batch<'a> {
    Ref(&'a Column),
    Owned(Column),
    /// `column` restricted to the rows of `sel`, gather deferred. The fused
    /// narrow chain evaluates morsels under row-range selections; streaming
    /// consumers (the comparison kernels, null tests) read `data[sel[i]]`
    /// in place, so a `Str` operand never pays a per-row clone just to be
    /// compared against.
    Gather(&'a Column, &'a [u32]),
    Scalar(Value),
}

impl<'a> Batch<'a> {
    fn as_col(&self) -> Option<&Column> {
        match self {
            Batch::Ref(c) => Some(c),
            Batch::Owned(c) => Some(c),
            Batch::Gather(..) => None,
            Batch::Scalar(_) => None,
        }
    }

    fn as_scalar(&self) -> Option<&Value> {
        match self {
            Batch::Scalar(v) => Some(v),
            _ => None,
        }
    }

    /// Materialize a deferred gather; every other variant passes through.
    /// Consumers without a streaming path call this before `as_col`.
    fn force(self) -> Batch<'a> {
        match self {
            Batch::Gather(c, sel) => Batch::Owned(c.take_sel(sel)),
            b => b,
        }
    }

    /// Materialize as a column of `ty` over `m` rows, broadcasting scalars
    /// and widening Int to Float where the inferred type asks for it.
    pub fn into_column(self, ty: DataType, m: usize) -> Result<Column> {
        match self {
            Batch::Ref(c) => coerce_column(c.clone(), ty),
            Batch::Owned(c) => coerce_column(c, ty),
            Batch::Gather(c, sel) => coerce_column(c.take_sel(sel), ty),
            Batch::Scalar(v) => {
                let v = v.coerce(ty).map_err(FlowError::Data)?;
                Ok(broadcast(&v, ty, m))
            }
        }
    }
}

fn internal(msg: &str) -> FlowError {
    FlowError::TypeCheck(format!("vectorized engine invariant violated: {msg}"))
}

/// Identity, or the one legal implicit widening (Int -> Float).
fn coerce_column(c: Column, ty: DataType) -> Result<Column> {
    if c.data_type() == ty {
        return Ok(c);
    }
    match (c, ty) {
        (Column::Int { data, validity }, DataType::Float) => Ok(Column::Float {
            data: data.into_iter().map(|i| i as f64).collect(),
            validity,
        }),
        (c, ty) => Err(internal(&format!(
            "cannot coerce {} column to {ty}",
            c.data_type()
        ))),
    }
}

/// A constant value repeated `m` times.
fn broadcast(v: &Value, ty: DataType, m: usize) -> Column {
    if v.is_null() {
        let mut c = Column::with_capacity(ty, m);
        for _ in 0..m {
            c.push_null();
        }
        return c;
    }
    let validity = Validity::all_valid(m);
    match v {
        Value::Bool(b) => Column::Bool {
            data: vec![*b; m],
            validity,
        },
        Value::Int(i) => Column::Int {
            data: vec![*i; m],
            validity,
        },
        Value::Float(x) => Column::Float {
            data: vec![*x; m],
            validity,
        },
        Value::Str(s) => Column::Str {
            data: vec![s.clone(); m],
            validity,
        },
        Value::Timestamp(t) => Column::Timestamp {
            data: vec![*t; m],
            validity,
        },
        Value::Null => unreachable!(),
    }
}

fn all_null(ty: DataType, m: usize) -> Column {
    broadcast(&Value::Null, ty, m)
}

fn bad(msg: String) -> FlowError {
    FlowError::TypeCheck(msg)
}

/// Whether `cast_value(v, to)` can fail for a non-null `v` of type `from`.
fn cast_fallible(from: DataType, to: DataType) -> bool {
    use DataType::*;
    match to {
        Str => false,
        Int => from == Str,
        Float => !matches!(from, Float | Int),
        Bool => !matches!(from, Bool | Int),
        Timestamp => !matches!(from, Timestamp | Int),
    }
}

impl BoundExpr {
    /// Compile `expr` against `schema`: resolve names, infer types, reject
    /// ill-typed trees — the same checks as [`Expr::infer_type`], done once
    /// at plan time instead of per partition per stage.
    pub fn bind(expr: &Expr, schema: &Schema) -> Result<BoundExpr> {
        let bound = Self::bind_inner(expr, schema)?;
        debug_assert_eq!(
            bound.ty,
            expr.infer_type(schema)?,
            "binding and row-path inference must agree"
        );
        Ok(bound)
    }

    fn bind_inner(expr: &Expr, schema: &Schema) -> Result<BoundExpr> {
        Ok(match expr {
            Expr::Column(name) => {
                let idx = schema
                    .index_of(name)
                    .map_err(|_| bad(format!("unknown column {name:?} in {schema}")))?;
                BoundExpr {
                    ty: schema.fields()[idx].data_type,
                    fallible: false,
                    dynamic: false,
                    node: BoundNode::Col(idx),
                }
            }
            Expr::Literal(v) => BoundExpr {
                // A bare null literal types as Str, like the row path.
                ty: v.data_type().unwrap_or(DataType::Str),
                fallible: false,
                dynamic: false,
                node: BoundNode::Lit(v.clone()),
            },
            Expr::Binary { op, left, right } => {
                let l = Self::bind_inner(left, schema)?;
                let r = Self::bind_inner(right, schema)?;
                let (lt, rt) = (l.ty, r.ty);
                let ty = if op.is_arithmetic() {
                    match lt.unify(rt) {
                        Some(t) if t.is_numeric() => {
                            if *op == BinOp::Div {
                                DataType::Float
                            } else {
                                t
                            }
                        }
                        _ => {
                            return Err(bad(format!(
                                "{} requires numeric operands, got {lt} {rt}",
                                op.symbol()
                            )))
                        }
                    }
                } else if op.is_comparison() {
                    if lt.unify(rt).is_none() {
                        return Err(bad(format!("cannot compare {lt} with {rt}")));
                    }
                    DataType::Bool
                } else {
                    if lt != DataType::Bool || rt != DataType::Bool {
                        return Err(bad(format!(
                            "{} requires Bool operands, got {lt} {rt}",
                            op.symbol()
                        )));
                    }
                    DataType::Bool
                };
                BoundExpr {
                    ty,
                    fallible: l.fallible || r.fallible,
                    dynamic: l.dynamic || r.dynamic,
                    node: BoundNode::Binary {
                        op: *op,
                        left: Box::new(l),
                        right: Box::new(r),
                    },
                }
            }
            Expr::Unary { op, operand } => {
                let o = Self::bind_inner(operand, schema)?;
                let ty = match op {
                    UnOp::Not => {
                        if o.ty != DataType::Bool {
                            return Err(bad(format!("NOT requires Bool, got {}", o.ty)));
                        }
                        DataType::Bool
                    }
                    UnOp::Neg => {
                        if !o.ty.is_numeric() {
                            return Err(bad(format!("negation requires numeric, got {}", o.ty)));
                        }
                        o.ty
                    }
                    UnOp::IsNull | UnOp::IsNotNull => DataType::Bool,
                };
                BoundExpr {
                    ty,
                    fallible: o.fallible,
                    dynamic: o.dynamic,
                    node: BoundNode::Unary {
                        op: *op,
                        operand: Box::new(o),
                    },
                }
            }
            Expr::Call { func, args } => {
                if args.len() != 1 {
                    return Err(bad(format!(
                        "{func:?} expects 1 argument(s), got {}",
                        args.len()
                    )));
                }
                let a = Self::bind_inner(&args[0], schema)?;
                let t = a.ty;
                let ty = match func {
                    Func::Abs | Func::Floor | Func::Ceil => {
                        if !t.is_numeric() {
                            return Err(bad(format!("{func:?} requires numeric, got {t}")));
                        }
                        t
                    }
                    Func::Sqrt | Func::Ln => {
                        if !t.is_numeric() {
                            return Err(bad(format!("{func:?} requires numeric, got {t}")));
                        }
                        DataType::Float
                    }
                    Func::Lower | Func::Upper => {
                        if t != DataType::Str {
                            return Err(bad(format!("{func:?} requires Str, got {t}")));
                        }
                        DataType::Str
                    }
                    Func::Length => {
                        if t != DataType::Str {
                            return Err(bad(format!("Length requires Str, got {t}")));
                        }
                        DataType::Int
                    }
                    Func::HourOfDay | Func::DayIndex => {
                        if t != DataType::Timestamp {
                            return Err(bad(format!("{func:?} requires Timestamp, got {t}")));
                        }
                        DataType::Int
                    }
                };
                BoundExpr {
                    ty,
                    fallible: a.fallible,
                    dynamic: a.dynamic,
                    node: BoundNode::Call {
                        func: *func,
                        arg: Box::new(a),
                    },
                }
            }
            Expr::Coalesce(args) => {
                if args.is_empty() {
                    return Err(bad("COALESCE needs at least one argument".to_owned()));
                }
                let bound: Vec<BoundExpr> = args
                    .iter()
                    .map(|a| Self::bind_inner(a, schema))
                    .collect::<Result<_>>()?;
                let mut ty = bound[0].ty;
                for b in &bound[1..] {
                    ty = ty
                        .unify(b.ty)
                        .ok_or_else(|| bad(format!("COALESCE mixes {ty} and {}", b.ty)))?;
                }
                BoundExpr {
                    ty,
                    fallible: bound.iter().any(|b| b.fallible),
                    dynamic: bound.iter().any(|b| b.dynamic || b.ty != ty),
                    node: BoundNode::Coalesce(bound),
                }
            }
            Expr::If {
                cond,
                then,
                otherwise,
            } => {
                let c = Self::bind_inner(cond, schema)?;
                if c.ty != DataType::Bool {
                    return Err(bad(format!("IF condition must be Bool, got {}", c.ty)));
                }
                let t = Self::bind_inner(then, schema)?;
                let o = Self::bind_inner(otherwise, schema)?;
                let ty =
                    t.ty.unify(o.ty)
                        .ok_or_else(|| bad(format!("IF branches mix {} and {}", t.ty, o.ty)))?;
                BoundExpr {
                    ty,
                    fallible: c.fallible || t.fallible || o.fallible,
                    dynamic: c.dynamic || t.dynamic || o.dynamic || t.ty != ty || o.ty != ty,
                    node: BoundNode::If {
                        cond: Box::new(c),
                        then: Box::new(t),
                        otherwise: Box::new(o),
                    },
                }
            }
            Expr::Cast { expr, to } => {
                let e = Self::bind_inner(expr, schema)?;
                let fallible = e.fallible || cast_fallible(e.ty, *to);
                BoundExpr {
                    ty: *to,
                    fallible,
                    dynamic: e.dynamic,
                    node: BoundNode::Cast {
                        expr: Box::new(e),
                        to: *to,
                    },
                }
            }
        })
    }

    /// Inferred output type (resolved once, at bind time).
    pub fn output_type(&self) -> DataType {
        self.ty
    }

    /// Evaluate over a whole table into a column of the bound type — the
    /// vectorized counterpart of [`Expr::eval_table`].
    pub fn eval_column(&self, table: &Table) -> Result<Column> {
        let n = table.num_rows();
        let batch = self.eval_cols(table.columns(), n, None)?;
        batch.into_column(self.ty, n)
    }

    /// Evaluate a Bool predicate over a table into a selection vector of
    /// surviving row indices (null counts as false, SQL WHERE semantics) —
    /// the vectorized counterpart of [`Expr::eval_mask`].
    pub fn eval_selection(&self, table: &Table) -> Result<Vec<u32>> {
        self.selection_cols(table.columns(), table.num_rows(), None)
    }

    /// Like [`Self::eval_selection`], but over raw columns under an
    /// optional prior selection; returns **absolute** row indices (a subset
    /// of `sel` when given). The fused narrow-chain pass composes filters
    /// this way without materializing intermediate tables.
    pub(crate) fn selection_cols(
        &self,
        cols: &[Column],
        n: usize,
        sel: Option<&[u32]>,
    ) -> Result<Vec<u32>> {
        if self.ty != DataType::Bool {
            return Err(bad(format!("predicate must be Bool, got {}", self.ty)));
        }
        let m = sel.map_or(n, |s| s.len());
        let batch = self.eval_cols(cols, n, sel)?.force();
        let abs = |i: usize| sel.map_or(i as u32, |s| s[i]);
        match batch {
            Batch::Scalar(Value::Bool(true)) => Ok((0..m).map(abs).collect()),
            Batch::Scalar(_) => Ok(Vec::new()),
            b => {
                let c = b.as_col().expect("non-scalar batch is a column");
                let (data, validity) = c.as_bools().map_err(FlowError::Data)?;
                let mut out = Vec::new();
                for (i, &d) in data.iter().enumerate().take(m) {
                    if validity.get(i) && d {
                        out.push(abs(i));
                    }
                }
                Ok(out)
            }
        }
    }

    /// Evaluate over raw columns of length `n`, optionally restricted to
    /// the rows in `sel`. The resulting batch has `sel.len()` (or `n`)
    /// rows, in selection order.
    pub(crate) fn eval_cols<'a>(
        &self,
        cols: &'a [Column],
        n: usize,
        sel: Option<&'a [u32]>,
    ) -> Result<Batch<'a>> {
        let m = sel.map_or(n, |s| s.len());
        if self.dynamic {
            // Mixed-type conditional branches: vectorization declined, the
            // whole subtree runs through the bound row interpreter (still
            // index-resolved and plan-typed, just not batched).
            return self.eval_rows(cols, n, sel).map(Batch::Owned);
        }
        match &self.node {
            BoundNode::Col(idx) => match sel {
                None => Ok(Batch::Ref(&cols[*idx])),
                Some(s) => Ok(Batch::Gather(&cols[*idx], s)),
            },
            BoundNode::Lit(v) => Ok(Batch::Scalar(v.clone())),
            BoundNode::Binary { op, left, right } => {
                self.eval_binary_node(*op, left, right, cols, n, sel, m)
            }
            BoundNode::Unary { op, operand } => {
                let b = operand.eval_cols(cols, n, sel)?;
                eval_unary_batch(*op, b)
            }
            BoundNode::Call { func, arg } => {
                let b = arg.eval_cols(cols, n, sel)?;
                match b.force() {
                    Batch::Scalar(v) => {
                        if v.is_null() {
                            Ok(Batch::Scalar(Value::Null))
                        } else {
                            eval_func(*func, &v).map(Batch::Scalar)
                        }
                    }
                    b => {
                        let c = b.as_col().expect("column batch");
                        func_kernel(*func, c).map(Batch::Owned)
                    }
                }
            }
            BoundNode::Coalesce(args) => self.eval_coalesce(args, cols, n, sel, m),
            BoundNode::If {
                cond,
                then,
                otherwise,
            } => self.eval_if(cond, then, otherwise, cols, n, sel, m),
            BoundNode::Cast { expr, to } => {
                let b = expr.eval_cols(cols, n, sel)?;
                match b.force() {
                    Batch::Scalar(v) => cast_value(&v, *to).map(Batch::Scalar),
                    b => {
                        let c = b.as_col().expect("column batch");
                        cast_kernel(c, *to).map(Batch::Owned)
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_binary_node<'a>(
        &self,
        op: BinOp,
        left: &BoundExpr,
        right: &BoundExpr,
        cols: &'a [Column],
        n: usize,
        sel: Option<&'a [u32]>,
        m: usize,
    ) -> Result<Batch<'a>> {
        let lb = left.eval_cols(cols, n, sel)?;
        if matches!(op, BinOp::And | BinOp::Or) {
            return self.eval_logic(op, lb, right, cols, n, sel, m);
        }
        let rb = right.eval_cols(cols, n, sel)?;
        // Constant subtree: defer to the scalar oracle.
        if let (Some(l), Some(r)) = (lb.as_scalar(), rb.as_scalar()) {
            return eval_binary(op, l, r).map(Batch::Scalar);
        }
        // A null scalar operand nulls every row (after both sides have been
        // evaluated, matching row-path error behavior).
        if lb.as_scalar().is_some_and(Value::is_null) || rb.as_scalar().is_some_and(Value::is_null)
        {
            return Ok(Batch::Owned(all_null(self.ty, m)));
        }
        if op.is_comparison() {
            // Deferred gathers compare in place — `data[sel[i]]` streams
            // against the other operand, so the fused chain's per-morsel
            // filters never clone the rows they are testing.
            match (&lb, &rb) {
                (Batch::Gather(c, s), Batch::Scalar(v)) => {
                    return cmp_gather_scalar(op, c, s, v, true).map(Batch::Owned)
                }
                (Batch::Scalar(v), Batch::Gather(c, s)) => {
                    return cmp_gather_scalar(op, c, s, v, false).map(Batch::Owned)
                }
                (Batch::Gather(lc, ls), Batch::Gather(rc, rs)) => {
                    return cmp_gather_gather(op, lc, ls, rc, rs).map(Batch::Owned)
                }
                _ => {}
            }
            let (lb, rb) = (lb.force(), rb.force());
            cmp_dispatch(op, &lb, &rb).map(Batch::Owned)
        } else {
            let (lb, rb) = (lb.force(), rb.force());
            arith_dispatch(op, self.ty, &lb, &rb, m).map(Batch::Owned)
        }
    }

    /// AND/OR with the row oracle's short-circuit semantics: a false (for
    /// AND) or true (for OR) left operand decides the row without touching
    /// the right side — including any error a fallible right side would
    /// raise there. Infallible right sides take the dense fast lane.
    #[allow(clippy::too_many_arguments)]
    fn eval_logic<'a>(
        &self,
        op: BinOp,
        lb: Batch<'a>,
        right: &BoundExpr,
        cols: &'a [Column],
        n: usize,
        sel: Option<&'a [u32]>,
        m: usize,
    ) -> Result<Batch<'a>> {
        let lb = lb.force();
        let decides = |v: bool| (op == BinOp::And && !v) || (op == BinOp::Or && v);
        if let Some(l) = lb.as_scalar() {
            match l {
                Value::Bool(b) if decides(*b) => return Ok(Batch::Scalar(Value::Bool(*b))),
                _ => {
                    // Left is null or non-deciding: the right side is
                    // evaluated for every row.
                    let rb = right.eval_cols(cols, n, sel)?;
                    if l.is_null() {
                        return match rb.as_scalar() {
                            Some(_) => Ok(Batch::Scalar(Value::Null)),
                            None => Ok(Batch::Owned(all_null(DataType::Bool, m))),
                        };
                    }
                    // Left is the non-deciding constant: AND(true, r) = r,
                    // OR(false, r) = r (null right stays null).
                    return Ok(rb);
                }
            }
        }
        let l_col = lb.as_col().expect("non-scalar batch is a column");
        let (ld, lv) = l_col.as_bools().map_err(FlowError::Data)?;
        if right.fallible {
            // Selection-lazy: evaluate the right side only on rows the left
            // side does not decide.
            let abs = |i: usize| sel.map_or(i as u32, |s| s[i]);
            let mut keep: Vec<u32> = Vec::new();
            for (i, &l) in ld.iter().enumerate().take(m) {
                if !(lv.get(i) && decides(l)) {
                    keep.push(abs(i));
                }
            }
            let r_col = if keep.is_empty() {
                None
            } else {
                let rb = right.eval_cols(cols, n, Some(&keep))?;
                Some(rb.into_column(DataType::Bool, keep.len())?)
            };
            let mut data = Vec::with_capacity(m);
            let mut validity = Validity::new();
            let mut j = 0usize;
            for (i, &l) in ld.iter().enumerate().take(m) {
                let lval = lv.get(i).then_some(l);
                let rval = if matches!(lval, Some(v) if decides(v)) {
                    None
                } else {
                    let c = r_col.as_ref().expect("kept rows imply a right column");
                    let (rd, rv) = c.as_bools().map_err(FlowError::Data)?;
                    let v = rv.get(j).then(|| rd[j]);
                    j += 1;
                    v
                };
                push_logic(op, lval, rval, &mut data, &mut validity);
            }
            return Ok(Batch::Owned(Column::Bool { data, validity }));
        }
        let rb = right.eval_cols(cols, n, sel)?.force();
        let mut data = Vec::with_capacity(m);
        let mut validity = Validity::new();
        match rb.as_scalar() {
            Some(r) => {
                let rval = match r {
                    Value::Bool(b) => Some(*b),
                    _ => None,
                };
                for (i, &l) in ld.iter().enumerate().take(m) {
                    push_logic(op, lv.get(i).then_some(l), rval, &mut data, &mut validity);
                }
            }
            None => {
                let r_col = rb.as_col().expect("column batch");
                let (rd, rv) = r_col.as_bools().map_err(FlowError::Data)?;
                for i in 0..m {
                    push_logic(
                        op,
                        lv.get(i).then(|| ld[i]),
                        rv.get(i).then(|| rd[i]),
                        &mut data,
                        &mut validity,
                    );
                }
            }
        }
        Ok(Batch::Owned(Column::Bool { data, validity }))
    }

    /// COALESCE, evaluated lazily arg-by-arg over the shrinking selection
    /// of still-null rows — later arguments never see (and never fail on)
    /// rows an earlier argument already filled.
    fn eval_coalesce<'a>(
        &self,
        args: &[BoundExpr],
        cols: &'a [Column],
        n: usize,
        sel: Option<&[u32]>,
        m: usize,
    ) -> Result<Batch<'a>> {
        let mut out: Vec<Value> = vec![Value::Null; m];
        let mut pending_abs: Vec<u32> = match sel {
            Some(s) => s.to_vec(),
            None => (0..n as u32).collect(),
        };
        let mut pending_rel: Vec<u32> = (0..m as u32).collect();
        for arg in args {
            if pending_abs.is_empty() {
                break;
            }
            let b = arg.eval_cols(cols, n, Some(&pending_abs))?;
            let c = b.into_column(self.ty, pending_abs.len())?;
            let mut next_abs = Vec::new();
            let mut next_rel = Vec::new();
            for (j, &rel) in pending_rel.iter().enumerate() {
                let v = c.value(j).map_err(FlowError::Data)?;
                if v.is_null() {
                    next_abs.push(pending_abs[j]);
                    next_rel.push(rel);
                } else {
                    out[rel as usize] = v;
                }
            }
            pending_abs = next_abs;
            pending_rel = next_rel;
        }
        Column::from_values(self.ty, &out)
            .map(Batch::Owned)
            .map_err(FlowError::Data)
    }

    /// IF, evaluated by splitting the selection on the condition so each
    /// branch only ever sees its own rows (a failing cast in the untaken
    /// branch must not error — the row oracle never evaluates it there).
    #[allow(clippy::too_many_arguments)]
    fn eval_if<'a>(
        &self,
        cond: &BoundExpr,
        then: &BoundExpr,
        otherwise: &BoundExpr,
        cols: &'a [Column],
        n: usize,
        sel: Option<&[u32]>,
        m: usize,
    ) -> Result<Batch<'a>> {
        let cb = cond.eval_cols(cols, n, sel)?.force();
        if let Some(v) = cb.as_scalar() {
            // Constant condition: only the taken branch is evaluated at all.
            let taken = if matches!(v, Value::Bool(true)) {
                then
            } else {
                otherwise
            };
            let b = taken.eval_cols(cols, n, sel)?;
            // Coerce to the unified branch type up front so the batch type
            // invariant holds for consumers.
            return match b {
                Batch::Scalar(v) => Ok(Batch::Scalar(v)),
                b => Ok(Batch::Owned(coerce_column(
                    b.into_column(taken.ty, m)?,
                    self.ty,
                )?)),
            };
        }
        let c_col = cb.as_col().expect("column batch");
        let (cd, cv) = c_col.as_bools().map_err(FlowError::Data)?;
        let abs = |i: usize| sel.map_or(i as u32, |s| s[i]);
        let mut then_abs = Vec::new();
        let mut else_abs = Vec::new();
        for (i, &c) in cd.iter().enumerate().take(m) {
            if cv.get(i) && c {
                then_abs.push(abs(i));
            } else {
                else_abs.push(abs(i)); // false OR null takes the else branch
            }
        }
        let then_col = if then_abs.is_empty() {
            None
        } else {
            Some(
                then.eval_cols(cols, n, Some(&then_abs))?
                    .into_column(self.ty, then_abs.len())?,
            )
        };
        let else_col = if else_abs.is_empty() {
            None
        } else {
            Some(
                otherwise
                    .eval_cols(cols, n, Some(&else_abs))?
                    .into_column(self.ty, else_abs.len())?,
            )
        };
        let mut out = Column::with_capacity(self.ty, m);
        let (mut tj, mut ej) = (0usize, 0usize);
        for (i, &cond) in cd.iter().enumerate().take(m) {
            let (c, j) = if cv.get(i) && cond {
                let j = tj;
                tj += 1;
                (then_col.as_ref(), j)
            } else {
                let j = ej;
                ej += 1;
                (else_col.as_ref(), j)
            };
            let v = c
                .expect("selected rows imply a branch column")
                .value(j)
                .map_err(FlowError::Data)?;
            out.push(&v).map_err(FlowError::Data)?;
        }
        Ok(Batch::Owned(out))
    }
}

impl BoundExpr {
    /// Row-at-a-time interpreter over the bound tree, used for `dynamic`
    /// subtrees. Semantics are exactly [`Expr::eval`]'s (short-circuit
    /// AND/OR, raw branch values from IF/COALESCE), minus the per-row name
    /// lookups the binding already resolved.
    fn eval_value(&self, cols: &[Column], row: usize) -> Result<Value> {
        match &self.node {
            BoundNode::Col(idx) => cols[*idx].value(row).map_err(FlowError::Data),
            BoundNode::Lit(v) => Ok(v.clone()),
            BoundNode::Binary { op, left, right } => {
                let l = left.eval_value(cols, row)?;
                if *op == BinOp::And {
                    if let Value::Bool(false) = l {
                        return Ok(Value::Bool(false));
                    }
                } else if *op == BinOp::Or {
                    if let Value::Bool(true) = l {
                        return Ok(Value::Bool(true));
                    }
                }
                let r = right.eval_value(cols, row)?;
                eval_binary(*op, &l, &r)
            }
            BoundNode::Unary { op, operand } => {
                let v = operand.eval_value(cols, row)?;
                match op {
                    UnOp::IsNull => Ok(Value::Bool(v.is_null())),
                    UnOp::IsNotNull => Ok(Value::Bool(!v.is_null())),
                    UnOp::Not => match v {
                        Value::Null => Ok(Value::Null),
                        Value::Bool(b) => Ok(Value::Bool(!b)),
                        _ => Err(internal("NOT on a non-Bool value")),
                    },
                    UnOp::Neg => match v {
                        Value::Null => Ok(Value::Null),
                        Value::Int(i) => Ok(Value::Int(i.wrapping_neg())),
                        Value::Float(x) => Ok(Value::Float(-x)),
                        _ => Err(internal("negation on a non-numeric value")),
                    },
                }
            }
            BoundNode::Call { func, arg } => {
                let v = arg.eval_value(cols, row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                eval_func(*func, &v)
            }
            BoundNode::Coalesce(args) => {
                for a in args {
                    let v = a.eval_value(cols, row)?;
                    if !v.is_null() {
                        return Ok(v);
                    }
                }
                Ok(Value::Null)
            }
            BoundNode::If {
                cond,
                then,
                otherwise,
            } => match cond.eval_value(cols, row)? {
                Value::Bool(true) => then.eval_value(cols, row),
                Value::Bool(false) | Value::Null => otherwise.eval_value(cols, row),
                _ => Err(internal("IF condition not Bool at runtime")),
            },
            BoundNode::Cast { expr, to } => {
                let v = expr.eval_value(cols, row)?;
                cast_value(&v, *to)
            }
        }
    }

    /// Evaluate `dynamic` trees row-by-row under the selection, coercing
    /// each value to the bound type at the boundary — like
    /// [`Expr::eval_table`] does for the whole table.
    fn eval_rows(&self, cols: &[Column], n: usize, sel: Option<&[u32]>) -> Result<Column> {
        let m = sel.map_or(n, |s| s.len());
        let mut out = Column::with_capacity(self.ty, m);
        for i in 0..m {
            let row = sel.map_or(i, |s| s[i] as usize);
            let v = self.eval_value(cols, row)?;
            let v = v.coerce(self.ty).map_err(FlowError::Data)?;
            out.push(&v).map_err(FlowError::Data)?;
        }
        Ok(out)
    }
}

/// The engine's AND/OR truth table (simplified three-valued logic: a null
/// operand yields null unless the other operand decides the row).
fn push_logic(
    op: BinOp,
    l: Option<bool>,
    r: Option<bool>,
    data: &mut Vec<bool>,
    validity: &mut Validity,
) {
    let out = match (op, l) {
        (BinOp::And, Some(false)) => Some(false),
        (BinOp::Or, Some(true)) => Some(true),
        (_, None) => None,
        (BinOp::And, Some(true)) | (BinOp::Or, Some(false)) => r,
        _ => unreachable!("logic kernel only handles And/Or"),
    };
    match out {
        Some(b) => {
            data.push(b);
            validity.push(true);
        }
        None => {
            data.push(false);
            validity.push(false);
        }
    }
}

// ---------------------------------------------------------------- kernels

fn decide(op: BinOp) -> fn(Ordering) -> bool {
    match op {
        BinOp::Eq => |o| o == Ordering::Equal,
        BinOp::NotEq => |o| o != Ordering::Equal,
        BinOp::Lt => |o| o == Ordering::Less,
        BinOp::LtEq => |o| o != Ordering::Greater,
        BinOp::Gt => |o| o == Ordering::Greater,
        BinOp::GtEq => |o| o != Ordering::Less,
        _ => unreachable!("decide only handles comparisons"),
    }
}

fn cmp_by(op: BinOp, validity: Validity, m: usize, ord: impl Fn(usize) -> Ordering) -> Column {
    let d = decide(op);
    let data: Vec<bool> = (0..m).map(|i| d(ord(i))).collect();
    Column::Bool { data, validity }
}

/// Comparison over two batches (at least one a column). Orderings mirror
/// `Value::total_cmp` exactly: ints compare as ints, any float operand
/// promotes both sides to `f64::total_cmp`.
fn cmp_dispatch(op: BinOp, lb: &Batch<'_>, rb: &Batch<'_>) -> Result<Column> {
    match (lb.as_col(), rb.as_col()) {
        (Some(l), Some(r)) => cmp_col_col(op, l, r),
        (Some(l), None) => cmp_col_scalar(op, l, rb.as_scalar().expect("scalar"), true),
        (None, Some(r)) => cmp_col_scalar(op, r, lb.as_scalar().expect("scalar"), false),
        (None, None) => Err(internal("comparison kernel needs a column operand")),
    }
}

fn cmp_col_col(op: BinOp, l: &Column, r: &Column) -> Result<Column> {
    let m = l.len();
    let v = l.validity().and(r.validity());
    use Column::*;
    Ok(match (l, r) {
        (Int { data: a, .. }, Int { data: b, .. }) => cmp_by(op, v, m, |i| a[i].cmp(&b[i])),
        (Int { data: a, .. }, Float { data: b, .. }) => {
            cmp_by(op, v, m, |i| (a[i] as f64).total_cmp(&b[i]))
        }
        (Float { data: a, .. }, Int { data: b, .. }) => {
            cmp_by(op, v, m, |i| a[i].total_cmp(&(b[i] as f64)))
        }
        (Float { data: a, .. }, Float { data: b, .. }) => {
            cmp_by(op, v, m, |i| a[i].total_cmp(&b[i]))
        }
        (Str { data: a, .. }, Str { data: b, .. }) => cmp_by(op, v, m, |i| a[i].cmp(&b[i])),
        (Bool { data: a, .. }, Bool { data: b, .. }) => cmp_by(op, v, m, |i| a[i].cmp(&b[i])),
        (Timestamp { data: a, .. }, Timestamp { data: b, .. }) => {
            cmp_by(op, v, m, |i| a[i].cmp(&b[i]))
        }
        _ => return Err(internal("comparison lanes disagree with bound types")),
    })
}

/// Compare a column against a non-null scalar. `col_on_left` orients the
/// ordering (`col OP scalar` vs `scalar OP col`).
fn cmp_col_scalar(op: BinOp, c: &Column, s: &Value, col_on_left: bool) -> Result<Column> {
    let m = c.len();
    let v = c.validity().clone();
    let orient = move |o: Ordering| if col_on_left { o } else { o.reverse() };
    use Column::*;
    Ok(match (c, s) {
        (Int { data, .. }, Value::Int(s)) => {
            let s = *s;
            cmp_by(op, v, m, move |i| orient(data[i].cmp(&s)))
        }
        (Int { data, .. }, Value::Float(s)) => {
            let s = *s;
            cmp_by(op, v, m, move |i| orient((data[i] as f64).total_cmp(&s)))
        }
        (Float { data, .. }, Value::Int(s)) => {
            let s = *s as f64;
            cmp_by(op, v, m, move |i| orient(data[i].total_cmp(&s)))
        }
        (Float { data, .. }, Value::Float(s)) => {
            let s = *s;
            cmp_by(op, v, m, move |i| orient(data[i].total_cmp(&s)))
        }
        (Str { data, .. }, Value::Str(s)) => cmp_by(op, v, m, move |i| orient(data[i].cmp(s))),
        (Bool { data, .. }, Value::Bool(s)) => {
            let s = *s;
            cmp_by(op, v, m, move |i| orient(data[i].cmp(&s)))
        }
        (Timestamp { data, .. }, Value::Timestamp(s)) => {
            let s = *s;
            cmp_by(op, v, m, move |i| orient(data[i].cmp(&s)))
        }
        _ => return Err(internal("comparison lanes disagree with bound types")),
    })
}

/// The validity of `col` at the selected rows (the bitmap a gather of the
/// column would carry, built without gathering the data).
fn gather_validity(v: &Validity, sel: &[u32]) -> Validity {
    if v.null_count() == 0 {
        return Validity::all_valid(sel.len());
    }
    let mut out = Validity::new();
    for &i in sel {
        out.push(v.get(i as usize));
    }
    out
}

/// Compare a deferred gather against a non-null scalar in place: the lane
/// kernels read `data[sel[i]]` directly, so `Str` rows are compared without
/// ever cloning them. Orderings mirror [`cmp_col_scalar`] exactly.
fn cmp_gather_scalar(
    op: BinOp,
    c: &Column,
    sel: &[u32],
    s: &Value,
    col_on_left: bool,
) -> Result<Column> {
    let m = sel.len();
    let v = gather_validity(c.validity(), sel);
    let orient = move |o: Ordering| if col_on_left { o } else { o.reverse() };
    let at = |i: usize| sel[i] as usize;
    use Column::*;
    Ok(match (c, s) {
        (Int { data, .. }, Value::Int(s)) => {
            let s = *s;
            cmp_by(op, v, m, move |i| orient(data[at(i)].cmp(&s)))
        }
        (Int { data, .. }, Value::Float(s)) => {
            let s = *s;
            cmp_by(op, v, m, move |i| {
                orient((data[at(i)] as f64).total_cmp(&s))
            })
        }
        (Float { data, .. }, Value::Int(s)) => {
            let s = *s as f64;
            cmp_by(op, v, m, move |i| orient(data[at(i)].total_cmp(&s)))
        }
        (Float { data, .. }, Value::Float(s)) => {
            let s = *s;
            cmp_by(op, v, m, move |i| orient(data[at(i)].total_cmp(&s)))
        }
        (Str { data, .. }, Value::Str(s)) => cmp_by(op, v, m, move |i| orient(data[at(i)].cmp(s))),
        (Bool { data, .. }, Value::Bool(s)) => {
            let s = *s;
            cmp_by(op, v, m, move |i| orient(data[at(i)].cmp(&s)))
        }
        (Timestamp { data, .. }, Value::Timestamp(s)) => {
            let s = *s;
            cmp_by(op, v, m, move |i| orient(data[at(i)].cmp(&s)))
        }
        _ => return Err(internal("comparison lanes disagree with bound types")),
    })
}

/// Compare two deferred gathers (each under its own selection — in practice
/// both sides of one predicate share the morsel's selection) in place.
/// Orderings mirror [`cmp_col_col`] exactly.
fn cmp_gather_gather(op: BinOp, l: &Column, ls: &[u32], r: &Column, rs: &[u32]) -> Result<Column> {
    if ls.len() != rs.len() {
        return Err(internal("comparison operands disagree on batch length"));
    }
    let m = ls.len();
    let v = gather_validity(l.validity(), ls).and(&gather_validity(r.validity(), rs));
    let la = |i: usize| ls[i] as usize;
    let ra = |i: usize| rs[i] as usize;
    use Column::*;
    Ok(match (l, r) {
        (Int { data: a, .. }, Int { data: b, .. }) => {
            cmp_by(op, v, m, move |i| a[la(i)].cmp(&b[ra(i)]))
        }
        (Int { data: a, .. }, Float { data: b, .. }) => {
            cmp_by(op, v, m, move |i| (a[la(i)] as f64).total_cmp(&b[ra(i)]))
        }
        (Float { data: a, .. }, Int { data: b, .. }) => {
            cmp_by(op, v, m, move |i| a[la(i)].total_cmp(&(b[ra(i)] as f64)))
        }
        (Float { data: a, .. }, Float { data: b, .. }) => {
            cmp_by(op, v, m, move |i| a[la(i)].total_cmp(&b[ra(i)]))
        }
        (Str { data: a, .. }, Str { data: b, .. }) => {
            cmp_by(op, v, m, move |i| a[la(i)].cmp(&b[ra(i)]))
        }
        (Bool { data: a, .. }, Bool { data: b, .. }) => {
            cmp_by(op, v, m, move |i| a[la(i)].cmp(&b[ra(i)]))
        }
        (Timestamp { data: a, .. }, Timestamp { data: b, .. }) => {
            cmp_by(op, v, m, move |i| a[la(i)].cmp(&b[ra(i)]))
        }
        _ => return Err(internal("comparison lanes disagree with bound types")),
    })
}

/// One arithmetic operand, promoted to the float lane.
enum FloatSide<'a> {
    Col(Cow<'a, [f64]>, &'a Validity),
    Scalar(f64),
}

fn float_side<'a>(b: &'a Batch<'_>) -> Result<FloatSide<'a>> {
    match b {
        Batch::Scalar(v) => Ok(FloatSide::Scalar(v.as_float().map_err(FlowError::Data)?)),
        b => match b.as_col().expect("column batch") {
            Column::Float { data, validity } => Ok(FloatSide::Col(Cow::Borrowed(data), validity)),
            Column::Int { data, validity } => Ok(FloatSide::Col(
                Cow::Owned(data.iter().map(|&i| i as f64).collect()),
                validity,
            )),
            other => Err(internal(&format!(
                "arithmetic float lane got {} column",
                other.data_type()
            ))),
        },
    }
}

fn arith_dispatch(
    op: BinOp,
    out_ty: DataType,
    lb: &Batch<'_>,
    rb: &Batch<'_>,
    m: usize,
) -> Result<Column> {
    if out_ty == DataType::Int {
        return arith_int(op, lb, rb, m);
    }
    // Float lane: Div always lands here (Int/Int included), as do any
    // mixed or float operands — mirroring `eval_binary`'s `as_float` path.
    let l = float_side(lb)?;
    let r = float_side(rb)?;
    let get = |s: &FloatSide<'_>, i: usize| match s {
        FloatSide::Col(d, _) => d[i],
        FloatSide::Scalar(x) => *x,
    };
    let both_valid: Validity = match (&l, &r) {
        (FloatSide::Col(_, a), FloatSide::Col(_, b)) => a.and(b),
        (FloatSide::Col(_, a), FloatSide::Scalar(_)) => (*a).clone(),
        (FloatSide::Scalar(_), FloatSide::Col(_, b)) => (*b).clone(),
        (FloatSide::Scalar(_), FloatSide::Scalar(_)) => {
            return Err(internal("arithmetic kernel needs a column operand"))
        }
    };
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul => {
            let f: fn(f64, f64) -> f64 = match op {
                BinOp::Add => |a, b| a + b,
                BinOp::Sub => |a, b| a - b,
                BinOp::Mul => |a, b| a * b,
                _ => unreachable!(),
            };
            let data: Vec<f64> = (0..m).map(|i| f(get(&l, i), get(&r, i))).collect();
            Ok(Column::Float {
                data,
                validity: both_valid,
            })
        }
        BinOp::Div | BinOp::Mod => {
            // Data-dependent nulls: a zero divisor nulls the row.
            let mut data = Vec::with_capacity(m);
            let mut validity = Validity::new();
            for i in 0..m {
                let b = get(&r, i);
                if !both_valid.get(i) || b == 0.0 {
                    data.push(0.0);
                    validity.push(false);
                } else {
                    let a = get(&l, i);
                    data.push(if op == BinOp::Div { a / b } else { a % b });
                    validity.push(true);
                }
            }
            Ok(Column::Float { data, validity })
        }
        _ => Err(internal("arith kernel got a non-arithmetic op")),
    }
}

/// Int/Int lane for Add/Sub/Mul/Mod (wrapping, like the row oracle).
fn arith_int(op: BinOp, lb: &Batch<'_>, rb: &Batch<'_>, m: usize) -> Result<Column> {
    enum Side<'a> {
        Col(&'a [i64], &'a Validity),
        Scalar(i64),
    }
    fn side<'a>(b: &'a Batch<'_>) -> Result<Side<'a>> {
        match b {
            Batch::Scalar(v) => Ok(Side::Scalar(v.as_int().map_err(FlowError::Data)?)),
            b => {
                let (d, v) = b
                    .as_col()
                    .expect("column batch")
                    .as_ints()
                    .map_err(FlowError::Data)?;
                Ok(Side::Col(d, v))
            }
        }
    }
    let l = side(lb)?;
    let r = side(rb)?;
    let get = |s: &Side<'_>, i: usize| match s {
        Side::Col(d, _) => d[i],
        Side::Scalar(x) => *x,
    };
    let both_valid: Validity = match (&l, &r) {
        (Side::Col(_, a), Side::Col(_, b)) => a.and(b),
        (Side::Col(_, a), Side::Scalar(_)) => (*a).clone(),
        (Side::Scalar(_), Side::Col(_, b)) => (*b).clone(),
        (Side::Scalar(_), Side::Scalar(_)) => {
            return Err(internal("arithmetic kernel needs a column operand"))
        }
    };
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul => {
            let f: fn(i64, i64) -> i64 = match op {
                BinOp::Add => i64::wrapping_add,
                BinOp::Sub => i64::wrapping_sub,
                BinOp::Mul => i64::wrapping_mul,
                _ => unreachable!(),
            };
            let data: Vec<i64> = (0..m).map(|i| f(get(&l, i), get(&r, i))).collect();
            Ok(Column::Int {
                data,
                validity: both_valid,
            })
        }
        BinOp::Mod => {
            let mut data = Vec::with_capacity(m);
            let mut validity = Validity::new();
            for i in 0..m {
                let b = get(&r, i);
                if !both_valid.get(i) || b == 0 {
                    data.push(0);
                    validity.push(false);
                } else {
                    data.push(get(&l, i).wrapping_rem(b));
                    validity.push(true);
                }
            }
            Ok(Column::Int { data, validity })
        }
        _ => Err(internal("int lane got a non-int op")),
    }
}

fn eval_unary_batch(op: UnOp, b: Batch<'_>) -> Result<Batch<'_>> {
    // Null tests on a deferred gather stream the validity bitmap at the
    // selected rows — no reason to materialize the data just to drop it.
    if let Batch::Gather(c, sel) = &b {
        if matches!(op, UnOp::IsNull | UnOp::IsNotNull) {
            let v = c.validity();
            let want_valid = op == UnOp::IsNotNull;
            return Ok(Batch::Owned(Column::Bool {
                data: sel
                    .iter()
                    .map(|&i| v.get(i as usize) == want_valid)
                    .collect(),
                validity: Validity::all_valid(sel.len()),
            }));
        }
    }
    let b = b.force();
    if let Batch::Scalar(v) = &b {
        return Ok(Batch::Scalar(match op {
            UnOp::IsNull => Value::Bool(v.is_null()),
            UnOp::IsNotNull => Value::Bool(!v.is_null()),
            UnOp::Not => match v {
                Value::Null => Value::Null,
                Value::Bool(x) => Value::Bool(!x),
                _ => return Err(internal("NOT on a non-Bool scalar")),
            },
            UnOp::Neg => match v {
                Value::Null => Value::Null,
                Value::Int(i) => Value::Int(i.wrapping_neg()),
                Value::Float(x) => Value::Float(-x),
                _ => return Err(internal("negation on a non-numeric scalar")),
            },
        }));
    }
    let c = b.as_col().expect("column batch");
    let m = c.len();
    Ok(Batch::Owned(match op {
        UnOp::IsNull => {
            let validity = c.validity();
            Column::Bool {
                data: (0..m).map(|i| !validity.get(i)).collect(),
                validity: Validity::all_valid(m),
            }
        }
        UnOp::IsNotNull => {
            let validity = c.validity();
            Column::Bool {
                data: (0..m).map(|i| validity.get(i)).collect(),
                validity: Validity::all_valid(m),
            }
        }
        UnOp::Not => {
            let (d, v) = c.as_bools().map_err(FlowError::Data)?;
            Column::Bool {
                data: d.iter().map(|b| !b).collect(),
                validity: v.clone(),
            }
        }
        UnOp::Neg => match c {
            Column::Int { data, validity } => Column::Int {
                data: data.iter().map(|i| i.wrapping_neg()).collect(),
                validity: validity.clone(),
            },
            Column::Float { data, validity } => Column::Float {
                data: data.iter().map(|x| -x).collect(),
                validity: validity.clone(),
            },
            _ => return Err(internal("negation on a non-numeric column")),
        },
    }))
}

fn func_kernel(func: Func, c: &Column) -> Result<Column> {
    let m = c.len();
    Ok(match func {
        Func::Abs => match c {
            Column::Int { data, validity } => Column::Int {
                data: data.iter().map(|i| i.wrapping_abs()).collect(),
                validity: validity.clone(),
            },
            Column::Float { data, validity } => Column::Float {
                data: data.iter().map(|x| x.abs()).collect(),
                validity: validity.clone(),
            },
            _ => return Err(internal("Abs on a non-numeric column")),
        },
        Func::Floor | Func::Ceil => match c {
            Column::Int { .. } => c.clone(),
            Column::Float { data, validity } => Column::Float {
                data: data
                    .iter()
                    .map(|x| {
                        if func == Func::Floor {
                            x.floor()
                        } else {
                            x.ceil()
                        }
                    })
                    .collect(),
                validity: validity.clone(),
            },
            _ => return Err(internal("Floor/Ceil on a non-numeric column")),
        },
        Func::Sqrt => {
            let (data, validity): (Vec<f64>, &Validity) = match c {
                Column::Float { data, validity } => {
                    (data.iter().map(|x| x.sqrt()).collect(), validity)
                }
                Column::Int { data, validity } => {
                    (data.iter().map(|&i| (i as f64).sqrt()).collect(), validity)
                }
                _ => return Err(internal("Sqrt on a non-numeric column")),
            };
            Column::Float {
                data,
                validity: validity.clone(),
            }
        }
        Func::Ln => {
            // Ln of a non-positive value is null (data-dependent validity).
            let get: Box<dyn Fn(usize) -> f64> = match c {
                Column::Float { data, .. } => Box::new(move |i| data[i]),
                Column::Int { data, .. } => Box::new(move |i| data[i] as f64),
                _ => return Err(internal("Ln on a non-numeric column")),
            };
            let src_valid = c.validity();
            let mut data = Vec::with_capacity(m);
            let mut validity = Validity::new();
            for i in 0..m {
                let x = get(i);
                if src_valid.get(i) && x > 0.0 {
                    data.push(x.ln());
                    validity.push(true);
                } else {
                    data.push(0.0);
                    validity.push(false);
                }
            }
            Column::Float { data, validity }
        }
        Func::Lower | Func::Upper => {
            let (d, v) = c.as_strs().map_err(FlowError::Data)?;
            Column::Str {
                data: d
                    .iter()
                    .map(|s| {
                        if func == Func::Lower {
                            s.to_lowercase()
                        } else {
                            s.to_uppercase()
                        }
                    })
                    .collect(),
                validity: v.clone(),
            }
        }
        Func::Length => {
            let (d, v) = c.as_strs().map_err(FlowError::Data)?;
            Column::Int {
                data: d.iter().map(|s| s.len() as i64).collect(),
                validity: v.clone(),
            }
        }
        Func::HourOfDay => {
            let (d, v) = c.as_timestamps().map_err(FlowError::Data)?;
            Column::Int {
                data: d.iter().map(|t| (t / 3_600_000).rem_euclid(24)).collect(),
                validity: v.clone(),
            }
        }
        Func::DayIndex => {
            let (d, v) = c.as_timestamps().map_err(FlowError::Data)?;
            Column::Int {
                data: d.iter().map(|t| t / 86_400_000).collect(),
                validity: v.clone(),
            }
        }
    })
}

/// Cast a column, matching `cast_value` per element: errors surface on the
/// first offending **valid** row (null rows always pass through as null).
fn cast_kernel(c: &Column, to: DataType) -> Result<Column> {
    let m = c.len();
    let cast_err = |v: Value| bad(format!("cannot cast {v:?} to {to}"));
    // A combination `cast_value` rejects outright errors on the first valid
    // row; an all-null column casts to an all-null column without error.
    let reject = |c: &Column| -> Result<Column> {
        let validity = c.validity();
        for i in 0..m {
            if validity.get(i) {
                return Err(cast_err(c.value(i).map_err(FlowError::Data)?));
            }
        }
        Ok(all_null(to, m))
    };
    Ok(match to {
        DataType::Str => {
            let validity = c.validity().clone();
            let data: Vec<String> = match c {
                Column::Str { data, .. } => data.clone(),
                Column::Bool { data, validity } => (0..m)
                    .map(|i| {
                        if validity.get(i) {
                            data[i].to_string()
                        } else {
                            String::new()
                        }
                    })
                    .collect(),
                Column::Int { data, validity } | Column::Timestamp { data, validity } => (0..m)
                    .map(|i| {
                        if validity.get(i) {
                            data[i].to_string()
                        } else {
                            String::new()
                        }
                    })
                    .collect(),
                Column::Float { data, validity } => (0..m)
                    .map(|i| {
                        if validity.get(i) {
                            format!("{}", data[i])
                        } else {
                            String::new()
                        }
                    })
                    .collect(),
            };
            Column::Str { data, validity }
        }
        DataType::Int => match c {
            Column::Int { .. } => c.clone(),
            Column::Timestamp { data, validity } => Column::Int {
                data: data.clone(),
                validity: validity.clone(),
            },
            Column::Float { data, validity } => Column::Int {
                data: data.iter().map(|&x| x as i64).collect(),
                validity: validity.clone(),
            },
            Column::Bool { data, validity } => Column::Int {
                data: data.iter().map(|&b| b as i64).collect(),
                validity: validity.clone(),
            },
            Column::Str { data, validity } => {
                let mut out = Vec::with_capacity(m);
                for (i, s) in data.iter().enumerate().take(m) {
                    if validity.get(i) {
                        out.push(
                            s.trim()
                                .parse::<i64>()
                                .map_err(|_| cast_err(Value::Str(s.clone())))?,
                        );
                    } else {
                        out.push(0);
                    }
                }
                Column::Int {
                    data: out,
                    validity: validity.clone(),
                }
            }
        },
        DataType::Float => match c {
            Column::Float { .. } => c.clone(),
            Column::Int { data, validity } => Column::Float {
                data: data.iter().map(|&i| i as f64).collect(),
                validity: validity.clone(),
            },
            Column::Str { data, validity } => {
                let mut out = Vec::with_capacity(m);
                for (i, s) in data.iter().enumerate().take(m) {
                    if validity.get(i) {
                        out.push(
                            s.trim()
                                .parse::<f64>()
                                .map_err(|_| cast_err(Value::Str(s.clone())))?,
                        );
                    } else {
                        out.push(0.0);
                    }
                }
                Column::Float {
                    data: out,
                    validity: validity.clone(),
                }
            }
            other => return reject(other),
        },
        DataType::Bool => match c {
            Column::Bool { .. } => c.clone(),
            Column::Int { data, validity } => Column::Bool {
                data: data.iter().map(|&i| i != 0).collect(),
                validity: validity.clone(),
            },
            other => return reject(other),
        },
        DataType::Timestamp => match c {
            Column::Timestamp { .. } => c.clone(),
            Column::Int { data, validity } => Column::Timestamp {
                data: data.clone(),
                validity: validity.clone(),
            },
            other => return reject(other),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use toreador_data::schema::Field;
    use toreador_data::table::TableBuilder;

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("i", DataType::Int),
            Field::new("x", DataType::Float),
            Field::new("s", DataType::Str),
            Field::new("b", DataType::Bool),
            Field::new("t", DataType::Timestamp),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        let rows = [
            vec![
                Value::Int(4),
                Value::Float(2.5),
                Value::Str("Hello".into()),
                Value::Bool(true),
                Value::Timestamp(90_000_000),
            ],
            vec![
                Value::Null,
                Value::Float(-1.0),
                Value::Str("42".into()),
                Value::Bool(false),
                Value::Null,
            ],
            vec![
                Value::Int(-7),
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Timestamp(0),
            ],
        ];
        for r in rows {
            b.push_row(r).unwrap();
        }
        b.finish().unwrap()
    }

    /// Row-oracle vs vectorized on one expression over the fixture table.
    fn check(e: Expr) {
        let t = table();
        let bound = BoundExpr::bind(&e, t.schema()).unwrap();
        let row = e.eval_table(&t);
        let vec = bound.eval_column(&t);
        match (row, vec) {
            (Ok(r), Ok(v)) => {
                assert_eq!(r.len(), v.len(), "{e}");
                for i in 0..r.len() {
                    let (rv, vv) = (r.value(i).unwrap(), v.value(i).unwrap());
                    assert!(
                        rv.total_cmp(&vv) == Ordering::Equal,
                        "{e} row {i}: {rv:?} vs {vv:?}"
                    );
                }
            }
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string(), "{e}"),
            (r, v) => panic!("{e}: row={r:?} vec={v:?} disagree"),
        }
    }

    #[test]
    fn kernels_match_row_oracle() {
        check(col("i").add(lit(1i64)));
        check(col("i").mul(col("x")));
        check(col("i").div(lit(0i64)));
        check(col("i").div(col("i")));
        check(col("i").modulo(lit(0i64)));
        check(col("i").modulo(lit(3i64)));
        check(col("x").modulo(col("x")));
        check(col("i").neg());
        check(col("i").gt(lit(0i64)));
        check(col("i").eq(lit(4.0)));
        check(col("x").lt_eq(col("x")));
        check(col("s").eq(lit("Hello")));
        check(lit("Hello").eq(col("s")));
        check(col("b").and(col("i").gt(lit(0i64))));
        check(col("b").or(col("i").is_null()));
        check(col("b").not());
        check(col("i").is_null());
        check(col("x").is_not_null());
        check(Expr::call(Func::Abs, vec![col("i")]));
        check(Expr::call(Func::Sqrt, vec![col("x")]));
        check(Expr::call(Func::Ln, vec![col("x")]));
        check(Expr::call(Func::Upper, vec![col("s")]));
        check(Expr::call(Func::Length, vec![col("s")]));
        check(Expr::call(Func::HourOfDay, vec![col("t")]));
        check(Expr::coalesce(vec![col("i"), lit(9i64)]));
        check(Expr::if_then(col("b"), lit(1i64), lit(0i64)));
        check(Expr::if_then(col("b"), col("i"), col("x")));
        check(col("x").cast(DataType::Int));
        check(col("i").cast(DataType::Str));
        check(col("x").cast(DataType::Str));
        check(col("s").cast(DataType::Int)); // errors in both engines ("Hello")
        check(col("t").cast(DataType::Int));
        check(col("b").cast(DataType::Float)); // invalid combo, first valid row errors
        check(lit(Value::Null).eq(col("s")));
    }

    #[test]
    fn lazy_paths_skip_dead_rows() {
        // The failing cast sits on rows the left side already decides; the
        // row oracle short-circuits there and the vectorized path must too.
        check(
            col("s")
                .eq(lit("42"))
                .and(col("s").cast(DataType::Int).gt(lit(0i64))),
        );
        check(
            col("s")
                .not_eq(lit("42"))
                .or(col("s").cast(DataType::Int).gt(lit(0i64))),
        );
        check(Expr::if_then(
            col("s").eq(lit("42")),
            col("s").cast(DataType::Int),
            lit(0i64),
        ));
        check(Expr::coalesce(vec![
            Expr::if_then(
                col("s").eq(lit("42")),
                lit(Value::Null).cast(DataType::Int),
                col("i"),
            ),
            col("s").cast(DataType::Int),
        ]));
    }

    #[test]
    fn selection_vector_matches_mask() {
        let t = table();
        let e = col("i").gt(lit(0i64));
        let bound = BoundExpr::bind(&e, t.schema()).unwrap();
        let sel = bound.eval_selection(&t).unwrap();
        let mask = e.eval_mask(&t).unwrap();
        let from_mask: Vec<u32> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, &k)| k.then_some(i as u32))
            .collect();
        assert_eq!(sel, from_mask);
        assert_eq!(t.take_sel(&sel).unwrap(), t.filter(&mask).unwrap());
    }

    #[test]
    fn bind_rejects_what_inference_rejects() {
        let s = table().schema().clone();
        for e in [
            col("missing"),
            col("s").add(lit(1i64)),
            col("i").and(col("b")),
            Expr::coalesce(vec![]),
            Expr::if_then(col("i"), lit(1i64), lit(2i64)),
        ] {
            assert_eq!(
                e.infer_type(&s).is_err(),
                BoundExpr::bind(&e, &s).is_err(),
                "{e}"
            );
            assert!(BoundExpr::bind(&e, &s).is_err(), "{e}");
        }
    }

    #[test]
    fn scalar_constant_subtrees_stay_scalar() {
        let t = table();
        let e = lit(2i64).add(lit(3i64));
        let bound = BoundExpr::bind(&e, t.schema()).unwrap();
        let b = bound.eval_cols(t.columns(), t.num_rows(), None).unwrap();
        assert!(matches!(b, Batch::Scalar(Value::Int(5))));
        // Short-circuit on a deciding constant left operand skips the
        // fallible right side entirely.
        let e = lit(false).and(lit("xyz").cast(DataType::Int).gt(lit(0i64)));
        let bound = BoundExpr::bind(&e, t.schema()).unwrap();
        let b = bound.eval_cols(t.columns(), t.num_rows(), None).unwrap();
        assert!(matches!(b, Batch::Scalar(Value::Bool(false))));
    }
}
