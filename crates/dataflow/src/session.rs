//! The engine session: dataset registry + run entry point.
//!
//! [`Engine`] is the facade the rest of the workspace uses: register named
//! datasets, build a [`Dataflow`], call [`Engine::run`], get a table plus a
//! full [`RunMetrics`] record. One `Engine` can serve many runs; datasets
//! are immutable once registered.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use toreador_data::partition::PartitionedTable;
use toreador_data::table::Table;

use crate::checkpoint::{
    config_fingerprint, input_fingerprint, plan_fingerprint, CheckpointManifest, CheckpointSpec,
    RunCheckpoint,
};
use crate::error::{FlowError, Result};
use crate::fault::FaultPlan;
use crate::logical::{Dataflow, LogicalPlan};
use crate::metrics::{MetricsCollector, RunMetrics};
use crate::optimizer::{optimize, OptimizerConfig};
use crate::physical::{execute, ExecConfig, ExecContext};
use crate::resilience::{ResilienceConfig, RunControl};
use crate::scheduler::SchedulerConfig;
use crate::trace::RunTrace;

/// Engine configuration: threads, partitions, optimiser, resilience.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    pub threads: usize,
    pub partitions: usize,
    pub optimizer: OptimizerConfig,
    pub partial_aggregation: bool,
    /// Evaluate expressions with the vectorized batch engine (ablation knob:
    /// `false` falls back to the row-at-a-time oracle interpreter).
    pub vectorized: bool,
    /// Fuse Filter→Project→Sample chains into one per-partition pass
    /// (only effective when `vectorized` is on).
    pub fuse_narrow: bool,
    /// Retry/deadline/speculation policy and the chaos plan for this engine.
    pub resilience: ResilienceConfig,
    /// Run fused narrow chains and partial-aggregation map waves through
    /// the morsel-driven pipelined scheduler ([`crate::morsel`]); `false`
    /// keeps every wave on the stage-barrier path (the differential
    /// oracle). Waves with a deadline or speculation policy always use the
    /// barrier path regardless of this knob.
    pub pipelined: bool,
    /// Target rows per morsel for the pipelined path (clamped to >= 1).
    pub morsel_rows: usize,
    /// When set, every run checkpoints completed shuffle waves here, and
    /// resuming specs restore them (see [`crate::checkpoint`]).
    pub checkpoint: Option<CheckpointSpec>,
    /// External run control. When set, the execution context adopts this
    /// handle instead of minting its own, so whoever kept a clone can
    /// cancel the run from another thread (a serving daemon draining on
    /// SIGTERM, a session being closed). `None` — the default — keeps the
    /// control private to the run.
    pub control: Option<RunControl>,
    /// When set, wide operators (shuffle staging and partial-aggregation
    /// map output) spill runs to paged files once their working set
    /// exceeds this many bytes, and merge them back on read
    /// (see [`crate::pager`]). `None` — the default — keeps everything in
    /// memory. Spilling never changes results: output is byte-identical to
    /// the in-memory path.
    pub memory_budget_bytes: Option<u64>,
    /// Pin the spill directory. `None` — the default — spills next to the
    /// checkpoint when there is one, else into a process-unique temp dir.
    /// Set it to place spill I/O under a known prefix (the disk-chaos
    /// harness registers an injector over exactly this directory).
    pub spill_dir: Option<PathBuf>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: crate::scheduler::default_threads(),
            partitions: 4,
            optimizer: OptimizerConfig::default(),
            partial_aggregation: true,
            vectorized: true,
            fuse_narrow: true,
            resilience: ResilienceConfig::none(),
            pipelined: true,
            morsel_rows: 4096,
            checkpoint: None,
            control: None,
            memory_budget_bytes: None,
            spill_dir: None,
        }
    }
}

impl EngineConfig {
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    pub fn with_partitions(mut self, partitions: usize) -> Self {
        self.partitions = partitions.max(1);
        self
    }

    pub fn with_optimizer(mut self, optimizer: OptimizerConfig) -> Self {
        self.optimizer = optimizer;
        self
    }

    /// Legacy shim: crash faults at the plan's rate with immediate retries
    /// up to its attempt budget. Prefer [`Self::with_resilience`].
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.resilience = ResilienceConfig::from_fault_plan(&faults);
        self
    }

    pub fn with_resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.resilience = resilience;
        self
    }

    pub fn with_partial_aggregation(mut self, on: bool) -> Self {
        self.partial_aggregation = on;
        self
    }

    pub fn with_vectorized(mut self, on: bool) -> Self {
        self.vectorized = on;
        self
    }

    pub fn with_fuse_narrow(mut self, on: bool) -> Self {
        self.fuse_narrow = on;
        self
    }

    pub fn with_pipelined(mut self, on: bool) -> Self {
        self.pipelined = on;
        self
    }

    pub fn with_morsel_rows(mut self, rows: usize) -> Self {
        self.morsel_rows = rows.max(1);
        self
    }

    pub fn with_checkpoint(mut self, spec: CheckpointSpec) -> Self {
        self.checkpoint = Some(spec);
        self
    }

    /// Adopt an external [`RunControl`]: the caller keeps a clone and can
    /// cancel this engine's runs from any thread.
    pub fn with_control(mut self, control: RunControl) -> Self {
        self.control = Some(control);
        self
    }

    /// Cap the in-memory working set of wide operators at `bytes`; runs
    /// beyond the budget spill to paged files and merge back on read.
    pub fn with_memory_budget(mut self, bytes: u64) -> Self {
        self.memory_budget_bytes = Some(bytes);
        self
    }

    /// Spill into `dir` instead of the derived default location.
    pub fn with_spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    fn exec_config(&self) -> ExecConfig {
        ExecConfig {
            scheduler: SchedulerConfig {
                threads: self.threads,
                resilience: self.resilience.clone(),
            },
            partitions: self.partitions,
            partial_aggregation: self.partial_aggregation,
            vectorized: self.vectorized,
            fuse_narrow: self.fuse_narrow,
            pipelined: self.pipelined,
            morsel_rows: self.morsel_rows,
            control: self.control.clone(),
            memory_budget_bytes: self.memory_budget_bytes,
            // An explicit spill dir wins; otherwise spill next to the
            // checkpoint when there is one (so a kill mid-spill is swept
            // on resume); otherwise ExecContext derives a process-unique
            // temp dir.
            spill_dir: self.spill_dir.clone().or_else(|| {
                self.checkpoint
                    .as_ref()
                    .map(|spec| spec.dir().join("spill"))
            }),
        }
    }
}

/// The result of one run: data, metrics, trace, and the plan that ran.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub table: Table,
    pub metrics: RunMetrics,
    /// The full flight-recorder journal the metrics were derived from.
    pub trace: RunTrace,
    /// The optimised plan (equal to the input plan when optimisation is off).
    pub executed_plan: Arc<LogicalPlan>,
}

/// A dataflow engine session.
#[derive(Debug, Default)]
pub struct Engine {
    config: EngineConfig,
    datasets: HashMap<String, PartitionedTable>,
}

impl Engine {
    pub fn new(config: EngineConfig) -> Self {
        Engine {
            config,
            datasets: HashMap::new(),
        }
    }

    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Register a table under a name, splitting it to the configured
    /// partition count. Re-registering a name replaces the dataset.
    pub fn register(&mut self, name: impl Into<String>, table: Table) -> Result<()> {
        let parts = PartitionedTable::split(table, self.config.partitions)?;
        self.datasets.insert(name.into(), parts);
        Ok(())
    }

    /// Register an already-partitioned dataset (keeps its partitioning).
    pub fn register_partitioned(&mut self, name: impl Into<String>, parts: PartitionedTable) {
        self.datasets.insert(name.into(), parts);
    }

    /// Names of registered datasets, sorted.
    pub fn dataset_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.datasets.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// The schema of a registered dataset.
    pub fn dataset_schema(&self, name: &str) -> Result<&toreador_data::schema::Schema> {
        self.datasets
            .get(name)
            .map(|p| p.schema())
            .ok_or_else(|| FlowError::UnknownDataset(name.to_owned()))
    }

    /// Total rows of a registered dataset.
    pub fn dataset_rows(&self, name: &str) -> Result<usize> {
        self.datasets
            .get(name)
            .map(|p| p.total_rows())
            .ok_or_else(|| FlowError::UnknownDataset(name.to_owned()))
    }

    /// Start a flow over a registered dataset (schema comes from the registry).
    pub fn flow(&self, dataset: &str) -> Result<Dataflow> {
        Ok(Dataflow::scan(
            dataset,
            self.dataset_schema(dataset)?.clone(),
        ))
    }

    /// Optimise and execute, collecting the result into one table. Honours
    /// [`EngineConfig::checkpoint`] when set (including its resume flag).
    pub fn run(&self, flow: &Dataflow) -> Result<RunResult> {
        self.run_with(flow, self.config.checkpoint.clone())
    }

    /// Run `flow` while checkpointing every completed shuffle wave under
    /// `run_id` in the configured checkpoint root.
    pub fn run_checkpointed(
        &self,
        flow: &Dataflow,
        run_id: impl Into<String>,
    ) -> Result<RunResult> {
        let spec = CheckpointSpec::new(self.checkpoint_root()?, run_id);
        self.run_with(flow, Some(spec))
    }

    /// Resume run `run_id` from its checkpoints: validate the stored
    /// manifest against the recompiled plan (a mismatch refuses with
    /// [`FlowError::StaleCheckpoint`]), restore every completed wave
    /// without recomputing it, and execute only the remaining waves. If no
    /// checkpoint exists yet for `run_id`, this starts a fresh checkpointed
    /// run — resuming a run that never got to checkpoint anything is just
    /// running it.
    pub fn resume(&self, flow: &Dataflow, run_id: impl Into<String>) -> Result<RunResult> {
        let spec = CheckpointSpec::resume(self.checkpoint_root()?, run_id);
        self.run_with(flow, Some(spec))
    }

    fn checkpoint_root(&self) -> Result<std::path::PathBuf> {
        self.config
            .checkpoint
            .as_ref()
            .map(|s| s.root.clone())
            .ok_or_else(|| {
                FlowError::Checkpoint(
                    "engine has no checkpoint root configured (EngineConfig::with_checkpoint)"
                        .to_owned(),
                )
            })
    }

    /// The run identity a checkpoint must match to be resumable: optimized
    /// plan, wave-shaping config knobs, and scanned-input fingerprints.
    fn manifest_for(
        &self,
        optimized: &LogicalPlan,
        spec: &CheckpointSpec,
    ) -> Result<CheckpointManifest> {
        let scanned: Vec<String> = optimized
            .scanned_datasets()
            .into_iter()
            .map(str::to_owned)
            .collect();
        Ok(CheckpointManifest {
            format_version: 1,
            run_id: spec.run_id.clone(),
            plan_fingerprint: plan_fingerprint(&optimized.explain()),
            config_fingerprint: config_fingerprint(
                self.config.partitions,
                self.config.partial_aggregation,
                self.config.vectorized,
                self.config.fuse_narrow,
                self.config.pipelined,
            ),
            input_fingerprint: input_fingerprint(&self.datasets, &scanned)?,
            chaos_seed: self.config.resilience.chaos.seed,
            partitions: self.config.partitions,
        })
    }

    fn run_with(&self, flow: &Dataflow, checkpoint: Option<CheckpointSpec>) -> Result<RunResult> {
        // Validate scans before doing any work.
        for ds in flow.plan().scanned_datasets() {
            if !self.datasets.contains_key(ds) {
                return Err(FlowError::UnknownDataset(ds.to_owned()));
            }
        }
        let started = Instant::now();
        let optimized = optimize(flow.plan(), &self.config.optimizer)?;
        let metrics = MetricsCollector::new();
        let mut exec_config = self.config.exec_config();
        if let Some(spec) = &checkpoint {
            // run_checkpointed / resume pass a spec the engine config never
            // saw; anchor the spill scratch to the run actually executing.
            exec_config.spill_dir = Some(spec.dir().join("spill"));
        }
        let mut ctx = ExecContext::new(&self.datasets, exec_config, &metrics);
        if let Some(spec) = &checkpoint {
            let manifest = self.manifest_for(&optimized, spec)?;
            let ck = if spec.resume && RunCheckpoint::manifest_exists(spec) {
                RunCheckpoint::resume(spec, &manifest)?
            } else {
                RunCheckpoint::create(spec, &manifest)?
            };
            ctx = ctx.with_checkpoint(ck);
        }
        let out = execute(&ctx, &optimized)?;
        let partitions = out.num_partitions() as u64;
        let table = out.collect()?;
        let run_metrics = metrics.finish(started.elapsed(), table.num_rows() as u64, partitions);
        let trace = metrics.trace().snapshot();
        Ok(RunResult {
            table,
            metrics: run_metrics,
            trace,
            executed_plan: optimized,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::logical::{AggExpr, AggFunc};
    use toreador_data::generate::{clickstream, clickstream_schema};

    fn engine() -> Engine {
        let mut e = Engine::new(EngineConfig::default().with_threads(2));
        e.register("clicks", clickstream(2_000, 42)).unwrap();
        e
    }

    #[test]
    fn end_to_end_revenue_by_category() {
        let e = engine();
        let flow = e
            .flow("clicks")
            .unwrap()
            .filter(col("action").eq(lit("purchase")))
            .unwrap()
            .aggregate(
                &["category"],
                vec![AggExpr::new(AggFunc::Sum, "price", "revenue")],
            )
            .unwrap()
            .sort(&["revenue"], true)
            .unwrap();
        let r = e.run(&flow).unwrap();
        assert!(r.table.num_rows() > 0);
        assert!(r.metrics.total_elapsed_us > 0);
        assert!(r.metrics.total_shuffle_bytes() > 0);
        // The flight recorder saw the whole run: its derived metrics are the
        // metrics the run reported.
        assert!(!r.trace.events.is_empty());
        assert_eq!(
            r.trace.derive_metrics(
                r.metrics.total_elapsed_us,
                r.metrics.result_rows,
                r.metrics.result_partitions
            ),
            r.metrics
        );
        // Revenue column is descending.
        let rev = r.table.column("revenue").unwrap();
        let vals: Vec<f64> = rev.iter_values().map(|v| v.as_float().unwrap()).collect();
        for w in vals.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn optimized_and_unoptimized_agree() {
        let e = engine();
        let flow = e
            .flow("clicks")
            .unwrap()
            .project(vec![
                ("act", col("action")),
                ("p", col("price")),
                ("c", col("country")),
            ])
            .unwrap()
            .filter(col("act").eq(lit("cart")).and(lit(true)))
            .unwrap()
            .filter(col("p").gt(lit(10.0)))
            .unwrap()
            .sort(&["p"], false)
            .unwrap();
        let mut no_opt = Engine::new(
            EngineConfig::default()
                .with_threads(2)
                .with_optimizer(OptimizerConfig::disabled()),
        );
        no_opt.register("clicks", clickstream(2_000, 42)).unwrap();
        let a = e.run(&flow).unwrap();
        let b = no_opt.run(&flow).unwrap();
        assert_eq!(a.table, b.table);
        // The optimised plan actually differs.
        assert_ne!(&a.executed_plan, flow.plan());
        assert_eq!(&b.executed_plan, flow.plan());
    }

    #[test]
    fn flow_unknown_dataset_fails_fast() {
        let e = engine();
        assert!(e.flow("nope").is_err());
        let other = Dataflow::scan("ghost", clickstream_schema());
        assert!(matches!(e.run(&other), Err(FlowError::UnknownDataset(_))));
    }

    #[test]
    fn registry_reports_names_schema_rows() {
        let e = engine();
        assert_eq!(e.dataset_names(), vec!["clicks"]);
        assert_eq!(e.dataset_rows("clicks").unwrap(), 2_000);
        assert!(e.dataset_schema("clicks").unwrap().contains("price"));
    }

    #[test]
    fn faulty_engine_still_completes_with_retries() {
        let mut e = Engine::new(
            EngineConfig::default()
                .with_threads(4)
                .with_faults(FaultPlan::with_rate(0.3, 5, 10)),
        );
        e.register("clicks", clickstream(1_000, 1)).unwrap();
        let flow = e
            .flow("clicks")
            .unwrap()
            .aggregate(
                &["country"],
                vec![AggExpr::new(AggFunc::Count, "event_id", "n")],
            )
            .unwrap();
        let r = e.run(&flow).unwrap();
        assert!(r.metrics.task_retries > 0);
        let total: i64 = r
            .table
            .column("n")
            .unwrap()
            .iter_values()
            .map(|v| v.as_int().unwrap())
            .sum();
        assert_eq!(total, 1_000);
    }

    #[test]
    fn chaotic_engine_matches_fault_free_results() {
        use crate::fault::ChaosPlan;
        use crate::resilience::{ResilienceConfig, RetryPolicy};

        let flow_of = |e: &Engine| {
            e.flow("clicks")
                .unwrap()
                .aggregate(
                    &["country"],
                    vec![AggExpr::new(AggFunc::Count, "event_id", "n")],
                )
                .unwrap()
                .sort(&["country"], false)
                .unwrap()
        };
        let mut calm = Engine::new(EngineConfig::default().with_threads(4));
        calm.register("clicks", clickstream(1_000, 3)).unwrap();
        let baseline = calm.run(&flow_of(&calm)).unwrap();

        let chaos = ChaosPlan::crashes(0.3, 5)
            .with_panic_rate(0.05)
            .with_delays(0.1, 300);
        let mut wild = Engine::new(
            EngineConfig::default().with_threads(4).with_resilience(
                ResilienceConfig::none()
                    .with_retry(RetryPolicy::immediate(12))
                    .with_chaos(chaos),
            ),
        );
        wild.register("clicks", clickstream(1_000, 3)).unwrap();
        let r = wild.run(&flow_of(&wild)).unwrap();
        assert_eq!(r.table, baseline.table, "chaos must not change results");
        let totals = r.trace.resilience_totals();
        assert!(totals.retries > 0, "the chaos plan must have bitten");
    }

    #[test]
    fn budgeted_runs_spill_and_match_in_memory_byte_for_byte() {
        let flow_of = |e: &Engine| {
            e.flow("clicks")
                .unwrap()
                .aggregate(
                    &["event_id"],
                    vec![
                        AggExpr::new(AggFunc::Count, "event_id", "n"),
                        AggExpr::new(AggFunc::Sum, "price", "revenue"),
                    ],
                )
                .unwrap()
                .sort(&["event_id"], false)
                .unwrap()
        };
        // High-cardinality group key: the map output is ~as big as the
        // input, so a small budget forces both aggregation-side and
        // shuffle-side spills.
        let mut calm = Engine::new(EngineConfig::default().with_threads(2));
        calm.register("clicks", clickstream(4_000, 7)).unwrap();
        let baseline = calm.run(&flow_of(&calm)).unwrap();
        assert!(baseline.trace.spill_totals().is_zero());

        let mut tight = Engine::new(
            EngineConfig::default()
                .with_threads(2)
                .with_memory_budget(16 << 10),
        );
        tight.register("clicks", clickstream(4_000, 7)).unwrap();
        let spilled = tight.run(&flow_of(&tight)).unwrap();
        assert_eq!(
            spilled.table, baseline.table,
            "spilling must not change results"
        );
        let totals = spilled.trace.spill_totals();
        assert!(totals.spills > 0, "budget must have bitten: {totals:?}");
        assert!(totals.merges > 0, "{totals:?}");
        assert!(
            totals.peak_pool_bytes <= 32 << 10,
            "pool residency floors at one page frame: {totals:?}"
        );
        // A huge budget never spills and takes the identical path.
        let mut roomy = Engine::new(
            EngineConfig::default()
                .with_threads(2)
                .with_memory_budget(1 << 30),
        );
        roomy.register("clicks", clickstream(4_000, 7)).unwrap();
        let r = roomy.run(&flow_of(&roomy)).unwrap();
        assert_eq!(r.table, baseline.table);
        assert!(r.trace.spill_totals().is_zero());
    }

    #[test]
    fn run_results_are_deterministic() {
        let e = engine();
        let flow = e
            .flow("clicks")
            .unwrap()
            .aggregate(
                &["category"],
                vec![
                    AggExpr::new(AggFunc::Count, "event_id", "n"),
                    AggExpr::new(AggFunc::Mean, "price", "avg_price"),
                ],
            )
            .unwrap()
            .sort(&["category"], false)
            .unwrap();
        let a = e.run(&flow).unwrap();
        let b = e.run(&flow).unwrap();
        assert_eq!(a.table, b.table);
    }
}
