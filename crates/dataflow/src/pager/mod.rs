//! Out-of-core paging: fixed-size page files, a pinning buffer pool, and
//! the spill manager operators hand over-budget runs to.
//!
//! The TOREADOR paper scouts campaigns over datasets that do not fit in
//! RAM; this module is the engine's answer. It has three layers:
//!
//! 1. [`file`] — the paged on-disk columnar format: fixed [`PAGE_SIZE`]
//!    slots, each CRC32-framed exactly like the checkpoint wave files
//!    (the frame and lane codecs live in [`crate::codec`], shared with
//!    checkpointing so the two stay byte-identical by construction). Page
//!    0 is a directory naming the row count, schema and per-lane extents;
//!    data pages hold each lane's cells contiguously.
//! 2. [`pool`] — the buffer pool: a bounded set of page frames with
//!    pinning, clock eviction (second-chance, skipping pinned frames),
//!    dirty write-back, and journalled fault/eviction events from which
//!    the bounded-memory proof reads peak residency.
//! 3. [`spill`] — the [`SpillManager`]: turns a [`Table`] run into a page
//!    file through the pool (temp-write + fsync + rename + dir-fsync, so
//!    a crash never leaves a readable half-file), reads runs back, and
//!    sweeps everything on release/drop.
//!
//! The memory budget threads in from `ExecConfig::memory_budget_bytes`:
//! operators compare their staging size against
//! [`SpillManager::budget_bytes`] and spill whole runs; the pool
//! independently bounds page residency to the same budget (floored at one
//! page).
//!
//! [`Table`]: toreador_data::table::Table

pub mod file;
pub mod pool;
pub mod spill;

pub use file::{LaneExtent, PageDirectory, PageFile, PAGE_PAYLOAD, PAGE_SIZE};
pub use pool::{BufferPool, FileId, PinnedPage, PoolStats};
pub use spill::{SpillHandle, SpillManager, SPILL_OP_AGGREGATE, SPILL_OP_SHUFFLE};
