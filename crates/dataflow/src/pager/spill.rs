//! The spill manager: over-budget runs become page files, read back and
//! merged when their partition finalises.
//!
//! One [`SpillManager`] serves one run. Its directory is derived from the
//! run's checkpoint directory when checkpointing is on (`<ckpt>/spill`),
//! or a process-unique temp directory otherwise; constructing a manager
//! **sweeps** any stale `*.pages` / `*.tmp` files left by a killed
//! predecessor, and dropping it removes the directory outright — spill
//! files are scratch, never a durability surface. Each spilled run is
//! written through the shared [`BufferPool`], flushed, and published with
//! the temp-write + fsync + rename + dir-fsync discipline, so a kill at
//! any instant leaves either a complete published run (swept on the next
//! start) or a `.tmp` orphan (also swept) — never a readable half-file.
//!
//! Spilled rows round-trip through the lane codec ([`crate::codec`]) that
//! checkpointing uses, so a spilled run is byte-identical to a
//! checkpointed partition of the same rows by construction.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::{BufMut, BytesMut};

use toreador_store::io::io_for;

use toreador_data::table::{Table, TableBuilder};
use toreador_data::value::{Row, Value};

use crate::codec::{decode_lane, encode_lane, lanes};
use crate::error::{FlowError, Result};
use crate::trace::TraceJournal;

use super::file::{LaneExtent, PageDirectory, PageFile, PAGE_PAYLOAD};
use super::pool::{BufferPool, FileId, PoolStats};

/// Operator family tags carried by `SpillStarted` / `SpillMerged` events.
pub const SPILL_OP_SHUFFLE: &str = "shuffle";
pub const SPILL_OP_AGGREGATE: &str = "aggregate";

/// A spilled run: the ticket [`SpillManager::read_back`] redeems.
#[derive(Debug)]
pub struct SpillHandle {
    file: FileId,
    path: PathBuf,
    rows: usize,
    bytes: u64,
}

impl SpillHandle {
    /// Rows in the spilled run.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Encoded payload bytes of the spilled run (excluding page framing
    /// and padding) — the number the shuffle's `bytes_moved` accounting
    /// and the merge trace events report.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// Owns one run's spill directory, page files and buffer pool.
#[derive(Debug)]
pub struct SpillManager {
    budget: u64,
    dir: PathBuf,
    pool: BufferPool,
    seq: AtomicU64,
}

impl SpillManager {
    /// A manager spilling into `dir` under `budget` bytes. The directory
    /// is not created until the first spill; stale spill files from a
    /// killed predecessor are swept immediately.
    pub fn new(budget: u64, dir: PathBuf) -> SpillManager {
        sweep(&dir);
        SpillManager {
            budget,
            dir,
            pool: BufferPool::new(budget),
            seq: AtomicU64::new(0),
        }
    }

    /// The memory budget operators compare their staging size against.
    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }

    /// The spill directory (created lazily on first spill).
    pub fn dir(&self) -> &PathBuf {
        &self.dir
    }

    /// The shared buffer pool (for residency and hit/fault statistics).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Pool counters: hits, faults, evictions, peak residency.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Spill one run: encode `t` lane by lane into a fresh page file
    /// through the pool, then flush and publish it. The caller records the
    /// `SpillStarted` event — it knows which operator and partition the
    /// run belongs to.
    pub fn spill_table(&self, t: &Table, journal: &TraceJournal) -> Result<SpillHandle> {
        io_for(&self.dir).create_dir_all(&self.dir).map_err(|e| {
            FlowError::Spill(format!("create spill dir {}: {e}", self.dir.display()))
        })?;
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let path = self.dir.join(format!("run-{seq:06}.pages"));
        let file = Arc::new(PageFile::create(&path)?);
        let id = self.pool.register(file.clone());
        // Any failure past this point must unregister the file from the
        // pool and remove its `.tmp` — a failed spill (ENOSPC, EIO) leaves
        // no orphan for the next sweep and no dangling pool entry.
        let payload_bytes = self
            .write_run(t, id, journal)
            .and_then(|bytes| file.finalize().map(|_| bytes))
            .map_err(|e| {
                self.pool.drop_file(id);
                file.discard();
                e
            })?;
        Ok(SpillHandle {
            file: id,
            path,
            rows: t.num_rows(),
            bytes: payload_bytes,
        })
    }

    /// Encode `t` lane by lane into pages of file `id`, flush, and return
    /// the total encoded payload bytes. Split out of
    /// [`SpillManager::spill_table`] so its caller can clean up the pool
    /// registration and temp file on any error.
    fn write_run(&self, t: &Table, id: FileId, journal: &TraceJournal) -> Result<u64> {
        let rows = t.num_rows();
        let table_lanes = lanes(t);
        let mut extents = Vec::with_capacity(table_lanes.len());
        let mut next_page: u32 = 1; // page 0 is the directory
        let mut payload_bytes = 0u64;
        for lane in &table_lanes {
            let mut buf = BytesMut::new();
            encode_lane(lane, rows, &mut buf);
            let bytes = buf.len() as u64;
            let first_page = next_page;
            let mut pages = 0u32;
            for chunk in buf.as_slice().chunks(PAGE_PAYLOAD) {
                self.pool.write(id, next_page, chunk.to_vec(), journal)?;
                next_page += 1;
                pages += 1;
            }
            payload_bytes += bytes;
            extents.push(LaneExtent {
                first_page,
                pages,
                bytes,
            });
        }
        let directory = PageDirectory {
            rows,
            schema: t.schema().clone(),
            lanes: extents,
        };
        self.pool.write(id, 0, directory.to_payload()?, journal)?;
        self.pool.flush_file(id)?;
        Ok(payload_bytes)
    }

    /// Read a spilled run back: pin the directory, reassemble each lane
    /// from its extent pages, decode, and rebuild the table row by row —
    /// in the exact row order it was spilled with.
    pub fn read_back(&self, handle: &SpillHandle, journal: &TraceJournal) -> Result<Table> {
        let directory = {
            let page = self.pool.pin(handle.file, 0, journal)?;
            PageDirectory::from_payload(&page)?
        };
        let mut columns: Vec<std::vec::IntoIter<Value>> = Vec::with_capacity(directory.lanes.len());
        for extent in &directory.lanes {
            let mut buf = BytesMut::with_capacity(extent.bytes as usize);
            for p in 0..extent.pages {
                let page = self.pool.pin(handle.file, extent.first_page + p, journal)?;
                buf.put_slice(&page);
            }
            if buf.len() as u64 != extent.bytes {
                return Err(FlowError::Spill(format!(
                    "corrupt page file {}: lane extent carries {} bytes, directory says {}",
                    handle.path.display(),
                    buf.len(),
                    extent.bytes
                )));
            }
            columns.push(decode_lane(directory.rows, buf.freeze())?.into_iter());
        }
        let mut builder = TableBuilder::with_capacity(directory.schema.clone(), directory.rows);
        for _ in 0..directory.rows {
            let row: Row = columns
                .iter_mut()
                .map(|c| c.next().expect("extent length matches row count"))
                .collect();
            builder.push_row(row)?;
        }
        Ok(builder.finish()?)
    }

    /// A spilled run was merged into its partition's output: drop its
    /// frames and delete its file — spill files never outlive their merge.
    pub fn release(&self, handle: SpillHandle) {
        self.pool.drop_file(handle.file);
        let _ = io_for(&handle.path).remove_file(&handle.path);
    }
}

impl Drop for SpillManager {
    fn drop(&mut self) {
        let _ = io_for(&self.dir).remove_dir_all(&self.dir);
    }
}

/// Remove stale spill artifacts (`*.pages` and `*.tmp`) from `dir`. Errors
/// are ignored: a missing directory simply means a clean start, and a
/// sweep failure surfaces later as a create/write failure with context.
fn sweep(dir: &std::path::Path) {
    let io = io_for(dir);
    let Ok(entries) = io.list_dir(dir) else {
        return;
    };
    for path in entries {
        let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
            continue;
        };
        if name.ends_with(".pages") || name.ends_with(".tmp") {
            let _ = io.remove_file(&path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use std::fs;

    use toreador_data::generate;

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("toreador-pager-spill-{}-{tag}", std::process::id()))
    }

    #[test]
    fn spill_and_read_back_round_trips_exactly() {
        let dir = temp_dir("roundtrip");
        let t = generate::clickstream(700, 13);
        let manager = SpillManager::new(1 << 20, dir.clone());
        let journal = TraceJournal::new();
        let handle = manager.spill_table(&t, &journal).unwrap();
        assert!(handle.bytes() > 0);
        assert_eq!(handle.rows(), 700);
        let back = manager.read_back(&handle, &journal).unwrap();
        assert_eq!(back, t, "round trip must be value- and order-identical");
        // The published file exists, with no temp residue.
        assert!(handle.path.exists());
        assert!(!handle.path.with_extension("pages.tmp").exists());
        manager.release(handle);
        drop(manager);
        assert!(!dir.exists(), "drop removes the spill dir");
    }

    #[test]
    fn release_deletes_the_run_file() {
        let dir = temp_dir("release");
        let t = generate::clickstream(50, 5);
        let manager = SpillManager::new(1 << 20, dir.clone());
        let journal = TraceJournal::new();
        let handle = manager.spill_table(&t, &journal).unwrap();
        let path = handle.path.clone();
        assert!(path.exists());
        manager.release(handle);
        assert!(!path.exists(), "release must delete the spill file");
    }

    #[test]
    fn tiny_pool_still_round_trips_with_bounded_residency() {
        let dir = temp_dir("tiny");
        // Budget zero: the pool floors at one 32 KiB frame, so a
        // multi-page run must churn through evictions and faults.
        let t = generate::clickstream(2_000, 21);
        let manager = SpillManager::new(0, dir.clone());
        let journal = TraceJournal::new();
        let handle = manager.spill_table(&t, &journal).unwrap();
        let back = manager.read_back(&handle, &journal).unwrap();
        assert_eq!(back, t);
        let stats = manager.pool_stats();
        assert!(stats.evictions > 0, "{stats:?}");
        assert!(stats.faults > 0, "{stats:?}");
        assert_eq!(
            stats.peak_bytes,
            manager.pool().capacity_bytes(),
            "one-frame pool peaks at exactly one frame"
        );
        // The journalled invariant the acceptance criteria read: resident
        // pool never exceeded its capacity at any fault or eviction.
        let trace = journal.snapshot();
        assert!(trace.spill_totals().peak_pool_bytes <= manager.pool().capacity_bytes());
        drop(manager);
        assert!(!dir.exists());
    }

    #[test]
    fn new_manager_sweeps_stale_spill_files() {
        let dir = temp_dir("sweep");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("run-000007.pages"), b"stale").unwrap();
        fs::write(dir.join("run-000008.pages.tmp"), b"orphan").unwrap();
        fs::write(dir.join("KEEP.txt"), b"unrelated").unwrap();
        let manager = SpillManager::new(1 << 20, dir.clone());
        assert!(!dir.join("run-000007.pages").exists(), "stale run swept");
        assert!(!dir.join("run-000008.pages.tmp").exists(), "orphan swept");
        assert!(dir.join("KEEP.txt").exists(), "unrelated files untouched");
        drop(manager);
        let _ = fs::remove_dir_all(&dir);
    }
}
