//! The paged on-disk columnar format.
//!
//! A page file is a sequence of fixed-size [`PAGE_SIZE`] slots. Each slot
//! holds one CRC32 frame — `[payload_len u32 LE][crc32 u32 LE][payload]`,
//! the same layout as a checkpoint wave frame ([`crate::codec`]) — zero-
//! padded to the slot boundary so page `n` always starts at byte
//! `n * PAGE_SIZE`. Page 0 is the directory: a magic tag plus a JSON
//! [`PageDirectory`] naming the row count, schema and per-lane extents.
//! Pages 1.. hold the lane extents: each column's cells encoded
//! contiguously with [`crate::codec::encode_lane`], split across as many
//! pages as they need.
//!
//! Files are written to `<path>.tmp` and only renamed to `<path>` by
//! [`PageFile::finalize`] after an fsync (followed by a directory fsync) —
//! the same publish discipline as checkpoint waves and the store WAL, so a
//! crash mid-spill leaves at most a `.tmp` orphan that the next
//! [`super::SpillManager`] sweeps, never a readable half-file.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use toreador_data::schema::Schema;

use toreador_store::io::{io_for, StorageFile, StorageIo};

use crate::codec::crc32;
use crate::error::{FlowError, Result};

/// Fixed page-slot size. 32 KiB holds a few thousand encoded cells per
/// page while keeping the minimum pool (one frame) small.
pub const PAGE_SIZE: usize = 32 << 10;

/// Bytes of payload a page slot can carry after its 8-byte frame header.
pub const PAGE_PAYLOAD: usize = PAGE_SIZE - 8;

/// Leading bytes of the directory page.
const PAGE_MAGIC: &[u8; 8] = b"TORPAGE1";

fn spill_err(msg: String) -> FlowError {
    FlowError::Spill(msg)
}

/// Where one lane's cells live in the file: `pages` consecutive page slots
/// starting at `first_page`, carrying `bytes` of encoded payload in total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaneExtent {
    pub first_page: u32,
    pub pages: u32,
    pub bytes: u64,
}

/// The directory stored in page 0: everything needed to rebuild the table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PageDirectory {
    pub rows: usize,
    pub schema: Schema,
    pub lanes: Vec<LaneExtent>,
}

impl PageDirectory {
    /// Serialise as the page-0 payload: magic + JSON. Fails if the
    /// directory would not fit in one page (a schema would need hundreds
    /// of columns to get close).
    pub fn to_payload(&self) -> Result<Vec<u8>> {
        let mut payload = PAGE_MAGIC.to_vec();
        let json = serde_json::to_string(self)
            .map_err(|e| spill_err(format!("encode page directory: {e}")))?;
        payload.extend_from_slice(json.as_bytes());
        if payload.len() > PAGE_PAYLOAD {
            return Err(spill_err(format!(
                "page directory too large: {} bytes over the {PAGE_PAYLOAD} byte page payload",
                payload.len()
            )));
        }
        Ok(payload)
    }

    /// Parse a page-0 payload, checking the magic.
    pub fn from_payload(payload: &[u8]) -> Result<PageDirectory> {
        if payload.len() < PAGE_MAGIC.len() || &payload[..PAGE_MAGIC.len()] != PAGE_MAGIC {
            return Err(spill_err("bad page-file magic".to_owned()));
        }
        let json = std::str::from_utf8(&payload[PAGE_MAGIC.len()..])
            .map_err(|e| spill_err(format!("malformed page directory: {e}")))?;
        serde_json::from_str(json).map_err(|e| spill_err(format!("malformed page directory: {e}")))
    }
}

/// One paged file: random-access page reads and writes plus the atomic
/// finalize. Writable files live at `<path>.tmp` until finalized; the file
/// descriptor stays valid across the rename, so a pool can keep faulting
/// pages back in without reopening the published file.
#[derive(Debug)]
pub struct PageFile {
    io: Arc<dyn StorageIo>,
    file: Box<dyn StorageFile>,
    path: PathBuf,
    tmp: Option<PathBuf>,
    finalized: AtomicBool,
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_owned()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

impl PageFile {
    /// Create a fresh writable page file. Bytes land in `<path>.tmp` until
    /// [`PageFile::finalize`] publishes them at `path`.
    pub fn create(path: &Path) -> Result<PageFile> {
        let io = io_for(path);
        let tmp = tmp_path(path);
        let file = io
            .create(&tmp)
            .map_err(|e| spill_err(format!("create {}: {e}", tmp.display())))?;
        Ok(PageFile {
            io,
            file,
            path: path.to_owned(),
            tmp: Some(tmp),
            finalized: AtomicBool::new(false),
        })
    }

    /// Open an existing finalized page file read-only.
    pub fn open(path: &Path) -> Result<PageFile> {
        let io = io_for(path);
        let file = io
            .open_read(path)
            .map_err(|e| spill_err(format!("open {}: {e}", path.display())))?;
        Ok(PageFile {
            io,
            file,
            path: path.to_owned(),
            tmp: None,
            finalized: AtomicBool::new(true),
        })
    }

    /// The file's published path (the rename target for a writable file).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Read one page slot and return its verified payload.
    pub fn read_page(&self, page: u32) -> Result<Vec<u8>> {
        let mut slot = vec![0u8; PAGE_SIZE];
        self.file
            .read_exact_at(page as u64 * PAGE_SIZE as u64, &mut slot)
            .map_err(|e| spill_err(format!("read page {page} of {}: {e}", self.path.display())))?;
        let corrupt = |what: &str| {
            spill_err(format!(
                "corrupt page file {}: page {page} {what}",
                self.path.display()
            ))
        };
        let len = u32::from_le_bytes(slot[0..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(slot[4..8].try_into().unwrap());
        if len > PAGE_PAYLOAD {
            return Err(corrupt("oversized payload"));
        }
        let payload = &slot[8..8 + len];
        if crc32(payload) != crc {
            return Err(corrupt("crc mismatch"));
        }
        slot.drain(..8);
        slot.truncate(len);
        Ok(slot)
    }

    /// Frame, pad and write one page slot. Only valid before finalize —
    /// published files are immutable.
    pub fn write_page(&self, page: u32, payload: &[u8]) -> Result<()> {
        if self.finalized.load(Ordering::Acquire) {
            return Err(spill_err(format!(
                "write to finalized page file {}",
                self.path.display()
            )));
        }
        if payload.len() > PAGE_PAYLOAD {
            return Err(spill_err(format!(
                "page payload {} bytes exceeds the {PAGE_PAYLOAD} byte page payload",
                payload.len()
            )));
        }
        let mut slot = Vec::with_capacity(PAGE_SIZE);
        slot.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        slot.extend_from_slice(&crc32(payload).to_le_bytes());
        slot.extend_from_slice(payload);
        slot.resize(PAGE_SIZE, 0);
        self.file
            .write_all_at(page as u64 * PAGE_SIZE as u64, &slot)
            .map_err(|e| spill_err(format!("write page {page} of {}: {e}", self.path.display())))
    }

    /// Publish: fsync the temp file, rename it to the final path, fsync
    /// the directory. The open descriptor stays valid, so resident pages
    /// can still be re-read after the rename.
    pub fn finalize(&self) -> Result<()> {
        let Some(tmp) = &self.tmp else {
            return Ok(()); // opened read-only: already published
        };
        if self.finalized.swap(true, Ordering::AcqRel) {
            return Ok(());
        }
        self.file
            .sync_all()
            .map_err(|e| spill_err(format!("sync {}: {e}", tmp.display())))?;
        self.io.rename(tmp, &self.path).map_err(|e| {
            spill_err(format!(
                "rename {} -> {}: {e}",
                tmp.display(),
                self.path.display()
            ))
        })?;
        if let Some(parent) = self.path.parent() {
            let _ = self.io.sync_dir(parent);
        }
        Ok(())
    }

    /// Abandon an unfinalized writable file: remove the `.tmp` so a failed
    /// spill leaves no residue. A no-op for finalized or read-only files.
    pub fn discard(&self) {
        if self.finalized.load(Ordering::Acquire) {
            return;
        }
        if let Some(tmp) = &self.tmp {
            let _ = self.io.remove_file(tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use toreador_data::schema::Field;
    use toreador_data::value::DataType;

    fn temp_file(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "toreador-pager-file-{}-{tag}.pages",
            std::process::id()
        ))
    }

    fn cleanup(path: &Path) {
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(tmp_path(path));
    }

    #[test]
    fn pages_round_trip_through_write_finalize_read() {
        let path = temp_file("roundtrip");
        cleanup(&path);
        let f = PageFile::create(&path).unwrap();
        let payloads: Vec<Vec<u8>> = vec![
            b"page zero".to_vec(),
            vec![0xAB; PAGE_PAYLOAD], // a full page
            Vec::new(),               // an empty payload is legal
        ];
        for (i, p) in payloads.iter().enumerate() {
            f.write_page(i as u32, p).unwrap();
        }
        assert!(tmp_path(&path).exists(), "writes go to the temp file");
        assert!(!path.exists());
        f.finalize().unwrap();
        assert!(path.exists());
        assert!(!tmp_path(&path).exists(), "finalize consumes the temp file");
        // Reads through the original (still-open) descriptor and a fresh
        // open both see the same pages.
        for (i, p) in payloads.iter().enumerate() {
            assert_eq!(&f.read_page(i as u32).unwrap(), p);
        }
        let reopened = PageFile::open(&path).unwrap();
        for (i, p) in payloads.iter().enumerate() {
            assert_eq!(&reopened.read_page(i as u32).unwrap(), p);
        }
        cleanup(&path);
    }

    #[test]
    fn oversized_payload_and_post_finalize_writes_are_rejected() {
        let path = temp_file("immutable");
        cleanup(&path);
        let f = PageFile::create(&path).unwrap();
        let err = f.write_page(0, &vec![0u8; PAGE_PAYLOAD + 1]).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
        f.write_page(0, b"ok").unwrap();
        f.finalize().unwrap();
        let err = f.write_page(1, b"late").unwrap_err();
        assert!(err.to_string().contains("finalized"), "{err}");
        cleanup(&path);
    }

    #[test]
    fn damaged_pages_are_detected() {
        let path = temp_file("damage");
        cleanup(&path);
        let f = PageFile::create(&path).unwrap();
        f.write_page(0, b"precious bytes").unwrap();
        f.finalize().unwrap();
        // Flip one payload byte on disk.
        let mut raw = std::fs::read(&path).unwrap();
        raw[10] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        let err = PageFile::open(&path).unwrap().read_page(0).unwrap_err();
        assert!(err.to_string().contains("crc mismatch"), "{err}");
        // Truncate mid-slot: the read itself fails.
        std::fs::write(&path, &raw[..100]).unwrap();
        assert!(PageFile::open(&path).unwrap().read_page(0).is_err());
        cleanup(&path);
    }

    #[test]
    fn directory_round_trips_and_rejects_bad_magic() {
        let dir = PageDirectory {
            rows: 42,
            schema: Schema::new(vec![
                Field::new("a", DataType::Int),
                Field::new("b", DataType::Str),
            ])
            .unwrap(),
            lanes: vec![
                LaneExtent {
                    first_page: 1,
                    pages: 2,
                    bytes: 40_000,
                },
                LaneExtent {
                    first_page: 3,
                    pages: 1,
                    bytes: 900,
                },
            ],
        };
        let payload = dir.to_payload().unwrap();
        assert!(payload.starts_with(PAGE_MAGIC));
        assert_eq!(PageDirectory::from_payload(&payload).unwrap(), dir);
        let err = PageDirectory::from_payload(b"NOTMAGIC{}").unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
        let err = PageDirectory::from_payload(b"TORPAGE1 not json").unwrap_err();
        assert!(err.to_string().contains("malformed"), "{err}");
    }
}
