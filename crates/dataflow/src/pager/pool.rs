//! The buffer pool: a bounded set of in-memory page frames over the
//! registered [`PageFile`]s.
//!
//! Every frame accounts for one full [`PAGE_SIZE`] slot, so residency is
//! `occupied_frames * PAGE_SIZE` and never exceeds the budget the pool was
//! built with (floored at one frame — a pool that cannot hold a single
//! page cannot make progress). Reads go through [`BufferPool::pin`]: a
//! resident page is a **hit** (counted in [`PoolStats`]; hits are
//! memory-speed, so they are deliberately not journalled per-event), a
//! miss **faults** the page in from its backing file and records
//! [`TraceEventKind::PageFaulted`]. Writes stage dirty frames in the pool;
//! they reach the file when the clock hand evicts them or
//! [`BufferPool::flush_file`] forces them down.
//!
//! Eviction is second-chance clock: the hand sweeps frames, skips pinned
//! ones, clears the referenced bit on the first pass and reclaims on the
//! second, writing dirty victims back and recording
//! [`TraceEventKind::PageEvicted`]. If a full sweep finds every frame
//! pinned the pool is exhausted and the caller gets an error instead of a
//! deadlock.

use std::collections::HashMap;
use std::ops::Deref;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{FlowError, Result};
use crate::trace::{TraceEventKind, TraceJournal};

use super::file::{PageFile, PAGE_PAYLOAD, PAGE_SIZE};

/// Identifies a registered backing file within one pool.
pub type FileId = u64;

/// Running pool counters. `peak_bytes` is the true high-water residency,
/// including frames staged by writes that never journalled an event.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    pub hits: u64,
    pub faults: u64,
    pub evictions: u64,
    pub peak_bytes: u64,
}

#[derive(Debug)]
struct Frame {
    file: FileId,
    page: u32,
    payload: Arc<Vec<u8>>,
    pins: usize,
    referenced: bool,
    dirty: bool,
}

#[derive(Debug, Default)]
struct PoolInner {
    files: HashMap<FileId, Arc<PageFile>>,
    next_file: FileId,
    slots: Vec<Option<Frame>>,
    map: HashMap<(FileId, u32), usize>,
    hand: usize,
    stats: PoolStats,
}

impl PoolInner {
    fn resident_bytes(&self) -> u64 {
        (self.map.len() * PAGE_SIZE) as u64
    }

    fn note_peak(&mut self) {
        let resident = self.resident_bytes();
        if resident > self.stats.peak_bytes {
            self.stats.peak_bytes = resident;
        }
    }
}

/// A bounded page cache shared by every spill file of one run.
#[derive(Debug)]
pub struct BufferPool {
    max_frames: usize,
    inner: Mutex<PoolInner>,
}

impl BufferPool {
    /// A pool holding at most `budget_bytes` of pages, floored at one
    /// frame so a tiny (even zero) budget still makes progress one page
    /// at a time.
    pub fn new(budget_bytes: u64) -> BufferPool {
        let max_frames = ((budget_bytes as usize) / PAGE_SIZE).max(1);
        BufferPool {
            max_frames,
            inner: Mutex::new(PoolInner::default()),
        }
    }

    /// The pool's frame capacity in bytes (its budget floored at a page).
    pub fn capacity_bytes(&self) -> u64 {
        (self.max_frames * PAGE_SIZE) as u64
    }

    /// Current residency in bytes (full slots, the unit the budget bounds).
    pub fn resident_bytes(&self) -> u64 {
        self.inner.lock().resident_bytes()
    }

    pub fn stats(&self) -> PoolStats {
        self.inner.lock().stats
    }

    /// Register a backing file; its pages are addressed by the returned id.
    pub fn register(&self, file: Arc<PageFile>) -> FileId {
        let mut inner = self.inner.lock();
        let id = inner.next_file;
        inner.next_file += 1;
        inner.files.insert(id, file);
        id
    }

    /// Drop every frame of `file` (without write-back — the file is being
    /// deleted) and forget the backing. Callers must not hold pins.
    pub fn drop_file(&self, file: FileId) {
        let mut inner = self.inner.lock();
        for i in 0..inner.slots.len() {
            if inner.slots[i].as_ref().is_some_and(|f| f.file == file) {
                let frame = inner.slots[i].take().unwrap();
                debug_assert_eq!(frame.pins, 0, "dropping a pinned page");
                inner.map.remove(&(frame.file, frame.page));
            }
        }
        inner.files.remove(&file);
    }

    /// Write back every dirty frame of `file`, leaving the frames resident
    /// and clean. Called before a spill file is finalized so the on-disk
    /// bytes are complete when the rename publishes them.
    pub fn flush_file(&self, file: FileId) -> Result<()> {
        let mut inner = self.inner.lock();
        let backing = inner
            .files
            .get(&file)
            .cloned()
            .ok_or_else(|| FlowError::Spill(format!("flush of unregistered file {file}")))?;
        for i in 0..inner.slots.len() {
            let Some(frame) = inner.slots[i].as_mut() else {
                continue;
            };
            if frame.file == file && frame.dirty {
                backing.write_page(frame.page, &frame.payload)?;
                frame.dirty = false;
            }
        }
        Ok(())
    }

    /// Pin a page for reading. Returns a guard dereferencing to the
    /// payload; the frame cannot be evicted while the guard lives.
    pub fn pin(&self, file: FileId, page: u32, journal: &TraceJournal) -> Result<PinnedPage<'_>> {
        let mut inner = self.inner.lock();
        if let Some(&slot) = inner.map.get(&(file, page)) {
            let frame = inner.slots[slot].as_mut().expect("mapped slot occupied");
            frame.pins += 1;
            frame.referenced = true;
            let payload = frame.payload.clone();
            inner.stats.hits += 1;
            return Ok(PinnedPage {
                pool: self,
                file,
                page,
                payload,
            });
        }
        let backing = inner
            .files
            .get(&file)
            .cloned()
            .ok_or_else(|| FlowError::Spill(format!("pin of unregistered file {file}")))?;
        let slot = self.allocate_slot(&mut inner, journal)?;
        let payload = Arc::new(backing.read_page(page)?);
        inner.slots[slot] = Some(Frame {
            file,
            page,
            payload: payload.clone(),
            pins: 1,
            referenced: true,
            dirty: false,
        });
        inner.map.insert((file, page), slot);
        inner.stats.faults += 1;
        inner.note_peak();
        let pool_bytes = inner.resident_bytes();
        journal.record(TraceEventKind::PageFaulted {
            file,
            page,
            bytes: PAGE_SIZE as u64,
            pool_bytes,
        });
        Ok(PinnedPage {
            pool: self,
            file,
            page,
            payload,
        })
    }

    /// Stage a page write: the frame becomes resident and dirty, reaching
    /// the backing file on eviction or [`BufferPool::flush_file`].
    pub fn write(
        &self,
        file: FileId,
        page: u32,
        payload: Vec<u8>,
        journal: &TraceJournal,
    ) -> Result<()> {
        if payload.len() > PAGE_PAYLOAD {
            return Err(FlowError::Spill(format!(
                "page payload {} bytes exceeds the {PAGE_PAYLOAD} byte page payload",
                payload.len()
            )));
        }
        let mut inner = self.inner.lock();
        if !inner.files.contains_key(&file) {
            return Err(FlowError::Spill(format!(
                "write to unregistered file {file}"
            )));
        }
        if let Some(&slot) = inner.map.get(&(file, page)) {
            let frame = inner.slots[slot].as_mut().expect("mapped slot occupied");
            frame.payload = Arc::new(payload);
            frame.dirty = true;
            frame.referenced = true;
            return Ok(());
        }
        let slot = self.allocate_slot(&mut inner, journal)?;
        inner.slots[slot] = Some(Frame {
            file,
            page,
            payload: Arc::new(payload),
            pins: 0,
            referenced: true,
            dirty: true,
        });
        inner.map.insert((file, page), slot);
        inner.note_peak();
        Ok(())
    }

    fn unpin(&self, file: FileId, page: u32) {
        let mut inner = self.inner.lock();
        if let Some(&slot) = inner.map.get(&(file, page)) {
            if let Some(frame) = inner.slots[slot].as_mut() {
                frame.pins = frame.pins.saturating_sub(1);
            }
        }
    }

    /// Find a free slot, evicting with the second-chance clock if the pool
    /// is full. Dirty victims are written back before the frame is reused.
    fn allocate_slot(&self, inner: &mut PoolInner, journal: &TraceJournal) -> Result<usize> {
        if inner.slots.len() < self.max_frames {
            inner.slots.push(None);
            return Ok(inner.slots.len() - 1);
        }
        if let Some(free) = inner.slots.iter().position(|s| s.is_none()) {
            return Ok(free);
        }
        let n = inner.slots.len();
        for _ in 0..2 * n + 1 {
            let i = inner.hand;
            inner.hand = (inner.hand + 1) % n;
            let frame = inner.slots[i].as_mut().expect("full pool has no holes");
            if frame.pins > 0 {
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
                continue;
            }
            let frame = inner.slots[i].take().expect("victim frame present");
            inner.map.remove(&(frame.file, frame.page));
            if frame.dirty {
                let backing = inner.files.get(&frame.file).cloned().ok_or_else(|| {
                    FlowError::Spill(format!(
                        "dirty page of unregistered file {} cannot be written back",
                        frame.file
                    ))
                })?;
                backing.write_page(frame.page, &frame.payload)?;
            }
            inner.stats.evictions += 1;
            let pool_bytes = inner.resident_bytes();
            journal.record(TraceEventKind::PageEvicted {
                file: frame.file,
                page: frame.page,
                bytes: PAGE_SIZE as u64,
                dirty: frame.dirty,
                pool_bytes,
            });
            return Ok(i);
        }
        Err(FlowError::Spill(
            "buffer pool exhausted: every frame is pinned".to_owned(),
        ))
    }
}

/// A pinned page: dereferences to the payload; unpins on drop.
#[derive(Debug)]
pub struct PinnedPage<'a> {
    pool: &'a BufferPool,
    file: FileId,
    page: u32,
    payload: Arc<Vec<u8>>,
}

impl Deref for PinnedPage<'_> {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.payload
    }
}

impl Drop for PinnedPage<'_> {
    fn drop(&mut self) {
        self.pool.unpin(self.file, self.page);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use std::path::PathBuf;

    fn temp_pagefile(tag: &str) -> (PathBuf, Arc<PageFile>) {
        let path = std::env::temp_dir().join(format!(
            "toreador-pager-pool-{}-{tag}.pages",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        (path.clone(), Arc::new(PageFile::create(&path).unwrap()))
    }

    fn cleanup(path: &PathBuf) {
        let _ = std::fs::remove_file(path);
        let mut tmp = path.clone().into_os_string();
        tmp.push(".tmp");
        let _ = std::fs::remove_file(PathBuf::from(tmp));
    }

    #[test]
    fn pins_hit_after_the_first_fault() {
        let (path, file) = temp_pagefile("hits");
        file.write_page(0, b"cached").unwrap();
        let pool = BufferPool::new(1 << 20);
        let id = pool.register(file);
        let journal = TraceJournal::new();
        {
            let page = pool.pin(id, 0, &journal).unwrap();
            assert_eq!(&*page, b"cached");
        }
        let page = pool.pin(id, 0, &journal).unwrap();
        assert_eq!(&*page, b"cached");
        drop(page);
        let stats = pool.stats();
        assert_eq!(stats.faults, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.peak_bytes, PAGE_SIZE as u64);
        cleanup(&path);
    }

    #[test]
    fn eviction_writes_dirty_pages_back_and_they_fault_in_identical() {
        let (path, file) = temp_pagefile("writeback");
        // One-frame pool: every new page evicts the previous one.
        let pool = BufferPool::new(0);
        assert_eq!(pool.capacity_bytes(), PAGE_SIZE as u64);
        let id = pool.register(file);
        let journal = TraceJournal::new();
        for p in 0..4u32 {
            pool.write(id, p, format!("page {p}").into_bytes(), &journal)
                .unwrap();
        }
        assert_eq!(pool.stats().evictions, 3);
        assert_eq!(pool.resident_bytes(), PAGE_SIZE as u64);
        for p in 0..4u32 {
            let page = pool.pin(id, p, &journal).unwrap();
            assert_eq!(&*page, format!("page {p}").as_bytes());
        }
        // Residency stayed at one frame through it all, and the journal
        // saw the churn.
        let stats = pool.stats();
        assert!(stats.faults >= 3, "{stats:?}");
        assert_eq!(stats.peak_bytes, PAGE_SIZE as u64);
        let events = journal.snapshot();
        let evictions = events
            .events
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::PageEvicted { .. }))
            .count() as u64;
        assert_eq!(evictions, stats.evictions);
        for e in &events.events {
            if let TraceEventKind::PageFaulted { pool_bytes, .. }
            | TraceEventKind::PageEvicted { pool_bytes, .. } = e.kind
            {
                assert!(pool_bytes <= pool.capacity_bytes(), "budget exceeded");
            }
        }
        cleanup(&path);
    }

    #[test]
    fn pinned_pages_are_never_evicted() {
        let (path, file) = temp_pagefile("pinned");
        file.write_page(0, b"keep me").unwrap();
        let pool = BufferPool::new(0); // one frame
        let id = pool.register(file);
        let journal = TraceJournal::new();
        let page = pool.pin(id, 0, &journal).unwrap();
        // The only frame is pinned: another page cannot come in.
        let err = pool
            .write(id, 1, b"evictor".to_vec(), &journal)
            .unwrap_err();
        assert!(err.to_string().contains("pinned"), "{err}");
        assert_eq!(&*page, b"keep me");
        drop(page);
        // Unpinned, the frame is reclaimable again.
        pool.write(id, 1, b"evictor".to_vec(), &journal).unwrap();
        cleanup(&path);
    }

    #[test]
    fn flush_leaves_frames_resident_and_clean() {
        let (path, file) = temp_pagefile("flush");
        let pool = BufferPool::new(1 << 20);
        let id = pool.register(file.clone());
        let journal = TraceJournal::new();
        pool.write(id, 0, b"durable".to_vec(), &journal).unwrap();
        pool.flush_file(id).unwrap();
        file.finalize().unwrap();
        // Still a hit (no fault) after the flush …
        let before = pool.stats().faults;
        let page = pool.pin(id, 0, &journal).unwrap();
        assert_eq!(&*page, b"durable");
        assert_eq!(pool.stats().faults, before);
        drop(page);
        // … and the bytes really are on disk.
        assert_eq!(file.read_page(0).unwrap(), b"durable");
        cleanup(&path);
    }
}
