//! Stage-boundary checkpointing with crash-resume.
//!
//! After each shuffle wave completes, the executor atomically materialises
//! the wave's partitioned output (through the lane-based row codec in
//! [`crate::codec`]) plus a manifest into a per-run checkpoint directory,
//! following the `toreador-store` WAL conventions: temp-write + rename +
//! directory fsync on the write side, CRC-checked frames on the read side.
//! A process killed at any stage boundary can then [`RunCheckpoint::resume`]:
//! the manifest is validated against the recompiled plan (fingerprint
//! mismatch ⇒ [`FlowError::StaleCheckpoint`], never stale data), completed
//! waves are loaded instead of recomputed, and the scheduler re-enters at
//! the first incomplete wave. Restores are provable from the trace journal:
//! zero `TaskStarted` events for restored waves, `StageRestored` events
//! instead.
//!
//! ## On-disk layout
//!
//! ```text
//! <root>/<run_id>/
//!   manifest.json     run identity: plan/config/input fingerprints, seeds
//!   wave-0000.ckpt    one file per completed shuffle wave
//!   wave-0001.ckpt
//! ```
//!
//! A wave file is `TORCKPT1` magic followed by CRC-framed records
//! (`[len: u32 LE][crc32: u32 LE][payload]`): frame 0 is a JSON header
//! (stage id, wave index, per-partition row counts and CRCs, schema), then
//! one frame per partition holding its lane-encoded rows. Torn or corrupt
//! frames fail the load with [`FlowError::Checkpoint`] — a checkpoint is
//! either provably intact or not used.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use bytes::{Bytes, BytesMut};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use toreador_data::partition::PartitionedTable;
use toreador_data::schema::Schema;
use toreador_data::table::Table;

/// Re-exported from [`crate::codec`], where the shared implementation lives.
pub use crate::codec::crc32;
use crate::codec::{decode_table, encode_table, push_frame, sync_dir, take_frame, write_atomic};
use crate::error::{FlowError, Result};

/// Wave-file magic: 8 bytes, versioned by the trailing digit.
const WAVE_MAGIC: &[u8; 8] = b"TORCKPT1";

/// Manifest format version; bumped on breaking layout changes.
pub(crate) const FORMAT_VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// Fingerprints: FNV-1a folded over the things that must not change between
// the checkpointed run and its resume.
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

fn fnv(bytes: impl IntoIterator<Item = u8>, mut h: u64) -> u64 {
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Fingerprint of the *optimized* plan, via its `explain()` rendering: any
/// operator, expression or ordering change invalidates checkpoints.
pub fn plan_fingerprint(explain: &str) -> String {
    format!("{:016x}", fnv(explain.bytes(), FNV_OFFSET))
}

/// Fingerprint of the engine-config knobs that shape the wave layout.
/// Partition count changes the shape of every wave; partial aggregation,
/// vectorization and narrow-chain fusion change how many waves exist.
pub fn config_fingerprint(
    partitions: usize,
    partial_aggregation: bool,
    vectorized: bool,
    fuse_narrow: bool,
    pipelined: bool,
) -> String {
    let s = format!(
        "partitions={partitions} partial_agg={partial_aggregation} \
         vectorized={vectorized} fuse_narrow={fuse_narrow} pipelined={pipelined}"
    );
    format!("{:016x}", fnv(s.bytes(), FNV_OFFSET))
}

/// Fingerprint of the scanned input datasets: name, schema, row count, and
/// every row's stable hash (via the shuffle layer's columnar hasher), folded
/// in dataset order. `scanned` must already be sorted and deduplicated, as
/// `LogicalPlan::scanned_datasets` returns it.
pub fn input_fingerprint(
    datasets: &HashMap<String, PartitionedTable>,
    scanned: &[String],
) -> Result<String> {
    let mut h = FNV_OFFSET;
    for name in scanned {
        let data = datasets
            .get(name)
            .ok_or_else(|| FlowError::UnknownDataset(name.clone()))?;
        h = fnv(name.bytes(), h);
        for part in data.parts() {
            let schema = part.schema();
            for f in schema.fields() {
                h = fnv(f.name.bytes(), h);
                h = fnv(format!("{:?}:{}", f.data_type, f.nullable).bytes(), h);
            }
            h = fnv((part.num_rows() as u64).to_le_bytes(), h);
            for col in part.columns() {
                for code in crate::shuffle::column_hash_codes(col) {
                    h = fnv(code.to_le_bytes(), h);
                }
            }
        }
    }
    Ok(format!("{h:016x}"))
}

// ---------------------------------------------------------------------------
// Spec + manifest
// ---------------------------------------------------------------------------

/// Where a run checkpoints and whether it first tries to restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointSpec {
    /// Root checkpoint directory; runs get per-`run_id` subdirectories.
    pub root: PathBuf,
    /// Stable identity of the run (may contain `/` for per-engine subruns).
    pub run_id: String,
    /// When true, load any completed waves before executing.
    pub resume: bool,
}

impl CheckpointSpec {
    /// Checkpoint a fresh run under `root/run_id`.
    pub fn new(root: impl Into<PathBuf>, run_id: impl Into<String>) -> Self {
        CheckpointSpec {
            root: root.into(),
            run_id: run_id.into(),
            resume: false,
        }
    }

    /// Resume (or start, if nothing was checkpointed) run `run_id`.
    pub fn resume(root: impl Into<PathBuf>, run_id: impl Into<String>) -> Self {
        CheckpointSpec {
            root: root.into(),
            run_id: run_id.into(),
            resume: true,
        }
    }

    /// The run's checkpoint directory.
    pub fn dir(&self) -> PathBuf {
        self.root.join(&self.run_id)
    }
}

/// Run identity persisted alongside the wave files. A resume refuses to
/// serve checkpointed partitions unless every fingerprint still matches the
/// freshly recompiled campaign.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointManifest {
    pub format_version: u32,
    pub run_id: String,
    /// FNV-1a of the optimized plan's `explain()` text.
    pub plan_fingerprint: String,
    /// FNV-1a of the wave-shaping engine-config knobs.
    pub config_fingerprint: String,
    /// FNV-1a of the scanned datasets (schemas, row counts, row hashes).
    pub input_fingerprint: String,
    /// Chaos seed the run was recorded under (provenance, not validated:
    /// resumes deliberately run with a different — usually empty — plan).
    pub chaos_seed: u64,
    /// Configured partition count (redundant with the config fingerprint,
    /// kept readable for humans and the CLI).
    pub partitions: usize,
}

/// Header frame of one wave file.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct WaveHeader {
    stage: usize,
    wave: usize,
    partitions: usize,
    row_counts: Vec<usize>,
    /// CRC32 of each partition's encoded payload, cross-checked against the
    /// frame CRCs on load (belt and braces: the header travels in its own
    /// frame, so either record can vouch for the other).
    partition_crcs: Vec<u32>,
    schema: Schema,
}

/// One wave loaded back from disk, waiting for the scheduler to claim it.
#[derive(Debug)]
pub struct RestoredWave {
    pub stage: usize,
    pub tables: Vec<Table>,
    pub rows: u64,
}

// ---------------------------------------------------------------------------
// I/O helpers. The store WAL conventions themselves (atomic publish, CRC
// framing) live in `crate::codec`; this layer only maps their plain error
// payloads into `FlowError::Checkpoint` with the historical wording.
// ---------------------------------------------------------------------------

fn io_err(what: &str, path: &Path, e: std::io::Error) -> FlowError {
    FlowError::Checkpoint(format!("{what} {}: {e}", path.display()))
}

/// [`crate::codec::write_atomic`] with the error wrapped for this layer.
fn publish(path: &Path, bytes: &[u8]) -> Result<()> {
    write_atomic(path, bytes).map_err(FlowError::Checkpoint)
}

fn wave_path(dir: &Path, wave: usize) -> PathBuf {
    dir.join(format!("wave-{wave:04}.ckpt"))
}

/// `wave-<n>.ckpt` → `n`.
pub(crate) fn parse_wave_name(name: &str) -> Option<usize> {
    name.strip_prefix("wave-")?
        .strip_suffix(".ckpt")?
        .parse()
        .ok()
}

// ---------------------------------------------------------------------------
// RunCheckpoint
// ---------------------------------------------------------------------------

/// The live checkpoint of one run: persists completed waves, and on resume
/// hands restored waves back to the scheduler exactly once each.
#[derive(Debug)]
pub struct RunCheckpoint {
    dir: PathBuf,
    restored: Mutex<HashMap<usize, RestoredWave>>,
}

impl RunCheckpoint {
    /// Start checkpointing a fresh run: create the directory and publish
    /// the manifest before any wave executes.
    pub fn create(spec: &CheckpointSpec, manifest: &CheckpointManifest) -> Result<Self> {
        let dir = spec.dir();
        let io = toreador_store::io::io_for(&dir);
        io.create_dir_all(&dir)
            .map_err(|e| io_err("create dir", &dir, e))?;
        // Clear any stale waves from a previous run under the same id: they
        // belong to a manifest about to be overwritten.
        for path in io.list_dir(&dir).map_err(|e| io_err("read dir", &dir, e))? {
            let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
                continue;
            };
            if parse_wave_name(&name).is_some() || name.ends_with(".tmp") {
                let _ = io.remove_file(&path);
            }
        }
        let json = serde_json::to_string(manifest)
            .map_err(|e| FlowError::Checkpoint(format!("encode manifest: {e}")))?;
        publish(&dir.join("manifest.json"), json.as_bytes())?;
        if let Some(parent) = dir.parent() {
            sync_dir(parent);
        }
        Ok(RunCheckpoint {
            dir,
            restored: Mutex::new(HashMap::new()),
        })
    }

    /// True when a manifest exists for this run id (i.e. a previous run got
    /// far enough to be resumable at all).
    pub fn manifest_exists(spec: &CheckpointSpec) -> bool {
        let path = spec.dir().join("manifest.json");
        toreador_store::io::io_for(&path).exists(&path)
    }

    /// Resume a previously checkpointed run: validate the stored manifest
    /// against `expected` (the freshly recompiled identity) and eagerly
    /// load every intact wave file. Fingerprint mismatches refuse with
    /// [`FlowError::StaleCheckpoint`] naming what changed.
    pub fn resume(spec: &CheckpointSpec, expected: &CheckpointManifest) -> Result<Self> {
        let dir = spec.dir();
        let io = toreador_store::io::io_for(&dir);
        let manifest_path = dir.join("manifest.json");
        let text = io
            .read_to_string(&manifest_path)
            .map_err(|e| io_err("read manifest", &manifest_path, e))?;
        let stored: CheckpointManifest = serde_json::from_str(&text)
            .map_err(|e| FlowError::Checkpoint(format!("decode manifest: {e}")))?;
        let stale = |mismatch: &str| FlowError::StaleCheckpoint {
            run_id: spec.run_id.clone(),
            mismatch: mismatch.to_owned(),
        };
        if stored.format_version != FORMAT_VERSION {
            return Err(stale("checkpoint format version"));
        }
        if stored.run_id != expected.run_id {
            return Err(stale("run id"));
        }
        if stored.plan_fingerprint != expected.plan_fingerprint {
            return Err(stale("plan"));
        }
        // Config before inputs: a partition-count change also reshapes the
        // registered inputs' layout, and naming the config is the more
        // precise diagnosis of the two.
        if stored.config_fingerprint != expected.config_fingerprint {
            return Err(stale("engine config"));
        }
        if stored.input_fingerprint != expected.input_fingerprint {
            return Err(stale("inputs"));
        }
        let mut restored = HashMap::new();
        let mut names: Vec<usize> = io
            .list_dir(&dir)
            .map_err(|e| io_err("read dir", &dir, e))?
            .into_iter()
            .filter_map(|path| parse_wave_name(&path.file_name()?.to_string_lossy()))
            .collect();
        names.sort_unstable();
        for wave in names {
            let path = wave_path(&dir, wave);
            restored.insert(wave, load_wave(&path, wave)?);
        }
        Ok(RunCheckpoint {
            dir,
            restored: Mutex::new(restored),
        })
    }

    /// Claim the restored output of `wave`, if this run checkpointed it.
    /// Each wave is claimable once: the scheduler consumes it in place of
    /// running the wave's tasks.
    pub fn take_restored(&self, wave: usize) -> Option<RestoredWave> {
        self.restored.lock().remove(&wave)
    }

    /// Number of restored waves not yet claimed by the scheduler.
    pub fn restored_pending(&self) -> usize {
        self.restored.lock().len()
    }

    /// Durably persist the completed output of `wave` (executed at `stage`).
    /// Returns the encoded payload bytes written. The file only appears
    /// under its final name after the fsync — a kill at any point leaves
    /// either the previous state or the complete wave, nothing between.
    pub fn persist_wave(&self, stage: usize, wave: usize, out: &[Table]) -> Result<u64> {
        let schema = out
            .first()
            .map(|t| t.schema().clone())
            .unwrap_or_else(Schema::empty);
        let mut payloads = Vec::with_capacity(out.len());
        let mut row_counts = Vec::with_capacity(out.len());
        let mut partition_crcs = Vec::with_capacity(out.len());
        let mut payload_bytes = 0u64;
        for t in out {
            let mut buf = BytesMut::new();
            encode_table(t, &mut buf);
            let buf = buf.freeze();
            payload_bytes += buf.len() as u64;
            row_counts.push(t.num_rows());
            partition_crcs.push(crc32(&buf));
            payloads.push(buf);
        }
        let header = WaveHeader {
            stage,
            wave,
            partitions: out.len(),
            row_counts,
            partition_crcs,
            schema,
        };
        let header_json = serde_json::to_string(&header)
            .map_err(|e| FlowError::Checkpoint(format!("encode wave header: {e}")))?
            .into_bytes();
        let mut file = Vec::with_capacity(
            WAVE_MAGIC.len() + 8 + header_json.len() + payload_bytes as usize + 8 * payloads.len(),
        );
        file.extend_from_slice(WAVE_MAGIC);
        push_frame(&mut file, &header_json);
        for p in &payloads {
            push_frame(&mut file, p);
        }
        publish(&wave_path(&self.dir, wave), &file)?;
        Ok(payload_bytes)
    }
}

/// Read one wave file back, CRC-checking every frame and cross-checking the
/// header's per-partition row counts and CRCs.
pub(crate) fn load_wave(path: &Path, wave: usize) -> Result<RestoredWave> {
    let corrupt =
        |what: &str| FlowError::Checkpoint(format!("corrupt wave file {}: {what}", path.display()));
    let bytes = toreador_store::io::io_for(path)
        .read(path)
        .map_err(|e| io_err("read", path, e))?;
    let mut rest = bytes.as_slice();
    if rest.len() < WAVE_MAGIC.len() || &rest[..WAVE_MAGIC.len()] != WAVE_MAGIC {
        return Err(corrupt("bad magic"));
    }
    rest = &rest[WAVE_MAGIC.len()..];
    let header_text =
        std::str::from_utf8(take_frame(&mut rest).map_err(|e| corrupt(e.describe()))?)
            .map_err(|_| corrupt("wave header is not utf-8"))?;
    let header: WaveHeader = serde_json::from_str(header_text)
        .map_err(|e| FlowError::Checkpoint(format!("decode wave header: {e}")))?;
    if header.wave != wave {
        return Err(corrupt("wave index does not match file name"));
    }
    if header.row_counts.len() != header.partitions
        || header.partition_crcs.len() != header.partitions
    {
        return Err(corrupt("header partition counts disagree"));
    }
    let mut tables = Vec::with_capacity(header.partitions);
    let mut rows = 0u64;
    for i in 0..header.partitions {
        let payload = take_frame(&mut rest).map_err(|e| corrupt(e.describe()))?;
        if crc32(payload) != header.partition_crcs[i] {
            return Err(corrupt("partition crc does not match header"));
        }
        let table = decode_table(
            &header.schema,
            header.row_counts[i],
            Bytes::copy_from_slice(payload),
        )?;
        rows += table.num_rows() as u64;
        tables.push(table);
    }
    if !rest.is_empty() {
        return Err(corrupt("trailing bytes after last partition"));
    }
    Ok(RestoredWave {
        stage: header.stage,
        tables,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use toreador_data::generate::random_table;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("toreador-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn manifest(run_id: &str) -> CheckpointManifest {
        CheckpointManifest {
            format_version: FORMAT_VERSION,
            run_id: run_id.to_owned(),
            plan_fingerprint: "aaaa".into(),
            config_fingerprint: "bbbb".into(),
            input_fingerprint: "cccc".into(),
            chaos_seed: 7,
            partitions: 4,
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn waves_round_trip_through_disk() {
        let root = temp_root("roundtrip");
        let spec = CheckpointSpec::new(&root, "run-1");
        let ck = RunCheckpoint::create(&spec, &manifest("run-1")).unwrap();
        let parts: Vec<Table> = (0..3).map(|i| random_table(40 + i, 4, i as u64)).collect();
        let bytes = ck.persist_wave(2, 0, &parts).unwrap();
        assert!(bytes > 0);
        ck.persist_wave(3, 1, &parts[..1]).unwrap();

        let resumed =
            RunCheckpoint::resume(&CheckpointSpec::resume(&root, "run-1"), &manifest("run-1"))
                .unwrap();
        assert_eq!(resumed.restored_pending(), 2);
        let wave0 = resumed.take_restored(0).unwrap();
        assert_eq!(wave0.stage, 2);
        assert_eq!(wave0.tables, parts);
        assert_eq!(
            wave0.rows,
            parts.iter().map(|t| t.num_rows() as u64).sum::<u64>()
        );
        // Each wave is claimable exactly once.
        assert!(resumed.take_restored(0).is_none());
        assert!(resumed.take_restored(1).is_some());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn empty_wave_output_round_trips() {
        let root = temp_root("empty");
        let spec = CheckpointSpec::new(&root, "run-e");
        let ck = RunCheckpoint::create(&spec, &manifest("run-e")).unwrap();
        ck.persist_wave(0, 0, &[]).unwrap();
        let resumed =
            RunCheckpoint::resume(&CheckpointSpec::resume(&root, "run-e"), &manifest("run-e"))
                .unwrap();
        let wave = resumed.take_restored(0).unwrap();
        assert!(wave.tables.is_empty());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn stale_manifests_refuse_with_named_mismatch() {
        let root = temp_root("stale");
        let spec = CheckpointSpec::new(&root, "run-2");
        RunCheckpoint::create(&spec, &manifest("run-2")).unwrap();
        let rspec = CheckpointSpec::resume(&root, "run-2");
        for (mutate, expect) in [
            (
                Box::new(|m: &mut CheckpointManifest| m.plan_fingerprint = "zz".into())
                    as Box<dyn Fn(&mut CheckpointManifest)>,
                "plan",
            ),
            (
                Box::new(|m: &mut CheckpointManifest| m.input_fingerprint = "zz".into()),
                "inputs",
            ),
            (
                Box::new(|m: &mut CheckpointManifest| m.config_fingerprint = "zz".into()),
                "engine config",
            ),
        ] {
            let mut expected = manifest("run-2");
            mutate(&mut expected);
            match RunCheckpoint::resume(&rspec, &expected) {
                Err(FlowError::StaleCheckpoint { run_id, mismatch }) => {
                    assert_eq!(run_id, "run-2");
                    assert_eq!(mismatch, expect);
                }
                other => panic!("expected StaleCheckpoint({expect}), got {other:?}"),
            }
        }
        // Chaos seed is provenance only: a different seed still resumes.
        let mut expected = manifest("run-2");
        expected.chaos_seed = 999;
        assert!(RunCheckpoint::resume(&rspec, &expected).is_ok());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corruption_is_detected_not_served() {
        let root = temp_root("corrupt");
        let spec = CheckpointSpec::new(&root, "run-3");
        let ck = RunCheckpoint::create(&spec, &manifest("run-3")).unwrap();
        let t = random_table(64, 3, 9);
        ck.persist_wave(1, 0, std::slice::from_ref(&t)).unwrap();
        let path = wave_path(&spec.dir(), 0);
        let pristine = fs::read(&path).unwrap();
        let rspec = CheckpointSpec::resume(&root, "run-3");
        // Flip one payload byte, truncate, and scribble the magic: every
        // corruption must surface as FlowError::Checkpoint.
        let mut flipped = pristine.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xFF;
        for broken in [
            flipped,
            pristine[..pristine.len() - 3].to_vec(),
            b"NOTCKPT0".to_vec(),
        ] {
            fs::write(&path, &broken).unwrap();
            match RunCheckpoint::resume(&rspec, &manifest("run-3")) {
                Err(FlowError::Checkpoint(_)) => {}
                other => panic!("corrupted wave must fail the load, got {other:?}"),
            }
        }
        // Restore the pristine bytes: loads again.
        fs::write(&path, &pristine).unwrap();
        assert!(RunCheckpoint::resume(&rspec, &manifest("run-3")).is_ok());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn create_clears_stale_waves_from_a_prior_identity() {
        let root = temp_root("recreate");
        let spec = CheckpointSpec::new(&root, "run-4");
        let ck = RunCheckpoint::create(&spec, &manifest("run-4")).unwrap();
        ck.persist_wave(0, 0, &[random_table(10, 2, 1)]).unwrap();
        // A fresh create under the same id must not leave the old wave
        // behind — a later resume would restore a wave the new manifest
        // never produced.
        RunCheckpoint::create(&spec, &manifest("run-4")).unwrap();
        let resumed =
            RunCheckpoint::resume(&CheckpointSpec::resume(&root, "run-4"), &manifest("run-4"))
                .unwrap();
        assert_eq!(resumed.restored_pending(), 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn fingerprints_are_stable_and_sensitive() {
        assert_eq!(plan_fingerprint("Scan"), plan_fingerprint("Scan"));
        assert_ne!(plan_fingerprint("Scan"), plan_fingerprint("Scan\nFilter"));
        assert_eq!(
            config_fingerprint(8, true, true, true, true),
            config_fingerprint(8, true, true, true, true)
        );
        assert_ne!(
            config_fingerprint(8, true, true, true, true),
            config_fingerprint(4, true, true, true, true)
        );
        assert_ne!(
            config_fingerprint(8, true, true, true, true),
            config_fingerprint(8, true, true, true, false)
        );
        let mut datasets = HashMap::new();
        datasets.insert(
            "t".to_owned(),
            PartitionedTable::split(random_table(100, 3, 5), 4).unwrap(),
        );
        let scanned = vec!["t".to_owned()];
        let a = input_fingerprint(&datasets, &scanned).unwrap();
        assert_eq!(a, input_fingerprint(&datasets, &scanned).unwrap());
        datasets.insert(
            "t".to_owned(),
            PartitionedTable::split(random_table(100, 3, 6), 4).unwrap(),
        );
        assert_ne!(a, input_fingerprint(&datasets, &scanned).unwrap());
        assert!(matches!(
            input_fingerprint(&datasets, &["missing".to_owned()]),
            Err(FlowError::UnknownDataset(_))
        ));
    }
}
