//! Event-time watermarks and the late-data policy.
//!
//! The watermark is the loop's claim about completed event time: once it
//! passes `t`, no row with timestamp `< t` is expected (rows that arrive
//! anyway are *late*). It is derived per batch as `max observed event time
//! − allowed lateness` and only ever moves forward. Each batch is
//! classified against the watermark as it stood *before* the batch — a
//! batch can never make its own rows late.

use serde::{Deserialize, Serialize};
use toreador_data::table::Table;
use toreador_data::value::Value;

use crate::error::{FlowError, Result};

/// What happens to rows that arrive behind the watermark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum LatePolicy {
    /// Fold late rows into state anyway (counted, journalled, but kept).
    #[default]
    Absorb,
    /// Divert late rows to a side channel the caller can inspect; state
    /// sees only on-time rows.
    SideChannel,
    /// Discard late rows; state sees only on-time rows.
    Drop,
}

impl std::fmt::Display for LatePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LatePolicy::Absorb => "absorb",
            LatePolicy::SideChannel => "side-channel",
            LatePolicy::Drop => "drop",
        })
    }
}

impl std::str::FromStr for LatePolicy {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, String> {
        match s {
            "absorb" => Ok(LatePolicy::Absorb),
            "side-channel" | "side_channel" | "side" => Ok(LatePolicy::SideChannel),
            "drop" => Ok(LatePolicy::Drop),
            other => Err(format!(
                "unknown late policy {other:?} (expected absorb|side-channel|drop)"
            )),
        }
    }
}

/// Tracks the event-time watermark across batches.
#[derive(Debug, Clone, Copy)]
pub struct WatermarkClock {
    allowed_lateness_ms: i64,
    max_event_ts: Option<i64>,
}

impl WatermarkClock {
    pub fn new(allowed_lateness_ms: i64) -> Self {
        WatermarkClock {
            allowed_lateness_ms: allowed_lateness_ms.max(0),
            max_event_ts: None,
        }
    }

    /// Restore the clock to a recovered watermark (resume path).
    pub fn restore(allowed_lateness_ms: i64, watermark_ms: Option<i64>) -> Self {
        WatermarkClock {
            allowed_lateness_ms: allowed_lateness_ms.max(0),
            max_event_ts: watermark_ms.map(|w| w + allowed_lateness_ms.max(0)),
        }
    }

    /// The current watermark: rows with `ts < watermark` are late. `None`
    /// until the first row has been observed.
    pub fn watermark(&self) -> Option<i64> {
        self.max_event_ts.map(|t| t - self.allowed_lateness_ms)
    }

    /// Observe a batch's maximum event time; returns the new watermark when
    /// it advanced (watermarks never move backwards).
    pub fn observe(&mut self, batch_max_ts: i64) -> Option<i64> {
        let advanced = match self.max_event_ts {
            None => true,
            Some(prev) => batch_max_ts > prev,
        };
        if advanced {
            self.max_event_ts = Some(
                self.max_event_ts
                    .map_or(batch_max_ts, |p| p.max(batch_max_ts)),
            );
            self.watermark()
        } else {
            None
        }
    }
}

/// Read a row's event timestamp (`Timestamp` or `Int` column).
pub(crate) fn event_ts(v: Value) -> Result<i64> {
    match v {
        Value::Timestamp(t) | Value::Int(t) => Ok(t),
        other => Err(FlowError::TypeCheck(format!(
            "timestamp column contains {other:?}"
        ))),
    }
}

/// The `(min, max)` event time of a batch, or `None` when it has no rows.
pub fn event_bounds(batch: &Table, ts_column: &str) -> Result<Option<(i64, i64)>> {
    let ts = batch.column(ts_column)?;
    let mut bounds: Option<(i64, i64)> = None;
    for v in ts.iter_values() {
        let t = event_ts(v)?;
        bounds = Some(match bounds {
            None => (t, t),
            Some((lo, hi)) => (lo.min(t), hi.max(t)),
        });
    }
    Ok(bounds)
}

/// Split a batch into `(on_time, late)` against `watermark` in one pass
/// (rows with `ts < watermark` are late; with no watermark yet, everything
/// is on time). Row order is preserved within each half.
pub fn split_on_time(
    batch: &Table,
    ts_column: &str,
    watermark: Option<i64>,
) -> Result<(Table, Table)> {
    let Some(w) = watermark else {
        let empty = batch.slice(0, 0).map_err(FlowError::Data)?;
        return Ok((batch.clone(), empty));
    };
    let ts = batch.column(ts_column)?;
    let mut on_time = Vec::new();
    let mut late = Vec::new();
    for (i, v) in ts.iter_values().enumerate() {
        if event_ts(v)? < w {
            late.push(i);
        } else {
            on_time.push(i);
        }
    }
    Ok((
        batch.take(&on_time).map_err(FlowError::Data)?,
        batch.take(&late).map_err(FlowError::Data)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use toreador_data::schema::{Field, Schema};
    use toreador_data::value::DataType;

    fn ts_table(stamps: &[i64]) -> Table {
        let schema = Schema::new(vec![Field::new("ts", DataType::Timestamp)]).unwrap();
        Table::from_rows(schema, stamps.iter().map(|&t| vec![Value::Timestamp(t)])).unwrap()
    }

    #[test]
    fn watermark_trails_max_event_time_and_never_regresses() {
        let mut clock = WatermarkClock::new(500);
        assert_eq!(clock.watermark(), None);
        assert_eq!(clock.observe(2_000), Some(1_500));
        // Older batch: no advance, watermark holds.
        assert_eq!(clock.observe(1_000), None);
        assert_eq!(clock.watermark(), Some(1_500));
        assert_eq!(clock.observe(3_000), Some(2_500));
    }

    #[test]
    fn restored_clock_resumes_at_the_recovered_watermark() {
        let clock = WatermarkClock::restore(500, Some(1_500));
        assert_eq!(clock.watermark(), Some(1_500));
        let fresh = WatermarkClock::restore(500, None);
        assert_eq!(fresh.watermark(), None);
    }

    #[test]
    fn split_classifies_strictly_before_the_watermark() {
        let t = ts_table(&[100, 999, 1_000, 2_000]);
        let (on_time, late) = split_on_time(&t, "ts", Some(1_000)).unwrap();
        assert_eq!(on_time.num_rows(), 2, "1000 itself is on time");
        assert_eq!(late.num_rows(), 2);
        // No watermark yet: nothing is late.
        let (on_time, late) = split_on_time(&t, "ts", None).unwrap();
        assert_eq!(on_time.num_rows(), 4);
        assert_eq!(late.num_rows(), 0);
    }

    #[test]
    fn late_policy_parses_and_displays() {
        for p in [
            LatePolicy::Absorb,
            LatePolicy::SideChannel,
            LatePolicy::Drop,
        ] {
            assert_eq!(p.to_string().parse::<LatePolicy>().unwrap(), p);
        }
        assert_eq!(
            "side".parse::<LatePolicy>().unwrap(),
            LatePolicy::SideChannel
        );
        assert!("whatever".parse::<LatePolicy>().is_err());
    }
}
