//! Continuous, crash-survivable streaming execution.
//!
//! [`crate::stream`] cuts a pre-materialised table into micro-batches and
//! runs them to completion — it stays as the differential oracle. This
//! module is the production topology around the same per-batch engine:
//!
//! * a [`Source`] produces offset-ordered micro-batches on its own thread,
//!   through a **bounded in-flight buffer** whose producer blocks when the
//!   engine falls behind (backpressure; the journalled depth never exceeds
//!   the cap);
//! * **event-time watermarks** advance per batch, with a configurable
//!   [`LatePolicy`] for rows that arrive behind the watermark — absorbed,
//!   side-channelled, or dropped, each counted and journalled;
//! * **end-to-end acknowledgement**: a batch's offset is acked only after
//!   its [`StateDelta`] and offset are WAL-committed (append + fsync via
//!   the store crate's [`toreador_store::log::DurableLog`]), so a killed
//!   process resumes from the last acked offset with byte-identical state
//!   and zero re-executed acked batches;
//! * [`crate::resilience::RunControl`] cancellation and
//!   [`crate::fault::ChaosPlan`] faults thread through the loop, keeping
//!   the identical-state-or-classified-failure invariant.
//!
//! The loop's own journal (ingestion depths, stalls, watermark motion,
//! late-data counts, acks) rolls up into [`crate::trace::StreamTotals`],
//! which `toreador trace` renders and `labs::compare` diffs.

pub mod durable;
pub mod source;
pub mod watermark;

use std::time::Instant;

use serde::{Deserialize, Serialize};
use toreador_data::table::Table;

use crate::error::{FlowError, Result};
use crate::fault::{FaultKind, KillMode};
use crate::logical::Dataflow;
use crate::metrics::RunMetrics;
use crate::resilience::classify;
use crate::session::{Engine, EngineConfig};
use crate::stream::StreamState;
use crate::trace::{RunTrace, StreamTotals, TraceEventKind, TraceJournal};

pub use durable::{AckLog, AckRecord, DurableSpec, RunningTotals, StateDelta, StreamRecovery};
pub use source::{ArrivalSource, Source, SourceBatch, WindowSource};
pub use watermark::{event_bounds, split_on_time, LatePolicy, WatermarkClock};

use source::BoundedBuffer;

/// Partition coordinate used for stream-loop chaos/retry decisions, so the
/// loop's fault stream decorrelates from the per-batch engines' (whose
/// partitions are small integers).
const STREAM_PARTITION: usize = usize::MAX;

/// A deterministic kill point: die immediately after acking `offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillAtAck {
    pub offset: u64,
    pub mode: KillMode,
}

/// Configuration of a continuous stream run.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Per-batch engine configuration. Its resilience block (retry policy +
    /// chaos plan) and RunControl also govern the stream loop itself;
    /// checkpointing and boundary kills are stripped from per-batch engines
    /// (the ack log is the stream's durability).
    pub engine: EngineConfig,
    /// Event-time column consulted for watermarks.
    pub ts_column: String,
    /// How far behind the max observed event time the watermark trails, ms.
    pub allowed_lateness_ms: i64,
    /// What happens to rows behind the watermark.
    pub late_policy: LatePolicy,
    /// Bounded in-flight buffer capacity (batches), >= 1.
    pub buffer: usize,
    /// Durable ack log (None = flow control + watermarks only, no resume).
    pub durable: Option<DurableSpec>,
    /// Deterministic kill point fired after an ack becomes durable.
    pub kill_at_ack: Option<KillAtAck>,
    /// Caller-supplied pipeline identity folded into the resume-guard
    /// fingerprint (e.g. the flow description).
    pub pipeline_id: String,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            engine: EngineConfig::default(),
            ts_column: "ts".to_owned(),
            allowed_lateness_ms: 0,
            late_policy: LatePolicy::Absorb,
            buffer: 8,
            durable: None,
            kill_at_ack: None,
            pipeline_id: String::new(),
        }
    }
}

impl StreamConfig {
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    pub fn with_ts_column(mut self, ts_column: impl Into<String>) -> Self {
        self.ts_column = ts_column.into();
        self
    }

    pub fn with_allowed_lateness(mut self, ms: i64) -> Self {
        self.allowed_lateness_ms = ms.max(0);
        self
    }

    pub fn with_late_policy(mut self, policy: LatePolicy) -> Self {
        self.late_policy = policy;
        self
    }

    pub fn with_buffer(mut self, cap: usize) -> Self {
        self.buffer = cap.max(1);
        self
    }

    pub fn with_durable(mut self, spec: DurableSpec) -> Self {
        self.durable = Some(spec);
        self
    }

    pub fn with_kill_at_ack(mut self, offset: u64, mode: KillMode) -> Self {
        self.kill_at_ack = Some(KillAtAck { offset, mode });
        self
    }

    pub fn with_pipeline_id(mut self, id: impl Into<String>) -> Self {
        self.pipeline_id = id.into();
        self
    }

    /// FNV-1a fingerprint of everything a resumed stream must agree on.
    /// Guards the ack log: a changed window policy or pipeline would merge
    /// incompatible state, so [`AckLog::open`] refuses it as stale.
    pub fn fingerprint(&self, state_cols: Option<&StateColumns>) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            h ^= 0xff;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        eat(self.ts_column.as_bytes());
        eat(&self.allowed_lateness_ms.to_le_bytes());
        eat(self.late_policy.to_string().as_bytes());
        eat(self.pipeline_id.as_bytes());
        if let Some(cols) = state_cols {
            eat(cols.key.as_bytes());
            eat(cols.count.as_deref().unwrap_or("-").as_bytes());
            eat(cols.sum.as_deref().unwrap_or("-").as_bytes());
        }
        format!("{h:016x}")
    }
}

/// Which result columns feed the carried [`StreamState`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateColumns {
    pub key: String,
    pub count: Option<String>,
    pub sum: Option<String>,
}

/// What the per-batch processor hands back to the loop.
#[derive(Debug)]
pub struct BatchOutput {
    pub table: Table,
    pub metrics: Option<RunMetrics>,
    pub trace: Option<RunTrace>,
}

/// Wire-shaped record of one acknowledged batch (what `toreador stream
/// --json` emits per batch).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AckSummary {
    /// The acked (durable) offset.
    pub offset: u64,
    /// Input rows the batch carried.
    pub rows_in: u64,
    /// Result rows the processed batch emitted.
    pub rows_out: u64,
    /// Watermark after the batch, ms.
    pub watermark_ms: Option<i64>,
    /// Rows the late policy classified as late in this batch.
    pub late_rows: u64,
    /// Dequeue-to-durable-ack latency, µs.
    pub latency_us: u64,
}

/// Outcome of a continuous stream run.
#[derive(Debug)]
pub struct ContinuousRun {
    /// Final carried state (recovered prefix + this process's batches).
    pub state: StreamState,
    /// The stream loop's own journal: ingestion, stalls, watermarks, late
    /// data, acks. Per-batch engine journals are in `batch_traces`.
    pub stream_trace: RunTrace,
    /// Per-executed-batch engine metrics (empty batches run no engine).
    pub batch_metrics: Vec<RunMetrics>,
    /// Per-executed-batch engine journals, aligned with `batch_metrics`.
    pub batch_traces: Vec<RunTrace>,
    /// Per-executed-batch result tables, aligned with `batch_metrics`.
    pub batch_outputs: Vec<Table>,
    /// One entry per acked batch, in offset order (this process only).
    pub acked: Vec<AckSummary>,
    /// Late rows diverted under [`LatePolicy::SideChannel`].
    pub side_channel: Vec<Table>,
    /// Recovery the run started from, when it resumed.
    pub recovery: Option<StreamRecovery>,
}

impl ContinuousRun {
    /// This process's stream totals, counted from the journal.
    pub fn totals(&self) -> StreamTotals {
        self.stream_trace.stream_totals()
    }

    /// Totals across the whole stream lifetime: the recovered prefix's
    /// durable counters plus this process's journal. This is what the
    /// late-data accounting proof checks across kills.
    pub fn cumulative_totals(&self) -> StreamTotals {
        let mut t = self.totals();
        if let Some(r) = &self.recovery {
            t.batches_acked += r.totals.batches_acked;
            t.rows_acked += r.totals.rows_acked;
            t.late_absorbed += r.totals.late_absorbed;
            t.late_side_channelled += r.totals.late_side_channelled;
            t.late_dropped += r.totals.late_dropped;
        }
        t
    }

    /// Canonical (key-sorted) JSON of the final state — the byte-identity
    /// witness for the kill/resume proof.
    pub fn canonical_state(&self) -> String {
        canonical_state_json(&self.state)
    }

    /// Mean dequeue-to-ack latency over this process's acked batches, µs.
    pub fn mean_ack_latency_us(&self) -> f64 {
        if self.acked.is_empty() {
            return 0.0;
        }
        self.acked.iter().map(|a| a.latency_us as f64).sum::<f64>() / self.acked.len() as f64
    }
}

/// Canonical (key-sorted) JSON rendering of a [`StreamState`]. Two states
/// are byte-identical exactly when these strings are equal.
pub fn canonical_state_json(state: &StreamState) -> String {
    #[derive(Serialize)]
    struct Canonical {
        counts: std::collections::BTreeMap<String, i64>,
        sums: std::collections::BTreeMap<String, f64>,
    }
    serde_json::to_string(&Canonical {
        counts: state.counts_sorted(),
        sums: state.sums_sorted(),
    })
    .expect("state serialises")
}

/// Run a continuous stream where each batch executes `make_flow` on a fresh
/// engine and the keyed aggregate columns feed the carried state — the
/// continuous counterpart of [`crate::stream::run_stream`].
pub fn run_continuous(
    source: &mut dyn Source,
    config: &StreamConfig,
    make_flow: &dyn Fn(&Engine, &str) -> Result<Dataflow>,
    key_col: &str,
    count_col: Option<&str>,
    sum_col: Option<&str>,
) -> Result<ContinuousRun> {
    let cols = StateColumns {
        key: key_col.to_owned(),
        count: count_col.map(str::to_owned),
        sum: sum_col.map(str::to_owned),
    };
    let mut engine_cfg = config.engine.clone();
    // The ack log is the stream's durability; per-batch checkpoints would
    // collide on the same run id, and boundary kills belong to batch runs.
    engine_cfg.checkpoint = None;
    engine_cfg.resilience.chaos.boundary_kills.clear();
    run_continuous_with(source, config, Some(&cols), &mut |_, table| {
        let mut engine = Engine::new(engine_cfg.clone());
        engine.register("__batch", table.clone())?;
        let flow = make_flow(&engine, "__batch")?;
        let result = engine.run(&flow)?;
        Ok(BatchOutput {
            table: result.table,
            metrics: Some(result.metrics),
            trace: Some(result.trace),
        })
    })
}

/// The generic continuous loop: backpressure, watermarks, late policy,
/// chaos/cancellation, and durable acks around an arbitrary per-batch
/// processor. `process` is invoked only for batches with on-time rows to
/// execute; every batch — silent ones included — is still acked, so resume
/// offsets stay dense.
pub fn run_continuous_with(
    source: &mut dyn Source,
    config: &StreamConfig,
    state_cols: Option<&StateColumns>,
    process: &mut dyn FnMut(u64, &Table) -> Result<BatchOutput>,
) -> Result<ContinuousRun> {
    let journal = TraceJournal::new();
    let fingerprint = config.fingerprint(state_cols);

    // Open the ack log first: recovery decides where the source starts.
    let (mut ack_log, recovery) = match &config.durable {
        Some(spec) => {
            let (log, rec) = AckLog::open(spec, &fingerprint)?;
            (Some(log), Some(rec))
        }
        None => (None, None),
    };
    let resumed = recovery.as_ref().is_some_and(|r| r.resumed);
    let mut state = recovery
        .as_ref()
        .map(|r| r.state.clone())
        .unwrap_or_default();
    let mut clock = match &recovery {
        Some(r) => WatermarkClock::restore(config.allowed_lateness_ms, r.watermark_ms),
        None => WatermarkClock::new(config.allowed_lateness_ms),
    };
    let next_offset = recovery.as_ref().map_or(0, |r| r.next_offset);
    if resumed {
        journal.record(TraceEventKind::StreamResumed {
            next_offset,
            watermark_ms: clock.watermark(),
        });
    }
    source.seek(next_offset)?;

    let retry = config.engine.resilience.retry;
    let chaos = config.engine.resilience.chaos.clone();
    let control = config.engine.control.clone();

    let mut batch_metrics = Vec::new();
    let mut batch_traces = Vec::new();
    let mut batch_outputs = Vec::new();
    let mut acked = Vec::new();
    let mut side_channel = Vec::new();

    let buffer = BoundedBuffer::new(config.buffer);
    let outcome: Result<()> = std::thread::scope(|s| {
        s.spawn(|| loop {
            match source.next_batch() {
                Ok(Some(batch)) => {
                    if !buffer.push(batch, &journal) {
                        break;
                    }
                }
                Ok(None) => {
                    buffer.finish();
                    break;
                }
                Err(e) => {
                    buffer.fail(e);
                    break;
                }
            }
        });

        let run = (|| -> Result<()> {
            while let Some(batch) = buffer.pop()? {
                let t_start = Instant::now();
                let offset = batch.offset;
                let stage = offset as usize;

                if let Some(ctrl) = &control {
                    if ctrl.is_cancelled() {
                        let reason = ctrl
                            .reason()
                            .unwrap_or_else(|| "stream cancelled".to_owned());
                        journal.record(TraceEventKind::RunCancelled {
                            stage,
                            reason: reason.clone(),
                        });
                        return Err(FlowError::Cancelled(reason));
                    }
                }

                // Stream-level chaos: the loop itself is a fault domain.
                // Crash/panic faults fail the dequeue attempt and retry
                // under the policy; delays stall it. Decisions are pure
                // functions of (seed, offset, attempt), so a chaos run
                // replays bit-identically.
                let mut attempt: u32 = 0;
                loop {
                    match chaos.fault_for(stage, STREAM_PARTITION, attempt) {
                        None => break,
                        Some(FaultKind::Delay { micros }) => {
                            journal.record(TraceEventKind::FaultInjected {
                                stage,
                                partition: STREAM_PARTITION,
                                attempt,
                            });
                            std::thread::sleep(std::time::Duration::from_micros(micros));
                            break;
                        }
                        Some(kind) => {
                            journal.record(TraceEventKind::FaultInjected {
                                stage,
                                partition: STREAM_PARTITION,
                                attempt,
                            });
                            let budget_ok = control
                                .as_ref()
                                .map_or(true, |c| c.try_reserve_retry(retry.run_retry_budget));
                            if attempt + 1 < retry.max_attempts.max(1) && budget_ok {
                                let delay = retry.delay_us(stage, STREAM_PARTITION, attempt + 1);
                                if delay > 0 {
                                    journal.record(TraceEventKind::BackoffScheduled {
                                        stage,
                                        partition: STREAM_PARTITION,
                                        attempt: attempt + 1,
                                        delay_us: delay,
                                    });
                                    std::thread::sleep(std::time::Duration::from_micros(delay));
                                }
                                attempt += 1;
                                journal.record(TraceEventKind::TaskRetried {
                                    stage,
                                    partition: STREAM_PARTITION,
                                    attempt,
                                });
                                continue;
                            }
                            let err = match kind {
                                FaultKind::Panic => FlowError::TaskPanicked {
                                    stage,
                                    partition: STREAM_PARTITION,
                                    attempts: attempt + 1,
                                    message: "injected panic (stream loop)".to_owned(),
                                },
                                _ => FlowError::TaskFailed {
                                    stage,
                                    partition: STREAM_PARTITION,
                                    attempts: attempt + 1,
                                    message: "injected fault (stream loop)".to_owned(),
                                },
                            };
                            debug_assert!(matches!(
                                classify(&err),
                                crate::resilience::ErrorClass::Transient
                            ));
                            return Err(err);
                        }
                    }
                }

                // Classify against the watermark as it stood before this
                // batch, then let the batch advance it.
                let watermark_before = clock.watermark();
                let (on_time, late) =
                    split_on_time(&batch.rows, &config.ts_column, watermark_before)?;
                let late_rows = late.num_rows() as u64;
                let (to_process, late_counts) = match config.late_policy {
                    LatePolicy::Absorb => {
                        if late_rows > 0 {
                            journal.record(TraceEventKind::LateDataAbsorbed {
                                offset,
                                rows: late_rows,
                            });
                        }
                        (batch.rows.clone(), (late_rows, 0, 0))
                    }
                    LatePolicy::SideChannel => {
                        if late_rows > 0 {
                            journal.record(TraceEventKind::LateDataSideChannelled {
                                offset,
                                rows: late_rows,
                            });
                            side_channel.push(late);
                        }
                        (on_time, (0, late_rows, 0))
                    }
                    LatePolicy::Drop => {
                        if late_rows > 0 {
                            journal.record(TraceEventKind::LateDataDropped {
                                offset,
                                rows: late_rows,
                            });
                        }
                        (on_time, (0, 0, late_rows))
                    }
                };
                if let Some((_, max_ts)) = event_bounds(&batch.rows, &config.ts_column)? {
                    if let Some(watermark_ms) = clock.observe(max_ts) {
                        journal.record(TraceEventKind::WatermarkAdvanced {
                            offset,
                            watermark_ms,
                        });
                    }
                }

                let output = if to_process.num_rows() > 0 {
                    Some(process(offset, &to_process)?)
                } else {
                    None
                };
                let rows_out = output.as_ref().map_or(0, |o| o.table.num_rows() as u64);

                let delta = match (state_cols, &output) {
                    (Some(cols), Some(out)) => StateDelta::from_batch(
                        &out.table,
                        &cols.key,
                        cols.count.as_deref(),
                        cols.sum.as_deref(),
                    )?,
                    _ => StateDelta::default(),
                };
                // Live state goes through the same delta-apply path WAL
                // replay uses — that sameness is the byte-identity proof.
                delta.apply_to(&mut state);

                let rec = AckRecord {
                    offset,
                    rows: batch.rows.num_rows() as u64,
                    watermark_ms: clock.watermark(),
                    late_absorbed: late_counts.0,
                    late_side_channelled: late_counts.1,
                    late_dropped: late_counts.2,
                    delta,
                };
                if let Some(log) = ack_log.as_mut() {
                    log.ack(&rec, &state)?;
                }
                let latency_us = t_start.elapsed().as_micros() as u64;
                journal.record(TraceEventKind::BatchAcked {
                    offset,
                    rows: rec.rows,
                    latency_us,
                });
                acked.push(AckSummary {
                    offset,
                    rows_in: rec.rows,
                    rows_out,
                    watermark_ms: rec.watermark_ms,
                    late_rows,
                    latency_us,
                });
                if let Some(out) = output {
                    batch_outputs.push(out.table);
                    batch_metrics.push(out.metrics.unwrap_or_default());
                    batch_traces.push(out.trace.unwrap_or_default());
                }

                if let Some(kill) = &config.kill_at_ack {
                    if kill.offset == offset {
                        match kill.mode {
                            // The ack above is durable: a real death here is
                            // exactly the boundary the resume proof kills at.
                            KillMode::Exit { code } => std::process::exit(code),
                            KillMode::Halt => {
                                return Err(FlowError::KilledAtAck { offset });
                            }
                        }
                    }
                }
            }
            Ok(())
        })();
        // Wake a producer blocked on a full buffer before leaving the
        // scope, or the join would deadlock.
        buffer.abort();
        run
    });
    outcome?;

    Ok(ContinuousRun {
        state,
        stream_trace: journal.snapshot(),
        batch_metrics,
        batch_traces,
        batch_outputs,
        acked,
        side_channel,
        recovery,
    })
}
