//! Stream sources and the bounded in-flight buffer.
//!
//! A [`Source`] produces micro-batches in offset order; [`BoundedBuffer`]
//! sits between the producing thread and the consuming engine loop and
//! *blocks the producer* when the engine falls behind — backpressure, the
//! property that makes continuous ingestion survivable. Every push journals
//! the post-push buffer depth, so the bound (`depth <= cap`) is provable
//! from the trace rather than asserted on faith.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use toreador_data::table::Table;

use crate::error::{FlowError, Result};
use crate::stream::MicroBatcher;
use crate::trace::{TraceEventKind, TraceJournal};

/// One micro-batch with its dense, zero-based stream offset.
#[derive(Debug, Clone)]
pub struct SourceBatch {
    pub offset: u64,
    pub rows: Table,
}

/// A replayable producer of offset-ordered micro-batches.
///
/// `seek` is what makes end-to-end acknowledgement work: after a crash the
/// loop recovers the last acked offset from the WAL and repositions the
/// source so no acked batch is ever produced (or executed) again.
pub trait Source: Send {
    /// Position the source so the next batch returned has offset `next`.
    fn seek(&mut self, next: u64) -> Result<()>;
    /// The next micro-batch in offset order, or `None` when exhausted.
    fn next_batch(&mut self) -> Result<Option<SourceBatch>>;
}

/// A pre-materialised table cut into event-time tumbling windows (the
/// [`MicroBatcher`] semantics) and replayed as a source — the bridge that
/// lets existing window-mode campaigns run through the continuous loop.
#[derive(Debug)]
pub struct WindowSource {
    batches: Vec<Table>,
    cursor: u64,
}

impl WindowSource {
    /// Cut `table` into tumbling windows of `window_ms` over `ts_column`;
    /// window index = stream offset (silent windows are produced too, so
    /// offsets stay dense).
    pub fn tumbling(table: &Table, ts_column: &str, window_ms: i64) -> Result<Self> {
        let batcher = MicroBatcher::tumbling(table, ts_column, window_ms)?;
        Ok(WindowSource {
            batches: batcher.batches().to_vec(),
            cursor: 0,
        })
    }

    pub fn num_batches(&self) -> usize {
        self.batches.len()
    }
}

impl Source for WindowSource {
    fn seek(&mut self, next: u64) -> Result<()> {
        if next > self.batches.len() as u64 {
            return Err(FlowError::Stream(format!(
                "seek past the end: offset {next} of {}",
                self.batches.len()
            )));
        }
        self.cursor = next;
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<SourceBatch>> {
        let i = self.cursor as usize;
        if i >= self.batches.len() {
            return Ok(None);
        }
        self.cursor += 1;
        Ok(Some(SourceBatch {
            offset: i as u64,
            rows: self.batches[i].clone(),
        }))
    }
}

/// A table replayed in *arrival order*. Event time and arrival order are
/// decoupled here — rows carry their own timestamps and may arrive out of
/// order — which is what exercises the watermark / late-data machinery.
///
/// Batches are cut either every fixed number of rows ([`ArrivalSource::new`])
/// or at event-window boundaries in row order ([`ArrivalSource::windows`]).
#[derive(Debug)]
pub struct ArrivalSource {
    table: Table,
    /// Half-open row ranges, one per batch, in arrival order.
    bounds: Vec<(usize, usize)>,
    cursor: u64,
}

impl ArrivalSource {
    pub fn new(table: Table, batch_rows: usize) -> Result<Self> {
        if batch_rows == 0 {
            return Err(FlowError::Stream("batch size must be positive".to_owned()));
        }
        let bounds = (0..table.num_rows())
            .step_by(batch_rows)
            .map(|start| (start, (start + batch_rows).min(table.num_rows())))
            .collect();
        Ok(ArrivalSource {
            table,
            bounds,
            cursor: 0,
        })
    }

    /// Cut arrival-ordered batches at event-time window boundaries: a new
    /// batch starts when a row's window index (`ts.div_euclid(window_ms)`)
    /// moves strictly *forward*; rows whose window index is at or behind
    /// the open batch's stay in it (they arrived now, however old their
    /// timestamps are). For a table whose timestamps are non-decreasing
    /// this is exactly [`MicroBatcher::tumbling`] minus the empty windows —
    /// but on disordered input it preserves arrival order instead of
    /// quietly re-sorting the disorder away, which is what lets the
    /// watermark machinery see late rows at all.
    pub fn windows(table: &Table, ts_column: &str, window_ms: i64) -> Result<Self> {
        if window_ms <= 0 {
            return Err(FlowError::Stream("window must be positive".to_owned()));
        }
        let ts = table.column(ts_column)?;
        let mut bounds: Vec<(usize, usize)> = Vec::new();
        let mut current: Option<(usize, i64)> = None; // (batch start row, window)
        for (i, v) in ts.iter_values().enumerate() {
            let w = super::watermark::event_ts(v)?.div_euclid(window_ms);
            match current {
                None => current = Some((i, w)),
                Some((start, open)) if w > open => {
                    bounds.push((start, i));
                    current = Some((i, w));
                }
                Some(_) => {}
            }
        }
        if let Some((start, _)) = current {
            bounds.push((start, table.num_rows()));
        }
        Ok(ArrivalSource {
            table: table.clone(),
            bounds,
            cursor: 0,
        })
    }

    pub fn num_batches(&self) -> usize {
        self.bounds.len()
    }
}

impl Source for ArrivalSource {
    fn seek(&mut self, next: u64) -> Result<()> {
        if next > self.bounds.len() as u64 {
            return Err(FlowError::Stream(format!(
                "seek past the end: offset {next} of {}",
                self.bounds.len()
            )));
        }
        self.cursor = next;
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<SourceBatch>> {
        let Some(&(start, end)) = self.bounds.get(self.cursor as usize) else {
            return Ok(None);
        };
        let rows = self.table.slice(start, end).map_err(FlowError::Data)?;
        let offset = self.cursor;
        self.cursor += 1;
        Ok(Some(SourceBatch { offset, rows }))
    }
}

/// The bounded in-flight buffer between producer and consumer.
pub(crate) struct BoundedBuffer {
    cap: usize,
    state: Mutex<BufferState>,
    not_full: Condvar,
    not_empty: Condvar,
}

struct BufferState {
    queue: VecDeque<SourceBatch>,
    /// Producer finished cleanly; the queue drains and then pop returns None.
    finished: bool,
    /// Consumer left (error or kill): the producer stops instead of
    /// blocking forever on a full queue.
    aborted: bool,
    /// Producer-side failure, surfaced to the consumer on the next pop.
    error: Option<FlowError>,
}

impl BoundedBuffer {
    pub(crate) fn new(cap: usize) -> Self {
        BoundedBuffer {
            cap: cap.max(1),
            state: Mutex::new(BufferState {
                queue: VecDeque::new(),
                finished: false,
                aborted: false,
                error: None,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Producer side: enqueue, blocking while the buffer is at capacity.
    /// Journals the post-push depth (always `<= cap`) and, when the push
    /// had to wait, a `BackpressureStall` with the time spent blocked.
    /// Returns false when the consumer is gone.
    pub(crate) fn push(&self, batch: SourceBatch, journal: &TraceJournal) -> bool {
        let offset = batch.offset;
        let rows = batch.rows.num_rows() as u64;
        let mut state = self.state.lock().expect("buffer mutex poisoned");
        let mut waited_us = 0u64;
        while state.queue.len() >= self.cap && !state.aborted {
            let t0 = Instant::now();
            state = self.not_full.wait(state).expect("buffer mutex poisoned");
            waited_us += t0.elapsed().as_micros() as u64;
        }
        if state.aborted {
            return false;
        }
        if waited_us > 0 {
            journal.record(TraceEventKind::BackpressureStall { offset, waited_us });
        }
        state.queue.push_back(batch);
        let depth = state.queue.len() as u64;
        journal.record(TraceEventKind::BatchIngested {
            offset,
            rows,
            depth,
        });
        drop(state);
        self.not_empty.notify_one();
        true
    }

    /// Producer side: no more batches are coming.
    pub(crate) fn finish(&self) {
        self.state.lock().expect("buffer mutex poisoned").finished = true;
        self.not_empty.notify_all();
    }

    /// Producer side: the source failed; the consumer sees the error.
    pub(crate) fn fail(&self, err: FlowError) {
        let mut state = self.state.lock().expect("buffer mutex poisoned");
        state.error = Some(err);
        state.finished = true;
        drop(state);
        self.not_empty.notify_all();
    }

    /// Consumer side: the loop is exiting early; wake a blocked producer.
    pub(crate) fn abort(&self) {
        self.state.lock().expect("buffer mutex poisoned").aborted = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Consumer side: dequeue the next batch, blocking until one arrives.
    /// `Ok(None)` means the producer finished and the queue drained.
    pub(crate) fn pop(&self) -> Result<Option<SourceBatch>> {
        let mut state = self.state.lock().expect("buffer mutex poisoned");
        loop {
            if let Some(batch) = state.queue.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Ok(Some(batch));
            }
            if let Some(err) = state.error.take() {
                return Err(err);
            }
            if state.finished {
                return Ok(None);
            }
            state = self.not_empty.wait(state).expect("buffer mutex poisoned");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toreador_data::schema::{Field, Schema};
    use toreador_data::value::{DataType, Value};

    fn ts_table(stamps: &[i64]) -> Table {
        let schema = Schema::new(vec![Field::new("ts", DataType::Timestamp)]).unwrap();
        Table::from_rows(schema, stamps.iter().map(|&t| vec![Value::Timestamp(t)])).unwrap()
    }

    #[test]
    fn window_source_replays_and_seeks() {
        let t = ts_table(&[0, 999, 1000, 3500]);
        let mut s = WindowSource::tumbling(&t, "ts", 1000).unwrap();
        assert_eq!(s.num_batches(), 4);
        let b0 = s.next_batch().unwrap().unwrap();
        assert_eq!((b0.offset, b0.rows.num_rows()), (0, 2));
        s.seek(3).unwrap();
        let b3 = s.next_batch().unwrap().unwrap();
        assert_eq!((b3.offset, b3.rows.num_rows()), (3, 1));
        assert!(s.next_batch().unwrap().is_none());
        assert!(s.seek(5).is_err(), "seek past the end must refuse");
    }

    #[test]
    fn arrival_source_cuts_fixed_batches() {
        let t = ts_table(&[5, 4, 3, 2, 1]);
        let mut s = ArrivalSource::new(t, 2).unwrap();
        assert_eq!(s.num_batches(), 3);
        let sizes: Vec<usize> = std::iter::from_fn(|| s.next_batch().unwrap())
            .map(|b| b.rows.num_rows())
            .collect();
        assert_eq!(sizes, vec![2, 2, 1]);
        s.seek(2).unwrap();
        assert_eq!(s.next_batch().unwrap().unwrap().offset, 2);
        assert!(ArrivalSource::new(ts_table(&[1]), 0).is_err());
    }

    #[test]
    fn arrival_windows_keep_late_rows_in_the_open_batch() {
        // Rows 0-1 in window 0, row 2 opens window 1, row 3 is a late
        // arrival (window 0) that stays in the open batch, row 4 opens
        // window 3.
        let t = ts_table(&[100, 900, 1_100, 150, 3_200]);
        let mut s = ArrivalSource::windows(&t, "ts", 1000).unwrap();
        assert_eq!(s.num_batches(), 3);
        let sizes: Vec<usize> = std::iter::from_fn(|| s.next_batch().unwrap())
            .map(|b| b.rows.num_rows())
            .collect();
        assert_eq!(sizes, vec![2, 2, 1]);
        assert!(ArrivalSource::windows(&t, "ts", 0).is_err());
    }

    #[test]
    fn arrival_windows_match_tumbling_on_ordered_input() {
        // Non-decreasing timestamps: same cuts as the event-time tumbling
        // batcher, minus its empty windows.
        let t = ts_table(&[0, 10, 1_000, 1_001, 5_000, 5_000]);
        let mut arrival = ArrivalSource::windows(&t, "ts", 1000).unwrap();
        let tumbling = MicroBatcher::tumbling(&t, "ts", 1000).unwrap();
        let nonempty: Vec<&Table> = tumbling
            .batches()
            .iter()
            .filter(|b| b.num_rows() > 0)
            .collect();
        let cut: Vec<Table> = std::iter::from_fn(|| arrival.next_batch().unwrap())
            .map(|b| b.rows)
            .collect();
        assert_eq!(cut.len(), nonempty.len());
        for (a, b) in cut.iter().zip(nonempty) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn buffer_bounds_depth_and_journals_stalls() {
        let journal = TraceJournal::new();
        let buf = BoundedBuffer::new(2);
        let table = ts_table(&[1]);
        std::thread::scope(|s| {
            s.spawn(|| {
                for offset in 0..6u64 {
                    assert!(buf.push(
                        SourceBatch {
                            offset,
                            rows: table.clone(),
                        },
                        &journal,
                    ));
                }
                buf.finish();
            });
            // Slow consumer: the producer must stall at depth 2.
            let mut seen = 0;
            while let Some(b) = buf.pop().unwrap() {
                assert_eq!(b.offset, seen);
                seen += 1;
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            assert_eq!(seen, 6);
        });
        let totals = journal.snapshot().stream_totals();
        assert!(totals.max_in_flight <= 2, "bound broken: {totals:?}");
        assert!(
            totals.stalls > 0,
            "slow consumer never stalled the producer"
        );
    }

    #[test]
    fn abort_unblocks_a_stalled_producer() {
        let journal = TraceJournal::new();
        let buf = BoundedBuffer::new(1);
        let table = ts_table(&[1]);
        std::thread::scope(|s| {
            let pushed = s.spawn(|| {
                let mut n = 0;
                for offset in 0..10u64 {
                    if !buf.push(
                        SourceBatch {
                            offset,
                            rows: table.clone(),
                        },
                        &journal,
                    ) {
                        break;
                    }
                    n += 1;
                }
                n
            });
            // Take one batch, then walk away mid-stream.
            assert!(buf.pop().unwrap().is_some());
            buf.abort();
            assert!(pushed.join().unwrap() < 10, "abort must stop the producer");
        });
    }
}
