//! The durable ack log: end-to-end acknowledgement over the store's WAL.
//!
//! A batch is *acked* only once its [`StateDelta`] and offset are appended
//! to a [`DurableLog`] and fsynced. Recovery replays snapshot-then-records
//! through the **same** `StateDelta::apply_to` path live execution uses, so
//! a killed process resumes with byte-identical state: identical per-key
//! totals applied in identical order, with floats surviving the JSON round
//! trip exactly (the vendored serde_json round-trips f64).
//!
//! The log is guarded by a manifest fingerprint (stream config + pipeline
//! identity): resuming under a changed configuration would silently merge
//! incompatible state, so it is refused as a stale checkpoint instead.

use std::collections::BTreeMap;
use std::path::PathBuf;

use serde::{Deserialize, Serialize};
use toreador_data::table::Table;
use toreador_store::log::{DurableLog, LogConfig};

use crate::error::{FlowError, Result};
use crate::stream::StreamState;

/// Where and how the ack log persists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurableSpec {
    /// Directory holding the WAL segments and snapshots (one stream per
    /// directory; the store's DirLock enforces single ownership).
    pub dir: PathBuf,
    /// Resume from existing state instead of requiring a fresh directory.
    pub resume: bool,
    /// Cut a state snapshot every this many acks (compacts the WAL).
    pub snapshot_every: u64,
}

impl DurableSpec {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurableSpec {
            dir: dir.into(),
            resume: false,
            snapshot_every: 64,
        }
    }

    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    pub fn with_snapshot_every(mut self, every: u64) -> Self {
        self.snapshot_every = every.max(1);
        self
    }
}

/// One batch's additive contribution to the carried [`StreamState`],
/// key-sorted so serialisation (and therefore replay) is deterministic.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct StateDelta {
    pub counts: BTreeMap<String, i64>,
    pub sums: BTreeMap<String, f64>,
}

impl StateDelta {
    /// Aggregate a batch result into a delta: `key_col` identifies the
    /// group, `count_col`/`sum_col` accumulate additively when present —
    /// the delta-shaped mirror of [`StreamState::absorb`].
    pub fn from_batch(
        batch_result: &Table,
        key_col: &str,
        count_col: Option<&str>,
        sum_col: Option<&str>,
    ) -> Result<Self> {
        let mut delta = StateDelta::default();
        for row_idx in 0..batch_result.num_rows() {
            let key = batch_result.value(row_idx, key_col)?.to_string();
            if let Some(cc) = count_col {
                let v = batch_result.value(row_idx, cc)?;
                if !v.is_null() {
                    *delta.counts.entry(key.clone()).or_insert(0) +=
                        v.as_int().map_err(FlowError::Data)?;
                }
            }
            if let Some(sc) = sum_col {
                let v = batch_result.value(row_idx, sc)?;
                if !v.is_null() {
                    *delta.sums.entry(key.clone()).or_insert(0.0) +=
                        v.as_float().map_err(FlowError::Data)?;
                }
            }
        }
        Ok(delta)
    }

    /// Fold this delta into `state` in key order. Live execution and WAL
    /// replay both come through here — the shared path is the byte-identity
    /// argument, not a convenience.
    pub fn apply_to(&self, state: &mut StreamState) {
        for (k, v) in &self.counts {
            state.add_count(k, *v);
        }
        for (k, v) in &self.sums {
            state.add_sum(k, *v);
        }
    }

    pub fn is_empty(&self) -> bool {
        self.counts.is_empty() && self.sums.is_empty()
    }
}

/// One WAL entry: the acknowledgement of a single batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AckRecord {
    /// The batch's stream offset (dense; recovery verifies contiguity).
    pub offset: u64,
    /// Input rows the batch carried.
    pub rows: u64,
    /// Watermark after the batch was observed.
    pub watermark_ms: Option<i64>,
    pub late_absorbed: u64,
    pub late_side_channelled: u64,
    pub late_dropped: u64,
    pub delta: StateDelta,
}

/// On-disk record envelope. The manifest is always the log's first entry;
/// a fingerprint mismatch on resume is refused as stale.
#[derive(Debug, Serialize, Deserialize)]
enum LogRecord {
    Manifest { fingerprint: String },
    Ack(AckRecord),
}

/// Snapshot payload: the full canonical state plus resume coordinates.
#[derive(Debug, Serialize, Deserialize)]
struct StreamSnapshot {
    fingerprint: String,
    next_offset: u64,
    watermark_ms: Option<i64>,
    counts: BTreeMap<String, i64>,
    sums: BTreeMap<String, f64>,
    totals: RunningTotals,
}

/// Counters that must survive a kill so accounting stays exact across
/// resumes (the late-data acceptance proof reads these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningTotals {
    pub batches_acked: u64,
    pub rows_acked: u64,
    pub late_absorbed: u64,
    pub late_side_channelled: u64,
    pub late_dropped: u64,
}

impl RunningTotals {
    fn apply(&mut self, rec: &AckRecord) {
        self.batches_acked += 1;
        self.rows_acked += rec.rows;
        self.late_absorbed += rec.late_absorbed;
        self.late_side_channelled += rec.late_side_channelled;
        self.late_dropped += rec.late_dropped;
    }
}

/// What opening the ack log recovered.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StreamRecovery {
    /// The first offset the loop should execute (last acked + 1; 0 fresh).
    pub next_offset: u64,
    /// Watermark as of the last ack.
    pub watermark_ms: Option<i64>,
    /// The recovered carried state.
    pub state: StreamState,
    /// Accounting carried over from before the kill.
    pub totals: RunningTotals,
    /// True when any durable state existed (the run is a resume).
    pub resumed: bool,
}

fn stream_err(context: &str, e: impl std::fmt::Display) -> FlowError {
    FlowError::Stream(format!("{context}: {e}"))
}

/// The ack WAL: append-fsync per batch, periodic snapshot compaction.
pub struct AckLog {
    log: DurableLog,
    dir: PathBuf,
    fingerprint: String,
    snapshot_every: u64,
    acks_since_snapshot: u64,
    totals: RunningTotals,
    next_offset: u64,
}

impl AckLog {
    /// Open the log, recovering any durable state. A non-empty directory
    /// with `resume == false` is refused (accidentally merging two streams'
    /// state would be silent corruption); a fingerprint mismatch on resume
    /// is refused as a stale checkpoint.
    pub fn open(spec: &DurableSpec, fingerprint: &str) -> Result<(AckLog, StreamRecovery)> {
        let (mut log, recovered) = DurableLog::open(&spec.dir, LogConfig::default())
            .map_err(|e| stream_err("opening ack log", e))?;
        let dir_name = spec.dir.display().to_string();
        let had_state = recovered.snapshot.is_some() || !recovered.records.is_empty();
        if had_state && !spec.resume {
            return Err(FlowError::Stream(format!(
                "ack log {dir_name:?} already holds a stream; pass resume to continue it"
            )));
        }

        let mut recovery = StreamRecovery::default();
        if let Some(snap_bytes) = &recovered.snapshot {
            let snap: StreamSnapshot = std::str::from_utf8(snap_bytes)
                .map_err(|e| stream_err("decoding stream snapshot", e))
                .and_then(|s| {
                    serde_json::from_str(s).map_err(|e| stream_err("decoding stream snapshot", e))
                })?;
            if snap.fingerprint != fingerprint {
                return Err(FlowError::StaleCheckpoint {
                    run_id: dir_name,
                    mismatch: "stream config".to_owned(),
                });
            }
            for (k, v) in &snap.counts {
                recovery.state.add_count(k, *v);
            }
            for (k, v) in &snap.sums {
                recovery.state.add_sum(k, *v);
            }
            recovery.next_offset = snap.next_offset;
            recovery.watermark_ms = snap.watermark_ms;
            recovery.totals = snap.totals;
        }
        for (lsn, payload) in &recovered.records {
            let record: LogRecord = std::str::from_utf8(payload)
                .map_err(|e| stream_err(&format!("decoding ack record lsn {lsn}"), e))
                .and_then(|s| {
                    serde_json::from_str(s)
                        .map_err(|e| stream_err(&format!("decoding ack record lsn {lsn}"), e))
                })?;
            match record {
                LogRecord::Manifest { fingerprint: f } => {
                    if f != fingerprint {
                        return Err(FlowError::StaleCheckpoint {
                            run_id: dir_name,
                            mismatch: "stream config".to_owned(),
                        });
                    }
                }
                LogRecord::Ack(rec) => {
                    if rec.offset != recovery.next_offset {
                        return Err(FlowError::Stream(format!(
                            "ack log {dir_name:?} is not contiguous: expected offset {}, \
                             found {} at lsn {lsn}",
                            recovery.next_offset, rec.offset
                        )));
                    }
                    rec.delta.apply_to(&mut recovery.state);
                    recovery.watermark_ms = rec.watermark_ms;
                    recovery.totals.apply(&rec);
                    recovery.next_offset = rec.offset + 1;
                }
            }
        }
        recovery.resumed = had_state;

        if !had_state {
            let manifest = serde_json::to_string(&LogRecord::Manifest {
                fingerprint: fingerprint.to_owned(),
            })
            .map_err(|e| stream_err("encoding manifest", e))?;
            log.append(manifest.as_bytes())
                .and_then(|_| log.sync())
                .map_err(|e| stream_err("writing manifest", e))?;
        }

        let ack_log = AckLog {
            log,
            dir: spec.dir.clone(),
            fingerprint: fingerprint.to_owned(),
            snapshot_every: spec.snapshot_every.max(1),
            acks_since_snapshot: 0,
            totals: recovery.totals,
            next_offset: recovery.next_offset,
        };
        Ok((ack_log, recovery))
    }

    /// Durably acknowledge one batch: append + fsync its record, then cut a
    /// snapshot of `state` (which must already include the record's delta)
    /// every `snapshot_every` acks. Only after this returns may the caller
    /// journal `BatchAcked` or fire a kill point.
    pub fn ack(&mut self, rec: &AckRecord, state: &StreamState) -> Result<()> {
        debug_assert_eq!(rec.offset, self.next_offset, "acks must stay dense");
        let payload = serde_json::to_string(&LogRecord::Ack(rec.clone()))
            .map_err(|e| stream_err("encoding ack record", e))?;
        self.log
            .append(payload.as_bytes())
            .and_then(|_| self.log.sync())
            .map_err(|e| stream_err("appending ack record", e))?;
        self.totals.apply(rec);
        self.next_offset = rec.offset + 1;
        self.acks_since_snapshot += 1;
        if self.acks_since_snapshot >= self.snapshot_every {
            let snap = StreamSnapshot {
                fingerprint: self.fingerprint.clone(),
                next_offset: self.next_offset,
                watermark_ms: rec.watermark_ms,
                counts: state.counts_sorted(),
                sums: state.sums_sorted(),
                totals: self.totals,
            };
            let bytes = serde_json::to_string(&snap)
                .map_err(|e| stream_err("encoding stream snapshot", e))?;
            self.log
                .snapshot(bytes.as_bytes())
                .map_err(|e| stream_err("writing stream snapshot", e))?;
            self.acks_since_snapshot = 0;
        }
        Ok(())
    }

    /// The directory this log owns.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toreador_data::schema::{Field, Schema};
    use toreador_data::value::{DataType, Value};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "toreador-acklog-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn delta(key: &str, n: i64, s: f64) -> StateDelta {
        let mut d = StateDelta::default();
        d.counts.insert(key.to_owned(), n);
        d.sums.insert(key.to_owned(), s);
        d
    }

    fn rec(offset: u64, d: StateDelta) -> AckRecord {
        AckRecord {
            offset,
            rows: 10,
            watermark_ms: Some(offset as i64 * 100),
            late_absorbed: 0,
            late_side_channelled: 0,
            late_dropped: offset, // distinguishable accounting per record
            delta: d,
        }
    }

    #[test]
    fn acks_replay_to_identical_state() {
        let dir = tmp_dir("replay");
        let mut live = StreamState::new();
        {
            let (mut log, recovery) = AckLog::open(&DurableSpec::new(&dir), "fp-1").unwrap();
            assert!(!recovery.resumed);
            for k in 0..5u64 {
                let r = rec(k, delta("a", 1, 0.25));
                r.delta.apply_to(&mut live);
                log.ack(&r, &live).unwrap();
            }
        }
        let spec = DurableSpec::new(&dir).with_resume(true);
        let (_log, recovery) = AckLog::open(&spec, "fp-1").unwrap();
        assert!(recovery.resumed);
        assert_eq!(recovery.next_offset, 5);
        assert_eq!(recovery.watermark_ms, Some(400));
        assert_eq!(recovery.state, live);
        assert_eq!(recovery.totals.batches_acked, 5);
        assert_eq!(recovery.totals.rows_acked, 50);
        assert_eq!(recovery.totals.late_dropped, 10, "sum of per-record counts");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshots_compact_and_recover_through_the_same_path() {
        let dir = tmp_dir("snap");
        let mut live = StreamState::new();
        {
            let spec = DurableSpec::new(&dir).with_snapshot_every(3);
            let (mut log, _) = AckLog::open(&spec, "fp-1").unwrap();
            for k in 0..8u64 {
                let r = rec(k, delta(&format!("k{}", k % 2), 2, 0.5));
                r.delta.apply_to(&mut live);
                log.ack(&r, &live).unwrap();
            }
        }
        let spec = DurableSpec::new(&dir).with_resume(true);
        let (_log, recovery) = AckLog::open(&spec, "fp-1").unwrap();
        assert_eq!(recovery.next_offset, 8);
        assert_eq!(
            recovery.state, live,
            "snapshot + tail replay must match live"
        );
        assert_eq!(recovery.totals.batches_acked, 8);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fresh_open_refuses_existing_stream_and_stale_fingerprints() {
        let dir = tmp_dir("guard");
        {
            let (mut log, _) = AckLog::open(&DurableSpec::new(&dir), "fp-1").unwrap();
            let mut live = StreamState::new();
            let r = rec(0, delta("a", 1, 1.0));
            r.delta.apply_to(&mut live);
            log.ack(&r, &live).unwrap();
        }
        // Same dir, no resume: refused.
        let err = AckLog::open(&DurableSpec::new(&dir), "fp-1")
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, FlowError::Stream(_)), "got {err:?}");
        // Resume under a different config: stale.
        let spec = DurableSpec::new(&dir).with_resume(true);
        let err = AckLog::open(&spec, "fp-2").map(|_| ()).unwrap_err();
        assert!(
            matches!(err, FlowError::StaleCheckpoint { ref mismatch, .. } if mismatch == "stream config"),
            "got {err:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delta_from_batch_mirrors_absorb() {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Str),
            Field::new("n", DataType::Int),
            Field::new("s", DataType::Float),
        ])
        .unwrap();
        let t = Table::from_rows(
            schema,
            vec![
                vec!["a".into(), Value::Int(2), Value::Float(1.5)],
                vec!["b".into(), Value::Int(1), Value::Float(9.0)],
                vec!["a".into(), Value::Int(3), Value::Float(0.5)],
            ],
        )
        .unwrap();
        let d = StateDelta::from_batch(&t, "k", Some("n"), Some("s")).unwrap();
        let mut via_delta = StreamState::new();
        d.apply_to(&mut via_delta);
        let mut via_absorb = StreamState::new();
        via_absorb.absorb(&t, "k", Some("n"), Some("s")).unwrap();
        assert_eq!(via_delta.count("a"), via_absorb.count("a"));
        assert_eq!(via_delta.sum("b"), via_absorb.sum("b"));
        assert!(!d.is_empty());
        assert!(StateDelta::default().is_empty());
    }
}
