//! Hash shuffle with a binary row codec.
//!
//! A shuffle redistributes rows so that all rows sharing a key land in the
//! same partition — the data-movement step behind aggregates, joins and
//! `distinct`. In Spark this crosses the network; here it crosses a byte
//! buffer: rows are *encoded* into per-target [`bytes::Bytes`] buffers and
//! *decoded* on the other side. Round-tripping through bytes keeps the code
//! path honest (costs scale with row width, exactly like a real shuffle)
//! and gives the metrics layer true shuffle-byte counts.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use toreador_data::column::{Column, Validity};
use toreador_data::schema::Schema;
use toreador_data::table::{Table, TableBuilder};
use toreador_data::value::{Row, Value};

use crate::error::{FlowError, Result};
use crate::trace::{TraceEventKind, TraceJournal};

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_TS: u8 = 5;

/// Append one value to the buffer.
fn encode_value(v: &Value, buf: &mut BytesMut) {
    match v {
        Value::Null => buf.put_u8(TAG_NULL),
        Value::Bool(b) => {
            buf.put_u8(TAG_BOOL);
            buf.put_u8(*b as u8);
        }
        Value::Int(i) => {
            buf.put_u8(TAG_INT);
            buf.put_i64_le(*i);
        }
        Value::Float(x) => {
            buf.put_u8(TAG_FLOAT);
            buf.put_f64_le(*x);
        }
        Value::Str(s) => {
            buf.put_u8(TAG_STR);
            buf.put_u32_le(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Value::Timestamp(t) => {
            buf.put_u8(TAG_TS);
            buf.put_i64_le(*t);
        }
    }
}

fn decode_value(buf: &mut Bytes) -> Result<Value> {
    let short = || FlowError::Codec("truncated shuffle payload".to_owned());
    if buf.remaining() < 1 {
        return Err(short());
    }
    let tag = buf.get_u8();
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_BOOL => {
            if buf.remaining() < 1 {
                return Err(short());
            }
            Value::Bool(buf.get_u8() != 0)
        }
        TAG_INT => {
            if buf.remaining() < 8 {
                return Err(short());
            }
            Value::Int(buf.get_i64_le())
        }
        TAG_FLOAT => {
            if buf.remaining() < 8 {
                return Err(short());
            }
            Value::Float(buf.get_f64_le())
        }
        TAG_STR => {
            if buf.remaining() < 4 {
                return Err(short());
            }
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < len {
                return Err(short());
            }
            let bytes = buf.copy_to_bytes(len);
            Value::Str(
                String::from_utf8(bytes.to_vec())
                    .map_err(|_| FlowError::Codec("invalid utf8 in shuffle payload".to_owned()))?,
            )
        }
        TAG_TS => {
            if buf.remaining() < 8 {
                return Err(short());
            }
            Value::Timestamp(buf.get_i64_le())
        }
        other => return Err(FlowError::Codec(format!("unknown value tag {other}"))),
    })
}

/// Encode a row (width-prefixed).
pub fn encode_row(row: &Row, buf: &mut BytesMut) {
    buf.put_u16_le(row.len() as u16);
    for v in row {
        encode_value(v, buf);
    }
}

/// Decode one row.
pub fn decode_row(buf: &mut Bytes) -> Result<Row> {
    if buf.remaining() < 2 {
        return Err(FlowError::Codec("truncated shuffle payload".to_owned()));
    }
    let width = buf.get_u16_le() as usize;
    let mut row = Vec::with_capacity(width);
    for _ in 0..width {
        row.push(decode_value(buf)?);
    }
    Ok(row)
}

/// The hash used to route rows; combines the key columns' stable hashes.
pub fn route(row: &Row, key_idx: &[usize], targets: usize) -> usize {
    let mut h: u64 = ROUTE_SEED;
    for &k in key_idx {
        h = h.rotate_left(5) ^ row[k].hash_code();
    }
    (h % targets as u64) as usize
}

const ROUTE_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

// FNV-1a over a tagged byte stream. Must stay byte-for-byte identical to
// `Value::hash_code` so columnar routing agrees with the row-at-a-time
// `route` above (the differential property tests pin this).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

#[inline]
fn fnv(bytes: impl IntoIterator<Item = u8>, mut h: u64) -> u64 {
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Stable hashes for every row of one column, computed lane-at-a-time:
/// `out[i] == col.value(i).hash_code()` for all `i`, without materialising
/// a single [`Value`].
pub fn column_hash_codes(col: &Column) -> Vec<u64> {
    let null = fnv([0u8], FNV_OFFSET);
    let hash = |valid: bool, bytes: &mut dyn Iterator<Item = u8>| {
        if valid {
            fnv(bytes, FNV_OFFSET)
        } else {
            null
        }
    };
    match col {
        Column::Bool { data, validity } => data
            .iter()
            .enumerate()
            .map(|(i, b)| hash(validity.get(i), &mut [1u8, *b as u8].into_iter()))
            .collect(),
        Column::Int { data, validity } => data
            .iter()
            .enumerate()
            .map(|(i, v)| {
                hash(
                    validity.get(i),
                    &mut [2u8].into_iter().chain(v.to_le_bytes()),
                )
            })
            .collect(),
        Column::Float { data, validity } => data
            .iter()
            .enumerate()
            .map(|(i, x)| {
                if !validity.get(i) {
                    null
                } else if x.fract() == 0.0
                    && x.is_finite()
                    && *x >= i64::MIN as f64
                    && *x <= i64::MAX as f64
                {
                    // Integral floats hash as their integer value so that
                    // group-equal values land in the same partition.
                    fnv(
                        [2u8].into_iter().chain((*x as i64).to_le_bytes()),
                        FNV_OFFSET,
                    )
                } else {
                    fnv(
                        [3u8].into_iter().chain(x.to_bits().to_le_bytes()),
                        FNV_OFFSET,
                    )
                }
            })
            .collect(),
        Column::Str { data, validity } => data
            .iter()
            .enumerate()
            .map(|(i, s)| hash(validity.get(i), &mut [4u8].into_iter().chain(s.bytes())))
            .collect(),
        Column::Timestamp { data, validity } => data
            .iter()
            .enumerate()
            .map(|(i, t)| {
                hash(
                    validity.get(i),
                    &mut [5u8].into_iter().chain(t.to_le_bytes()),
                )
            })
            .collect(),
    }
}

/// Per-row shuffle targets for a whole table, computed column-at-a-time over
/// the bound key columns. Equal to calling [`route`] on every materialised
/// row, but touches only the key columns' native lanes.
pub fn route_rows(t: &Table, key_idx: &[usize], targets: usize) -> Result<Vec<u32>> {
    let mut acc = vec![ROUTE_SEED; t.num_rows()];
    for &k in key_idx {
        let codes = column_hash_codes(t.column_at(k).map_err(FlowError::Data)?);
        for (h, code) in acc.iter_mut().zip(codes) {
            *h = h.rotate_left(5) ^ code;
        }
    }
    Ok(acc
        .into_iter()
        .map(|h| (h % targets as u64) as u32)
        .collect())
}

/// A borrowed typed view of one column, for encoding rows straight out of
/// the native lanes without building `Value`s.
enum Lane<'a> {
    Bool(&'a [bool], &'a Validity),
    Int(&'a [i64], &'a Validity),
    Float(&'a [f64], &'a Validity),
    Str(&'a [String], &'a Validity),
    Ts(&'a [i64], &'a Validity),
}

fn lanes(t: &Table) -> Vec<Lane<'_>> {
    t.columns()
        .iter()
        .map(|c| match c {
            Column::Bool { data, validity } => Lane::Bool(data, validity),
            Column::Int { data, validity } => Lane::Int(data, validity),
            Column::Float { data, validity } => Lane::Float(data, validity),
            Column::Str { data, validity } => Lane::Str(data, validity),
            Column::Timestamp { data, validity } => Lane::Ts(data, validity),
        })
        .collect()
}

/// Encode row `i` of a table (width-prefixed), producing exactly the same
/// bytes as [`encode_row`] on the materialised row.
fn encode_row_at(lanes: &[Lane<'_>], i: usize, buf: &mut BytesMut) {
    buf.put_u16_le(lanes.len() as u16);
    for lane in lanes {
        match lane {
            Lane::Bool(data, validity) => {
                if validity.get(i) {
                    buf.put_u8(TAG_BOOL);
                    buf.put_u8(data[i] as u8);
                } else {
                    buf.put_u8(TAG_NULL);
                }
            }
            Lane::Int(data, validity) => {
                if validity.get(i) {
                    buf.put_u8(TAG_INT);
                    buf.put_i64_le(data[i]);
                } else {
                    buf.put_u8(TAG_NULL);
                }
            }
            Lane::Float(data, validity) => {
                if validity.get(i) {
                    buf.put_u8(TAG_FLOAT);
                    buf.put_f64_le(data[i]);
                } else {
                    buf.put_u8(TAG_NULL);
                }
            }
            Lane::Str(data, validity) => {
                if validity.get(i) {
                    buf.put_u8(TAG_STR);
                    buf.put_u32_le(data[i].len() as u32);
                    buf.put_slice(data[i].as_bytes());
                } else {
                    buf.put_u8(TAG_NULL);
                }
            }
            Lane::Ts(data, validity) => {
                if validity.get(i) {
                    buf.put_u8(TAG_TS);
                    buf.put_i64_le(data[i]);
                } else {
                    buf.put_u8(TAG_NULL);
                }
            }
        }
    }
}

/// Encode every row of a table through the lane codec, producing exactly
/// the bytes [`encode_row`] would for the materialised rows. This is the
/// checkpoint wire format: a wave partition persists as its row count plus
/// this byte stream.
pub fn encode_table(t: &Table, buf: &mut BytesMut) {
    let lanes = lanes(t);
    for i in 0..t.num_rows() {
        encode_row_at(&lanes, i, buf);
    }
}

/// Decode `count` rows of `schema` back into a table, rejecting trailing
/// bytes — the inverse of [`encode_table`].
pub fn decode_table(schema: &Schema, count: usize, mut bytes: Bytes) -> Result<Table> {
    let mut builder = TableBuilder::with_capacity(schema.clone(), count);
    for _ in 0..count {
        builder.push_row(decode_row(&mut bytes)?)?;
    }
    if bytes.has_remaining() {
        return Err(FlowError::Codec(
            "trailing bytes after decoding table".to_owned(),
        ));
    }
    Ok(builder.finish()?)
}

/// Mean encoded row width over a small prefix sample, used to pre-size the
/// per-target encode buffers instead of growing them from empty.
fn estimate_row_bytes(inputs: &[Table]) -> usize {
    const SAMPLE: usize = 16;
    let mut scratch = BytesMut::new();
    let mut sampled = 0usize;
    for t in inputs {
        let lanes = lanes(t);
        for i in 0..t.num_rows().min(SAMPLE - sampled) {
            encode_row_at(&lanes, i, &mut scratch);
            sampled += 1;
        }
        if sampled >= SAMPLE {
            break;
        }
    }
    if sampled == 0 {
        0
    } else {
        scratch.len().div_ceil(sampled)
    }
}

/// Result of a shuffle write+read cycle.
pub struct ShuffleOutput {
    pub partitions: Vec<Table>,
    /// Total encoded bytes that crossed the shuffle.
    pub bytes_moved: u64,
}

impl ShuffleOutput {
    /// Rows that crossed the shuffle (sum over output partitions).
    pub fn rows_moved(&self) -> u64 {
        self.partitions.iter().map(|p| p.num_rows() as u64).sum()
    }
}

/// Redistribute all `inputs` rows into `targets` partitions keyed by the
/// named columns. Rows are serialised into per-target buffers and decoded
/// back out, exactly once each.
pub fn shuffle(
    inputs: &[Table],
    schema: &Schema,
    keys: &[String],
    targets: usize,
) -> Result<ShuffleOutput> {
    if targets == 0 {
        return Err(FlowError::Plan(
            "shuffle needs at least one target".to_owned(),
        ));
    }
    let key_idx: Vec<usize> = keys
        .iter()
        .map(|k| schema.index_of(k).map_err(FlowError::Data))
        .collect::<Result<Vec<_>>>()?;
    // Pre-size each target buffer for its expected share of the encoded
    // bytes (plus skew slack) so the hot loop never reallocates.
    let total_rows: usize = inputs.iter().map(Table::num_rows).sum();
    let row_bytes = estimate_row_bytes(inputs);
    let mut buffers: Vec<BytesMut> = (0..targets)
        .map(|i| {
            let share = if key_idx.is_empty() {
                // Keyless shuffle gathers everything into partition 0.
                if i == 0 {
                    total_rows
                } else {
                    0
                }
            } else {
                total_rows / targets + total_rows / (targets * 8) + 1
            };
            BytesMut::with_capacity(share * row_bytes)
        })
        .collect();
    let mut counts = vec![0usize; targets];
    for t in inputs {
        let lanes = lanes(t);
        let routes = if key_idx.is_empty() {
            None
        } else {
            Some(route_rows(t, &key_idx, targets)?)
        };
        for i in 0..t.num_rows() {
            let target = routes.as_ref().map_or(0, |r| r[i] as usize);
            encode_row_at(&lanes, i, &mut buffers[target]);
            counts[target] += 1;
        }
    }
    let bytes_moved: u64 = buffers.iter().map(|b| b.len() as u64).sum();
    let mut partitions = Vec::with_capacity(targets);
    for (buf, count) in buffers.into_iter().zip(counts) {
        let mut bytes = buf.freeze();
        let mut builder = TableBuilder::with_capacity(schema.clone(), count);
        for _ in 0..count {
            builder.push_row(decode_row(&mut bytes)?)?;
        }
        if bytes.has_remaining() {
            return Err(FlowError::Codec(
                "trailing bytes after decoding shuffle".to_owned(),
            ));
        }
        partitions.push(builder.finish()?);
    }
    Ok(ShuffleOutput {
        partitions,
        bytes_moved,
    })
}

/// [`shuffle`], plus a [`TraceEventKind::ShuffleWave`] event in `journal`.
/// The shuffle itself stays pure; tracing is layered on at the call sites
/// that have a journal in scope (the physical operators).
pub fn shuffle_traced(
    inputs: &[Table],
    schema: &Schema,
    keys: &[String],
    targets: usize,
    journal: &TraceJournal,
) -> Result<ShuffleOutput> {
    let out = shuffle(inputs, schema, keys, targets)?;
    journal.record(TraceEventKind::ShuffleWave {
        keys: keys.len(),
        rows: out.rows_moved(),
        bytes: out.bytes_moved,
        sources: inputs.len(),
        targets,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use toreador_data::generate::random_table;
    use toreador_data::partition::PartitionedTable;

    #[test]
    fn row_codec_round_trips_every_type() {
        let row: Row = vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Float(2.5),
            Value::Str("héllo, wörld".into()),
            Value::Timestamp(1_488_000_000_000),
        ];
        let mut buf = BytesMut::new();
        encode_row(&row, &mut buf);
        let mut bytes = buf.freeze();
        let back = decode_row(&mut bytes).unwrap();
        assert_eq!(back.len(), row.len());
        for (a, b) in row.iter().zip(&back) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn decode_detects_truncation() {
        let row: Row = vec![Value::Str("abcdef".into())];
        let mut buf = BytesMut::new();
        encode_row(&row, &mut buf);
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut partial = full.slice(..cut);
            assert!(decode_row(&mut partial).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn decode_rejects_bad_tag() {
        let mut buf = BytesMut::new();
        buf.put_u16_le(1);
        buf.put_u8(99);
        assert!(decode_row(&mut buf.freeze()).is_err());
    }

    #[test]
    fn shuffle_keeps_keys_together_and_counts_bytes() {
        let t = random_table(500, 4, 7);
        let parts = PartitionedTable::split(t.clone(), 4).unwrap();
        let out = shuffle(parts.parts(), t.schema(), &["c0".to_owned()], 8).unwrap();
        assert_eq!(out.partitions.len(), 8);
        let total: usize = out.partitions.iter().map(Table::num_rows).sum();
        assert_eq!(total, 500);
        assert!(out.bytes_moved > 0);
        // Key disjointness across partitions.
        use std::collections::HashSet;
        let mut seen: Vec<HashSet<String>> = Vec::new();
        for p in &out.partitions {
            let keys: HashSet<String> = p
                .column("c0")
                .unwrap()
                .iter_values()
                .map(|v| format!("{v:?}"))
                .collect();
            for prior in &seen {
                assert!(prior.is_disjoint(&keys), "same key in two partitions");
            }
            seen.push(keys);
        }
    }

    #[test]
    fn keyless_shuffle_gathers_to_partition_zero() {
        let t = random_table(100, 2, 1);
        let out = shuffle(std::slice::from_ref(&t), t.schema(), &[], 4).unwrap();
        assert_eq!(out.partitions[0].num_rows(), 100);
        for p in &out.partitions[1..] {
            assert_eq!(p.num_rows(), 0);
        }
    }

    #[test]
    fn traced_shuffle_records_a_wave() {
        let t = random_table(200, 3, 5);
        let parts = PartitionedTable::split(t.clone(), 2).unwrap();
        let journal = TraceJournal::new();
        let out =
            shuffle_traced(parts.parts(), t.schema(), &["c0".to_owned()], 4, &journal).unwrap();
        let trace = journal.snapshot();
        let wave = trace
            .events
            .iter()
            .find_map(|e| match &e.kind {
                TraceEventKind::ShuffleWave {
                    keys,
                    rows,
                    bytes,
                    sources,
                    targets,
                } => Some((*keys, *rows, *bytes, *sources, *targets)),
                _ => None,
            })
            .expect("a ShuffleWave event");
        assert_eq!(wave, (1, 200, out.bytes_moved, 2, 4));
        assert_eq!(out.rows_moved(), 200);
    }

    #[test]
    fn columnar_hashes_match_value_hash_code() {
        let t = random_table(300, 5, 11);
        for col in t.columns() {
            let codes = column_hash_codes(col);
            for (i, &code) in codes.iter().enumerate() {
                assert_eq!(code, col.value(i).unwrap().hash_code(), "row {i}");
            }
        }
        // The integral-float rule survives the lane path.
        let col = Column::Float {
            data: vec![7.0, 2.5, f64::NAN, -0.0],
            validity: toreador_data::column::Validity::all_valid(4),
        };
        let codes = column_hash_codes(&col);
        assert_eq!(codes[0], Value::Int(7).hash_code());
        assert_eq!(codes[1], Value::Float(2.5).hash_code());
        assert_eq!(codes[2], Value::Float(f64::NAN).hash_code());
        assert_eq!(codes[3], Value::Int(0).hash_code());
    }

    #[test]
    fn columnar_routing_matches_row_route() {
        let t = random_table(250, 4, 23);
        let key_idx = vec![0usize, 2, 3];
        let routes = route_rows(&t, &key_idx, 7).unwrap();
        for (i, row) in t.iter_rows().enumerate() {
            assert_eq!(routes[i] as usize, route(&row, &key_idx, 7), "row {i}");
        }
    }

    #[test]
    fn lane_encoding_matches_row_encoding() {
        let t = random_table(120, 5, 31);
        let lanes = lanes(&t);
        for (i, row) in t.iter_rows().enumerate() {
            let mut by_row = BytesMut::new();
            encode_row(&row, &mut by_row);
            let mut by_lane = BytesMut::new();
            encode_row_at(&lanes, i, &mut by_lane);
            assert_eq!(by_row.freeze(), by_lane.freeze(), "row {i}");
        }
    }

    #[test]
    fn table_codec_round_trips_and_rejects_trailing_bytes() {
        let t = random_table(150, 5, 17);
        let mut buf = BytesMut::new();
        encode_table(&t, &mut buf);
        let bytes = buf.freeze();
        let back = decode_table(t.schema(), t.num_rows(), bytes.clone()).unwrap();
        assert_eq!(back, t);
        // Undercounting rows leaves trailing bytes: must be rejected.
        assert!(decode_table(t.schema(), t.num_rows() - 1, bytes.clone()).is_err());
        // Overcounting runs off the end: must be rejected.
        assert!(decode_table(t.schema(), t.num_rows() + 1, bytes).is_err());
    }

    #[test]
    fn shuffle_zero_targets_rejected() {
        let t = random_table(10, 2, 1);
        assert!(shuffle(std::slice::from_ref(&t), t.schema(), &[], 0).is_err());
    }

    #[test]
    fn shuffle_unknown_key_rejected() {
        let t = random_table(10, 2, 1);
        assert!(shuffle(std::slice::from_ref(&t), t.schema(), &["zzz".to_owned()], 2).is_err());
    }
}
