//! Hash shuffle with a binary row codec.
//!
//! A shuffle redistributes rows so that all rows sharing a key land in the
//! same partition — the data-movement step behind aggregates, joins and
//! `distinct`. In Spark this crosses the network; here it crosses a byte
//! buffer: rows are *encoded* into per-target [`bytes::Bytes`] buffers and
//! *decoded* on the other side. Round-tripping through bytes keeps the code
//! path honest (costs scale with row width, exactly like a real shuffle)
//! and gives the metrics layer true shuffle-byte counts.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use toreador_data::schema::Schema;
use toreador_data::table::{Table, TableBuilder};
use toreador_data::value::{Row, Value};

use crate::error::{FlowError, Result};
use crate::trace::{TraceEventKind, TraceJournal};

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_TS: u8 = 5;

/// Append one value to the buffer.
fn encode_value(v: &Value, buf: &mut BytesMut) {
    match v {
        Value::Null => buf.put_u8(TAG_NULL),
        Value::Bool(b) => {
            buf.put_u8(TAG_BOOL);
            buf.put_u8(*b as u8);
        }
        Value::Int(i) => {
            buf.put_u8(TAG_INT);
            buf.put_i64_le(*i);
        }
        Value::Float(x) => {
            buf.put_u8(TAG_FLOAT);
            buf.put_f64_le(*x);
        }
        Value::Str(s) => {
            buf.put_u8(TAG_STR);
            buf.put_u32_le(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Value::Timestamp(t) => {
            buf.put_u8(TAG_TS);
            buf.put_i64_le(*t);
        }
    }
}

fn decode_value(buf: &mut Bytes) -> Result<Value> {
    let short = || FlowError::Codec("truncated shuffle payload".to_owned());
    if buf.remaining() < 1 {
        return Err(short());
    }
    let tag = buf.get_u8();
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_BOOL => {
            if buf.remaining() < 1 {
                return Err(short());
            }
            Value::Bool(buf.get_u8() != 0)
        }
        TAG_INT => {
            if buf.remaining() < 8 {
                return Err(short());
            }
            Value::Int(buf.get_i64_le())
        }
        TAG_FLOAT => {
            if buf.remaining() < 8 {
                return Err(short());
            }
            Value::Float(buf.get_f64_le())
        }
        TAG_STR => {
            if buf.remaining() < 4 {
                return Err(short());
            }
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < len {
                return Err(short());
            }
            let bytes = buf.copy_to_bytes(len);
            Value::Str(
                String::from_utf8(bytes.to_vec())
                    .map_err(|_| FlowError::Codec("invalid utf8 in shuffle payload".to_owned()))?,
            )
        }
        TAG_TS => {
            if buf.remaining() < 8 {
                return Err(short());
            }
            Value::Timestamp(buf.get_i64_le())
        }
        other => return Err(FlowError::Codec(format!("unknown value tag {other}"))),
    })
}

/// Encode a row (width-prefixed).
pub fn encode_row(row: &Row, buf: &mut BytesMut) {
    buf.put_u16_le(row.len() as u16);
    for v in row {
        encode_value(v, buf);
    }
}

/// Decode one row.
pub fn decode_row(buf: &mut Bytes) -> Result<Row> {
    if buf.remaining() < 2 {
        return Err(FlowError::Codec("truncated shuffle payload".to_owned()));
    }
    let width = buf.get_u16_le() as usize;
    let mut row = Vec::with_capacity(width);
    for _ in 0..width {
        row.push(decode_value(buf)?);
    }
    Ok(row)
}

/// The hash used to route rows; combines the key columns' stable hashes.
pub fn route(row: &Row, key_idx: &[usize], targets: usize) -> usize {
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    for &k in key_idx {
        h = h.rotate_left(5) ^ row[k].hash_code();
    }
    (h % targets as u64) as usize
}

/// Result of a shuffle write+read cycle.
pub struct ShuffleOutput {
    pub partitions: Vec<Table>,
    /// Total encoded bytes that crossed the shuffle.
    pub bytes_moved: u64,
}

impl ShuffleOutput {
    /// Rows that crossed the shuffle (sum over output partitions).
    pub fn rows_moved(&self) -> u64 {
        self.partitions.iter().map(|p| p.num_rows() as u64).sum()
    }
}

/// Redistribute all `inputs` rows into `targets` partitions keyed by the
/// named columns. Rows are serialised into per-target buffers and decoded
/// back out, exactly once each.
pub fn shuffle(
    inputs: &[Table],
    schema: &Schema,
    keys: &[String],
    targets: usize,
) -> Result<ShuffleOutput> {
    if targets == 0 {
        return Err(FlowError::Plan(
            "shuffle needs at least one target".to_owned(),
        ));
    }
    let key_idx: Vec<usize> = keys
        .iter()
        .map(|k| schema.index_of(k).map_err(FlowError::Data))
        .collect::<Result<Vec<_>>>()?;
    let mut buffers: Vec<BytesMut> = (0..targets).map(|_| BytesMut::new()).collect();
    let mut counts = vec![0usize; targets];
    for t in inputs {
        for row in t.iter_rows() {
            let target = if key_idx.is_empty() {
                // Keyless shuffle: gather everything into partition 0
                // (used by Sort/Limit collection).
                0
            } else {
                route(&row, &key_idx, targets)
            };
            encode_row(&row, &mut buffers[target]);
            counts[target] += 1;
        }
    }
    let bytes_moved: u64 = buffers.iter().map(|b| b.len() as u64).sum();
    let mut partitions = Vec::with_capacity(targets);
    for (buf, count) in buffers.into_iter().zip(counts) {
        let mut bytes = buf.freeze();
        let mut builder = TableBuilder::with_capacity(schema.clone(), count);
        for _ in 0..count {
            builder.push_row(decode_row(&mut bytes)?)?;
        }
        if bytes.has_remaining() {
            return Err(FlowError::Codec(
                "trailing bytes after decoding shuffle".to_owned(),
            ));
        }
        partitions.push(builder.finish()?);
    }
    Ok(ShuffleOutput {
        partitions,
        bytes_moved,
    })
}

/// [`shuffle`], plus a [`TraceEventKind::ShuffleWave`] event in `journal`.
/// The shuffle itself stays pure; tracing is layered on at the call sites
/// that have a journal in scope (the physical operators).
pub fn shuffle_traced(
    inputs: &[Table],
    schema: &Schema,
    keys: &[String],
    targets: usize,
    journal: &TraceJournal,
) -> Result<ShuffleOutput> {
    let out = shuffle(inputs, schema, keys, targets)?;
    journal.record(TraceEventKind::ShuffleWave {
        keys: keys.len(),
        rows: out.rows_moved(),
        bytes: out.bytes_moved,
        sources: inputs.len(),
        targets,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use toreador_data::generate::random_table;
    use toreador_data::partition::PartitionedTable;

    #[test]
    fn row_codec_round_trips_every_type() {
        let row: Row = vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Float(2.5),
            Value::Str("héllo, wörld".into()),
            Value::Timestamp(1_488_000_000_000),
        ];
        let mut buf = BytesMut::new();
        encode_row(&row, &mut buf);
        let mut bytes = buf.freeze();
        let back = decode_row(&mut bytes).unwrap();
        assert_eq!(back.len(), row.len());
        for (a, b) in row.iter().zip(&back) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn decode_detects_truncation() {
        let row: Row = vec![Value::Str("abcdef".into())];
        let mut buf = BytesMut::new();
        encode_row(&row, &mut buf);
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut partial = full.slice(..cut);
            assert!(decode_row(&mut partial).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn decode_rejects_bad_tag() {
        let mut buf = BytesMut::new();
        buf.put_u16_le(1);
        buf.put_u8(99);
        assert!(decode_row(&mut buf.freeze()).is_err());
    }

    #[test]
    fn shuffle_keeps_keys_together_and_counts_bytes() {
        let t = random_table(500, 4, 7);
        let parts = PartitionedTable::split(t.clone(), 4).unwrap();
        let out = shuffle(parts.parts(), t.schema(), &["c0".to_owned()], 8).unwrap();
        assert_eq!(out.partitions.len(), 8);
        let total: usize = out.partitions.iter().map(Table::num_rows).sum();
        assert_eq!(total, 500);
        assert!(out.bytes_moved > 0);
        // Key disjointness across partitions.
        use std::collections::HashSet;
        let mut seen: Vec<HashSet<String>> = Vec::new();
        for p in &out.partitions {
            let keys: HashSet<String> = p
                .column("c0")
                .unwrap()
                .iter_values()
                .map(|v| format!("{v:?}"))
                .collect();
            for prior in &seen {
                assert!(prior.is_disjoint(&keys), "same key in two partitions");
            }
            seen.push(keys);
        }
    }

    #[test]
    fn keyless_shuffle_gathers_to_partition_zero() {
        let t = random_table(100, 2, 1);
        let out = shuffle(std::slice::from_ref(&t), t.schema(), &[], 4).unwrap();
        assert_eq!(out.partitions[0].num_rows(), 100);
        for p in &out.partitions[1..] {
            assert_eq!(p.num_rows(), 0);
        }
    }

    #[test]
    fn traced_shuffle_records_a_wave() {
        let t = random_table(200, 3, 5);
        let parts = PartitionedTable::split(t.clone(), 2).unwrap();
        let journal = TraceJournal::new();
        let out =
            shuffle_traced(parts.parts(), t.schema(), &["c0".to_owned()], 4, &journal).unwrap();
        let trace = journal.snapshot();
        let wave = trace
            .events
            .iter()
            .find_map(|e| match &e.kind {
                TraceEventKind::ShuffleWave {
                    keys,
                    rows,
                    bytes,
                    sources,
                    targets,
                } => Some((*keys, *rows, *bytes, *sources, *targets)),
                _ => None,
            })
            .expect("a ShuffleWave event");
        assert_eq!(wave, (1, 200, out.bytes_moved, 2, 4));
        assert_eq!(out.rows_moved(), 200);
    }

    #[test]
    fn shuffle_zero_targets_rejected() {
        let t = random_table(10, 2, 1);
        assert!(shuffle(std::slice::from_ref(&t), t.schema(), &[], 0).is_err());
    }

    #[test]
    fn shuffle_unknown_key_rejected() {
        let t = random_table(10, 2, 1);
        assert!(shuffle(std::slice::from_ref(&t), t.schema(), &["zzz".to_owned()], 2).is_err());
    }
}
