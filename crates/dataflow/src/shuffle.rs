//! Hash shuffle over the shared binary row codec.
//!
//! A shuffle redistributes rows so that all rows sharing a key land in the
//! same partition — the data-movement step behind aggregates, joins and
//! `distinct`. In Spark this crosses the network; here it crosses a byte
//! buffer: rows are *encoded* into per-target [`bytes::Bytes`] buffers and
//! *decoded* on the other side. Round-tripping through bytes keeps the code
//! path honest (costs scale with row width, exactly like a real shuffle)
//! and gives the metrics layer true shuffle-byte counts. The byte format
//! itself lives in [`crate::codec`], shared with checkpointing and the
//! out-of-core pager.
//!
//! When an [`ExecConfig::memory_budget_bytes`](crate::physical::ExecConfig)
//! is set, [`shuffle_spillable`] bounds the staging memory: whenever the
//! per-target encode buffers exceed the budget, the largest buffers are
//! decoded and spilled to paged runs through the buffer pool
//! ([`crate::pager`]), and each target's output is re-assembled in original
//! row order from its spilled runs plus the in-memory tail — byte-identical
//! to the in-memory path, which stays untouched when everything fits.

use bytes::BytesMut;

use toreador_data::column::Column;
use toreador_data::schema::Schema;
use toreador_data::table::{Table, TableBuilder};
use toreador_data::value::Row;

pub use crate::codec::{decode_row, decode_table, encode_row, encode_table};
use crate::codec::{encode_row_at, lanes};
use crate::error::{FlowError, Result};
use crate::pager::{SpillManager, SPILL_OP_SHUFFLE};
use crate::trace::{TraceEventKind, TraceJournal};

/// The hash used to route rows; combines the key columns' stable hashes.
pub fn route(row: &Row, key_idx: &[usize], targets: usize) -> usize {
    let mut h: u64 = ROUTE_SEED;
    for &k in key_idx {
        h = h.rotate_left(5) ^ row[k].hash_code();
    }
    (h % targets as u64) as usize
}

const ROUTE_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

// FNV-1a over a tagged byte stream. Must stay byte-for-byte identical to
// `Value::hash_code` so columnar routing agrees with the row-at-a-time
// `route` above (the differential property tests pin this).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

#[inline]
fn fnv(bytes: impl IntoIterator<Item = u8>, mut h: u64) -> u64 {
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Stable hashes for every row of one column, computed lane-at-a-time:
/// `out[i] == col.value(i).hash_code()` for all `i`, without materialising
/// a single [`toreador_data::value::Value`].
pub fn column_hash_codes(col: &Column) -> Vec<u64> {
    let null = fnv([0u8], FNV_OFFSET);
    let hash = |valid: bool, bytes: &mut dyn Iterator<Item = u8>| {
        if valid {
            fnv(bytes, FNV_OFFSET)
        } else {
            null
        }
    };
    match col {
        Column::Bool { data, validity } => data
            .iter()
            .enumerate()
            .map(|(i, b)| hash(validity.get(i), &mut [1u8, *b as u8].into_iter()))
            .collect(),
        Column::Int { data, validity } => data
            .iter()
            .enumerate()
            .map(|(i, v)| {
                hash(
                    validity.get(i),
                    &mut [2u8].into_iter().chain(v.to_le_bytes()),
                )
            })
            .collect(),
        Column::Float { data, validity } => data
            .iter()
            .enumerate()
            .map(|(i, x)| {
                if !validity.get(i) {
                    null
                } else if x.fract() == 0.0
                    && x.is_finite()
                    && *x >= i64::MIN as f64
                    && *x <= i64::MAX as f64
                {
                    // Integral floats hash as their integer value so that
                    // group-equal values land in the same partition.
                    fnv(
                        [2u8].into_iter().chain((*x as i64).to_le_bytes()),
                        FNV_OFFSET,
                    )
                } else {
                    fnv(
                        [3u8].into_iter().chain(x.to_bits().to_le_bytes()),
                        FNV_OFFSET,
                    )
                }
            })
            .collect(),
        Column::Str { data, validity } => data
            .iter()
            .enumerate()
            .map(|(i, s)| hash(validity.get(i), &mut [4u8].into_iter().chain(s.bytes())))
            .collect(),
        Column::Timestamp { data, validity } => data
            .iter()
            .enumerate()
            .map(|(i, t)| {
                hash(
                    validity.get(i),
                    &mut [5u8].into_iter().chain(t.to_le_bytes()),
                )
            })
            .collect(),
    }
}

/// Per-row shuffle targets for a whole table, computed column-at-a-time over
/// the bound key columns. Equal to calling [`route`] on every materialised
/// row, but touches only the key columns' native lanes.
pub fn route_rows(t: &Table, key_idx: &[usize], targets: usize) -> Result<Vec<u32>> {
    let mut acc = vec![ROUTE_SEED; t.num_rows()];
    for &k in key_idx {
        let codes = column_hash_codes(t.column_at(k).map_err(FlowError::Data)?);
        for (h, code) in acc.iter_mut().zip(codes) {
            *h = h.rotate_left(5) ^ code;
        }
    }
    Ok(acc
        .into_iter()
        .map(|h| (h % targets as u64) as u32)
        .collect())
}

/// Mean encoded row width over a small prefix sample, used to pre-size the
/// per-target encode buffers instead of growing them from empty.
pub(crate) fn estimate_row_bytes(inputs: &[Table]) -> usize {
    const SAMPLE: usize = 16;
    let mut scratch = BytesMut::new();
    let mut sampled = 0usize;
    for t in inputs {
        let lanes = lanes(t);
        for i in 0..t.num_rows().min(SAMPLE - sampled) {
            encode_row_at(&lanes, i, &mut scratch);
            sampled += 1;
        }
        if sampled >= SAMPLE {
            break;
        }
    }
    if sampled == 0 {
        0
    } else {
        scratch.len().div_ceil(sampled)
    }
}

/// Result of a shuffle write+read cycle.
pub struct ShuffleOutput {
    pub partitions: Vec<Table>,
    /// Total encoded bytes that crossed the shuffle.
    pub bytes_moved: u64,
}

impl ShuffleOutput {
    /// Rows that crossed the shuffle (sum over output partitions).
    pub fn rows_moved(&self) -> u64 {
        self.partitions.iter().map(|p| p.num_rows() as u64).sum()
    }
}

/// Decode one target's complete buffer back into a table.
fn decode_buffer(schema: &Schema, buf: BytesMut, count: usize) -> Result<Table> {
    let mut bytes = buf.freeze();
    let mut builder = TableBuilder::with_capacity(schema.clone(), count);
    for _ in 0..count {
        builder.push_row(decode_row(&mut bytes)?)?;
    }
    if !bytes.is_empty() {
        return Err(FlowError::Codec(
            "trailing bytes after decoding shuffle".to_owned(),
        ));
    }
    Ok(builder.finish()?)
}

/// Redistribute all `inputs` rows into `targets` partitions keyed by the
/// named columns. Rows are serialised into per-target buffers and decoded
/// back out, exactly once each.
pub fn shuffle(
    inputs: &[Table],
    schema: &Schema,
    keys: &[String],
    targets: usize,
) -> Result<ShuffleOutput> {
    shuffle_spillable(
        inputs.iter().map(|t| Ok(t.clone())),
        inputs.len(),
        schema,
        keys,
        targets,
        None,
    )
}

/// How many buffered rows between budget checks on the spill path. Checking
/// at row granularity would put a branch in the hot loop for nothing; a
/// whole input table at a time could overshoot the budget by that table's
/// encoded size. 1024 rows keeps the overshoot to a few row-widths.
const SPILL_CHECK_ROWS: usize = 1024;

/// The spillable core every shuffle runs through. Inputs arrive as an
/// iterator of owned tables so spilled upstream runs can be fed back one at
/// a time without materialising them all (`sources` is the input count for
/// the trace event). With `spill: None` — or a budget nothing exceeds —
/// this is exactly the historical in-memory shuffle. With a
/// [`SpillManager`], whenever the per-target encode buffers exceed the
/// budget the largest buffers are decoded and written out as paged runs,
/// and each target's output is the concatenation of its runs plus the
/// in-memory tail, in original arrival order — byte-identical to the
/// in-memory result.
pub fn shuffle_spillable(
    inputs: impl IntoIterator<Item = Result<Table>>,
    sources: usize,
    schema: &Schema,
    keys: &[String],
    targets: usize,
    spill: Option<(&SpillManager, &TraceJournal)>,
) -> Result<ShuffleOutput> {
    if targets == 0 {
        return Err(FlowError::Plan(
            "shuffle needs at least one target".to_owned(),
        ));
    }
    let key_idx: Vec<usize> = keys
        .iter()
        .map(|k| schema.index_of(k).map_err(FlowError::Data))
        .collect::<Result<Vec<_>>>()?;
    let mut buffers: Vec<BytesMut> = (0..targets).map(|_| BytesMut::new()).collect();
    let mut counts = vec![0usize; targets];
    let mut spilled: Vec<Vec<crate::pager::SpillHandle>> =
        (0..targets).map(|_| Vec::new()).collect();
    let mut spilled_bytes = 0u64;
    let mut buffered = 0usize;
    let mut presized = false;
    let budget = spill.map(|(m, _)| m.budget_bytes() as usize);
    for t in inputs {
        let t = t?;
        if !presized && t.num_rows() > 0 {
            // Pre-size each target buffer for its expected share of the
            // encoded bytes (plus skew slack) so the hot loop never
            // reallocates. Inputs arrive as an iterator, so the total row
            // count is estimated from the first non-empty table times the
            // source count (inputs are near-evenly split partitions).
            // Under a budget, never pre-size beyond it.
            let total_rows: usize = t.num_rows().saturating_mul(sources.max(1));
            let row_bytes = estimate_row_bytes(std::slice::from_ref(&t));
            for (i, buf) in buffers.iter_mut().enumerate() {
                let share = if key_idx.is_empty() {
                    // Keyless shuffle gathers everything into partition 0.
                    if i == 0 {
                        total_rows
                    } else {
                        0
                    }
                } else {
                    total_rows / targets + total_rows / (targets * 8) + 1
                };
                let mut cap = share * row_bytes;
                if let Some(b) = budget {
                    cap = cap.min(b / targets + 1);
                }
                // The buffers are still empty here (this is the first
                // non-empty input), so swapping in a pre-sized buffer is
                // the no-realloc reserve.
                *buf = BytesMut::with_capacity(cap);
            }
            presized = true;
        }
        let lanes = lanes(&t);
        let routes = if key_idx.is_empty() {
            None
        } else {
            Some(route_rows(&t, &key_idx, targets)?)
        };
        let mut since_check = 0usize;
        for i in 0..t.num_rows() {
            let target = routes.as_ref().map_or(0, |r| r[i] as usize);
            let before = buffers[target].len();
            encode_row_at(&lanes, i, &mut buffers[target]);
            buffered += buffers[target].len() - before;
            counts[target] += 1;
            since_check += 1;
            if since_check >= SPILL_CHECK_ROWS {
                since_check = 0;
                if let (Some(b), Some((manager, journal))) = (budget, spill) {
                    while buffered > b {
                        if !spill_largest(
                            manager,
                            journal,
                            schema,
                            &mut buffers,
                            &mut counts,
                            &mut spilled,
                            &mut buffered,
                            &mut spilled_bytes,
                        )? {
                            break;
                        }
                    }
                }
            }
        }
        // End-of-input check too, so a final sub-1024-row tail still
        // respects the budget before the next (possibly large) input.
        if let (Some(b), Some((manager, journal))) = (budget, spill) {
            while buffered > b {
                if !spill_largest(
                    manager,
                    journal,
                    schema,
                    &mut buffers,
                    &mut counts,
                    &mut spilled,
                    &mut buffered,
                    &mut spilled_bytes,
                )? {
                    break;
                }
            }
        }
    }
    let tail_bytes: u64 = buffers.iter().map(|b| b.len() as u64).sum();
    let bytes_moved = tail_bytes + spilled_bytes;
    let mut partitions = Vec::with_capacity(targets);
    for (target, (buf, count)) in buffers.into_iter().zip(counts).enumerate() {
        let tail = decode_buffer(schema, buf, count)?;
        let runs = std::mem::take(&mut spilled[target]);
        if runs.is_empty() {
            partitions.push(tail);
            continue;
        }
        let (manager, journal) = spill.expect("spilled runs imply a spill manager");
        let mut chunks = Vec::with_capacity(runs.len() + 1);
        let mut merged_rows = 0u64;
        let mut merged_bytes = 0u64;
        let n_runs = runs.len();
        for handle in runs {
            merged_bytes += handle.bytes();
            let chunk = manager.read_back(&handle, journal)?;
            merged_rows += chunk.num_rows() as u64;
            chunks.push(chunk);
            manager.release(handle);
        }
        merged_rows += tail.num_rows() as u64;
        chunks.push(tail);
        journal.record(TraceEventKind::SpillMerged {
            op: SPILL_OP_SHUFFLE.to_owned(),
            target,
            runs: n_runs,
            rows: merged_rows,
            bytes: merged_bytes,
        });
        partitions.push(Table::concat(&chunks).map_err(FlowError::Data)?);
    }
    Ok(ShuffleOutput {
        partitions,
        bytes_moved,
    })
}

/// Spill the single largest target buffer as one paged run. Returns false
/// when nothing is left to spill (every buffer empty).
#[allow(clippy::too_many_arguments)]
fn spill_largest(
    manager: &SpillManager,
    journal: &TraceJournal,
    schema: &Schema,
    buffers: &mut [BytesMut],
    counts: &mut [usize],
    spilled: &mut [Vec<crate::pager::SpillHandle>],
    buffered: &mut usize,
    spilled_bytes: &mut u64,
) -> Result<bool> {
    let Some((target, _)) = buffers
        .iter()
        .enumerate()
        .filter(|(_, b)| !b.is_empty())
        .max_by_key(|(_, b)| b.len())
    else {
        return Ok(false);
    };
    let bytes = buffers[target].len() as u64;
    let count = counts[target];
    let buf = std::mem::take(&mut buffers[target]);
    counts[target] = 0;
    *buffered -= bytes as usize;
    *spilled_bytes += bytes;
    let chunk = decode_buffer(schema, buf, count)?;
    let handle = manager.spill_table(&chunk, journal)?;
    journal.record(TraceEventKind::SpillStarted {
        op: SPILL_OP_SHUFFLE.to_owned(),
        target,
        rows: count as u64,
        bytes,
    });
    spilled[target].push(handle);
    Ok(true)
}

/// [`shuffle`], plus a [`TraceEventKind::ShuffleWave`] event in `journal`.
/// The shuffle itself stays pure; tracing is layered on at the call sites
/// that have a journal in scope (the physical operators).
pub fn shuffle_traced(
    inputs: &[Table],
    schema: &Schema,
    keys: &[String],
    targets: usize,
    journal: &TraceJournal,
) -> Result<ShuffleOutput> {
    shuffle_traced_spillable(
        inputs.iter().map(|t| Ok(t.clone())),
        inputs.len(),
        schema,
        keys,
        targets,
        journal,
        None,
    )
}

/// The traced spillable shuffle: [`shuffle_spillable`] plus the
/// [`TraceEventKind::ShuffleWave`] event.
pub fn shuffle_traced_spillable(
    inputs: impl IntoIterator<Item = Result<Table>>,
    sources: usize,
    schema: &Schema,
    keys: &[String],
    targets: usize,
    journal: &TraceJournal,
    spill: Option<&SpillManager>,
) -> Result<ShuffleOutput> {
    let out = shuffle_spillable(
        inputs,
        sources,
        schema,
        keys,
        targets,
        spill.map(|m| (m, journal)),
    )?;
    journal.record(TraceEventKind::ShuffleWave {
        keys: keys.len(),
        rows: out.rows_moved(),
        bytes: out.bytes_moved,
        sources,
        targets,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::{Buf, BufMut};
    use toreador_data::generate::random_table;
    use toreador_data::partition::PartitionedTable;
    use toreador_data::value::Value;

    #[test]
    fn row_codec_round_trips_every_type() {
        let row: Row = vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Float(2.5),
            Value::Str("héllo, wörld".into()),
            Value::Timestamp(1_488_000_000_000),
        ];
        let mut buf = BytesMut::new();
        encode_row(&row, &mut buf);
        let mut bytes = buf.freeze();
        let back = decode_row(&mut bytes).unwrap();
        assert_eq!(back.len(), row.len());
        for (a, b) in row.iter().zip(&back) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn decode_detects_truncation() {
        let row: Row = vec![Value::Str("abcdef".into())];
        let mut buf = BytesMut::new();
        encode_row(&row, &mut buf);
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut partial = full.slice(..cut);
            assert!(decode_row(&mut partial).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn decode_rejects_bad_tag() {
        let mut buf = BytesMut::new();
        buf.put_u16_le(1);
        buf.put_u8(99);
        assert!(decode_row(&mut buf.freeze()).is_err());
    }

    #[test]
    fn shuffle_keeps_keys_together_and_counts_bytes() {
        let t = random_table(500, 4, 7);
        let parts = PartitionedTable::split(t.clone(), 4).unwrap();
        let out = shuffle(parts.parts(), t.schema(), &["c0".to_owned()], 8).unwrap();
        assert_eq!(out.partitions.len(), 8);
        let total: usize = out.partitions.iter().map(Table::num_rows).sum();
        assert_eq!(total, 500);
        assert!(out.bytes_moved > 0);
        // Key disjointness across partitions.
        use std::collections::HashSet;
        let mut seen: Vec<HashSet<String>> = Vec::new();
        for p in &out.partitions {
            let keys: HashSet<String> = p
                .column("c0")
                .unwrap()
                .iter_values()
                .map(|v| format!("{v:?}"))
                .collect();
            for prior in &seen {
                assert!(prior.is_disjoint(&keys), "same key in two partitions");
            }
            seen.push(keys);
        }
    }

    #[test]
    fn keyless_shuffle_gathers_to_partition_zero() {
        let t = random_table(100, 2, 1);
        let out = shuffle(std::slice::from_ref(&t), t.schema(), &[], 4).unwrap();
        assert_eq!(out.partitions[0].num_rows(), 100);
        for p in &out.partitions[1..] {
            assert_eq!(p.num_rows(), 0);
        }
    }

    #[test]
    fn traced_shuffle_records_a_wave() {
        let t = random_table(200, 3, 5);
        let parts = PartitionedTable::split(t.clone(), 2).unwrap();
        let journal = TraceJournal::new();
        let out =
            shuffle_traced(parts.parts(), t.schema(), &["c0".to_owned()], 4, &journal).unwrap();
        let trace = journal.snapshot();
        let wave = trace
            .events
            .iter()
            .find_map(|e| match &e.kind {
                TraceEventKind::ShuffleWave {
                    keys,
                    rows,
                    bytes,
                    sources,
                    targets,
                } => Some((*keys, *rows, *bytes, *sources, *targets)),
                _ => None,
            })
            .expect("a ShuffleWave event");
        assert_eq!(wave, (1, 200, out.bytes_moved, 2, 4));
        assert_eq!(out.rows_moved(), 200);
    }

    #[test]
    fn columnar_hashes_match_value_hash_code() {
        let t = random_table(300, 5, 11);
        for col in t.columns() {
            let codes = column_hash_codes(col);
            for (i, &code) in codes.iter().enumerate() {
                assert_eq!(code, col.value(i).unwrap().hash_code(), "row {i}");
            }
        }
        // The integral-float rule survives the lane path.
        let col = Column::Float {
            data: vec![7.0, 2.5, f64::NAN, -0.0],
            validity: toreador_data::column::Validity::all_valid(4),
        };
        let codes = column_hash_codes(&col);
        assert_eq!(codes[0], Value::Int(7).hash_code());
        assert_eq!(codes[1], Value::Float(2.5).hash_code());
        assert_eq!(codes[2], Value::Float(f64::NAN).hash_code());
        assert_eq!(codes[3], Value::Int(0).hash_code());
    }

    #[test]
    fn columnar_routing_matches_row_route() {
        let t = random_table(250, 4, 23);
        let key_idx = vec![0usize, 2, 3];
        let routes = route_rows(&t, &key_idx, 7).unwrap();
        for (i, row) in t.iter_rows().enumerate() {
            assert_eq!(routes[i] as usize, route(&row, &key_idx, 7), "row {i}");
        }
    }

    #[test]
    fn lane_encoding_matches_row_encoding() {
        let t = random_table(120, 5, 31);
        let lanes = lanes(&t);
        for (i, row) in t.iter_rows().enumerate() {
            let mut by_row = BytesMut::new();
            encode_row(&row, &mut by_row);
            let mut by_lane = BytesMut::new();
            encode_row_at(&lanes, i, &mut by_lane);
            assert_eq!(by_row.freeze(), by_lane.freeze(), "row {i}");
        }
    }

    #[test]
    fn table_codec_round_trips_and_rejects_trailing_bytes() {
        let t = random_table(150, 5, 17);
        let mut buf = BytesMut::new();
        encode_table(&t, &mut buf);
        let bytes = buf.freeze();
        let back = decode_table(t.schema(), t.num_rows(), bytes.clone()).unwrap();
        assert_eq!(back, t);
        // Undercounting rows leaves trailing bytes: must be rejected.
        assert!(decode_table(t.schema(), t.num_rows() - 1, bytes.clone()).is_err());
        // Overcounting runs off the end: must be rejected.
        assert!(decode_table(t.schema(), t.num_rows() + 1, bytes).is_err());
    }

    #[test]
    fn shuffle_zero_targets_rejected() {
        let t = random_table(10, 2, 1);
        assert!(shuffle(std::slice::from_ref(&t), t.schema(), &[], 0).is_err());
    }

    #[test]
    fn shuffle_unknown_key_rejected() {
        let t = random_table(10, 2, 1);
        assert!(shuffle(std::slice::from_ref(&t), t.schema(), &["zzz".to_owned()], 2).is_err());
    }

    /// The core out-of-core invariant at the shuffle layer: with any budget
    /// — including zero — the spillable shuffle's partitions, byte counts
    /// and row counts are identical to the in-memory shuffle's.
    #[test]
    fn spillable_shuffle_is_byte_identical_to_in_memory() {
        let t = random_table(800, 4, 99);
        let parts = PartitionedTable::split(t.clone(), 4).unwrap();
        let keys = vec!["c0".to_owned()];
        let baseline = shuffle(parts.parts(), t.schema(), &keys, 6).unwrap();
        for budget in [0u64, 1, 512, 4 << 10, 1 << 30] {
            let dir = std::env::temp_dir().join(format!(
                "toreador-shuffle-spill-{}-{budget}",
                std::process::id()
            ));
            let manager = SpillManager::new(budget, dir.clone());
            let journal = TraceJournal::new();
            let out = shuffle_spillable(
                parts.parts().iter().map(|p| Ok(p.clone())),
                parts.parts().len(),
                t.schema(),
                &keys,
                6,
                Some((&manager, &journal)),
            )
            .unwrap();
            assert_eq!(out.partitions, baseline.partitions, "budget {budget}");
            assert_eq!(out.bytes_moved, baseline.bytes_moved, "budget {budget}");
            let spilled = journal
                .snapshot()
                .events
                .iter()
                .filter(|e| matches!(e.kind, TraceEventKind::SpillStarted { .. }))
                .count();
            if budget >= 1 << 30 {
                assert_eq!(spilled, 0, "a huge budget must not spill");
            } else {
                assert!(spilled > 0, "budget {budget} must have spilled");
            }
            drop(manager);
            assert!(!dir.exists(), "spill dir must be cleaned up on drop");
        }
    }
}
