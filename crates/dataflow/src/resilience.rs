//! Resilience policies: retries with backoff, task deadlines, speculative
//! execution, error classification, and cooperative run cancellation.
//!
//! The TOREADOR methodology exposes fault tolerance as a design dimension a
//! trainee chooses — and pays for. This module is the vocabulary of that
//! choice: a [`RetryPolicy`] decides how many times and how patiently a
//! failed task attempt is retried, a [`TaskDeadline`] turns a hung task
//! into a retryable [`FlowError::TaskTimedOut`] instead of a hung run, a
//! [`SpeculationPolicy`] launches backup attempts for stragglers, and
//! [`classify`] splits errors into transient (worth retrying) versus
//! permanent (the stage is doomed — trip the [`RunControl`] so in-flight
//! workers stop claiming tasks).
//!
//! Everything here is deterministic given a seed: backoff jitter draws come
//! from the same SplitMix64 stream as fault decisions (with a different
//! salt), so a resilience schedule replays bit-identically.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

use serde::{Deserialize, Serialize};

use crate::error::FlowError;
use crate::fault::{self, ChaosPlan, FaultPlan};

/// Salt decorrelating jitter draws from fault decisions sharing a seed.
const JITTER_SALT: u64 = 0x6a09_e667_f3bc_c909;

/// How long to wait between a failed attempt and its retry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Backoff {
    /// Retry immediately (the pre-resilience behaviour).
    Immediate,
    /// Constant delay before each retry.
    Fixed { delay_us: u64 },
    /// `base_us * 2^(attempt-1)`, capped at `cap_us`.
    Exponential { base_us: u64, cap_us: u64 },
}

/// Retry policy for task attempts in a stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum attempts per task (>= 1); the first attempt counts.
    pub max_attempts: u32,
    pub backoff: Backoff,
    /// Fractional jitter applied to non-zero backoff delays: a delay `d`
    /// becomes `d * (1 ± jitter)`, drawn deterministically from `seed`.
    pub jitter: f64,
    /// Seed for the jitter draws.
    pub seed: u64,
    /// Cap on total retries within one stage (None = unlimited).
    pub stage_retry_budget: Option<u32>,
    /// Cap on total retries across the whole run (None = unlimited).
    pub run_retry_budget: Option<u32>,
}

impl RetryPolicy {
    /// One attempt, no retries.
    pub fn none() -> Self {
        RetryPolicy::immediate(1)
    }

    /// Up to `max_attempts` attempts with no delay between them.
    pub fn immediate(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            backoff: Backoff::Immediate,
            jitter: 0.0,
            seed: 0,
            stage_retry_budget: None,
            run_retry_budget: None,
        }
    }

    /// Fixed delay between attempts.
    pub fn fixed(max_attempts: u32, delay_us: u64) -> Self {
        RetryPolicy {
            backoff: Backoff::Fixed { delay_us },
            ..RetryPolicy::immediate(max_attempts)
        }
    }

    /// Exponential backoff: `base_us`, doubling per retry, capped.
    pub fn exponential(max_attempts: u32, base_us: u64, cap_us: u64) -> Self {
        RetryPolicy {
            backoff: Backoff::Exponential {
                base_us,
                cap_us: cap_us.max(base_us),
            },
            ..RetryPolicy::immediate(max_attempts)
        }
    }

    /// Add seeded jitter (fraction in [0, 1]) to backoff delays.
    pub fn with_jitter(mut self, jitter: f64, seed: u64) -> Self {
        self.jitter = if jitter.is_nan() {
            0.0
        } else {
            jitter.clamp(0.0, 1.0)
        };
        self.seed = seed;
        self
    }

    pub fn with_stage_budget(mut self, budget: u32) -> Self {
        self.stage_retry_budget = Some(budget);
        self
    }

    pub fn with_run_budget(mut self, budget: u32) -> Self {
        self.run_retry_budget = Some(budget);
        self
    }

    /// Deterministic backoff delay before dispatching `attempt` (1-based:
    /// the first *retry* is attempt 1) of task (`stage`, `partition`).
    pub fn delay_us(&self, stage: usize, partition: usize, attempt: u32) -> u64 {
        let base = match self.backoff {
            Backoff::Immediate => 0,
            Backoff::Fixed { delay_us } => delay_us,
            Backoff::Exponential { base_us, cap_us } => {
                let shift = attempt.saturating_sub(1).min(20);
                base_us.saturating_mul(1u64 << shift).min(cap_us)
            }
        };
        if base == 0 || self.jitter <= 0.0 {
            return base;
        }
        let u = fault::uniform(self.seed, JITTER_SALT, stage, partition, attempt);
        let spread = (u * 2.0 - 1.0) * self.jitter; // in [-jitter, +jitter)
        ((base as f64) * (1.0 + spread)).max(0.0) as u64
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// Per-task wall-clock deadline. A running attempt that exceeds it is
/// declared [`FlowError::TaskTimedOut`] (a transient, retryable error) and
/// cancelled cooperatively — the run never hangs on one stuck task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskDeadline {
    pub timeout_us: u64,
}

impl TaskDeadline {
    pub fn from_millis(ms: u64) -> Self {
        TaskDeadline {
            timeout_us: ms.saturating_mul(1_000),
        }
    }

    pub fn from_micros(us: u64) -> Self {
        TaskDeadline { timeout_us: us }
    }
}

/// Straggler mitigation: once `min_samples` attempts of a stage have
/// completed, any task whose sole running attempt is older than
/// `factor ×` the stage's median attempt time gets one speculative backup
/// attempt. First completion wins; the loser is cancelled and recorded.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeculationPolicy {
    /// Multiple of the median attempt duration that marks a straggler.
    pub factor: f64,
    /// Completed attempts needed before the median is trusted.
    pub min_samples: usize,
}

impl SpeculationPolicy {
    pub fn new(factor: f64) -> Self {
        SpeculationPolicy {
            factor: if factor.is_nan() {
                2.0
            } else {
                factor.max(1.0)
            },
            min_samples: 3,
        }
    }

    pub fn with_min_samples(mut self, min_samples: usize) -> Self {
        self.min_samples = min_samples.max(1);
        self
    }
}

/// Whether an error is worth retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// Infrastructure-shaped: another attempt may succeed.
    Transient,
    /// The computation itself is wrong; retrying cannot help. The stage is
    /// doomed — cancel it instead of finishing the remaining tasks.
    Permanent,
}

/// Classify a task error. Injected crashes, deadline expiries, and panics
/// are transient (the environment misbehaved); everything else — type
/// errors, missing datasets, plan bugs — is permanent.
pub fn classify(err: &FlowError) -> ErrorClass {
    match err {
        FlowError::TaskFailed { .. }
        | FlowError::TaskTimedOut { .. }
        | FlowError::TaskPanicked { .. } => ErrorClass::Transient,
        _ => ErrorClass::Permanent,
    }
}

/// The complete resilience configuration of an engine run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ResilienceConfig {
    pub retry: RetryPolicy,
    /// Per-task deadline (None = tasks may run forever).
    pub deadline: Option<TaskDeadline>,
    /// Straggler speculation (None = disabled).
    pub speculation: Option<SpeculationPolicy>,
    /// Deterministic fault injection for this run.
    pub chaos: ChaosPlan,
}

impl ResilienceConfig {
    /// No retries, no deadline, no speculation, no chaos.
    pub fn none() -> Self {
        ResilienceConfig::default()
    }

    /// The resilience equivalent of a legacy [`FaultPlan`]: crash faults at
    /// the plan's rate, immediate retries up to its attempt budget.
    pub fn from_fault_plan(plan: &FaultPlan) -> Self {
        ResilienceConfig {
            retry: RetryPolicy::immediate(plan.max_attempts),
            deadline: None,
            speculation: None,
            chaos: ChaosPlan::from(*plan),
        }
    }

    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    pub fn with_deadline(mut self, deadline: TaskDeadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    pub fn with_speculation(mut self, speculation: SpeculationPolicy) -> Self {
        self.speculation = Some(speculation);
        self
    }

    pub fn with_chaos(mut self, chaos: ChaosPlan) -> Self {
        self.chaos = chaos;
        self
    }

    /// Spare workers the stage pool should hold beyond its configured
    /// size. A hung attempt cannot be interrupted, only abandoned, so each
    /// watchdog that replaces attempts (deadline expiry, speculation)
    /// needs one thread guaranteed free to run the replacement even when
    /// every configured worker is pinned under a straggler.
    pub fn spare_worker_hint(&self) -> usize {
        usize::from(self.deadline.is_some()) + usize::from(self.speculation.is_some())
    }
}

/// Shared cancellation and budget state for one run. The execution context
/// holds one; every stage consults it before claiming work, so a permanent
/// failure in stage N stops stage N's in-flight workers *and* prevents any
/// later stage from starting.
///
/// Clones share state (the handle is an `Arc` internally), so an external
/// owner — a serving daemon draining on SIGTERM, an operator console — can
/// keep a handle and cancel a run that is executing on other threads: pass
/// the clone in via [`crate::session::EngineConfig::with_control`].
#[derive(Debug, Clone, Default)]
pub struct RunControl {
    state: std::sync::Arc<ControlState>,
}

#[derive(Debug, Default)]
struct ControlState {
    cancelled: AtomicBool,
    reason: parking_lot::Mutex<Option<String>>,
    retries_used: AtomicU32,
}

impl RunControl {
    pub fn new() -> Self {
        RunControl::default()
    }

    /// Trip the cancellation flag. The first reason wins.
    pub fn cancel(&self, reason: impl Into<String>) {
        let mut slot = self.state.reason.lock();
        if !self.state.cancelled.swap(true, Ordering::SeqCst) {
            *slot = Some(reason.into());
        }
    }

    pub fn is_cancelled(&self) -> bool {
        self.state.cancelled.load(Ordering::SeqCst)
    }

    pub fn reason(&self) -> Option<String> {
        self.state.reason.lock().clone()
    }

    /// Total retries charged against the run budget so far.
    pub fn run_retries_used(&self) -> u32 {
        self.state.retries_used.load(Ordering::SeqCst)
    }

    /// Reserve one retry from the run budget; false when exhausted.
    pub fn try_reserve_retry(&self, budget: Option<u32>) -> bool {
        match budget {
            None => {
                self.state.retries_used.fetch_add(1, Ordering::SeqCst);
                true
            }
            Some(cap) => self
                .state
                .retries_used
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |used| {
                    (used < cap).then_some(used + 1)
                })
                .is_ok(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_backoff_has_zero_delay() {
        let p = RetryPolicy::immediate(5);
        assert_eq!(p.delay_us(0, 0, 1), 0);
        assert_eq!(p.delay_us(3, 7, 4), 0);
    }

    #[test]
    fn exponential_backoff_doubles_and_caps() {
        let p = RetryPolicy::exponential(8, 100, 450);
        assert_eq!(p.delay_us(0, 0, 1), 100);
        assert_eq!(p.delay_us(0, 0, 2), 200);
        assert_eq!(p.delay_us(0, 0, 3), 400);
        assert_eq!(p.delay_us(0, 0, 4), 450, "capped");
        assert_eq!(p.delay_us(0, 0, 30), 450, "shift saturates");
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let p = RetryPolicy::fixed(4, 1_000).with_jitter(0.25, 99);
        for partition in 0..32 {
            let d = p.delay_us(2, partition, 1);
            assert!((750..=1_250).contains(&d), "jittered delay {d}");
            assert_eq!(d, p.delay_us(2, partition, 1), "deterministic");
        }
        // Different partitions draw different jitter.
        let draws: Vec<u64> = (0..32).map(|part| p.delay_us(2, part, 1)).collect();
        assert!(draws.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn nan_jitter_and_factor_normalise() {
        let p = RetryPolicy::fixed(2, 500).with_jitter(f64::NAN, 1);
        assert_eq!(p.delay_us(0, 0, 1), 500);
        let s = SpeculationPolicy::new(f64::NAN);
        assert_eq!(s.factor, 2.0);
    }

    #[test]
    fn classification_splits_infrastructure_from_logic() {
        assert_eq!(
            classify(&FlowError::TaskFailed {
                stage: 0,
                partition: 0,
                attempts: 1,
                message: "injected fault".into()
            }),
            ErrorClass::Transient
        );
        assert_eq!(
            classify(&FlowError::TaskTimedOut {
                stage: 0,
                partition: 0,
                attempts: 1,
                deadline_us: 10
            }),
            ErrorClass::Transient
        );
        assert_eq!(
            classify(&FlowError::TaskPanicked {
                stage: 0,
                partition: 0,
                attempts: 1,
                message: "boom".into()
            }),
            ErrorClass::Transient
        );
        assert_eq!(
            classify(&FlowError::Plan("bad plan".into())),
            ErrorClass::Permanent
        );
        assert_eq!(
            classify(&FlowError::UnknownDataset("ghost".into())),
            ErrorClass::Permanent
        );
    }

    #[test]
    fn run_control_cancels_once_with_first_reason() {
        let c = RunControl::new();
        assert!(!c.is_cancelled());
        c.cancel("first");
        c.cancel("second");
        assert!(c.is_cancelled());
        assert_eq!(c.reason().as_deref(), Some("first"));
    }

    #[test]
    fn run_retry_budget_is_enforced_atomically() {
        let c = RunControl::new();
        assert!(c.try_reserve_retry(Some(2)));
        assert!(c.try_reserve_retry(Some(2)));
        assert!(!c.try_reserve_retry(Some(2)), "budget exhausted");
        assert_eq!(c.run_retries_used(), 2);
        // Unlimited budget still counts usage.
        let free = RunControl::new();
        assert!(free.try_reserve_retry(None));
        assert_eq!(free.run_retries_used(), 1);
    }

    #[test]
    fn resilience_config_from_fault_plan_keeps_budget_and_rate() {
        let plan = FaultPlan::with_rate(0.3, 5, 7);
        let r = ResilienceConfig::from_fault_plan(&plan);
        assert_eq!(r.retry.max_attempts, 7);
        assert_eq!(r.chaos.crash_rate, 0.3);
        assert_eq!(r.chaos.seed, 5);
        assert!(r.deadline.is_none());
        assert!(r.speculation.is_none());
    }

    #[test]
    fn policies_serialize_round_trip() {
        let r = ResilienceConfig::none()
            .with_retry(RetryPolicy::exponential(4, 200, 10_000).with_jitter(0.2, 3))
            .with_deadline(TaskDeadline::from_millis(250))
            .with_speculation(SpeculationPolicy::new(2.0).with_min_samples(4))
            .with_chaos(ChaosPlan::crashes(0.05, 11));
        let j = serde_json::to_string(&r).unwrap();
        let back: ResilienceConfig = serde_json::from_str(&j).unwrap();
        assert_eq!(r, back);
    }
}
