//! Scalar expression AST, type checking, and evaluation.
//!
//! Expressions appear in `Filter`, `Project` and derived-column plan nodes.
//! They are type-checked against the input schema at plan time (so the
//! engine rejects bad pipelines before running them — the BDAaaS premise)
//! and evaluated row-at-a-time during execution.

use std::fmt;

use serde::{Deserialize, Serialize};

use toreador_data::column::Column;
use toreador_data::schema::Schema;
use toreador_data::table::Table;
use toreador_data::value::{DataType, Row, Value};

use crate::error::{FlowError, Result};

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

impl BinOp {
    pub(crate) fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::NotEq => "!=",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }

    pub(crate) fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
        )
    }

    pub(crate) fn is_arithmetic(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnOp {
    Not,
    Neg,
    IsNull,
    IsNotNull,
}

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Func {
    Abs,
    Floor,
    Ceil,
    Sqrt,
    Ln,
    Lower,
    Upper,
    /// String length in bytes.
    Length,
    /// Hour-of-day (0..24) from a Timestamp in ms.
    HourOfDay,
    /// Day index since the epoch from a Timestamp in ms.
    DayIndex,
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Reference to an input column by name.
    Column(String),
    /// A constant.
    Literal(Value),
    Binary {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    Unary {
        op: UnOp,
        operand: Box<Expr>,
    },
    Call {
        func: Func,
        args: Vec<Expr>,
    },
    /// First non-null argument.
    Coalesce(Vec<Expr>),
    /// `CASE WHEN cond THEN a ELSE b END`.
    If {
        cond: Box<Expr>,
        then: Box<Expr>,
        otherwise: Box<Expr>,
    },
    /// Explicit cast.
    Cast {
        expr: Box<Expr>,
        to: DataType,
    },
}

/// Shorthand constructors, modelled on DataFusion's `Expr` helpers.
/// (`add`/`sub`/`mul`/`div`/`neg`/`not` deliberately mirror the operator
/// names without implementing the std traits — they build AST nodes, not
/// values, and the DSL reads better this way.)
pub fn col(name: impl Into<String>) -> Expr {
    Expr::Column(name.into())
}

pub fn lit(v: impl Into<Value>) -> Expr {
    Expr::Literal(v.into())
}

#[allow(clippy::should_implement_trait)]
impl Expr {
    pub fn eq(self, other: Expr) -> Expr {
        self.binary(BinOp::Eq, other)
    }
    pub fn not_eq(self, other: Expr) -> Expr {
        self.binary(BinOp::NotEq, other)
    }
    pub fn lt(self, other: Expr) -> Expr {
        self.binary(BinOp::Lt, other)
    }
    pub fn lt_eq(self, other: Expr) -> Expr {
        self.binary(BinOp::LtEq, other)
    }
    pub fn gt(self, other: Expr) -> Expr {
        self.binary(BinOp::Gt, other)
    }
    pub fn gt_eq(self, other: Expr) -> Expr {
        self.binary(BinOp::GtEq, other)
    }
    pub fn and(self, other: Expr) -> Expr {
        self.binary(BinOp::And, other)
    }
    pub fn or(self, other: Expr) -> Expr {
        self.binary(BinOp::Or, other)
    }
    pub fn add(self, other: Expr) -> Expr {
        self.binary(BinOp::Add, other)
    }
    pub fn sub(self, other: Expr) -> Expr {
        self.binary(BinOp::Sub, other)
    }
    pub fn mul(self, other: Expr) -> Expr {
        self.binary(BinOp::Mul, other)
    }
    pub fn div(self, other: Expr) -> Expr {
        self.binary(BinOp::Div, other)
    }
    pub fn modulo(self, other: Expr) -> Expr {
        self.binary(BinOp::Mod, other)
    }
    pub fn neg(self) -> Expr {
        Expr::Unary {
            op: UnOp::Neg,
            operand: Box::new(self),
        }
    }
    pub fn not(self) -> Expr {
        Expr::Unary {
            op: UnOp::Not,
            operand: Box::new(self),
        }
    }
    pub fn is_null(self) -> Expr {
        Expr::Unary {
            op: UnOp::IsNull,
            operand: Box::new(self),
        }
    }
    pub fn is_not_null(self) -> Expr {
        Expr::Unary {
            op: UnOp::IsNotNull,
            operand: Box::new(self),
        }
    }
    pub fn cast(self, to: DataType) -> Expr {
        Expr::Cast {
            expr: Box::new(self),
            to,
        }
    }
    pub fn call(func: Func, args: Vec<Expr>) -> Expr {
        Expr::Call { func, args }
    }
    pub fn coalesce(args: Vec<Expr>) -> Expr {
        Expr::Coalesce(args)
    }
    pub fn if_then(cond: Expr, then: Expr, otherwise: Expr) -> Expr {
        Expr::If {
            cond: Box::new(cond),
            then: Box::new(then),
            otherwise: Box::new(otherwise),
        }
    }

    fn binary(self, op: BinOp, other: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// Names of all columns referenced by this expression.
    pub fn referenced_columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.visit_columns(&mut |name| out.push(name));
        out.sort_unstable();
        out.dedup();
        out
    }

    fn visit_columns<'a>(&'a self, f: &mut impl FnMut(&'a str)) {
        match self {
            Expr::Column(name) => f(name),
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.visit_columns(f);
                right.visit_columns(f);
            }
            Expr::Unary { operand, .. } => operand.visit_columns(f),
            Expr::Call { args, .. } | Expr::Coalesce(args) => {
                for a in args {
                    a.visit_columns(f);
                }
            }
            Expr::If {
                cond,
                then,
                otherwise,
            } => {
                cond.visit_columns(f);
                then.visit_columns(f);
                otherwise.visit_columns(f);
            }
            Expr::Cast { expr, .. } => expr.visit_columns(f),
        }
    }

    /// Infer the output type against `schema`, or fail with a readable error.
    pub fn infer_type(&self, schema: &Schema) -> Result<DataType> {
        let bad = |msg: String| Err(FlowError::TypeCheck(msg));
        match self {
            Expr::Column(name) => Ok(schema
                .field(name)
                .map_err(|_| FlowError::TypeCheck(format!("unknown column {name:?} in {schema}")))?
                .data_type),
            Expr::Literal(v) => match v.data_type() {
                Some(t) => Ok(t),
                // A bare null literal types as Str; wrap in Cast to pick another.
                None => Ok(DataType::Str),
            },
            Expr::Binary { op, left, right } => {
                let lt = left.infer_type(schema)?;
                let rt = right.infer_type(schema)?;
                if op.is_arithmetic() {
                    match lt.unify(rt) {
                        Some(t) if t.is_numeric() => {
                            if *op == BinOp::Div {
                                Ok(DataType::Float)
                            } else {
                                Ok(t)
                            }
                        }
                        _ => bad(format!(
                            "{} requires numeric operands, got {lt} {rt}",
                            op.symbol()
                        )),
                    }
                } else if op.is_comparison() {
                    if lt.unify(rt).is_some() {
                        Ok(DataType::Bool)
                    } else {
                        bad(format!("cannot compare {lt} with {rt}"))
                    }
                } else {
                    // And / Or
                    if lt == DataType::Bool && rt == DataType::Bool {
                        Ok(DataType::Bool)
                    } else {
                        bad(format!(
                            "{} requires Bool operands, got {lt} {rt}",
                            op.symbol()
                        ))
                    }
                }
            }
            Expr::Unary { op, operand } => {
                let t = operand.infer_type(schema)?;
                match op {
                    UnOp::Not => {
                        if t == DataType::Bool {
                            Ok(DataType::Bool)
                        } else {
                            bad(format!("NOT requires Bool, got {t}"))
                        }
                    }
                    UnOp::Neg => {
                        if t.is_numeric() {
                            Ok(t)
                        } else {
                            bad(format!("negation requires numeric, got {t}"))
                        }
                    }
                    UnOp::IsNull | UnOp::IsNotNull => Ok(DataType::Bool),
                }
            }
            Expr::Call { func, args } => {
                let arity = 1usize;
                if args.len() != arity {
                    return bad(format!(
                        "{func:?} expects {arity} argument(s), got {}",
                        args.len()
                    ));
                }
                let t = args[0].infer_type(schema)?;
                match func {
                    Func::Abs | Func::Floor | Func::Ceil => {
                        if t.is_numeric() {
                            Ok(t)
                        } else {
                            bad(format!("{func:?} requires numeric, got {t}"))
                        }
                    }
                    Func::Sqrt | Func::Ln => {
                        if t.is_numeric() {
                            Ok(DataType::Float)
                        } else {
                            bad(format!("{func:?} requires numeric, got {t}"))
                        }
                    }
                    Func::Lower | Func::Upper => {
                        if t == DataType::Str {
                            Ok(DataType::Str)
                        } else {
                            bad(format!("{func:?} requires Str, got {t}"))
                        }
                    }
                    Func::Length => {
                        if t == DataType::Str {
                            Ok(DataType::Int)
                        } else {
                            bad(format!("Length requires Str, got {t}"))
                        }
                    }
                    Func::HourOfDay | Func::DayIndex => {
                        if t == DataType::Timestamp {
                            Ok(DataType::Int)
                        } else {
                            bad(format!("{func:?} requires Timestamp, got {t}"))
                        }
                    }
                }
            }
            Expr::Coalesce(args) => {
                if args.is_empty() {
                    return bad("COALESCE needs at least one argument".to_owned());
                }
                let mut ty = args[0].infer_type(schema)?;
                for a in &args[1..] {
                    let t = a.infer_type(schema)?;
                    ty = ty.unify(t).ok_or_else(|| {
                        FlowError::TypeCheck(format!("COALESCE mixes {ty} and {t}"))
                    })?;
                }
                Ok(ty)
            }
            Expr::If {
                cond,
                then,
                otherwise,
            } => {
                let ct = cond.infer_type(schema)?;
                if ct != DataType::Bool {
                    return bad(format!("IF condition must be Bool, got {ct}"));
                }
                let tt = then.infer_type(schema)?;
                let ot = otherwise.infer_type(schema)?;
                tt.unify(ot)
                    .ok_or_else(|| FlowError::TypeCheck(format!("IF branches mix {tt} and {ot}")))
            }
            Expr::Cast { expr, to } => {
                // Casts are checked dynamically; any source type is allowed
                // (numeric <-> numeric, anything -> Str, Str -> numeric).
                expr.infer_type(schema)?;
                Ok(*to)
            }
        }
    }

    /// Evaluate against one row of `schema`. Null propagates through
    /// arithmetic, comparisons and functions (SQL three-valued logic for
    /// AND/OR is simplified: null operands yield null).
    pub fn eval(&self, schema: &Schema, row: &Row) -> Result<Value> {
        match self {
            Expr::Column(name) => {
                let idx = schema
                    .index_of(name)
                    .map_err(|_| FlowError::TypeCheck(format!("unknown column {name:?}")))?;
                Ok(row[idx].clone())
            }
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Binary { op, left, right } => {
                let l = left.eval(schema, row)?;
                // Short-circuit AND/OR on a known left side.
                if *op == BinOp::And {
                    if let Value::Bool(false) = l {
                        return Ok(Value::Bool(false));
                    }
                } else if *op == BinOp::Or {
                    if let Value::Bool(true) = l {
                        return Ok(Value::Bool(true));
                    }
                }
                let r = right.eval(schema, row)?;
                eval_binary(*op, &l, &r)
            }
            Expr::Unary { op, operand } => {
                let v = operand.eval(schema, row)?;
                match op {
                    UnOp::IsNull => Ok(Value::Bool(v.is_null())),
                    UnOp::IsNotNull => Ok(Value::Bool(!v.is_null())),
                    UnOp::Not => match v {
                        Value::Null => Ok(Value::Null),
                        Value::Bool(b) => Ok(Value::Bool(!b)),
                        other => Err(runtime_type("Bool", &other)),
                    },
                    UnOp::Neg => match v {
                        Value::Null => Ok(Value::Null),
                        Value::Int(i) => Ok(Value::Int(i.wrapping_neg())),
                        Value::Float(x) => Ok(Value::Float(-x)),
                        other => Err(runtime_type("numeric", &other)),
                    },
                }
            }
            Expr::Call { func, args } => {
                let v = args[0].eval(schema, row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                eval_func(*func, &v)
            }
            Expr::Coalesce(args) => {
                for a in args {
                    let v = a.eval(schema, row)?;
                    if !v.is_null() {
                        return Ok(v);
                    }
                }
                Ok(Value::Null)
            }
            Expr::If {
                cond,
                then,
                otherwise,
            } => match cond.eval(schema, row)? {
                Value::Bool(true) => then.eval(schema, row),
                Value::Bool(false) | Value::Null => otherwise.eval(schema, row),
                other => Err(runtime_type("Bool", &other)),
            },
            Expr::Cast { expr, to } => {
                let v = expr.eval(schema, row)?;
                cast_value(&v, *to)
            }
        }
    }

    /// Evaluate over a whole table, producing a column of the inferred type.
    pub fn eval_table(&self, table: &Table) -> Result<Column> {
        let ty = self.infer_type(table.schema())?;
        self.eval_table_typed(table, ty)
    }

    /// Like [`Self::eval_table`], but with the output type already resolved
    /// at plan time — execution only debug-asserts it, so per-partition
    /// tasks skip the full inference walk.
    pub fn eval_table_typed(&self, table: &Table, ty: DataType) -> Result<Column> {
        debug_assert_eq!(
            self.infer_type(table.schema()).ok(),
            Some(ty),
            "plan-time type must match inference for {self}"
        );
        let mut out = Column::with_capacity(ty, table.num_rows());
        for row in table.iter_rows() {
            let v = self.eval(table.schema(), &row)?;
            let v = v.coerce(ty).map_err(FlowError::Data)?;
            out.push(&v)?;
        }
        Ok(out)
    }

    /// Evaluate a boolean predicate over a table into a selection mask.
    /// Null results count as `false` (SQL WHERE semantics).
    pub fn eval_mask(&self, table: &Table) -> Result<Vec<bool>> {
        let ty = self.infer_type(table.schema())?;
        if ty != DataType::Bool {
            return Err(FlowError::TypeCheck(format!(
                "predicate must be Bool, got {ty}"
            )));
        }
        self.eval_mask_checked(table)
    }

    /// Like [`Self::eval_mask`], for predicates already type-checked as
    /// Bool at plan time (only a debug assert re-runs inference).
    pub fn eval_mask_checked(&self, table: &Table) -> Result<Vec<bool>> {
        debug_assert_eq!(
            self.infer_type(table.schema()).ok(),
            Some(DataType::Bool),
            "predicate must be plan-checked as Bool: {self}"
        );
        let mut mask = Vec::with_capacity(table.num_rows());
        for row in table.iter_rows() {
            mask.push(matches!(
                self.eval(table.schema(), &row)?,
                Value::Bool(true)
            ));
        }
        Ok(mask)
    }
}

fn runtime_type(expected: &str, found: &Value) -> FlowError {
    FlowError::TypeCheck(format!(
        "runtime type error: expected {expected}, found {:?}",
        found.data_type().map(|t| t.name()).unwrap_or("Null")
    ))
}

pub(crate) fn eval_binary(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    use BinOp::*;
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    if op.is_comparison() {
        let ord = l.total_cmp(r);
        let b = match op {
            Eq => ord == std::cmp::Ordering::Equal,
            NotEq => ord != std::cmp::Ordering::Equal,
            Lt => ord == std::cmp::Ordering::Less,
            LtEq => ord != std::cmp::Ordering::Greater,
            Gt => ord == std::cmp::Ordering::Greater,
            GtEq => ord != std::cmp::Ordering::Less,
            _ => unreachable!(),
        };
        return Ok(Value::Bool(b));
    }
    match op {
        And => Ok(Value::Bool(
            l.as_bool().map_err(FlowError::Data)? && r.as_bool().map_err(FlowError::Data)?,
        )),
        Or => Ok(Value::Bool(
            l.as_bool().map_err(FlowError::Data)? || r.as_bool().map_err(FlowError::Data)?,
        )),
        Add | Sub | Mul | Mod => match (l, r) {
            (Value::Int(a), Value::Int(b)) => {
                let v = match op {
                    Add => a.wrapping_add(*b),
                    Sub => a.wrapping_sub(*b),
                    Mul => a.wrapping_mul(*b),
                    Mod => {
                        if *b == 0 {
                            return Ok(Value::Null);
                        }
                        a.wrapping_rem(*b)
                    }
                    _ => unreachable!(),
                };
                Ok(Value::Int(v))
            }
            _ => {
                let a = l.as_float().map_err(FlowError::Data)?;
                let b = r.as_float().map_err(FlowError::Data)?;
                let v = match op {
                    Add => a + b,
                    Sub => a - b,
                    Mul => a * b,
                    Mod => {
                        if b == 0.0 {
                            return Ok(Value::Null);
                        }
                        a % b
                    }
                    _ => unreachable!(),
                };
                Ok(Value::Float(v))
            }
        },
        Div => {
            let a = l.as_float().map_err(FlowError::Data)?;
            let b = r.as_float().map_err(FlowError::Data)?;
            if b == 0.0 {
                Ok(Value::Null) // SQL-style: division by zero yields null
            } else {
                Ok(Value::Float(a / b))
            }
        }
        _ => unreachable!(),
    }
}

pub(crate) fn eval_func(func: Func, v: &Value) -> Result<Value> {
    Ok(match func {
        Func::Abs => match v {
            Value::Int(i) => Value::Int(i.wrapping_abs()),
            other => Value::Float(other.as_float().map_err(FlowError::Data)?.abs()),
        },
        Func::Floor => match v {
            Value::Int(i) => Value::Int(*i),
            other => Value::Float(other.as_float().map_err(FlowError::Data)?.floor()),
        },
        Func::Ceil => match v {
            Value::Int(i) => Value::Int(*i),
            other => Value::Float(other.as_float().map_err(FlowError::Data)?.ceil()),
        },
        Func::Sqrt => Value::Float(v.as_float().map_err(FlowError::Data)?.sqrt()),
        Func::Ln => {
            let x = v.as_float().map_err(FlowError::Data)?;
            if x <= 0.0 {
                Value::Null
            } else {
                Value::Float(x.ln())
            }
        }
        Func::Lower => Value::Str(v.as_str().map_err(FlowError::Data)?.to_lowercase()),
        Func::Upper => Value::Str(v.as_str().map_err(FlowError::Data)?.to_uppercase()),
        Func::Length => Value::Int(v.as_str().map_err(FlowError::Data)?.len() as i64),
        Func::HourOfDay => {
            Value::Int((v.as_timestamp().map_err(FlowError::Data)? / 3_600_000).rem_euclid(24))
        }
        Func::DayIndex => Value::Int(v.as_timestamp().map_err(FlowError::Data)? / 86_400_000),
    })
}

pub(crate) fn cast_value(v: &Value, to: DataType) -> Result<Value> {
    if v.is_null() {
        return Ok(Value::Null);
    }
    let err = || FlowError::TypeCheck(format!("cannot cast {v:?} to {to}"));
    Ok(match to {
        DataType::Str => Value::Str(v.to_string()),
        DataType::Int => match v {
            Value::Int(i) => Value::Int(*i),
            Value::Float(x) => Value::Int(*x as i64),
            Value::Bool(b) => Value::Int(*b as i64),
            Value::Timestamp(t) => Value::Int(*t),
            Value::Str(s) => Value::Int(s.trim().parse().map_err(|_| err())?),
            Value::Null => unreachable!(),
        },
        DataType::Float => match v {
            Value::Float(x) => Value::Float(*x),
            Value::Int(i) => Value::Float(*i as f64),
            Value::Str(s) => Value::Float(s.trim().parse().map_err(|_| err())?),
            _ => return Err(err()),
        },
        DataType::Bool => match v {
            Value::Bool(b) => Value::Bool(*b),
            Value::Int(i) => Value::Bool(*i != 0),
            _ => return Err(err()),
        },
        DataType::Timestamp => match v {
            Value::Timestamp(t) => Value::Timestamp(*t),
            Value::Int(i) => Value::Timestamp(*i),
            _ => return Err(err()),
        },
    })
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(name) => write!(f, "{name}"),
            Expr::Literal(Value::Str(s)) => write!(f, "{s:?}"),
            Expr::Literal(v) if v.is_null() => write!(f, "NULL"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Binary { op, left, right } => write!(f, "({left} {} {right})", op.symbol()),
            Expr::Unary { op, operand } => match op {
                UnOp::Not => write!(f, "NOT {operand}"),
                UnOp::Neg => write!(f, "-{operand}"),
                UnOp::IsNull => write!(f, "{operand} IS NULL"),
                UnOp::IsNotNull => write!(f, "{operand} IS NOT NULL"),
            },
            Expr::Call { func, args } => write!(f, "{func:?}({})", args[0].clone()),
            Expr::Coalesce(args) => {
                write!(f, "COALESCE(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::If {
                cond,
                then,
                otherwise,
            } => {
                write!(f, "IF {cond} THEN {then} ELSE {otherwise}")
            }
            Expr::Cast { expr, to } => write!(f, "CAST({expr} AS {to})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toreador_data::schema::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("i", DataType::Int),
            Field::new("x", DataType::Float),
            Field::new("s", DataType::Str),
            Field::new("b", DataType::Bool),
            Field::new("t", DataType::Timestamp),
        ])
        .unwrap()
    }

    fn row() -> Row {
        vec![
            Value::Int(4),
            Value::Float(2.5),
            Value::Str("Hello".into()),
            Value::Bool(true),
            Value::Timestamp(90_000_000), // 25h -> hour 1, day 1
        ]
    }

    #[test]
    fn type_inference_basics() {
        let s = schema();
        assert_eq!(col("i").infer_type(&s).unwrap(), DataType::Int);
        assert_eq!(
            col("i").add(col("x")).infer_type(&s).unwrap(),
            DataType::Float
        );
        assert_eq!(
            col("i").div(lit(2i64)).infer_type(&s).unwrap(),
            DataType::Float
        );
        assert_eq!(
            col("i").lt(col("x")).infer_type(&s).unwrap(),
            DataType::Bool
        );
        assert_eq!(col("s").is_null().infer_type(&s).unwrap(), DataType::Bool);
        assert!(col("s").add(lit(1i64)).infer_type(&s).is_err());
        assert!(col("missing").infer_type(&s).is_err());
        assert!(col("b").and(col("i").gt(lit(0i64))).infer_type(&s).is_ok());
        assert!(col("i").and(col("b")).infer_type(&s).is_err());
    }

    #[test]
    fn arithmetic_evaluation() {
        let s = schema();
        let r = row();
        assert_eq!(col("i").add(lit(1i64)).eval(&s, &r).unwrap(), Value::Int(5));
        assert_eq!(
            col("i").mul(col("x")).eval(&s, &r).unwrap(),
            Value::Float(10.0)
        );
        assert_eq!(col("i").div(lit(0i64)).eval(&s, &r).unwrap(), Value::Null);
        assert_eq!(
            col("i").modulo(lit(3i64)).eval(&s, &r).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            col("i").modulo(lit(0i64)).eval(&s, &r).unwrap(),
            Value::Null
        );
        assert_eq!(col("i").neg().eval(&s, &r).unwrap(), Value::Int(-4));
    }

    #[test]
    fn comparisons_and_logic() {
        let s = schema();
        let r = row();
        assert_eq!(
            col("i").gt(lit(3i64)).eval(&s, &r).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            col("i").eq(lit(4.0)).eval(&s, &r).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            col("b").and(col("i").lt(lit(0i64))).eval(&s, &r).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            col("b").or(lit(false)).eval(&s, &r).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(col("b").not().eval(&s, &r).unwrap(), Value::Bool(false));
    }

    #[test]
    fn short_circuit_skips_right_errors() {
        let s = schema();
        let r = row();
        // Right side would fail at runtime (unknown column) but is never reached.
        let e = lit(false).and(col("nope"));
        assert_eq!(e.eval(&s, &r).unwrap(), Value::Bool(false));
        let e = lit(true).or(col("nope"));
        assert_eq!(e.eval(&s, &r).unwrap(), Value::Bool(true));
    }

    #[test]
    fn null_propagation() {
        let s = schema();
        let mut r = row();
        r[0] = Value::Null;
        assert_eq!(col("i").add(lit(1i64)).eval(&s, &r).unwrap(), Value::Null);
        assert_eq!(col("i").gt(lit(0i64)).eval(&s, &r).unwrap(), Value::Null);
        assert_eq!(col("i").is_null().eval(&s, &r).unwrap(), Value::Bool(true));
        assert_eq!(
            Expr::coalesce(vec![col("i"), lit(9i64)])
                .eval(&s, &r)
                .unwrap(),
            Value::Int(9)
        );
    }

    #[test]
    fn functions_evaluate() {
        let s = schema();
        let r = row();
        assert_eq!(
            Expr::call(Func::Upper, vec![col("s")])
                .eval(&s, &r)
                .unwrap(),
            Value::Str("HELLO".into())
        );
        assert_eq!(
            Expr::call(Func::Length, vec![col("s")])
                .eval(&s, &r)
                .unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            Expr::call(Func::HourOfDay, vec![col("t")])
                .eval(&s, &r)
                .unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            Expr::call(Func::DayIndex, vec![col("t")])
                .eval(&s, &r)
                .unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            Expr::call(Func::Sqrt, vec![lit(9.0)]).eval(&s, &r).unwrap(),
            Value::Float(3.0)
        );
        assert_eq!(
            Expr::call(Func::Ln, vec![lit(0.0)]).eval(&s, &r).unwrap(),
            Value::Null
        );
        assert_eq!(
            Expr::call(Func::Abs, vec![lit(-3i64)])
                .eval(&s, &r)
                .unwrap(),
            Value::Int(3)
        );
    }

    #[test]
    fn if_then_else() {
        let s = schema();
        let r = row();
        let e = Expr::if_then(col("i").gt(lit(2i64)), lit("big"), lit("small"));
        assert_eq!(e.eval(&s, &r).unwrap(), Value::Str("big".into()));
        assert_eq!(e.infer_type(&s).unwrap(), DataType::Str);
        // Null condition takes the else branch.
        let e = Expr::if_then(
            lit(Value::Null)
                .cast(DataType::Bool)
                .is_null()
                .not()
                .and(lit(true)),
            lit(1i64),
            lit(0i64),
        );
        let _ = e; // construction only; dedicated null-cond check below
        let mut r2 = row();
        r2[3] = Value::Null;
        let e = Expr::if_then(col("b"), lit(1i64), lit(0i64));
        assert_eq!(e.eval(&s, &r2).unwrap(), Value::Int(0));
    }

    #[test]
    fn casts() {
        let s = schema();
        let r = row();
        assert_eq!(
            col("x").cast(DataType::Int).eval(&s, &r).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            col("i").cast(DataType::Str).eval(&s, &r).unwrap(),
            Value::Str("4".into())
        );
        assert_eq!(
            lit("42").cast(DataType::Int).eval(&s, &r).unwrap(),
            Value::Int(42)
        );
        assert!(lit("xyz").cast(DataType::Int).eval(&s, &r).is_err());
        assert_eq!(
            col("t").cast(DataType::Int).eval(&s, &r).unwrap(),
            Value::Int(90_000_000)
        );
    }

    #[test]
    fn eval_table_and_mask() {
        let t = Table::from_rows(
            Schema::new(vec![Field::new("v", DataType::Int)]).unwrap(),
            (0..10).map(|i| vec![Value::Int(i)]),
        )
        .unwrap();
        let doubled = col("v").mul(lit(2i64)).eval_table(&t).unwrap();
        assert_eq!(doubled.value(3).unwrap(), Value::Int(6));
        let mask = col("v").gt_eq(lit(5i64)).eval_mask(&t).unwrap();
        assert_eq!(mask.iter().filter(|&&b| b).count(), 5);
        assert!(
            col("v").eval_mask(&t).is_err(),
            "non-bool predicate rejected"
        );
    }

    #[test]
    fn referenced_columns_deduped() {
        let e = col("a").add(col("b")).mul(col("a"));
        assert_eq!(e.referenced_columns(), vec!["a", "b"]);
    }

    #[test]
    fn display_renders_sql_like() {
        let e = col("price").gt(lit(10.0)).and(col("country").eq(lit("IT")));
        assert_eq!(e.to_string(), "((price > 10) AND (country = \"IT\"))");
    }

    #[test]
    fn serde_round_trip() {
        let e = Expr::if_then(col("a").is_null(), lit(0i64), col("a"));
        let j = serde_json::to_string(&e).unwrap();
        let back: Expr = serde_json::from_str(&j).unwrap();
        assert_eq!(e, back);
    }
}
