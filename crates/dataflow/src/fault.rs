//! Deterministic fault injection.
//!
//! The TOREADOR methodology treats fault tolerance as one of the design
//! dimensions trainees explore (a pipeline with retries costs more but
//! survives flaky infrastructure). [`FaultPlan`] decides — deterministically
//! from a seed — whether a given task attempt fails, so the executor's retry
//! loop is exercised reproducibly in tests and benchmarks.

use serde::{Deserialize, Serialize};

/// Configuration for injected task failures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability that any given task *attempt* fails.
    pub failure_rate: f64,
    /// Seed decorrelating fault decisions from everything else.
    pub seed: u64,
    /// Maximum attempts per task (>= 1). A task that fails `max_attempts`
    /// times aborts the run.
    pub max_attempts: u32,
}

impl FaultPlan {
    /// No injected faults, single attempt per task.
    pub fn none() -> Self {
        FaultPlan {
            failure_rate: 0.0,
            seed: 0,
            max_attempts: 1,
        }
    }

    /// Inject faults at `rate` with a retry budget.
    pub fn with_rate(rate: f64, seed: u64, max_attempts: u32) -> Self {
        FaultPlan {
            failure_rate: rate.clamp(0.0, 1.0),
            seed,
            max_attempts: max_attempts.max(1),
        }
    }

    /// Deterministically decide whether attempt `attempt` of task
    /// (`stage`, `partition`) fails.
    pub fn should_fail(&self, stage: usize, partition: usize, attempt: u32) -> bool {
        if self.failure_rate <= 0.0 {
            return false;
        }
        if self.failure_rate >= 1.0 {
            return true;
        }
        // SplitMix64 over the task coordinates: uniform in [0,1).
        let mut z = self
            .seed
            .wrapping_add((stage as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add((partition as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add((attempt as u64).wrapping_mul(0x94d0_49bb_1331_11eb));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let u = (z >> 11) as f64 / (1u64 << 53) as f64;
        u < self.failure_rate
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fails() {
        let f = FaultPlan::none();
        for s in 0..10 {
            for p in 0..10 {
                assert!(!f.should_fail(s, p, 0));
            }
        }
    }

    #[test]
    fn rate_one_always_fails() {
        let f = FaultPlan::with_rate(1.0, 3, 2);
        assert!(f.should_fail(0, 0, 0));
        assert!(f.should_fail(5, 9, 1));
    }

    #[test]
    fn decisions_are_deterministic() {
        let f = FaultPlan::with_rate(0.3, 42, 3);
        for s in 0..5 {
            for p in 0..5 {
                for a in 0..3 {
                    assert_eq!(f.should_fail(s, p, a), f.should_fail(s, p, a));
                }
            }
        }
    }

    #[test]
    fn empirical_rate_close_to_requested() {
        let f = FaultPlan::with_rate(0.25, 7, 1);
        let mut failures = 0;
        let trials = 10_000;
        for i in 0..trials {
            if f.should_fail(i % 13, i / 13, (i % 3) as u32) {
                failures += 1;
            }
        }
        let rate = failures as f64 / trials as f64;
        assert!((rate - 0.25).abs() < 0.03, "empirical rate {rate}");
    }

    #[test]
    fn different_attempts_get_fresh_draws() {
        let f = FaultPlan::with_rate(0.5, 11, 10);
        let draws: Vec<bool> = (0..32).map(|a| f.should_fail(1, 1, a)).collect();
        assert!(draws.iter().any(|&b| b) && draws.iter().any(|&b| !b));
    }

    #[test]
    fn constructor_clamps() {
        let f = FaultPlan::with_rate(7.0, 0, 0);
        assert_eq!(f.failure_rate, 1.0);
        assert_eq!(f.max_attempts, 1);
    }
}
