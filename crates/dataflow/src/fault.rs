//! Deterministic fault injection.
//!
//! The TOREADOR methodology treats fault tolerance as one of the design
//! dimensions trainees explore (a pipeline with retries costs more but
//! survives flaky infrastructure). [`FaultPlan`] decides — deterministically
//! from a seed — whether a given task attempt fails, so the executor's retry
//! loop is exercised reproducibly in tests and benchmarks.
//!
//! [`ChaosPlan`] generalises the single Bernoulli "lost executor" into a
//! deterministic chaos harness: three fault kinds ([`FaultKind::Crash`],
//! [`FaultKind::Delay`], [`FaultKind::Panic`]), each with its own rate, plus
//! *targeted* schedules ("kill stage 2 partition 3 attempt 0") for
//! reproducing a specific failure ordering. Every decision is a pure
//! function of `(seed, stage, partition, attempt)`, so a chaos run replays
//! bit-identically.

use serde::{Deserialize, Serialize};

/// SplitMix64-style hash of the task coordinates into a uniform draw in
/// [0, 1). `salt` decorrelates independent consumers (fault decisions,
/// backoff jitter) that share a seed; `salt == 0` is the fault-decision
/// stream.
pub(crate) fn uniform(seed: u64, salt: u64, stage: usize, partition: usize, attempt: u32) -> f64 {
    let mut z = (seed ^ salt)
        .wrapping_add((stage as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add((partition as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add((attempt as u64).wrapping_mul(0x94d0_49bb_1331_11eb));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Clamp a probability into [0, 1], normalising NaN to 0.0. `f64::clamp`
/// passes NaN through, which would silently disable the `<= 0.0` /
/// `>= 1.0` fast paths downstream.
fn normalise_rate(rate: f64) -> f64 {
    if rate.is_nan() {
        0.0
    } else {
        rate.clamp(0.0, 1.0)
    }
}

/// Configuration for injected task failures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability that any given task *attempt* fails.
    pub failure_rate: f64,
    /// Seed decorrelating fault decisions from everything else.
    pub seed: u64,
    /// Maximum attempts per task (>= 1). A task that fails `max_attempts`
    /// times aborts the run.
    pub max_attempts: u32,
}

impl FaultPlan {
    /// No injected faults, single attempt per task.
    pub fn none() -> Self {
        FaultPlan {
            failure_rate: 0.0,
            seed: 0,
            max_attempts: 1,
        }
    }

    /// Inject faults at `rate` with a retry budget. NaN rates normalise to
    /// 0.0 rather than leaking through the clamp.
    pub fn with_rate(rate: f64, seed: u64, max_attempts: u32) -> Self {
        FaultPlan {
            failure_rate: normalise_rate(rate),
            seed,
            max_attempts: max_attempts.max(1),
        }
    }

    /// Deterministically decide whether attempt `attempt` of task
    /// (`stage`, `partition`) fails.
    pub fn should_fail(&self, stage: usize, partition: usize, attempt: u32) -> bool {
        if self.failure_rate <= 0.0 {
            return false;
        }
        if self.failure_rate >= 1.0 {
            return true;
        }
        uniform(self.seed, 0, stage, partition, attempt) < self.failure_rate
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// What an injected fault does to the attempt it hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The executor is lost before the task body runs (the classic
    /// [`FaultPlan`] failure): the attempt fails and may be retried.
    Crash,
    /// The attempt stalls for `micros` before the body runs — the straggler
    /// / hung-task simulator. The stall is cooperative: a cancelled attempt
    /// wakes early instead of sleeping the full duration.
    Delay { micros: u64 },
    /// The task body panics. Panic isolation must turn this into a
    /// classified error instead of collapsing the worker pool.
    Panic,
}

/// One targeted fault: hit exactly (`stage`, `partition`, `attempt`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TargetedFault {
    pub stage: usize,
    pub partition: usize,
    pub attempt: u32,
    pub kind: FaultKind,
}

/// What a boundary kill point does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KillMode {
    /// Abort the run in-process with `FlowError::KilledAtBoundary` — the
    /// testable stand-in for process death, usable on a 16-thread pool
    /// inside one test binary.
    Halt,
    /// Really die: `std::process::exit(code)` without unwinding, the
    /// closest safe approximation of `kill -9` the CI harness can drive.
    Exit { code: i32 },
}

/// One deterministic process-kill point: fire when shuffle wave `wave`
/// completes (after its checkpoint is durable, before the next wave runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundaryKill {
    /// Zero-based shuffle-wave index within the run.
    pub wave: usize,
    pub kind: KillMode,
}

/// A deterministic chaos schedule: per-kind Bernoulli rates plus targeted
/// single-shot faults, all decided by pure functions of the coordinates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ChaosPlan {
    /// Seed decorrelating chaos decisions from everything else.
    pub seed: u64,
    /// Probability an attempt is crashed before its body runs.
    pub crash_rate: f64,
    /// Probability an attempt panics.
    pub panic_rate: f64,
    /// Probability an attempt is delayed by `delay_micros`.
    pub delay_rate: f64,
    /// Stall applied by rate-based delay faults, µs.
    pub delay_micros: u64,
    /// Targeted schedules, consulted before the rates.
    pub targeted: Vec<TargetedFault>,
    /// Stage-boundary kill points, fired after a wave's checkpoint lands.
    /// Absent in chaos plans serialized before this field existed, which
    /// therefore parse as empty.
    #[serde(default, deserialize_with = "de_boundary_kills")]
    pub boundary_kills: Vec<BoundaryKill>,
}

fn de_boundary_kills<'de, D: serde::Deserializer<'de>>(
    d: D,
) -> std::result::Result<Vec<BoundaryKill>, D::Error> {
    let v: Option<Vec<BoundaryKill>> = Deserialize::deserialize(d)?;
    Ok(v.unwrap_or_default())
}

impl ChaosPlan {
    /// No chaos at all.
    pub fn none() -> Self {
        ChaosPlan::default()
    }

    /// Rate-based crashes only — the [`FaultPlan`] failure mode.
    pub fn crashes(rate: f64, seed: u64) -> Self {
        ChaosPlan {
            seed,
            crash_rate: normalise_rate(rate),
            ..ChaosPlan::default()
        }
    }

    /// Rate-based delays of `micros` each.
    pub fn delays(rate: f64, micros: u64, seed: u64) -> Self {
        ChaosPlan {
            seed,
            delay_rate: normalise_rate(rate),
            delay_micros: micros,
            ..ChaosPlan::default()
        }
    }

    /// Rate-based panics only.
    pub fn panics(rate: f64, seed: u64) -> Self {
        ChaosPlan {
            seed,
            panic_rate: normalise_rate(rate),
            ..ChaosPlan::default()
        }
    }

    pub fn with_crash_rate(mut self, rate: f64) -> Self {
        self.crash_rate = normalise_rate(rate);
        self
    }

    pub fn with_panic_rate(mut self, rate: f64) -> Self {
        self.panic_rate = normalise_rate(rate);
        self
    }

    pub fn with_delays(mut self, rate: f64, micros: u64) -> Self {
        self.delay_rate = normalise_rate(rate);
        self.delay_micros = micros;
        self
    }

    /// Add one targeted fault.
    pub fn with_targeted(mut self, fault: TargetedFault) -> Self {
        self.targeted.push(fault);
        self
    }

    /// Add one stage-boundary kill point.
    pub fn with_boundary_kill(mut self, wave: usize, kind: KillMode) -> Self {
        self.boundary_kills.push(BoundaryKill { wave, kind });
        self
    }

    /// The kill scheduled for the boundary after shuffle wave `wave`, if
    /// any. Deterministic: purely a lookup of the schedule.
    pub fn kill_at_boundary(&self, wave: usize) -> Option<KillMode> {
        self.boundary_kills
            .iter()
            .find(|k| k.wave == wave)
            .map(|k| k.kind)
    }

    /// True when this plan can never inject anything.
    pub fn is_none(&self) -> bool {
        self.crash_rate <= 0.0
            && self.panic_rate <= 0.0
            && self.delay_rate <= 0.0
            && self.targeted.is_empty()
            && self.boundary_kills.is_empty()
    }

    /// Deterministically decide what (if anything) happens to attempt
    /// `attempt` of task (`stage`, `partition`). Targeted schedules win
    /// over rates; among rates, one uniform draw is banded crash → panic →
    /// delay so the kinds stay mutually exclusive per attempt.
    pub fn fault_for(&self, stage: usize, partition: usize, attempt: u32) -> Option<FaultKind> {
        for t in &self.targeted {
            if t.stage == stage && t.partition == partition && t.attempt == attempt {
                return Some(t.kind);
            }
        }
        let total = self.crash_rate + self.panic_rate + self.delay_rate;
        if total <= 0.0 {
            return None;
        }
        let u = uniform(self.seed, 0, stage, partition, attempt);
        if u < self.crash_rate {
            Some(FaultKind::Crash)
        } else if u < self.crash_rate + self.panic_rate {
            Some(FaultKind::Panic)
        } else if u < total {
            Some(FaultKind::Delay {
                micros: self.delay_micros,
            })
        } else {
            None
        }
    }
}

impl From<FaultPlan> for ChaosPlan {
    /// A [`FaultPlan`] is the crash-only special case. (The retry budget
    /// lives in the retry policy, not the chaos plan.)
    fn from(plan: FaultPlan) -> Self {
        ChaosPlan::crashes(plan.failure_rate, plan.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fails() {
        let f = FaultPlan::none();
        for s in 0..10 {
            for p in 0..10 {
                assert!(!f.should_fail(s, p, 0));
            }
        }
    }

    #[test]
    fn rate_one_always_fails() {
        let f = FaultPlan::with_rate(1.0, 3, 2);
        assert!(f.should_fail(0, 0, 0));
        assert!(f.should_fail(5, 9, 1));
    }

    #[test]
    fn decisions_are_deterministic() {
        let f = FaultPlan::with_rate(0.3, 42, 3);
        for s in 0..5 {
            for p in 0..5 {
                for a in 0..3 {
                    assert_eq!(f.should_fail(s, p, a), f.should_fail(s, p, a));
                }
            }
        }
    }

    #[test]
    fn empirical_rate_close_to_requested() {
        let f = FaultPlan::with_rate(0.25, 7, 1);
        let mut failures = 0;
        let trials = 10_000;
        for i in 0..trials {
            if f.should_fail(i % 13, i / 13, (i % 3) as u32) {
                failures += 1;
            }
        }
        let rate = failures as f64 / trials as f64;
        assert!((rate - 0.25).abs() < 0.03, "empirical rate {rate}");
    }

    #[test]
    fn different_attempts_get_fresh_draws() {
        let f = FaultPlan::with_rate(0.5, 11, 10);
        let draws: Vec<bool> = (0..32).map(|a| f.should_fail(1, 1, a)).collect();
        assert!(draws.iter().any(|&b| b) && draws.iter().any(|&b| !b));
    }

    #[test]
    fn constructor_clamps() {
        let f = FaultPlan::with_rate(7.0, 0, 0);
        assert_eq!(f.failure_rate, 1.0);
        assert_eq!(f.max_attempts, 1);
    }

    #[test]
    fn nan_rate_normalises_to_zero() {
        // f64::clamp propagates NaN, which would skip both fast paths in
        // should_fail and make every comparison false-but-weird; the
        // constructor must normalise it away.
        let f = FaultPlan::with_rate(f64::NAN, 1, 3);
        assert_eq!(f.failure_rate, 0.0);
        assert!(!f.should_fail(0, 0, 0));
        let c = ChaosPlan::crashes(f64::NAN, 1).with_panic_rate(f64::NAN);
        assert!(c.is_none());
        assert_eq!(c.fault_for(0, 0, 0), None);
    }

    #[test]
    fn chaos_rates_are_banded_and_deterministic() {
        let c = ChaosPlan {
            seed: 9,
            crash_rate: 0.2,
            panic_rate: 0.2,
            delay_rate: 0.2,
            delay_micros: 50,
            targeted: Vec::new(),
            boundary_kills: Vec::new(),
        };
        let mut counts = [0usize; 4]; // crash, panic, delay, none
        for i in 0..6_000 {
            let k = c.fault_for(i % 7, i / 7, (i % 4) as u32);
            assert_eq!(k, c.fault_for(i % 7, i / 7, (i % 4) as u32));
            match k {
                Some(FaultKind::Crash) => counts[0] += 1,
                Some(FaultKind::Panic) => counts[1] += 1,
                Some(FaultKind::Delay { micros }) => {
                    assert_eq!(micros, 50);
                    counts[2] += 1;
                }
                None => counts[3] += 1,
            }
        }
        for (i, &n) in counts.iter().enumerate() {
            let rate = n as f64 / 6_000.0;
            let expect = if i == 3 { 0.4 } else { 0.2 };
            assert!((rate - expect).abs() < 0.04, "band {i} rate {rate}");
        }
    }

    #[test]
    fn targeted_faults_override_rates() {
        let c = ChaosPlan::none().with_targeted(TargetedFault {
            stage: 2,
            partition: 3,
            attempt: 0,
            kind: FaultKind::Panic,
        });
        assert_eq!(c.fault_for(2, 3, 0), Some(FaultKind::Panic));
        assert_eq!(c.fault_for(2, 3, 1), None, "only attempt 0 is targeted");
        assert_eq!(c.fault_for(2, 4, 0), None);
        assert!(!c.is_none());
    }

    #[test]
    fn fault_plan_converts_to_identical_crash_decisions() {
        let plan = FaultPlan::with_rate(0.4, 77, 5);
        let chaos = ChaosPlan::from(plan);
        for s in 0..4 {
            for p in 0..8 {
                for a in 0..4 {
                    let crashed = matches!(chaos.fault_for(s, p, a), Some(FaultKind::Crash));
                    assert_eq!(crashed, plan.should_fail(s, p, a));
                }
            }
        }
    }

    #[test]
    fn chaos_plans_serialize_round_trip() {
        let c = ChaosPlan::crashes(0.1, 3)
            .with_delays(0.05, 2_000)
            .with_targeted(TargetedFault {
                stage: 1,
                partition: 0,
                attempt: 2,
                kind: FaultKind::Delay { micros: 9 },
            })
            .with_boundary_kill(2, KillMode::Exit { code: 42 });
        let j = serde_json::to_string(&c).unwrap();
        let back: ChaosPlan = serde_json::from_str(&j).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn pre_kill_point_chaos_json_still_deserializes() {
        // Plans persisted before boundary_kills existed must parse.
        let j = r#"{"seed":3,"crash_rate":0.1,"panic_rate":0.0,"delay_rate":0.0,"delay_micros":0,"targeted":[]}"#;
        let back: ChaosPlan = serde_json::from_str(j).unwrap();
        assert!(back.boundary_kills.is_empty());
        assert_eq!(back, ChaosPlan::crashes(0.1, 3));
    }

    #[test]
    fn boundary_kills_are_wave_keyed_and_count_against_is_none() {
        let c = ChaosPlan::none()
            .with_boundary_kill(1, KillMode::Halt)
            .with_boundary_kill(3, KillMode::Exit { code: 42 });
        assert!(!c.is_none());
        assert_eq!(c.kill_at_boundary(0), None);
        assert_eq!(c.kill_at_boundary(1), Some(KillMode::Halt));
        assert_eq!(c.kill_at_boundary(2), None);
        assert_eq!(c.kill_at_boundary(3), Some(KillMode::Exit { code: 42 }));
        // Kill points never touch the per-task fault stream.
        assert_eq!(c.fault_for(1, 0, 0), None);
    }
}
