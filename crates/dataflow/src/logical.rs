//! Logical plans: what to compute, independent of how.
//!
//! Mirrors DataFusion's layering — a `LogicalPlan` tree built through the
//! fluent [`Dataflow`] API, schema-checked at construction, optimised by
//! [`crate::optimizer`], then lowered to stages by [`crate::physical`].

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use toreador_data::schema::{Field, Schema};
use toreador_data::value::DataType;

use crate::error::{FlowError, Result};
use crate::expr::Expr;

/// Aggregate functions supported by `Aggregate` nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Mean,
    /// Count of distinct non-null values.
    CountDistinct,
}

impl AggFunc {
    /// Output type given the input column type.
    pub fn output_type(self, input: DataType) -> Result<DataType> {
        match self {
            AggFunc::Count | AggFunc::CountDistinct => Ok(DataType::Int),
            AggFunc::Sum => {
                if input.is_numeric() {
                    Ok(input)
                } else {
                    Err(FlowError::TypeCheck(format!(
                        "SUM requires numeric, got {input}"
                    )))
                }
            }
            AggFunc::Mean => {
                if input.is_numeric() {
                    Ok(DataType::Float)
                } else {
                    Err(FlowError::TypeCheck(format!(
                        "MEAN requires numeric, got {input}"
                    )))
                }
            }
            AggFunc::Min | AggFunc::Max => Ok(input),
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Mean => "mean",
            AggFunc::CountDistinct => "count_distinct",
        }
    }
}

/// One aggregate expression: `func(column) AS alias`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggExpr {
    pub func: AggFunc,
    pub column: String,
    pub alias: String,
}

impl AggExpr {
    pub fn new(func: AggFunc, column: impl Into<String>, alias: impl Into<String>) -> Self {
        AggExpr {
            func,
            column: column.into(),
            alias: alias.into(),
        }
    }
}

/// Join strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinType {
    Inner,
    /// Keep all left rows; unmatched right columns become null.
    Left,
}

/// A node in the logical plan tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LogicalPlan {
    /// Read a registered dataset.
    Scan { dataset: String, schema: Schema },
    /// Keep rows matching the predicate.
    Filter {
        input: Arc<LogicalPlan>,
        predicate: Expr,
    },
    /// Compute named expressions (a generalised SELECT list).
    Project {
        input: Arc<LogicalPlan>,
        exprs: Vec<(String, Expr)>,
        schema: Schema,
    },
    /// Group by key columns and aggregate.
    Aggregate {
        input: Arc<LogicalPlan>,
        group_by: Vec<String>,
        aggs: Vec<AggExpr>,
        schema: Schema,
    },
    /// Hash join on equality keys.
    Join {
        left: Arc<LogicalPlan>,
        right: Arc<LogicalPlan>,
        left_keys: Vec<String>,
        right_keys: Vec<String>,
        join_type: JoinType,
        schema: Schema,
    },
    /// Total sort by key columns.
    Sort {
        input: Arc<LogicalPlan>,
        keys: Vec<String>,
        descending: bool,
    },
    /// Keep the first `n` rows.
    Limit { input: Arc<LogicalPlan>, n: usize },
    /// Concatenate plans with identical schemas.
    Union { inputs: Vec<Arc<LogicalPlan>> },
    /// Bernoulli sample with the given probability and seed.
    Sample {
        input: Arc<LogicalPlan>,
        fraction: f64,
        seed: u64,
    },
    /// Drop duplicate rows (over all columns).
    Distinct { input: Arc<LogicalPlan> },
}

impl LogicalPlan {
    /// The output schema of this node.
    pub fn schema(&self) -> &Schema {
        match self {
            LogicalPlan::Scan { schema, .. }
            | LogicalPlan::Project { schema, .. }
            | LogicalPlan::Aggregate { schema, .. }
            | LogicalPlan::Join { schema, .. } => schema,
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Sample { input, .. }
            | LogicalPlan::Distinct { input } => input.schema(),
            LogicalPlan::Union { inputs } => inputs[0].schema(),
        }
    }

    /// Direct children of this node.
    pub fn children(&self) -> Vec<&Arc<LogicalPlan>> {
        match self {
            LogicalPlan::Scan { .. } => vec![],
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Sample { input, .. }
            | LogicalPlan::Distinct { input } => vec![input],
            LogicalPlan::Join { left, right, .. } => vec![left, right],
            LogicalPlan::Union { inputs } => inputs.iter().collect(),
        }
    }

    /// Number of nodes in the tree (used by the Labs run records).
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }

    /// All dataset names scanned by this plan.
    pub fn scanned_datasets(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_scans(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_scans<'a>(&'a self, out: &mut Vec<&'a str>) {
        if let LogicalPlan::Scan { dataset, .. } = self {
            out.push(dataset);
        }
        for c in self.children() {
            c.collect_scans(out);
        }
    }

    /// Pretty-print the tree with indentation (for EXPLAIN-style output).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(0, &mut out);
        out
    }

    fn explain_into(&self, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&self.describe());
        out.push('\n');
        for c in self.children() {
            c.explain_into(depth + 1, out);
        }
    }

    /// One-line description of this node.
    pub fn describe(&self) -> String {
        match self {
            LogicalPlan::Scan { dataset, schema } => format!("Scan {dataset} {schema}"),
            LogicalPlan::Filter { predicate, .. } => format!("Filter {predicate}"),
            LogicalPlan::Project { exprs, .. } => {
                let cols: Vec<String> = exprs.iter().map(|(n, e)| format!("{e} AS {n}")).collect();
                format!("Project [{}]", cols.join(", "))
            }
            LogicalPlan::Aggregate { group_by, aggs, .. } => {
                let a: Vec<String> = aggs
                    .iter()
                    .map(|x| format!("{}({})", x.func.name(), x.column))
                    .collect();
                format!(
                    "Aggregate by [{}] compute [{}]",
                    group_by.join(", "),
                    a.join(", ")
                )
            }
            LogicalPlan::Join {
                left_keys,
                right_keys,
                join_type,
                ..
            } => {
                format!("Join {join_type:?} on {left_keys:?} = {right_keys:?}")
            }
            LogicalPlan::Sort {
                keys, descending, ..
            } => {
                format!(
                    "Sort by {:?} {}",
                    keys,
                    if *descending { "desc" } else { "asc" }
                )
            }
            LogicalPlan::Limit { n, .. } => format!("Limit {n}"),
            LogicalPlan::Union { inputs } => format!("Union of {}", inputs.len()),
            LogicalPlan::Sample { fraction, seed, .. } => {
                format!("Sample fraction={fraction} seed={seed}")
            }
            LogicalPlan::Distinct { .. } => "Distinct".to_owned(),
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.explain())
    }
}

/// Fluent builder over [`LogicalPlan`], the engine's public API surface.
///
/// Every combinator validates schemas eagerly, so an invalid pipeline fails
/// at build time rather than mid-run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataflow {
    plan: Arc<LogicalPlan>,
}

impl Dataflow {
    /// Start a flow reading the named registered dataset.
    pub fn scan(dataset: impl Into<String>, schema: Schema) -> Self {
        Dataflow {
            plan: Arc::new(LogicalPlan::Scan {
                dataset: dataset.into(),
                schema,
            }),
        }
    }

    /// Wrap an existing plan.
    pub fn from_plan(plan: Arc<LogicalPlan>) -> Self {
        Dataflow { plan }
    }

    pub fn plan(&self) -> &Arc<LogicalPlan> {
        &self.plan
    }

    pub fn into_plan(self) -> Arc<LogicalPlan> {
        self.plan
    }

    pub fn schema(&self) -> &Schema {
        self.plan.schema()
    }

    /// Keep rows where `predicate` is true.
    pub fn filter(self, predicate: Expr) -> Result<Self> {
        let ty = predicate.infer_type(self.schema())?;
        if ty != DataType::Bool {
            return Err(FlowError::TypeCheck(format!(
                "filter predicate must be Bool, got {ty}: {predicate}"
            )));
        }
        Ok(Dataflow {
            plan: Arc::new(LogicalPlan::Filter {
                input: self.plan,
                predicate,
            }),
        })
    }

    /// Select / compute columns: `(name, expr)` pairs.
    pub fn project(self, exprs: Vec<(&str, Expr)>) -> Result<Self> {
        if exprs.is_empty() {
            return Err(FlowError::Plan(
                "projection needs at least one column".to_owned(),
            ));
        }
        let mut fields = Vec::with_capacity(exprs.len());
        for (name, e) in &exprs {
            let ty = e.infer_type(self.schema())?;
            fields.push(Field::new(*name, ty));
        }
        let schema = Schema::new(fields)?;
        Ok(Dataflow {
            plan: Arc::new(LogicalPlan::Project {
                input: self.plan,
                exprs: exprs.into_iter().map(|(n, e)| (n.to_owned(), e)).collect(),
                schema,
            }),
        })
    }

    /// Shorthand: keep the named columns as-is.
    pub fn select(self, names: &[&str]) -> Result<Self> {
        let exprs = names.iter().map(|&n| (n, crate::expr::col(n))).collect();
        self.project(exprs)
    }

    /// Append a derived column, keeping all existing ones.
    pub fn with_column(self, name: &str, expr: Expr) -> Result<Self> {
        if self.schema().contains(name) {
            return Err(FlowError::Plan(format!("column {name:?} already exists")));
        }
        let mut rebuilt: Vec<(String, Expr)> = self
            .schema()
            .names()
            .into_iter()
            .map(|n| (n.to_owned(), crate::expr::col(n)))
            .collect();
        rebuilt.push((name.to_owned(), expr));
        // Validate types against the current schema.
        let mut fields = Vec::with_capacity(rebuilt.len());
        for (n, e) in &rebuilt {
            let ty = e.infer_type(self.schema())?;
            fields.push(Field::new(n.clone(), ty));
        }
        let schema = Schema::new(fields)?;
        Ok(Dataflow {
            plan: Arc::new(LogicalPlan::Project {
                input: self.plan,
                exprs: rebuilt,
                schema,
            }),
        })
    }

    /// Group by `group_by` columns and compute `aggs`.
    pub fn aggregate(self, group_by: &[&str], aggs: Vec<AggExpr>) -> Result<Self> {
        if aggs.is_empty() {
            return Err(FlowError::Plan(
                "aggregate needs at least one aggregation".to_owned(),
            ));
        }
        let input_schema = self.schema().clone();
        let mut fields = Vec::with_capacity(group_by.len() + aggs.len());
        for g in group_by {
            fields.push(input_schema.field(g).map_err(FlowError::Data)?.clone());
        }
        for a in &aggs {
            let in_ty = input_schema
                .field(&a.column)
                .map_err(FlowError::Data)?
                .data_type;
            fields.push(Field::new(a.alias.clone(), a.func.output_type(in_ty)?));
        }
        let schema = Schema::new(fields)?;
        Ok(Dataflow {
            plan: Arc::new(LogicalPlan::Aggregate {
                input: self.plan,
                group_by: group_by.iter().map(|s| s.to_string()).collect(),
                aggs,
                schema,
            }),
        })
    }

    /// Equality hash join. Right-side duplicate column names get `r_` prefix.
    pub fn join(
        self,
        right: Dataflow,
        left_keys: &[&str],
        right_keys: &[&str],
        join_type: JoinType,
    ) -> Result<Self> {
        if left_keys.is_empty() || left_keys.len() != right_keys.len() {
            return Err(FlowError::Plan(
                "join needs equal, non-empty key lists".to_owned(),
            ));
        }
        for (lk, rk) in left_keys.iter().zip(right_keys) {
            let lt = self.schema().field(lk).map_err(FlowError::Data)?.data_type;
            let rt = right.schema().field(rk).map_err(FlowError::Data)?.data_type;
            if lt.unify(rt).is_none() {
                return Err(FlowError::TypeCheck(format!(
                    "join key type mismatch: {lk}:{lt} vs {rk}:{rt}"
                )));
            }
        }
        let schema = self.schema().join(right.schema(), "r_")?;
        // A left join can emit nulls in right columns: loosen nullability.
        let schema = if join_type == JoinType::Left {
            let left_width = self.schema().len();
            Schema::new(
                schema
                    .fields()
                    .iter()
                    .enumerate()
                    .map(|(i, f)| {
                        let mut f = f.clone();
                        if i >= left_width {
                            f.nullable = true;
                        }
                        f
                    })
                    .collect(),
            )?
        } else {
            schema
        };
        Ok(Dataflow {
            plan: Arc::new(LogicalPlan::Join {
                left: self.plan,
                right: right.plan,
                left_keys: left_keys.iter().map(|s| s.to_string()).collect(),
                right_keys: right_keys.iter().map(|s| s.to_string()).collect(),
                join_type,
                schema,
            }),
        })
    }

    /// Total sort.
    pub fn sort(self, keys: &[&str], descending: bool) -> Result<Self> {
        for k in keys {
            self.schema().field(k).map_err(FlowError::Data)?;
        }
        if keys.is_empty() {
            return Err(FlowError::Plan("sort needs at least one key".to_owned()));
        }
        Ok(Dataflow {
            plan: Arc::new(LogicalPlan::Sort {
                input: self.plan,
                keys: keys.iter().map(|s| s.to_string()).collect(),
                descending,
            }),
        })
    }

    /// First `n` rows.
    pub fn limit(self, n: usize) -> Self {
        Dataflow {
            plan: Arc::new(LogicalPlan::Limit {
                input: self.plan,
                n,
            }),
        }
    }

    /// Union with other flows of identical schema.
    pub fn union(self, others: Vec<Dataflow>) -> Result<Self> {
        let mut inputs = vec![self.plan];
        for o in others {
            inputs[0]
                .schema()
                .ensure_same(o.schema())
                .map_err(FlowError::Data)?;
            inputs.push(o.plan);
        }
        Ok(Dataflow {
            plan: Arc::new(LogicalPlan::Union { inputs }),
        })
    }

    /// Bernoulli row sample.
    pub fn sample(self, fraction: f64, seed: u64) -> Result<Self> {
        if !(0.0..=1.0).contains(&fraction) {
            return Err(FlowError::Plan(format!(
                "sample fraction {fraction} outside [0,1]"
            )));
        }
        Ok(Dataflow {
            plan: Arc::new(LogicalPlan::Sample {
                input: self.plan,
                fraction,
                seed,
            }),
        })
    }

    /// Drop duplicate rows.
    pub fn distinct(self) -> Self {
        Dataflow {
            plan: Arc::new(LogicalPlan::Distinct { input: self.plan }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use toreador_data::generate::clickstream_schema;

    fn flow() -> Dataflow {
        Dataflow::scan("clicks", clickstream_schema())
    }

    #[test]
    fn filter_type_checked_at_build_time() {
        assert!(flow().filter(col("price").gt(lit(10.0))).is_ok());
        assert!(flow().filter(col("price")).is_err());
        assert!(flow().filter(col("no_such").gt(lit(1i64))).is_err());
    }

    #[test]
    fn project_builds_schema() {
        let f = flow()
            .project(vec![
                ("cat", col("category")),
                ("double_price", col("price").mul(lit(2.0))),
            ])
            .unwrap();
        assert_eq!(f.schema().names(), vec!["cat", "double_price"]);
        assert_eq!(
            f.schema().field("double_price").unwrap().data_type,
            DataType::Float
        );
        assert!(flow().project(vec![]).is_err());
    }

    #[test]
    fn select_and_with_column() {
        let f = flow().select(&["user_id", "price"]).unwrap();
        assert_eq!(f.schema().len(), 2);
        let f = f.with_column("tax", col("price").mul(lit(0.2))).unwrap();
        assert_eq!(f.schema().names(), vec!["user_id", "price", "tax"]);
        assert!(
            f.clone().with_column("tax", lit(1.0)).is_err(),
            "duplicate rejected"
        );
    }

    #[test]
    fn aggregate_schema_and_type_rules() {
        let f = flow()
            .aggregate(
                &["category"],
                vec![
                    AggExpr::new(AggFunc::Count, "event_id", "events"),
                    AggExpr::new(AggFunc::Sum, "price", "revenue"),
                    AggExpr::new(AggFunc::Mean, "price", "avg_price"),
                ],
            )
            .unwrap();
        assert_eq!(
            f.schema().names(),
            vec!["category", "events", "revenue", "avg_price"]
        );
        assert_eq!(f.schema().field("events").unwrap().data_type, DataType::Int);
        assert_eq!(
            f.schema().field("avg_price").unwrap().data_type,
            DataType::Float
        );
        // SUM over strings rejected.
        assert!(flow()
            .aggregate(&[], vec![AggExpr::new(AggFunc::Sum, "category", "x")])
            .is_err());
        assert!(flow().aggregate(&["category"], vec![]).is_err());
    }

    #[test]
    fn join_validates_keys_and_prefixes() {
        let left = flow();
        let right = flow();
        let j = left
            .clone()
            .join(right.clone(), &["user_id"], &["user_id"], JoinType::Inner)
            .unwrap();
        assert!(j.schema().contains("r_user_id"));
        assert!(left
            .clone()
            .join(right.clone(), &[], &[], JoinType::Inner)
            .is_err());
        assert!(left
            .clone()
            .join(right.clone(), &["user_id"], &["category"], JoinType::Inner)
            .is_err());
        // Left join loosens right-side nullability.
        let j = left
            .join(right, &["user_id"], &["user_id"], JoinType::Left)
            .unwrap();
        assert!(j.schema().field("r_event_id").unwrap().nullable);
    }

    #[test]
    fn union_requires_same_schema() {
        let a = flow().select(&["user_id"]).unwrap();
        let b = flow().select(&["user_id"]).unwrap();
        let u = a.clone().union(vec![b]).unwrap();
        assert_eq!(u.schema().names(), vec!["user_id"]);
        let c = flow().select(&["price"]).unwrap();
        assert!(a.union(vec![c]).is_err());
    }

    #[test]
    fn sample_fraction_validated() {
        assert!(flow().sample(0.5, 1).is_ok());
        assert!(flow().sample(1.5, 1).is_err());
    }

    #[test]
    fn sort_validates_keys() {
        assert!(flow().sort(&["ts"], false).is_ok());
        assert!(flow().sort(&[], false).is_err());
        assert!(flow().sort(&["nope"], false).is_err());
    }

    #[test]
    fn explain_renders_tree() {
        let f = flow()
            .filter(col("action").eq(lit("purchase")))
            .unwrap()
            .aggregate(
                &["category"],
                vec![AggExpr::new(AggFunc::Sum, "price", "revenue")],
            )
            .unwrap()
            .sort(&["revenue"], true)
            .unwrap()
            .limit(5);
        let e = f.plan().explain();
        assert!(e.contains("Limit 5"));
        assert!(e.contains("Sort"));
        assert!(e.contains("Aggregate"));
        assert!(e.contains("Filter"));
        assert!(e.contains("Scan clicks"));
        assert_eq!(f.plan().node_count(), 5);
        assert_eq!(f.plan().scanned_datasets(), vec!["clicks"]);
    }

    #[test]
    fn plans_serialize() {
        let f = flow().filter(col("price").gt(lit(1.0))).unwrap();
        let j = serde_json::to_string(f.plan()).unwrap();
        let back: LogicalPlan = serde_json::from_str(&j).unwrap();
        assert_eq!(&back, f.plan().as_ref());
    }
}
