//! The shared partition codec: tagged values, lane-based rows, CRC framing.
//!
//! Three subsystems persist or move partitioned rows as bytes — the shuffle
//! ([`crate::shuffle`]), stage-boundary checkpointing ([`crate::checkpoint`])
//! and the out-of-core pager ([`crate::pager`]). They must stay
//! byte-identical: a checkpointed wave and a spilled run are the same rows
//! through the same encoder, and the regression tests below pin that down.
//! This module is the single definition of
//!
//! - the **tagged value codec** (`[tag u8][payload]`, one tag per
//!   [`Value`] variant, null as a bare tag),
//! - the **row codec** (`[width u16 LE][cell]*`), with a lane-based fast
//!   path ([`encode_row_at`]/[`encode_cell`]) that writes straight out of
//!   the native columns without materialising `Value`s,
//! - the **table codec** ([`encode_table`]/[`decode_table`]) — the
//!   checkpoint wire format for one partition,
//! - **CRC32 (IEEE)** and the `[len u32 LE][crc32 u32 LE][payload]` frame
//!   used by wave files and page files alike, and
//! - the **atomic publish discipline** ([`write_atomic`]/[`sync_dir`]):
//!   temp-write + fsync + rename + directory fsync, as in `toreador-store`.
//!
//! Framing and I/O helpers return plain error payloads (`FrameError`,
//! message strings) so each caller can keep its own error vocabulary —
//! checkpointing maps them to [`FlowError::Checkpoint`], the pager to its
//! spill errors — without this module depending on either.

use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use toreador_data::column::{Column, Validity};
use toreador_data::schema::Schema;
use toreador_data::table::{Table, TableBuilder};
use toreador_data::value::{Row, Value};

use crate::error::{FlowError, Result};

pub(crate) const TAG_NULL: u8 = 0;
pub(crate) const TAG_BOOL: u8 = 1;
pub(crate) const TAG_INT: u8 = 2;
pub(crate) const TAG_FLOAT: u8 = 3;
pub(crate) const TAG_STR: u8 = 4;
pub(crate) const TAG_TS: u8 = 5;

/// Append one value to the buffer.
pub fn encode_value(v: &Value, buf: &mut BytesMut) {
    match v {
        Value::Null => buf.put_u8(TAG_NULL),
        Value::Bool(b) => {
            buf.put_u8(TAG_BOOL);
            buf.put_u8(*b as u8);
        }
        Value::Int(i) => {
            buf.put_u8(TAG_INT);
            buf.put_i64_le(*i);
        }
        Value::Float(x) => {
            buf.put_u8(TAG_FLOAT);
            buf.put_f64_le(*x);
        }
        Value::Str(s) => {
            buf.put_u8(TAG_STR);
            buf.put_u32_le(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Value::Timestamp(t) => {
            buf.put_u8(TAG_TS);
            buf.put_i64_le(*t);
        }
    }
}

/// Decode one tagged value off the front of `buf`.
pub fn decode_value(buf: &mut Bytes) -> Result<Value> {
    let short = || FlowError::Codec("truncated shuffle payload".to_owned());
    if buf.remaining() < 1 {
        return Err(short());
    }
    let tag = buf.get_u8();
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_BOOL => {
            if buf.remaining() < 1 {
                return Err(short());
            }
            Value::Bool(buf.get_u8() != 0)
        }
        TAG_INT => {
            if buf.remaining() < 8 {
                return Err(short());
            }
            Value::Int(buf.get_i64_le())
        }
        TAG_FLOAT => {
            if buf.remaining() < 8 {
                return Err(short());
            }
            Value::Float(buf.get_f64_le())
        }
        TAG_STR => {
            if buf.remaining() < 4 {
                return Err(short());
            }
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < len {
                return Err(short());
            }
            let bytes = buf.copy_to_bytes(len);
            Value::Str(
                String::from_utf8(bytes.to_vec())
                    .map_err(|_| FlowError::Codec("invalid utf8 in shuffle payload".to_owned()))?,
            )
        }
        TAG_TS => {
            if buf.remaining() < 8 {
                return Err(short());
            }
            Value::Timestamp(buf.get_i64_le())
        }
        other => return Err(FlowError::Codec(format!("unknown value tag {other}"))),
    })
}

/// Encode a row (width-prefixed).
pub fn encode_row(row: &Row, buf: &mut BytesMut) {
    buf.put_u16_le(row.len() as u16);
    for v in row {
        encode_value(v, buf);
    }
}

/// Decode one row.
pub fn decode_row(buf: &mut Bytes) -> Result<Row> {
    if buf.remaining() < 2 {
        return Err(FlowError::Codec("truncated shuffle payload".to_owned()));
    }
    let width = buf.get_u16_le() as usize;
    let mut row = Vec::with_capacity(width);
    for _ in 0..width {
        row.push(decode_value(buf)?);
    }
    Ok(row)
}

/// A borrowed typed view of one column, for encoding rows (or whole lanes)
/// straight out of the native columns without building `Value`s.
pub enum Lane<'a> {
    Bool(&'a [bool], &'a Validity),
    Int(&'a [i64], &'a Validity),
    Float(&'a [f64], &'a Validity),
    Str(&'a [String], &'a Validity),
    Ts(&'a [i64], &'a Validity),
}

/// Borrow every column of `t` as a [`Lane`].
pub fn lanes(t: &Table) -> Vec<Lane<'_>> {
    t.columns()
        .iter()
        .map(|c| match c {
            Column::Bool { data, validity } => Lane::Bool(data, validity),
            Column::Int { data, validity } => Lane::Int(data, validity),
            Column::Float { data, validity } => Lane::Float(data, validity),
            Column::Str { data, validity } => Lane::Str(data, validity),
            Column::Timestamp { data, validity } => Lane::Ts(data, validity),
        })
        .collect()
}

/// Encode cell `i` of one lane — exactly the bytes [`encode_value`] writes
/// for the materialised value (null validity encodes as the null tag). This
/// is the unit both the row codec and the pager's per-lane extents are
/// built from, which is what keeps the two byte-identical by construction.
pub fn encode_cell(lane: &Lane<'_>, i: usize, buf: &mut BytesMut) {
    match lane {
        Lane::Bool(data, validity) => {
            if validity.get(i) {
                buf.put_u8(TAG_BOOL);
                buf.put_u8(data[i] as u8);
            } else {
                buf.put_u8(TAG_NULL);
            }
        }
        Lane::Int(data, validity) => {
            if validity.get(i) {
                buf.put_u8(TAG_INT);
                buf.put_i64_le(data[i]);
            } else {
                buf.put_u8(TAG_NULL);
            }
        }
        Lane::Float(data, validity) => {
            if validity.get(i) {
                buf.put_u8(TAG_FLOAT);
                buf.put_f64_le(data[i]);
            } else {
                buf.put_u8(TAG_NULL);
            }
        }
        Lane::Str(data, validity) => {
            if validity.get(i) {
                buf.put_u8(TAG_STR);
                buf.put_u32_le(data[i].len() as u32);
                buf.put_slice(data[i].as_bytes());
            } else {
                buf.put_u8(TAG_NULL);
            }
        }
        Lane::Ts(data, validity) => {
            if validity.get(i) {
                buf.put_u8(TAG_TS);
                buf.put_i64_le(data[i]);
            } else {
                buf.put_u8(TAG_NULL);
            }
        }
    }
}

/// Encode row `i` of a table (width-prefixed), producing exactly the same
/// bytes as [`encode_row`] on the materialised row.
pub fn encode_row_at(lanes: &[Lane<'_>], i: usize, buf: &mut BytesMut) {
    buf.put_u16_le(lanes.len() as u16);
    for lane in lanes {
        encode_cell(lane, i, buf);
    }
}

/// Encode every row of a table through the lane codec, producing exactly
/// the bytes [`encode_row`] would for the materialised rows. This is the
/// checkpoint wire format: a wave partition persists as its row count plus
/// this byte stream.
pub fn encode_table(t: &Table, buf: &mut BytesMut) {
    let lanes = lanes(t);
    for i in 0..t.num_rows() {
        encode_row_at(&lanes, i, buf);
    }
}

/// Decode `count` rows of `schema` back into a table, rejecting trailing
/// bytes — the inverse of [`encode_table`].
pub fn decode_table(schema: &Schema, count: usize, mut bytes: Bytes) -> Result<Table> {
    let mut builder = TableBuilder::with_capacity(schema.clone(), count);
    for _ in 0..count {
        builder.push_row(decode_row(&mut bytes)?)?;
    }
    if bytes.has_remaining() {
        return Err(FlowError::Codec(
            "trailing bytes after decoding table".to_owned(),
        ));
    }
    Ok(builder.finish()?)
}

/// Encode one whole lane (`rows` cells, in row order) — the pager's
/// per-lane extent payload. Cell `i` is byte-identical to what
/// [`encode_row_at`] writes for that column in row `i`.
pub fn encode_lane(lane: &Lane<'_>, rows: usize, buf: &mut BytesMut) {
    for i in 0..rows {
        encode_cell(lane, i, buf);
    }
}

/// Decode `rows` tagged cells back out of one lane extent — the inverse of
/// [`encode_lane`]. Rejects trailing bytes for the same reason
/// [`decode_table`] does: an extent is either exactly its lane or corrupt.
pub fn decode_lane(rows: usize, mut bytes: Bytes) -> Result<Vec<Value>> {
    let mut out = Vec::with_capacity(rows);
    for _ in 0..rows {
        out.push(decode_value(&mut bytes)?);
    }
    if bytes.has_remaining() {
        return Err(FlowError::Codec(
            "trailing bytes after decoding lane".to_owned(),
        ));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE), table-driven. The store crate has its own copy: this codec
// predates the dataflow→store dependency (added for the streaming ack log)
// and keeps its own framing rather than round-tripping payloads through the
// store WAL.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE 802.3) of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// CRC framing: `[len u32 LE][crc32 u32 LE][payload]`.
// ---------------------------------------------------------------------------

/// Why a frame failed to parse. Callers map this into their own error
/// vocabulary; [`FrameError::describe`] is the wording both the wave-file
/// and page-file diagnostics embed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    TruncatedHeader,
    TruncatedPayload,
    CrcMismatch,
}

impl FrameError {
    pub fn describe(&self) -> &'static str {
        match self {
            FrameError::TruncatedHeader => "truncated frame header",
            FrameError::TruncatedPayload => "truncated frame payload",
            FrameError::CrcMismatch => "frame crc mismatch",
        }
    }
}

/// Append one CRC-framed record to `out`.
pub fn push_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Pop one CRC-checked frame off the front of `bytes`.
pub fn take_frame<'a>(bytes: &mut &'a [u8]) -> std::result::Result<&'a [u8], FrameError> {
    if bytes.len() < 8 {
        return Err(FrameError::TruncatedHeader);
    }
    let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if bytes.len() < 8 + len {
        return Err(FrameError::TruncatedPayload);
    }
    let payload = &bytes[8..8 + len];
    if crc32(payload) != crc {
        return Err(FrameError::CrcMismatch);
    }
    *bytes = &bytes[8 + len..];
    Ok(payload)
}

// ---------------------------------------------------------------------------
// Atomic publish (the store WAL conventions). Errors come back as the
// message string the checkpoint layer has always produced, so each caller
// wraps them in its own error variant without changing any diagnostics.
// ---------------------------------------------------------------------------

/// Best-effort POSIX directory fsync, as in `toreador-store`. Routed
/// through the [`toreador_store::io`] seam so disk chaos can intercept.
pub fn sync_dir(dir: &Path) {
    let _ = toreador_store::io::io_for(dir).sync_dir(dir);
}

/// Atomically publish `bytes` at `path`: temp-write + fsync + rename + dir
/// fsync. A reader never observes a torn file under its final name, and a
/// failure at any step removes the temp file — ENOSPC mid-publish leaves
/// no `.tmp` orphan behind.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::result::Result<(), String> {
    let io_err = |what: &str, p: &Path, e: std::io::Error| format!("{what} {}: {e}", p.display());
    let dir = path
        .parent()
        .ok_or_else(|| format!("no parent dir for {}", path.display()))?;
    let io = toreador_store::io::io_for(path);
    let tmp = path.with_extension("tmp");
    let f = io.create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
    if let Err(e) = f.write_all_at(0, bytes) {
        let _ = io.remove_file(&tmp);
        return Err(io_err("write", &tmp, e));
    }
    if let Err(e) = f.sync_all() {
        let _ = io.remove_file(&tmp);
        return Err(io_err("fsync", &tmp, e));
    }
    if let Err(e) = io.rename(&tmp, path) {
        let _ = io.remove_file(&tmp);
        return Err(io_err("rename", path, e));
    }
    let _ = io.sync_dir(dir);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use toreador_data::generate::random_table;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip_and_detect_damage() {
        let mut out = Vec::new();
        push_frame(&mut out, b"alpha");
        push_frame(&mut out, b"");
        push_frame(&mut out, b"omega");
        let mut rest = out.as_slice();
        assert_eq!(take_frame(&mut rest).unwrap(), b"alpha");
        assert_eq!(take_frame(&mut rest).unwrap(), b"");
        assert_eq!(take_frame(&mut rest).unwrap(), b"omega");
        assert_eq!(take_frame(&mut rest), Err(FrameError::TruncatedHeader));
        // Flip one payload byte: CRC mismatch.
        let mut bad = out.clone();
        bad[8] ^= 0xFF;
        assert_eq!(
            take_frame(&mut bad.as_slice()),
            Err(FrameError::CrcMismatch)
        );
        // Truncate mid-payload.
        let short = &out[..10];
        assert_eq!(
            take_frame(&mut { short }),
            Err(FrameError::TruncatedPayload)
        );
    }

    /// The regression the factoring exists for: the cell codec used by the
    /// pager's per-lane extents produces exactly the bytes the row codec —
    /// and therefore the checkpoint wire format — produces for the same
    /// cells. Row `i` of `encode_table` is the 2-byte width prefix followed
    /// by the lanes' cell encodings in column order.
    #[test]
    fn lane_cells_are_byte_identical_to_the_row_codec() {
        let t = random_table(120, 5, 31);
        let lanes = lanes(&t);
        for (i, row) in t.iter_rows().enumerate() {
            let mut by_row = BytesMut::new();
            encode_row(&row, &mut by_row);
            let mut by_cells = BytesMut::new();
            by_cells.put_u16_le(lanes.len() as u16);
            for lane in &lanes {
                encode_cell(lane, i, &mut by_cells);
            }
            assert_eq!(by_row.freeze(), by_cells.freeze(), "row {i}");
        }
        // And the whole-table form: lane extents re-interleaved by row are
        // the checkpoint stream.
        let mut by_table = BytesMut::new();
        encode_table(&t, &mut by_table);
        let extents: Vec<Bytes> = lanes
            .iter()
            .map(|l| {
                let mut b = BytesMut::new();
                encode_lane(l, t.num_rows(), &mut b);
                b.freeze()
            })
            .collect();
        let mut interleaved = BytesMut::new();
        let mut cursors: Vec<Bytes> = extents.clone();
        for _ in 0..t.num_rows() {
            interleaved.put_u16_le(lanes.len() as u16);
            for c in cursors.iter_mut() {
                let v = decode_value(c).unwrap();
                encode_value(&v, &mut interleaved);
            }
        }
        assert_eq!(by_table.freeze(), interleaved.freeze());
    }

    #[test]
    fn lane_extents_round_trip_and_reject_trailing_bytes() {
        let t = random_table(90, 4, 13);
        for (lane, col) in lanes(&t).iter().zip(t.columns()) {
            let mut buf = BytesMut::new();
            encode_lane(lane, t.num_rows(), &mut buf);
            let bytes = buf.freeze();
            let vals = decode_lane(t.num_rows(), bytes.clone()).unwrap();
            for (i, v) in vals.iter().enumerate() {
                assert_eq!(format!("{v:?}"), format!("{:?}", col.value(i).unwrap()));
            }
            assert!(decode_lane(t.num_rows() - 1, bytes.clone()).is_err());
            assert!(decode_lane(t.num_rows() + 1, bytes).is_err());
        }
    }

    #[test]
    fn write_atomic_publishes_and_never_leaves_a_tmp() {
        let dir = std::env::temp_dir().join(format!("toreador-codec-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.bin");
        write_atomic(&path, b"payload").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"payload");
        assert!(!path.with_extension("tmp").exists());
        // Re-publish overwrites atomically.
        write_atomic(&path, b"payload2").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"payload2");
        let _ = fs::remove_dir_all(&dir);
    }
}
