//! Error type for the dataflow engine.

use std::fmt;

use toreador_data::error::DataError;

/// Errors raised while planning or executing a dataflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowError {
    /// An error bubbled up from the data layer.
    Data(DataError),
    /// The plan referenced a dataset that was never registered.
    UnknownDataset(String),
    /// An expression failed type checking against its input schema.
    TypeCheck(String),
    /// The plan is structurally invalid (e.g. join keys missing).
    Plan(String),
    /// A task failed after exhausting its retry budget.
    TaskFailed {
        stage: usize,
        partition: usize,
        attempts: u32,
        message: String,
    },
    /// A task attempt exceeded its deadline too many times. Transient: the
    /// watchdog cancels the attempt and retries under the policy; this
    /// surfaces only once the retry budget is spent.
    TaskTimedOut {
        stage: usize,
        partition: usize,
        attempts: u32,
        deadline_us: u64,
    },
    /// A task body panicked and the panic was isolated into an error
    /// instead of collapsing the worker pool.
    TaskPanicked {
        stage: usize,
        partition: usize,
        attempts: u32,
        message: String,
    },
    /// Execution was cancelled (quota exhausted, user abort, or a
    /// permanent failure dooming the stage).
    Cancelled(String),
    /// A shuffle payload could not be decoded.
    Codec(String),
    /// A checkpoint could not be written or read back (I/O failure,
    /// truncation, CRC mismatch, malformed manifest).
    Checkpoint(String),
    /// A resume was refused because the checkpointed run no longer matches
    /// the recompiled campaign. `mismatch` names what changed ("plan",
    /// "inputs" or "engine config") — serving stale partitions would be
    /// silently wrong, so this is a hard, permanent error.
    StaleCheckpoint { run_id: String, mismatch: String },
    /// A deterministic chaos kill point fired at a stage boundary. The wave
    /// that just completed was durably checkpointed first, so a resume
    /// re-enters after it.
    KilledAtBoundary { stage: usize, wave: usize },
    /// The continuous streaming loop failed outside any single task: the
    /// ack log could not be written or recovered, the source errored, or
    /// the stream configuration is invalid.
    Stream(String),
    /// A deterministic kill point fired immediately after a batch was
    /// acknowledged. The batch's state delta and offset are already
    /// durable, so a resume re-enters at `offset + 1`.
    KilledAtAck { offset: u64 },
    /// An out-of-core page file or spill run could not be written or read
    /// back (I/O failure, truncation, CRC mismatch, malformed directory).
    Spill(String),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Data(e) => write!(f, "data error: {e}"),
            FlowError::UnknownDataset(name) => write!(f, "unknown dataset: {name:?}"),
            FlowError::TypeCheck(msg) => write!(f, "type check failed: {msg}"),
            FlowError::Plan(msg) => write!(f, "invalid plan: {msg}"),
            FlowError::TaskFailed { stage, partition, attempts, message } => write!(
                f,
                "task failed (stage {stage}, partition {partition}) after {attempts} attempts: {message}"
            ),
            FlowError::TaskTimedOut { stage, partition, attempts, deadline_us } => write!(
                f,
                "task timed out (stage {stage}, partition {partition}) after {attempts} attempts: deadline {deadline_us} us exceeded"
            ),
            FlowError::TaskPanicked { stage, partition, attempts, message } => write!(
                f,
                "task panicked (stage {stage}, partition {partition}) after {attempts} attempts: {message}"
            ),
            FlowError::Cancelled(msg) => write!(f, "execution cancelled: {msg}"),
            FlowError::Codec(msg) => write!(f, "shuffle codec error: {msg}"),
            FlowError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
            FlowError::StaleCheckpoint { run_id, mismatch } => write!(
                f,
                "stale checkpoint for run {run_id:?}: {mismatch} changed since the checkpoint was written"
            ),
            FlowError::KilledAtBoundary { stage, wave } => write!(
                f,
                "killed at stage boundary (stage {stage}, wave {wave})"
            ),
            FlowError::Stream(msg) => write!(f, "stream error: {msg}"),
            FlowError::KilledAtAck { offset } => {
                write!(f, "killed at ack boundary (offset {offset})")
            }
            FlowError::Spill(msg) => write!(f, "spill error: {msg}"),
        }
    }
}

impl std::error::Error for FlowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlowError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for FlowError {
    fn from(e: DataError) -> Self {
        FlowError::Data(e)
    }
}

/// Convenience result alias for the dataflow layer.
pub type Result<T> = std::result::Result<T, FlowError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_data_errors_with_source() {
        let e: FlowError = DataError::ColumnNotFound("x".into()).into();
        assert!(e.to_string().contains("column not found"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn timeout_and_panic_errors_report_location() {
        let t = FlowError::TaskTimedOut {
            stage: 1,
            partition: 4,
            attempts: 2,
            deadline_us: 5_000,
        };
        let s = t.to_string();
        assert!(s.contains("stage 1") && s.contains("partition 4") && s.contains("5000 us"));
        let p = FlowError::TaskPanicked {
            stage: 0,
            partition: 2,
            attempts: 1,
            message: "boom".into(),
        };
        let s = p.to_string();
        assert!(s.contains("panicked") && s.contains("partition 2") && s.contains("boom"));
    }

    #[test]
    fn checkpoint_errors_name_the_cause() {
        let s = FlowError::Checkpoint("bad crc in wave-0003".into()).to_string();
        assert!(s.contains("checkpoint error") && s.contains("wave-0003"));
        let s = FlowError::StaleCheckpoint {
            run_id: "run-7".into(),
            mismatch: "plan".into(),
        }
        .to_string();
        assert!(s.contains("run-7") && s.contains("plan changed"));
        let s = FlowError::KilledAtBoundary { stage: 2, wave: 3 }.to_string();
        assert!(s.contains("stage 2") && s.contains("wave 3"));
    }

    #[test]
    fn task_failure_reports_location() {
        let e = FlowError::TaskFailed {
            stage: 2,
            partition: 5,
            attempts: 3,
            message: "boom".into(),
        };
        let s = e.to_string();
        assert!(s.contains("stage 2") && s.contains("partition 5") && s.contains("3 attempts"));
    }
}
