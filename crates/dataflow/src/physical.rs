//! Physical execution of logical plans.
//!
//! The execution model mirrors Spark's: a plan is cut into **stages** at
//! shuffle boundaries; within a stage, narrow operators (filter, project,
//! sample) run as one task per partition on the scheduler's thread pool;
//! wide operators (aggregate, join, sort, distinct) first move rows through
//! [`crate::shuffle`] and then run per-partition tasks on the redistributed
//! data.
//!
//! Aggregations run in one of two modes, chosen by
//! [`ExecConfig::partial_aggregation`]: *partial* (combine per partition,
//! shuffle the small partial states, merge — Spark's map-side combine) or
//! *raw* (shuffle all rows, aggregate once). The difference is an ablation
//! measured by benchmark E5.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use toreador_data::column::Column;
use toreador_data::partition::{PartitionedTable, Partitioning};
use toreador_data::schema::{Field, Schema};
use toreador_data::table::{Table, TableBuilder};
use toreador_data::value::{DataType, Row, Value};

use crate::checkpoint::RunCheckpoint;
use crate::error::{FlowError, Result};
use crate::expr::Expr;
use crate::fault::KillMode;
use crate::logical::{AggExpr, AggFunc, JoinType, LogicalPlan};
use crate::metrics::MetricsCollector;
use crate::morsel::{self, PipelineBody, WaveOrder};
use crate::pager::{SpillHandle, SpillManager, SPILL_OP_AGGREGATE};
use crate::resilience::RunControl;
use crate::scheduler::{run_stage_controlled, SchedulerConfig};
use crate::shuffle::{estimate_row_bytes, shuffle_traced, shuffle_traced_spillable, ShuffleOutput};
use crate::trace::TraceEventKind;
use crate::vexpr::BoundExpr;

/// Execution-time configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    pub scheduler: SchedulerConfig,
    /// Target partition count for scans and shuffles.
    pub partitions: usize,
    /// Map-side combine for aggregations (ablation knob).
    pub partial_aggregation: bool,
    /// Evaluate narrow-operator expressions with the vectorized engine
    /// ([`crate::vexpr`]): bind once at plan time, run batch kernels over
    /// columns, produce selection vectors. When off, the row-at-a-time
    /// interpreter runs instead — kept as the differential-testing oracle
    /// and the baseline for benchmark E10 (ablation knob).
    pub vectorized: bool,
    /// Fuse chains of narrow operators (Filter/Project/Sample) into a
    /// single per-partition pass with no intermediate tables. Requires
    /// `vectorized`; fusion is declined for chains shorter than two
    /// operators (ablation knob).
    pub fuse_narrow: bool,
    /// Drive fused chains and partial-aggregation map sides through the
    /// morsel-driven pipelined executor ([`crate::morsel`]): row-range
    /// morsels on per-core work-stealing deques, so stragglers on skewed
    /// partitions get helped instead of stalling the wave. When off, those
    /// waves run on the stage-barrier scheduler — kept selectable as the
    /// differential oracle (ablation knob). Waves with a task deadline or
    /// speculation configured always use the barrier scheduler, whose
    /// coordinator owns those watchdogs.
    pub pipelined: bool,
    /// Target morsel size in rows for the pipelined path.
    pub morsel_rows: usize,
    /// External run control adopted by the execution context (None = the
    /// context mints a private one). See
    /// [`crate::session::EngineConfig::with_control`].
    pub control: Option<RunControl>,
    /// Out-of-core memory budget, bytes. When set, the columnar shuffle
    /// bounds its staging buffers and the partial-aggregation map output is
    /// bounded before its shuffle: over-budget runs spill to paged files
    /// ([`crate::pager`]) and merge back on read, output-identical to the
    /// in-memory path. `None` (the default) leaves every operator fully
    /// in-memory — that path is untouched by the budget machinery.
    pub memory_budget_bytes: Option<u64>,
    /// Where spill runs page to. `None` = a process-unique directory under
    /// the system temp dir; sessions with checkpointing set
    /// `<checkpoint-dir>/spill` so chaos sweeps cover both.
    pub spill_dir: Option<PathBuf>,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            scheduler: SchedulerConfig::default(),
            partitions: 4,
            partial_aggregation: true,
            vectorized: true,
            fuse_narrow: true,
            pipelined: true,
            morsel_rows: 4096,
            control: None,
            memory_budget_bytes: None,
            spill_dir: None,
        }
    }
}

/// Everything an execution needs: datasets, config, metrics, stage counter,
/// and the run-wide cancellation/retry-budget control shared by all stages.
pub struct ExecContext<'a> {
    pub datasets: &'a HashMap<String, PartitionedTable>,
    pub config: ExecConfig,
    pub metrics: &'a MetricsCollector,
    stage: AtomicUsize,
    /// Dense index of shuffle waves (`run_stage` calls). Plan orchestration
    /// is single-threaded recursion, so for a fixed plan and config the
    /// wave order is deterministic — which is what lets checkpoints key on
    /// it across process restarts.
    wave: AtomicUsize,
    checkpoint: Option<RunCheckpoint>,
    control: RunControl,
    /// Present iff `config.memory_budget_bytes` is set: the run's spill
    /// directory, page files and buffer pool. Dropped with the context,
    /// which removes the spill directory.
    spill: Option<SpillManager>,
}

/// Distinguishes concurrent unbudgeted-dir runs in one process.
static SPILL_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

impl<'a> ExecContext<'a> {
    pub fn new(
        datasets: &'a HashMap<String, PartitionedTable>,
        config: ExecConfig,
        metrics: &'a MetricsCollector,
    ) -> Self {
        let control = config.control.clone().unwrap_or_default();
        let spill = config.memory_budget_bytes.map(|budget| {
            let dir = config.spill_dir.clone().unwrap_or_else(|| {
                std::env::temp_dir().join(format!(
                    "toreador-spill-{}-{}",
                    std::process::id(),
                    SPILL_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
                ))
            });
            SpillManager::new(budget, dir)
        });
        ExecContext {
            datasets,
            config,
            metrics,
            stage: AtomicUsize::new(0),
            wave: AtomicUsize::new(0),
            checkpoint: None,
            control,
            spill,
        }
    }

    /// The run's spill manager, present when a memory budget is set.
    pub fn spill(&self) -> Option<&SpillManager> {
        self.spill.as_ref()
    }

    /// Shuffle owned partitions, spilling over-budget staging when a
    /// memory budget is set; the borrowed in-memory fast path otherwise
    /// (no clones, no budget checks — untouched relative to the
    /// unbudgeted engine).
    fn shuffle(
        &self,
        inputs: Vec<Table>,
        schema: &Schema,
        keys: &[String],
        targets: usize,
    ) -> Result<ShuffleOutput> {
        match self.spill.as_ref() {
            Some(manager) => {
                let sources = inputs.len();
                shuffle_traced_spillable(
                    inputs.into_iter().map(Ok),
                    sources,
                    schema,
                    keys,
                    targets,
                    self.metrics.trace(),
                    Some(manager),
                )
            }
            None => shuffle_traced(&inputs, schema, keys, targets, self.metrics.trace()),
        }
    }

    /// Shuffle the partial-aggregation map output. Under a memory budget
    /// the map output itself is bounded first: the largest partial tables
    /// spill to paged runs (`SpillStarted`, op `aggregate`) until what
    /// stays resident fits the budget, and the shuffle then consumes
    /// in-memory partials and read-back runs (`SpillMerged`) in the
    /// original partition order — so the row stream entering the shuffle,
    /// and therefore every downstream fold, is identical to the in-memory
    /// run's.
    fn shuffle_partials(
        &self,
        partials: Vec<Table>,
        schema: &Schema,
        keys: &[String],
        targets: usize,
    ) -> Result<ShuffleOutput> {
        let Some(manager) = self.spill.as_ref() else {
            return shuffle_traced(&partials, schema, keys, targets, self.metrics.trace());
        };
        let journal = self.metrics.trace();
        let budget = manager.budget_bytes() as usize;
        let row_bytes = estimate_row_bytes(&partials);
        let sizes: Vec<usize> = partials
            .iter()
            .map(|t| t.num_rows().saturating_mul(row_bytes))
            .collect();
        let mut resident: usize = sizes.iter().sum();
        enum MapRun {
            Mem(Table),
            Spilled(SpillHandle),
            Draining,
        }
        let mut slots: Vec<MapRun> = partials.into_iter().map(MapRun::Mem).collect();
        while resident > budget {
            // Largest resident partial first; ties break on the lowest
            // partition index, so the spill set is deterministic.
            let Some((i, sz)) = slots
                .iter()
                .enumerate()
                .filter_map(|(i, s)| match s {
                    MapRun::Mem(t) if t.num_rows() > 0 => Some((i, sizes[i])),
                    _ => None,
                })
                .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            else {
                break;
            };
            let MapRun::Mem(t) = std::mem::replace(&mut slots[i], MapRun::Draining) else {
                unreachable!("selected slot is resident");
            };
            let handle = manager.spill_table(&t, journal)?;
            journal.record(TraceEventKind::SpillStarted {
                op: SPILL_OP_AGGREGATE.to_owned(),
                target: i,
                rows: t.num_rows() as u64,
                bytes: handle.bytes(),
            });
            slots[i] = MapRun::Spilled(handle);
            resident -= sz;
        }
        let sources = slots.len();
        shuffle_traced_spillable(
            slots.into_iter().enumerate().map(|(i, slot)| match slot {
                MapRun::Mem(t) => Ok(t),
                MapRun::Spilled(handle) => {
                    let t = manager.read_back(&handle, journal)?;
                    journal.record(TraceEventKind::SpillMerged {
                        op: SPILL_OP_AGGREGATE.to_owned(),
                        target: i,
                        runs: 1,
                        rows: t.num_rows() as u64,
                        bytes: handle.bytes(),
                    });
                    manager.release(handle);
                    Ok(t)
                }
                MapRun::Draining => unreachable!("transient state never escapes the spill loop"),
            }),
            sources,
            schema,
            keys,
            targets,
            journal,
            Some(manager),
        )
    }

    /// Attach a run checkpoint: every completed wave is persisted, and
    /// restored waves are served instead of recomputed.
    pub fn with_checkpoint(mut self, checkpoint: RunCheckpoint) -> Self {
        self.checkpoint = Some(checkpoint);
        self
    }

    /// The run-wide control: one retry budget and one cancellation flag
    /// spanning every stage of this execution.
    pub fn control(&self) -> &RunControl {
        &self.control
    }

    fn current_stage(&self) -> usize {
        self.stage.load(Ordering::Relaxed)
    }

    fn next_stage(&self) -> usize {
        self.stage.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn run_stage<F>(&self, stage: usize, tasks: Vec<F>) -> Result<Vec<Table>>
    where
        F: Fn() -> Result<Table> + Send + Sync,
    {
        let wave = self.wave.fetch_add(1, Ordering::Relaxed);
        if let Some(ck) = &self.checkpoint {
            if let Some(restored) = ck.take_restored(wave) {
                if restored.stage != stage || restored.tables.len() != tasks.len() {
                    return Err(FlowError::Checkpoint(format!(
                        "restored wave {wave} does not match the plan: checkpointed \
                         stage {} with {} partitions, expected stage {stage} with {}",
                        restored.stage,
                        restored.tables.len(),
                        tasks.len()
                    )));
                }
                self.metrics
                    .stage_restored(stage, wave, restored.tables.len(), restored.rows);
                return Ok(restored.tables);
            }
        }
        let out = run_stage_controlled(
            &self.config.scheduler,
            self.metrics,
            &self.control,
            stage,
            tasks,
        )?;
        if let Some(ck) = &self.checkpoint {
            let bytes = ck.persist_wave(stage, wave, &out)?;
            self.metrics
                .stage_checkpointed(stage, wave, out.len(), bytes);
            // Boundary kill points fire only on checkpointed runs, and only
            // *after* the wave is durable — restored waves return above, so
            // a kill-free resume sails past every fired kill point.
            if let Some(mode) = self
                .config
                .scheduler
                .resilience
                .chaos
                .kill_at_boundary(wave)
            {
                match mode {
                    KillMode::Exit { code } => std::process::exit(code),
                    KillMode::Halt => return Err(FlowError::KilledAtBoundary { stage, wave }),
                }
            }
        }
        Ok(out)
    }

    /// [`Self::run_stage`] for morsel-pipelined waves: same wave numbering,
    /// same checkpoint persistence/restore and boundary-kill handling, but
    /// execution is delegated to `run` (a [`crate::morsel::run_wave`] call)
    /// instead of the stage-barrier scheduler. `parts` is the wave's input
    /// partitioning — one output table per input partition, which is what a
    /// restored wave is validated against.
    fn run_pipeline<R>(&self, stage: usize, parts: &[Table], run: R) -> Result<Vec<Table>>
    where
        R: FnOnce(&[Table]) -> Result<Vec<Table>>,
    {
        let wave = self.wave.fetch_add(1, Ordering::Relaxed);
        if let Some(ck) = &self.checkpoint {
            if let Some(restored) = ck.take_restored(wave) {
                if restored.stage != stage || restored.tables.len() != parts.len() {
                    return Err(FlowError::Checkpoint(format!(
                        "restored wave {wave} does not match the plan: checkpointed \
                         stage {} with {} partitions, expected stage {stage} with {}",
                        restored.stage,
                        restored.tables.len(),
                        parts.len()
                    )));
                }
                self.metrics
                    .stage_restored(stage, wave, restored.tables.len(), restored.rows);
                return Ok(restored.tables);
            }
        }
        let out = run(parts)?;
        if let Some(ck) = &self.checkpoint {
            let bytes = ck.persist_wave(stage, wave, &out)?;
            self.metrics
                .stage_checkpointed(stage, wave, out.len(), bytes);
            if let Some(mode) = self
                .config
                .scheduler
                .resilience
                .chaos
                .kill_at_boundary(wave)
            {
                match mode {
                    KillMode::Exit { code } => std::process::exit(code),
                    KillMode::Halt => return Err(FlowError::KilledAtBoundary { stage, wave }),
                }
            }
        }
        Ok(out)
    }

    /// Whether this run's non-breaking waves go through the morsel-driven
    /// pipelined executor. Deadlines and speculation need the barrier
    /// coordinator's watchdog clocks, so either feature forces the oracle
    /// path.
    fn use_morsel_pipeline(&self) -> bool {
        self.config.pipelined
            && self.config.scheduler.resilience.deadline.is_none()
            && self.config.scheduler.resilience.speculation.is_none()
    }
}

/// Execute a logical plan to a partitioned result.
pub fn execute(ctx: &ExecContext<'_>, plan: &LogicalPlan) -> Result<PartitionedTable> {
    // Fuse chains of two or more narrow operators into one per-partition
    // pass. Recursion enters every plan node through here, so the topmost
    // node of each chain triggers the fusion and consumes the whole chain.
    if ctx.config.vectorized && ctx.config.fuse_narrow {
        let (chain, below) = narrow_chain(plan);
        if chain.len() >= 2 {
            return exec_fused_chain(ctx, &chain, below);
        }
    }
    let started = Instant::now();
    let out = match plan {
        LogicalPlan::Scan { dataset, schema } => exec_scan(ctx, dataset, schema),
        LogicalPlan::Filter { input, predicate } => {
            let child = execute(ctx, input)?;
            let batches = child.num_partitions() as u64;
            if ctx.config.vectorized {
                // Bind once at plan time: names resolved, types inferred,
                // batch kernels selected — nothing re-derived per task.
                let bound = BoundExpr::bind(predicate, input.schema())?;
                ctx.metrics.record_operator_batches(
                    plan.describe(),
                    ctx.current_stage(),
                    batches,
                    false,
                );
                exec_narrow(ctx, child, plan.describe(), move |t| {
                    let sel = bound.eval_selection(t)?;
                    t.take_sel(&sel).map_err(FlowError::Data)
                })
            } else {
                // Row oracle: type-check hoisted out of the per-partition
                // tasks (it used to re-run inside every eval_mask call).
                let ty = predicate.infer_type(input.schema())?;
                if ty != DataType::Bool {
                    return Err(FlowError::TypeCheck(format!(
                        "predicate must be Bool, got {ty}"
                    )));
                }
                ctx.metrics
                    .record_operator_batches(plan.describe(), ctx.current_stage(), 0, false);
                exec_narrow(ctx, child, plan.describe(), |t| {
                    let mask = predicate.eval_mask_checked(t)?;
                    t.filter(&mask).map_err(FlowError::Data)
                })
            }
        }
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => {
            let child = execute(ctx, input)?;
            let batches = child.num_partitions() as u64;
            if ctx.config.vectorized {
                let bound = exprs
                    .iter()
                    .map(|(_, e)| BoundExpr::bind(e, input.schema()))
                    .collect::<Result<Vec<_>>>()?;
                ctx.metrics.record_operator_batches(
                    plan.describe(),
                    ctx.current_stage(),
                    batches,
                    false,
                );
                exec_narrow(ctx, child, plan.describe(), move |t| {
                    project_vectorized(t, &bound, schema)
                })
            } else {
                let tys = exprs
                    .iter()
                    .map(|(_, e)| e.infer_type(input.schema()))
                    .collect::<Result<Vec<_>>>()?;
                ctx.metrics
                    .record_operator_batches(plan.describe(), ctx.current_stage(), 0, false);
                exec_narrow(ctx, child, plan.describe(), move |t| {
                    project_table_typed(t, exprs, &tys, schema)
                })
            }
        }
        LogicalPlan::Sample {
            input,
            fraction,
            seed,
        } => {
            let child = execute(ctx, input)?;
            let batches = child.num_partitions() as u64;
            let fraction = *fraction;
            let seed = *seed;
            let vectorized = ctx.config.vectorized;
            ctx.metrics.record_operator_batches(
                plan.describe(),
                ctx.current_stage(),
                if vectorized { batches } else { 0 },
                false,
            );
            // Partition index participates in the seed so each partition
            // draws an independent, reproducible stream. Both modes draw
            // once per input row in order, so they keep identical rows.
            exec_narrow_indexed(ctx, child, plan.describe(), move |t, idx| {
                let mut rng = StdRng::seed_from_u64(seed ^ (idx as u64).wrapping_mul(0x9e37));
                if vectorized {
                    let sel: Vec<u32> = (0..t.num_rows() as u32)
                        .filter(|_| rng.gen_bool(fraction))
                        .collect();
                    t.take_sel(&sel).map_err(FlowError::Data)
                } else {
                    let mask: Vec<bool> =
                        (0..t.num_rows()).map(|_| rng.gen_bool(fraction)).collect();
                    t.filter(&mask).map_err(FlowError::Data)
                }
            })
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            schema,
        } => {
            let child = execute(ctx, input)?;
            exec_aggregate(ctx, child, group_by, aggs, schema, &plan.describe())
        }
        LogicalPlan::Join {
            left,
            right,
            left_keys,
            right_keys,
            join_type,
            schema,
        } => {
            let l = execute(ctx, left)?;
            let r = execute(ctx, right)?;
            exec_join(
                ctx,
                l,
                r,
                left_keys,
                right_keys,
                *join_type,
                schema,
                &plan.describe(),
            )
        }
        LogicalPlan::Sort {
            input,
            keys,
            descending,
        } => {
            let child = execute(ctx, input)?;
            exec_sort(ctx, child, keys, *descending, &plan.describe())
        }
        LogicalPlan::Limit { input, n } => {
            // Limit-over-Sort fuses into a top-k: each partition sorts and
            // truncates locally, then only n rows per partition cross the
            // merge — instead of gathering the whole dataset to one
            // partition first. Same results, far less data movement.
            if let LogicalPlan::Sort {
                input: sort_in,
                keys,
                descending,
            } = input.as_ref()
            {
                let child = execute(ctx, sort_in)?;
                return exec_top_k(ctx, child, keys, *descending, *n, &plan.describe());
            }
            let child = execute(ctx, input)?;
            exec_limit(ctx, child, *n, &plan.describe())
        }
        LogicalPlan::Union { inputs } => {
            let mut parts = Vec::new();
            for i in inputs {
                parts.extend(execute(ctx, i)?.into_parts());
            }
            let rows: u64 = parts.iter().map(|t| t.num_rows() as u64).sum();
            ctx.metrics.record_node(
                plan.describe(),
                ctx.current_stage(),
                rows,
                started.elapsed(),
                0,
            );
            return PartitionedTable::new(parts, Partitioning::Arbitrary).map_err(FlowError::Data);
        }
        LogicalPlan::Distinct { input } => {
            let child = execute(ctx, input)?;
            exec_distinct(ctx, child, &plan.describe())
        }
    }?;
    // Scan/narrow/wide helpers record their own metrics; Union recorded above.
    Ok(out)
}

fn exec_scan(ctx: &ExecContext<'_>, dataset: &str, schema: &Schema) -> Result<PartitionedTable> {
    let started = Instant::now();
    let found = ctx
        .datasets
        .get(dataset)
        .ok_or_else(|| FlowError::UnknownDataset(dataset.to_owned()))?;
    found
        .schema()
        .ensure_same(schema)
        .map_err(FlowError::Data)?;
    // Re-split single-partition datasets to the configured parallelism.
    let out = if found.num_partitions() == 1 && ctx.config.partitions > 1 {
        PartitionedTable::split(found.collect()?, ctx.config.partitions)?
    } else {
        found.clone()
    };
    ctx.metrics.record_node(
        format!("Scan {dataset}"),
        ctx.current_stage(),
        out.total_rows() as u64,
        started.elapsed(),
        0,
    );
    Ok(out)
}

/// Run a per-partition transformation on the thread pool.
fn exec_narrow(
    ctx: &ExecContext<'_>,
    input: PartitionedTable,
    desc: String,
    f: impl Fn(&Table) -> Result<Table> + Send + Sync,
) -> Result<PartitionedTable> {
    exec_narrow_indexed(ctx, input, desc, move |t, _| f(t))
}

fn exec_narrow_indexed(
    ctx: &ExecContext<'_>,
    input: PartitionedTable,
    desc: String,
    f: impl Fn(&Table, usize) -> Result<Table> + Send + Sync,
) -> Result<PartitionedTable> {
    let started = Instant::now();
    let stage = ctx.current_stage();
    let parts = input.into_parts();
    let f = &f;
    let tasks: Vec<_> = parts
        .iter()
        .enumerate()
        .map(|(i, t)| move || f(t, i))
        .collect();
    let outputs = ctx.run_stage(stage, tasks)?;
    let rows: u64 = outputs.iter().map(|t| t.num_rows() as u64).sum();
    ctx.metrics
        .record_node(desc, stage, rows, started.elapsed(), 0);
    PartitionedTable::new(outputs, Partitioning::Arbitrary).map_err(FlowError::Data)
}

/// Row-oracle projection with types resolved at plan time.
fn project_table_typed(
    t: &Table,
    exprs: &[(String, Expr)],
    tys: &[DataType],
    schema: &Schema,
) -> Result<Table> {
    let mut columns = Vec::with_capacity(exprs.len());
    for (((_, e), &ty), field) in exprs.iter().zip(tys).zip(schema.fields()) {
        let col = e.eval_table_typed(t, ty)?;
        debug_assert_eq!(col.data_type(), field.data_type);
        columns.push(col);
    }
    Table::new(schema.clone(), columns).map_err(FlowError::Data)
}

/// Vectorized projection over pre-bound expressions.
fn project_vectorized(t: &Table, bound: &[BoundExpr], schema: &Schema) -> Result<Table> {
    let mut columns = Vec::with_capacity(bound.len());
    for (b, field) in bound.iter().zip(schema.fields()) {
        let col = b.eval_column(t)?;
        debug_assert_eq!(col.data_type(), field.data_type);
        columns.push(col);
    }
    Table::new(schema.clone(), columns).map_err(FlowError::Data)
}

// ----------------------------------------------------- narrow-chain fusion

/// Walk consecutive narrow operators (Filter/Project/Sample) down from
/// `plan`. Returns the chain outermost-first plus the first non-narrow node
/// below it.
fn narrow_chain(plan: &LogicalPlan) -> (Vec<&LogicalPlan>, &LogicalPlan) {
    let mut chain = Vec::new();
    let mut cur = plan;
    while let LogicalPlan::Filter { input, .. }
    | LogicalPlan::Project { input, .. }
    | LogicalPlan::Sample { input, .. } = cur
    {
        chain.push(cur);
        cur = input;
    }
    (chain, cur)
}

/// One compiled step of a fused narrow chain.
enum FusedStep {
    Filter(BoundExpr),
    Project(Vec<BoundExpr>, Schema),
    Sample { fraction: f64, seed: u64 },
}

/// Execute a chain of ≥2 narrow operators as one per-partition pass:
/// filters and samples compose an absolute selection vector, projections
/// materialize new columns under the selection — no intermediate `Table`
/// exists between the operators. Narrow operators share the current stage
/// (no shuffle boundary), so fusion does not change stage numbering, and
/// each logical node still records its own `OperatorFinished` with the
/// same describe-string as unfused execution — only the elapsed attribution
/// differs (summed per-partition busy time instead of wall time).
fn exec_fused_chain(
    ctx: &ExecContext<'_>,
    chain: &[&LogicalPlan],
    below: &LogicalPlan,
) -> Result<PartitionedTable> {
    let child = execute(ctx, below)?;
    let started = Instant::now();
    let stage = ctx.current_stage();
    // Bind bottom-up, tracking the evolving schema across projections.
    let mut schema = child.schema().clone();
    let mut steps: Vec<(FusedStep, String)> = Vec::with_capacity(chain.len());
    for node in chain.iter().rev() {
        match node {
            LogicalPlan::Filter { predicate, .. } => {
                let b = BoundExpr::bind(predicate, &schema)?;
                steps.push((FusedStep::Filter(b), node.describe()));
            }
            LogicalPlan::Project {
                exprs, schema: out, ..
            } => {
                let bound = exprs
                    .iter()
                    .map(|(_, e)| BoundExpr::bind(e, &schema))
                    .collect::<Result<Vec<_>>>()?;
                schema = (*out).clone();
                steps.push((FusedStep::Project(bound, schema.clone()), node.describe()));
            }
            LogicalPlan::Sample { fraction, seed, .. } => {
                steps.push((
                    FusedStep::Sample {
                        fraction: *fraction,
                        seed: *seed,
                    },
                    node.describe(),
                ));
            }
            _ => unreachable!("narrow_chain only collects narrow nodes"),
        }
    }
    // Per-step (rows_out, busy) accumulated across partition tasks.
    let stats: Vec<Mutex<(u64, Duration)>> = steps
        .iter()
        .map(|_| Mutex::new((0, Duration::ZERO)))
        .collect();
    let parts = child.into_parts();
    let steps_ref = &steps;
    let stats_ref = &stats;
    let outputs = if ctx.use_morsel_pipeline() {
        // Pipelined path: push row-range morsels through per-core workers
        // with work-stealing. Pure filter/project chains are elementwise,
        // so any worker may run any morsel; a sampling step carries RNG
        // draw order, so those chains run partition-serial (stealing moves
        // whole partitions instead).
        let order = if steps
            .iter()
            .any(|(s, _)| matches!(s, FusedStep::Sample { .. }))
        {
            WaveOrder::Serial
        } else {
            WaveOrder::Independent
        };
        let body = FusedChainBody {
            steps: steps_ref,
            stats: stats_ref,
            out_schema: schema.clone(),
        };
        ctx.run_pipeline(stage, &parts, |ps| {
            morsel::run_wave(
                &ctx.config.scheduler,
                ctx.metrics,
                ctx.control(),
                stage,
                ps,
                order,
                ctx.config.morsel_rows,
                &body,
            )
        })?
    } else {
        let tasks: Vec<_> = parts
            .iter()
            .enumerate()
            .map(|(idx, t)| move || run_fused_partition(t, idx, steps_ref, stats_ref))
            .collect();
        ctx.run_stage(stage, tasks)?
    };
    let batches = outputs.len() as u64;
    // Record per-node metrics in execution (innermost-first) order, exactly
    // as the unfused path would have.
    for ((_, desc), stat) in steps.iter().zip(&stats) {
        let (rows, busy) = *stat.lock();
        ctx.metrics.record_node(desc.clone(), stage, rows, busy, 0);
        ctx.metrics
            .record_operator_batches(desc.clone(), stage, batches, true);
    }
    ctx.metrics
        .record_fused_chain(stage, steps.iter().map(|(_, d)| d.clone()).collect());
    let _ = started;
    PartitionedTable::new(outputs, Partitioning::Arbitrary).map_err(FlowError::Data)
}

/// One freshly-seeded RNG per sampling step of the chain, in step order.
/// The seed mixes the partition index exactly as unfused sampling does, and
/// each step's RNG is independent — so chunked execution draws each step's
/// sequence in ascending row order no matter how morsels interleave steps.
fn sample_rngs(steps: &[(FusedStep, String)], idx: usize) -> Vec<StdRng> {
    steps
        .iter()
        .filter_map(|(s, _)| match s {
            FusedStep::Sample { seed, .. } => Some(StdRng::seed_from_u64(
                seed ^ (idx as u64).wrapping_mul(0x9e37),
            )),
            _ => None,
        })
        .collect()
}

/// Run every step of a fused chain over one partition.
fn run_fused_partition(
    t: &Table,
    idx: usize,
    steps: &[(FusedStep, String)],
    stats: &[Mutex<(u64, Duration)>],
) -> Result<Table> {
    let mut rngs = sample_rngs(steps, idx);
    run_fused_range(t, steps, stats, &mut rngs, 0, t.num_rows())
}

/// Run every step of a fused chain over rows `lo..hi` of one partition.
/// State is the current column set plus an optional selection of surviving
/// row indices; filters and samples narrow the selection, projections
/// materialize it away. A partial range starts from an explicit selection
/// of the range's rows, so chunked outputs concatenate to exactly the
/// whole-partition result. Sampling draws from `rngs` (one per sampling
/// step, shared across a partition's chunks in row order).
fn run_fused_range(
    t: &Table,
    steps: &[(FusedStep, String)],
    stats: &[Mutex<(u64, Duration)>],
    rngs: &mut [StdRng],
    lo: usize,
    hi: usize,
) -> Result<Table> {
    let n = t.num_rows();
    // (columns, schema, rows) after the last projection, if any; before
    // that the input table's columns are borrowed untouched.
    let mut owned: Option<(Vec<Column>, Schema, usize)> = None;
    let mut sel: Option<Vec<u32>> = if lo == 0 && hi == n {
        None
    } else {
        Some((lo as u32..hi as u32).collect())
    };
    let mut rng_i = 0usize;
    for ((step, _), stat) in steps.iter().zip(stats) {
        let t0 = Instant::now();
        let (cols, rows_total): (&[Column], usize) = match &owned {
            Some((c, _, r)) => (c.as_slice(), *r),
            None => (t.columns(), n),
        };
        match step {
            FusedStep::Filter(b) => {
                sel = Some(b.selection_cols(cols, rows_total, sel.as_deref())?);
            }
            FusedStep::Project(bound, out_schema) => {
                let m = sel.as_ref().map_or(rows_total, |s| s.len());
                let mut new_cols = Vec::with_capacity(bound.len());
                for b in bound {
                    let col = b
                        .eval_cols(cols, rows_total, sel.as_deref())?
                        .into_column(b.output_type(), m)?;
                    new_cols.push(col);
                }
                owned = Some((new_cols, out_schema.clone(), m));
                sel = None;
            }
            FusedStep::Sample { fraction, .. } => {
                // Same seeding and one draw per surviving row in order, so
                // fused sampling keeps exactly the rows unfused would.
                let rng = &mut rngs[rng_i];
                rng_i += 1;
                let kept: Vec<u32> = match &sel {
                    Some(s) => s
                        .iter()
                        .copied()
                        .filter(|_| rng.gen_bool(*fraction))
                        .collect(),
                    None => (0..rows_total as u32)
                        .filter(|_| rng.gen_bool(*fraction))
                        .collect(),
                };
                sel = Some(kept);
            }
        }
        let rows_now = match (&sel, &owned) {
            (Some(s), _) => s.len(),
            (None, Some((_, _, r))) => *r,
            (None, None) => n,
        } as u64;
        let mut g = stat.lock();
        g.0 += rows_now;
        g.1 += t0.elapsed();
    }
    match (owned, sel) {
        (Some((cols, schema, _)), None) => Table::new(schema, cols).map_err(FlowError::Data),
        (Some((cols, schema, _)), Some(s)) => Table::new(schema, cols)
            .map_err(FlowError::Data)?
            .take_sel(&s)
            .map_err(FlowError::Data),
        (None, Some(s)) => t.take_sel(&s).map_err(FlowError::Data),
        // A ≥2-step chain always sets a selection or owns columns, but
        // fall through safely for completeness.
        (None, None) => Ok(t.clone()),
    }
}

/// [`PipelineBody`] of a fused narrow chain: each morsel runs the whole
/// chain over its row range, chunk outputs concatenate per partition.
struct FusedChainBody<'a> {
    steps: &'a [(FusedStep, String)],
    stats: &'a [Mutex<(u64, Duration)>],
    out_schema: Schema,
}

impl PipelineBody for FusedChainBody<'_> {
    /// Per-sampling-step RNGs plus the partition's output chunks so far.
    type State = (Vec<StdRng>, Vec<Table>);

    fn init(&self, partition: usize, _part: &Table) -> Result<Self::State> {
        Ok((sample_rngs(self.steps, partition), Vec::new()))
    }

    fn process(
        &self,
        state: &mut Self::State,
        part: &Table,
        _partition: usize,
        lo: usize,
        hi: usize,
    ) -> Result<()> {
        let chunk = run_fused_range(part, self.steps, self.stats, &mut state.0, lo, hi)?;
        state.1.push(chunk);
        Ok(())
    }

    fn finish(&self, state: Self::State, _part: &Table, _partition: usize) -> Result<Table> {
        let (_, chunks) = state;
        match chunks.len() {
            0 => Ok(Table::empty(self.out_schema.clone())),
            1 => Ok(chunks.into_iter().next().expect("one chunk")),
            _ => Table::concat(&chunks).map_err(FlowError::Data),
        }
    }
}

// ------------------------------------------------------------- aggregation

/// Hashable wrapper for group keys (Value has no Eq/Hash of its own).
#[derive(Debug, Clone)]
struct GroupKey(Row);

impl PartialEq for GroupKey {
    fn eq(&self, other: &Self) -> bool {
        self.0.len() == other.0.len() && self.0.iter().zip(&other.0).all(|(a, b)| a.group_eq(b))
    }
}
impl Eq for GroupKey {}
impl std::hash::Hash for GroupKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        for v in &self.0 {
            state.write_u64(v.hash_code());
        }
    }
}

/// Per-group accumulator for one aggregate expression.
#[derive(Debug, Clone)]
enum Acc {
    Count(i64),
    SumInt(i64, bool),
    SumFloat(f64, bool),
    Min(Value),
    Max(Value),
    Mean { sum: f64, n: i64 },
    Distinct(std::collections::HashSet<u64>),
}

impl Acc {
    fn new(func: AggFunc, input_ty: DataType) -> Acc {
        match func {
            AggFunc::Count => Acc::Count(0),
            AggFunc::Sum => {
                if input_ty == DataType::Int {
                    Acc::SumInt(0, false)
                } else {
                    Acc::SumFloat(0.0, false)
                }
            }
            AggFunc::Min => Acc::Min(Value::Null),
            AggFunc::Max => Acc::Max(Value::Null),
            AggFunc::Mean => Acc::Mean { sum: 0.0, n: 0 },
            AggFunc::CountDistinct => Acc::Distinct(std::collections::HashSet::new()),
        }
    }

    fn update(&mut self, v: &Value) -> Result<()> {
        if v.is_null() {
            return Ok(()); // SQL semantics: aggregates skip nulls
        }
        match self {
            Acc::Count(n) => *n += 1,
            Acc::SumInt(s, seen) => {
                *s = s.wrapping_add(v.as_int().map_err(FlowError::Data)?);
                *seen = true;
            }
            Acc::SumFloat(s, seen) => {
                *s += v.as_float().map_err(FlowError::Data)?;
                *seen = true;
            }
            Acc::Min(m) => {
                if m.is_null() || v.total_cmp(m) == std::cmp::Ordering::Less {
                    *m = v.clone();
                }
            }
            Acc::Max(m) => {
                if m.is_null() || v.total_cmp(m) == std::cmp::Ordering::Greater {
                    *m = v.clone();
                }
            }
            Acc::Mean { sum, n } => {
                *sum += v.as_float().map_err(FlowError::Data)?;
                *n += 1;
            }
            Acc::Distinct(set) => {
                set.insert(v.hash_code());
            }
        }
        Ok(())
    }

    fn finish(&self) -> Value {
        match self {
            Acc::Count(n) => Value::Int(*n),
            Acc::SumInt(s, seen) => {
                if *seen {
                    Value::Int(*s)
                } else {
                    Value::Null
                }
            }
            Acc::SumFloat(s, seen) => {
                if *seen {
                    Value::Float(*s)
                } else {
                    Value::Null
                }
            }
            Acc::Min(m) | Acc::Max(m) => m.clone(),
            Acc::Mean { sum, n } => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / *n as f64)
                }
            }
            Acc::Distinct(set) => Value::Int(set.len() as i64),
        }
    }
}

/// Fully aggregate one table (used post-shuffle and by the raw path).
fn aggregate_table(
    t: &Table,
    group_by: &[String],
    aggs: &[AggExpr],
    out_schema: &Schema,
) -> Result<Table> {
    let key_idx: Vec<usize> = group_by
        .iter()
        .map(|g| t.schema().index_of(g).map_err(FlowError::Data))
        .collect::<Result<Vec<_>>>()?;
    let agg_idx: Vec<usize> = aggs
        .iter()
        .map(|a| t.schema().index_of(&a.column).map_err(FlowError::Data))
        .collect::<Result<Vec<_>>>()?;
    let agg_tys: Vec<DataType> = agg_idx
        .iter()
        .map(|&i| t.schema().fields()[i].data_type)
        .collect();

    let mut groups: HashMap<GroupKey, Vec<Acc>> = HashMap::new();
    for row in t.iter_rows() {
        let key = GroupKey(key_idx.iter().map(|&i| row[i].clone()).collect());
        let accs = groups.entry(key).or_insert_with(|| {
            aggs.iter()
                .zip(&agg_tys)
                .map(|(a, &ty)| Acc::new(a.func, ty))
                .collect()
        });
        for ((acc, &i), _) in accs.iter_mut().zip(&agg_idx).zip(aggs) {
            acc.update(&row[i])?;
        }
    }
    // Global aggregation over an empty input still yields one row.
    if groups.is_empty() && group_by.is_empty() {
        groups.insert(
            GroupKey(Vec::new()),
            aggs.iter()
                .zip(&agg_tys)
                .map(|(a, &ty)| Acc::new(a.func, ty))
                .collect(),
        );
    }
    // Deterministic output order: sort groups by key.
    let mut entries: Vec<(GroupKey, Vec<Acc>)> = groups.into_iter().collect();
    entries.sort_by(|(a, _), (b, _)| {
        a.0.iter()
            .zip(&b.0)
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| *o != std::cmp::Ordering::Equal)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut builder = TableBuilder::with_capacity(out_schema.clone(), entries.len());
    for (key, accs) in entries {
        let mut row = key.0;
        for acc in &accs {
            row.push(acc.finish());
        }
        builder.push_row(row)?;
    }
    builder.finish().map_err(FlowError::Data)
}

/// The intermediate schema for map-side partial aggregation.
fn partial_schema(
    group_fields: Vec<Field>,
    aggs: &[AggExpr],
    in_schema: &Schema,
) -> Result<Schema> {
    let mut fields = group_fields;
    for (i, a) in aggs.iter().enumerate() {
        let in_ty = in_schema
            .field(&a.column)
            .map_err(FlowError::Data)?
            .data_type;
        match a.func {
            AggFunc::Count => fields.push(Field::new(format!("__p{i}_count"), DataType::Int)),
            AggFunc::Sum => {
                let ty = if in_ty == DataType::Int {
                    DataType::Int
                } else {
                    DataType::Float
                };
                fields.push(Field::new(format!("__p{i}_sum"), ty));
            }
            AggFunc::Min => fields.push(Field::new(format!("__p{i}_min"), in_ty)),
            AggFunc::Max => fields.push(Field::new(format!("__p{i}_max"), in_ty)),
            AggFunc::Mean => {
                fields.push(Field::new(format!("__p{i}_sum"), DataType::Float));
                fields.push(Field::new(format!("__p{i}_n"), DataType::Int));
            }
            AggFunc::CountDistinct => {
                return Err(FlowError::Plan(
                    "partial aggregation does not support count_distinct".to_owned(),
                ))
            }
        }
    }
    Schema::new(fields).map_err(FlowError::Data)
}

/// Map-side combine state for one partition: bound column indices plus the
/// per-group accumulators. Shared by the stage-barrier path (one
/// whole-partition pass) and the morsel path (the same pass, fed one
/// in-order row-range chunk at a time) — identical fold order, so the two
/// produce value-identical partial rows.
struct PartialAggState {
    key_idx: Vec<usize>,
    agg_idx: Vec<usize>,
    funcs: Vec<AggFunc>,
    agg_tys: Vec<DataType>,
    groups: HashMap<GroupKey, Vec<Acc>>,
}

impl PartialAggState {
    fn new(t: &Table, group_by: &[String], aggs: &[AggExpr]) -> Result<Self> {
        let key_idx: Vec<usize> = group_by
            .iter()
            .map(|g| t.schema().index_of(g).map_err(FlowError::Data))
            .collect::<Result<Vec<_>>>()?;
        let agg_idx: Vec<usize> = aggs
            .iter()
            .map(|a| t.schema().index_of(&a.column).map_err(FlowError::Data))
            .collect::<Result<Vec<_>>>()?;
        let agg_tys: Vec<DataType> = agg_idx
            .iter()
            .map(|&i| t.schema().fields()[i].data_type)
            .collect();
        Ok(PartialAggState {
            key_idx,
            agg_idx,
            funcs: aggs.iter().map(|a| a.func).collect(),
            agg_tys,
            groups: HashMap::new(),
        })
    }

    /// Fold every row of `t` — the whole partition, or one sliced morsel of
    /// it — into the accumulators, in row order.
    fn update_all(&mut self, t: &Table) -> Result<()> {
        let PartialAggState {
            key_idx,
            agg_idx,
            funcs,
            agg_tys,
            groups,
        } = self;
        for row in t.iter_rows() {
            let key = GroupKey(key_idx.iter().map(|&i| row[i].clone()).collect());
            let accs = groups.entry(key).or_insert_with(|| {
                funcs
                    .iter()
                    .zip(agg_tys.iter())
                    .map(|(&f, &ty)| Acc::new(f, ty))
                    .collect()
            });
            for (acc, &i) in accs.iter_mut().zip(agg_idx.iter()) {
                acc.update(&row[i])?;
            }
        }
        Ok(())
    }

    fn into_table(self, p_schema: &Schema) -> Result<Table> {
        let mut builder = TableBuilder::with_capacity(p_schema.clone(), self.groups.len());
        for (key, accs) in self.groups {
            let mut row = key.0;
            for acc in &accs {
                match acc {
                    Acc::Mean { sum, n } => {
                        row.push(Value::Float(*sum));
                        row.push(Value::Int(*n));
                    }
                    other => row.push(other.finish()),
                }
            }
            builder.push_row(row)?;
        }
        builder.finish().map_err(FlowError::Data)
    }
}

/// Map-side combine: aggregate a partition into partial-state rows.
fn partial_aggregate(
    t: &Table,
    group_by: &[String],
    aggs: &[AggExpr],
    p_schema: &Schema,
) -> Result<Table> {
    let mut state = PartialAggState::new(t, group_by, aggs)?;
    state.update_all(t)?;
    state.into_table(p_schema)
}

/// [`PipelineBody`] of the partial-aggregation map side: one accumulator
/// state per partition, fed morsels in ascending row order (serial waves),
/// which preserves the float accumulation order of whole-partition combine.
struct PartialAggBody<'a> {
    group_by: &'a [String],
    aggs: &'a [AggExpr],
    p_schema: &'a Schema,
}

impl PipelineBody for PartialAggBody<'_> {
    type State = PartialAggState;

    fn init(&self, _partition: usize, part: &Table) -> Result<Self::State> {
        PartialAggState::new(part, self.group_by, self.aggs)
    }

    fn process(
        &self,
        state: &mut Self::State,
        part: &Table,
        _partition: usize,
        lo: usize,
        hi: usize,
    ) -> Result<()> {
        if lo == 0 && hi == part.num_rows() {
            state.update_all(part)
        } else {
            let chunk = part.slice(lo, hi).map_err(FlowError::Data)?;
            state.update_all(&chunk)
        }
    }

    fn finish(&self, state: Self::State, _part: &Table, _partition: usize) -> Result<Table> {
        state.into_table(self.p_schema)
    }
}

/// Reduce-side merge of partial states into final aggregate rows.
fn merge_partials(
    t: &Table,
    group_by: &[String],
    aggs: &[AggExpr],
    out_schema: &Schema,
) -> Result<Table> {
    let key_idx: Vec<usize> = (0..group_by.len()).collect();
    // State column positions follow the group keys in partial_schema order.
    let mut state_pos = group_by.len();
    let mut state_cols: Vec<Vec<usize>> = Vec::with_capacity(aggs.len());
    for a in aggs {
        match a.func {
            AggFunc::Mean => {
                state_cols.push(vec![state_pos, state_pos + 1]);
                state_pos += 2;
            }
            _ => {
                state_cols.push(vec![state_pos]);
                state_pos += 1;
            }
        }
    }
    #[derive(Clone)]
    enum MergeAcc {
        Count(i64),
        SumInt(i64, bool),
        SumFloat(f64, bool),
        Min(Value),
        Max(Value),
        Mean { sum: f64, n: i64 },
    }
    let mut groups: HashMap<GroupKey, Vec<MergeAcc>> = HashMap::new();
    for row in t.iter_rows() {
        let key = GroupKey(key_idx.iter().map(|&i| row[i].clone()).collect());
        let accs = groups.entry(key).or_insert_with(|| {
            aggs.iter()
                .zip(&state_cols)
                .map(|(a, cols)| match a.func {
                    AggFunc::Count => MergeAcc::Count(0),
                    AggFunc::Sum => {
                        // Type decided by the partial column's actual type.
                        match t.schema().fields()[cols[0]].data_type {
                            DataType::Int => MergeAcc::SumInt(0, false),
                            _ => MergeAcc::SumFloat(0.0, false),
                        }
                    }
                    AggFunc::Min => MergeAcc::Min(Value::Null),
                    AggFunc::Max => MergeAcc::Max(Value::Null),
                    AggFunc::Mean => MergeAcc::Mean { sum: 0.0, n: 0 },
                    AggFunc::CountDistinct => unreachable!("rejected by partial_schema"),
                })
                .collect()
        });
        for (acc, cols) in accs.iter_mut().zip(&state_cols) {
            match acc {
                MergeAcc::Count(n) => {
                    *n += row[cols[0]].as_int().map_err(FlowError::Data)?;
                }
                MergeAcc::SumInt(s, seen) => {
                    if !row[cols[0]].is_null() {
                        *s = s.wrapping_add(row[cols[0]].as_int().map_err(FlowError::Data)?);
                        *seen = true;
                    }
                }
                MergeAcc::SumFloat(s, seen) => {
                    if !row[cols[0]].is_null() {
                        *s += row[cols[0]].as_float().map_err(FlowError::Data)?;
                        *seen = true;
                    }
                }
                MergeAcc::Min(m) => {
                    let v = &row[cols[0]];
                    if !v.is_null() && (m.is_null() || v.total_cmp(m) == std::cmp::Ordering::Less) {
                        *m = v.clone();
                    }
                }
                MergeAcc::Max(m) => {
                    let v = &row[cols[0]];
                    if !v.is_null()
                        && (m.is_null() || v.total_cmp(m) == std::cmp::Ordering::Greater)
                    {
                        *m = v.clone();
                    }
                }
                MergeAcc::Mean { sum, n } => {
                    *sum += row[cols[0]].as_float().map_err(FlowError::Data)?;
                    *n += row[cols[1]].as_int().map_err(FlowError::Data)?;
                }
            }
        }
    }
    if groups.is_empty() && group_by.is_empty() {
        groups.insert(
            GroupKey(Vec::new()),
            aggs.iter()
                .map(|a| match a.func {
                    AggFunc::Count => MergeAcc::Count(0),
                    AggFunc::Sum => MergeAcc::SumFloat(0.0, false),
                    AggFunc::Min => MergeAcc::Min(Value::Null),
                    AggFunc::Max => MergeAcc::Max(Value::Null),
                    AggFunc::Mean => MergeAcc::Mean { sum: 0.0, n: 0 },
                    AggFunc::CountDistinct => unreachable!(),
                })
                .collect(),
        );
    }
    let mut entries: Vec<(GroupKey, Vec<MergeAcc>)> = groups.into_iter().collect();
    entries.sort_by(|(a, _), (b, _)| {
        a.0.iter()
            .zip(&b.0)
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| *o != std::cmp::Ordering::Equal)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut builder = TableBuilder::with_capacity(out_schema.clone(), entries.len());
    for (key, accs) in entries {
        let mut row = key.0;
        for acc in accs {
            row.push(match acc {
                MergeAcc::Count(n) => Value::Int(n),
                MergeAcc::SumInt(s, seen) => {
                    if seen {
                        Value::Int(s)
                    } else {
                        Value::Null
                    }
                }
                MergeAcc::SumFloat(s, seen) => {
                    if seen {
                        Value::Float(s)
                    } else {
                        Value::Null
                    }
                }
                MergeAcc::Min(m) | MergeAcc::Max(m) => m,
                MergeAcc::Mean { sum, n } => {
                    if n == 0 {
                        Value::Null
                    } else {
                        Value::Float(sum / n as f64)
                    }
                }
            });
        }
        builder.push_row(row)?;
    }
    builder.finish().map_err(FlowError::Data)
}

fn exec_aggregate(
    ctx: &ExecContext<'_>,
    input: PartitionedTable,
    group_by: &[String],
    aggs: &[AggExpr],
    out_schema: &Schema,
    desc: &str,
) -> Result<PartitionedTable> {
    let started = Instant::now();
    let targets = if group_by.is_empty() {
        1
    } else {
        ctx.config.partitions.max(1)
    };
    let use_partial =
        ctx.config.partial_aggregation && !aggs.iter().any(|a| a.func == AggFunc::CountDistinct);

    let (shuffled, bytes) = if use_partial {
        let group_fields: Vec<Field> = group_by
            .iter()
            .map(|g| input.schema().field(g).cloned().map_err(FlowError::Data))
            .collect::<Result<Vec<_>>>()?;
        let p_schema = partial_schema(group_fields, aggs, input.schema())?;
        let map_stage = ctx.current_stage();
        let in_schema_owned = input.schema().clone();
        let parts = input.into_parts();
        let partials = if ctx.use_morsel_pipeline() {
            // The map side is non-breaking per-partition work: run it as a
            // serial morsel wave so a skewed partition's combine can be
            // helped by the pool without perturbing accumulation order.
            let body = PartialAggBody {
                group_by,
                aggs,
                p_schema: &p_schema,
            };
            ctx.run_pipeline(map_stage, &parts, |ps| {
                morsel::run_wave(
                    &ctx.config.scheduler,
                    ctx.metrics,
                    ctx.control(),
                    map_stage,
                    ps,
                    WaveOrder::Serial,
                    ctx.config.morsel_rows,
                    &body,
                )
            })?
        } else {
            let tasks: Vec<_> = parts
                .iter()
                .map(|t| {
                    let p_schema = &p_schema;
                    let in_schema = &in_schema_owned;
                    move || {
                        let _ = in_schema;
                        partial_aggregate(t, group_by, aggs, p_schema)
                    }
                })
                .collect();
            ctx.run_stage(map_stage, tasks)?
        };
        let out = ctx.shuffle_partials(partials, &p_schema, group_by, targets)?;
        (out.partitions, out.bytes_moved)
    } else {
        let schema = input.schema().clone();
        let out = ctx.shuffle(input.into_parts(), &schema, group_by, targets)?;
        (out.partitions, out.bytes_moved)
    };
    let reduce_stage = ctx.next_stage();
    let tasks: Vec<_> = shuffled
        .iter()
        .map(|t| {
            move || {
                if use_partial {
                    merge_partials(t, group_by, aggs, out_schema)
                } else {
                    aggregate_table(t, group_by, aggs, out_schema)
                }
            }
        })
        .collect();
    let mut outputs = ctx.run_stage(reduce_stage, tasks)?;
    // Empty-group global aggregate: shuffle produced `targets` partitions,
    // each merge of an empty partition yields the one-row identity — keep
    // only partition 0's row in that case.
    if group_by.is_empty() && outputs.len() > 1 {
        outputs.truncate(1);
    }
    let rows: u64 = outputs.iter().map(|t| t.num_rows() as u64).sum();
    ctx.metrics
        .record_node(desc, reduce_stage, rows, started.elapsed(), bytes);
    PartitionedTable::new(
        outputs,
        Partitioning::Hash {
            columns: group_by.to_vec(),
            partitions: targets,
        },
    )
    .map_err(FlowError::Data)
}

// ------------------------------------------------------------------- join

#[allow(clippy::too_many_arguments)] // mirrors the Join plan node's fields
fn exec_join(
    ctx: &ExecContext<'_>,
    left: PartitionedTable,
    right: PartitionedTable,
    left_keys: &[String],
    right_keys: &[String],
    join_type: JoinType,
    out_schema: &Schema,
    desc: &str,
) -> Result<PartitionedTable> {
    let started = Instant::now();
    let targets = ctx.config.partitions.max(1);
    let l_schema = left.schema().clone();
    let r_schema = right.schema().clone();
    let l_out = ctx.shuffle(left.into_parts(), &l_schema, left_keys, targets)?;
    let r_out = ctx.shuffle(right.into_parts(), &r_schema, right_keys, targets)?;
    let bytes = l_out.bytes_moved + r_out.bytes_moved;
    let stage = ctx.next_stage();

    let l_key_idx: Vec<usize> = left_keys
        .iter()
        .map(|k| l_schema.index_of(k).map_err(FlowError::Data))
        .collect::<Result<Vec<_>>>()?;
    let r_key_idx: Vec<usize> = right_keys
        .iter()
        .map(|k| r_schema.index_of(k).map_err(FlowError::Data))
        .collect::<Result<Vec<_>>>()?;

    // Keys must route identically on both sides: Int vs Float keys that
    // compare equal hash equally (Value::hash_code guarantees this).
    let pairs: Vec<(Table, Table)> = l_out.partitions.into_iter().zip(r_out.partitions).collect();
    let r_width = r_schema.len();
    let tasks: Vec<_> = pairs
        .iter()
        .map(|(l, r)| {
            let l_key_idx = &l_key_idx;
            let r_key_idx = &r_key_idx;
            move || {
                // Build on the right side.
                let mut built: HashMap<GroupKey, Vec<Row>> = HashMap::new();
                for row in r.iter_rows() {
                    // Null keys never match (SQL equi-join semantics).
                    if r_key_idx.iter().any(|&i| row[i].is_null()) {
                        continue;
                    }
                    let key = GroupKey(r_key_idx.iter().map(|&i| row[i].clone()).collect());
                    built.entry(key).or_default().push(row);
                }
                let mut builder = TableBuilder::new(out_schema.clone());
                for l_row in l.iter_rows() {
                    let null_key = l_key_idx.iter().any(|&i| l_row[i].is_null());
                    let matches = if null_key {
                        None
                    } else {
                        let key = GroupKey(l_key_idx.iter().map(|&i| l_row[i].clone()).collect());
                        built.get(&key)
                    };
                    match matches {
                        Some(rights) => {
                            for r_row in rights {
                                let mut row = l_row.clone();
                                row.extend(r_row.iter().cloned());
                                builder.push_row(row)?;
                            }
                        }
                        None => {
                            if join_type == JoinType::Left {
                                let mut row = l_row.clone();
                                row.extend(std::iter::repeat(Value::Null).take(r_width));
                                builder.push_row(row)?;
                            }
                        }
                    }
                }
                builder.finish().map_err(FlowError::Data)
            }
        })
        .collect();
    let outputs = ctx.run_stage(stage, tasks)?;
    let rows: u64 = outputs.iter().map(|t| t.num_rows() as u64).sum();
    ctx.metrics
        .record_node(desc, stage, rows, started.elapsed(), bytes);
    PartitionedTable::new(outputs, Partitioning::Arbitrary).map_err(FlowError::Data)
}

// ------------------------------------------------------- sort / limit / distinct

fn exec_sort(
    ctx: &ExecContext<'_>,
    input: PartitionedTable,
    keys: &[String],
    descending: bool,
    desc: &str,
) -> Result<PartitionedTable> {
    let started = Instant::now();
    // Gather everything into one partition (keyless shuffle), then sort.
    let schema = input.schema().clone();
    let gathered = ctx.shuffle(input.into_parts(), &schema, &[], 1)?;
    let stage = ctx.next_stage();
    let key_refs: Vec<&str> = keys.iter().map(String::as_str).collect();
    let table = gathered
        .partitions
        .into_iter()
        .next()
        .expect("one partition requested");
    let tasks = vec![move || {
        table
            .sort_by(&key_refs, descending)
            .map_err(FlowError::Data)
    }];
    let outputs = ctx.run_stage(stage, tasks)?;
    let rows: u64 = outputs.iter().map(|t| t.num_rows() as u64).sum();
    ctx.metrics
        .record_node(desc, stage, rows, started.elapsed(), gathered.bytes_moved);
    PartitionedTable::new(outputs, Partitioning::Range).map_err(FlowError::Data)
}

/// Fused Limit(Sort): per-partition sort + truncate in parallel, then a
/// single merge of at most `n * partitions` rows.
fn exec_top_k(
    ctx: &ExecContext<'_>,
    input: PartitionedTable,
    keys: &[String],
    descending: bool,
    n: usize,
    desc: &str,
) -> Result<PartitionedTable> {
    let started = Instant::now();
    let stage = ctx.current_stage();
    let key_refs: Vec<&str> = keys.iter().map(String::as_str).collect();
    let parts = input.into_parts();
    let key_refs_ref = &key_refs;
    let tasks: Vec<_> = parts
        .iter()
        .map(|t| {
            move || {
                let sorted = t.sort_by(key_refs_ref, descending)?;
                let take = sorted.num_rows().min(n);
                sorted.slice(0, take).map_err(FlowError::Data)
            }
        })
        .collect();
    let locals = ctx.run_stage(stage, tasks)?;
    let merged = Table::concat(&locals)?.sort_by(&key_refs, descending)?;
    let take = merged.num_rows().min(n);
    let out = merged.slice(0, take)?;
    ctx.metrics
        .record_node(desc, stage, out.num_rows() as u64, started.elapsed(), 0);
    Ok(PartitionedTable::single(out))
}

fn exec_limit(
    ctx: &ExecContext<'_>,
    input: PartitionedTable,
    n: usize,
    desc: &str,
) -> Result<PartitionedTable> {
    let started = Instant::now();
    let mut remaining = n;
    let mut kept = Vec::new();
    for part in input.parts() {
        if remaining == 0 {
            break;
        }
        let take = part.num_rows().min(remaining);
        kept.push(part.slice(0, take)?);
        remaining -= take;
    }
    if kept.is_empty() {
        kept.push(Table::empty(input.schema().clone()));
    }
    let out = Table::concat(&kept)?;
    ctx.metrics.record_node(
        desc,
        ctx.current_stage(),
        out.num_rows() as u64,
        started.elapsed(),
        0,
    );
    Ok(PartitionedTable::single(out))
}

fn exec_distinct(
    ctx: &ExecContext<'_>,
    input: PartitionedTable,
    desc: &str,
) -> Result<PartitionedTable> {
    let started = Instant::now();
    let schema = input.schema().clone();
    let all_cols: Vec<String> = schema.names().iter().map(|s| s.to_string()).collect();
    let targets = ctx.config.partitions.max(1);
    let out = ctx.shuffle(input.into_parts(), &schema, &all_cols, targets)?;
    let stage = ctx.next_stage();
    let tasks: Vec<_> = out
        .partitions
        .iter()
        .map(|t| {
            move || {
                let mut seen: std::collections::HashSet<GroupKey> =
                    std::collections::HashSet::new();
                let mut keep = Vec::with_capacity(t.num_rows());
                for row in t.iter_rows() {
                    keep.push(seen.insert(GroupKey(row)));
                }
                t.filter(&keep).map_err(FlowError::Data)
            }
        })
        .collect();
    let outputs = ctx.run_stage(stage, tasks)?;
    let rows: u64 = outputs.iter().map(|t| t.num_rows() as u64).sum();
    ctx.metrics
        .record_node(desc, stage, rows, started.elapsed(), out.bytes_moved);
    PartitionedTable::new(outputs, Partitioning::Arbitrary).map_err(FlowError::Data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::logical::Dataflow;
    use toreador_data::schema::Field;

    fn ctx_fixture() -> (HashMap<String, PartitionedTable>, MetricsCollector) {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Str),
            Field::new("v", DataType::Int),
        ])
        .unwrap();
        let table = Table::from_rows(
            schema,
            (0..100).map(|i| vec![Value::Str(format!("g{}", i % 5)), Value::Int(i)]),
        )
        .unwrap();
        let mut datasets = HashMap::new();
        datasets.insert("t".to_owned(), PartitionedTable::single(table));
        (datasets, MetricsCollector::new())
    }

    fn run(
        datasets: &HashMap<String, PartitionedTable>,
        metrics: &MetricsCollector,
        flow: &Dataflow,
    ) -> Table {
        let ctx = ExecContext::new(datasets, ExecConfig::default(), metrics);
        execute(&ctx, flow.plan()).unwrap().collect().unwrap()
    }

    fn schema_t() -> Schema {
        Schema::new(vec![
            Field::new("k", DataType::Str),
            Field::new("v", DataType::Int),
        ])
        .unwrap()
    }

    #[test]
    fn scan_resplits_to_configured_partitions() {
        let (datasets, metrics) = ctx_fixture();
        let ctx = ExecContext::new(&datasets, ExecConfig::default(), &metrics);
        let out = execute(&ctx, Dataflow::scan("t", schema_t()).plan()).unwrap();
        assert_eq!(out.num_partitions(), 4);
        assert_eq!(out.total_rows(), 100);
    }

    #[test]
    fn unknown_dataset_errors() {
        let (datasets, metrics) = ctx_fixture();
        let ctx = ExecContext::new(&datasets, ExecConfig::default(), &metrics);
        let err = execute(&ctx, Dataflow::scan("nope", schema_t()).plan()).unwrap_err();
        assert!(matches!(err, FlowError::UnknownDataset(_)));
    }

    #[test]
    fn filter_and_project_run_per_partition() {
        let (datasets, metrics) = ctx_fixture();
        let flow = Dataflow::scan("t", schema_t())
            .filter(col("v").gt_eq(lit(50i64)))
            .unwrap()
            .project(vec![("double", col("v").mul(lit(2i64)))])
            .unwrap();
        let out = run(&datasets, &metrics, &flow);
        assert_eq!(out.num_rows(), 50);
        assert_eq!(out.column("double").unwrap().min(), Value::Int(100));
    }

    #[test]
    fn aggregate_partial_and_raw_agree() {
        let (datasets, metrics) = ctx_fixture();
        let flow = Dataflow::scan("t", schema_t())
            .aggregate(
                &["k"],
                vec![
                    AggExpr::new(AggFunc::Count, "v", "n"),
                    AggExpr::new(AggFunc::Sum, "v", "total"),
                    AggExpr::new(AggFunc::Mean, "v", "avg"),
                    AggExpr::new(AggFunc::Min, "v", "lo"),
                    AggExpr::new(AggFunc::Max, "v", "hi"),
                ],
            )
            .unwrap();
        let cfg_raw = ExecConfig {
            partial_aggregation: false,
            ..ExecConfig::default()
        };
        let ctx_p = ExecContext::new(&datasets, ExecConfig::default(), &metrics);
        let ctx_r = ExecContext::new(&datasets, cfg_raw, &metrics);
        let a = execute(&ctx_p, flow.plan())
            .unwrap()
            .collect()
            .unwrap()
            .sort_by(&["k"], false)
            .unwrap();
        let b = execute(&ctx_r, flow.plan())
            .unwrap()
            .collect()
            .unwrap()
            .sort_by(&["k"], false)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.num_rows(), 5);
        // Spot-check group g0: members 0,5,...,95 -> n=20, sum=950, avg=47.5.
        assert_eq!(a.value(0, "n").unwrap(), Value::Int(20));
        assert_eq!(a.value(0, "total").unwrap(), Value::Int(950));
        assert_eq!(a.value(0, "avg").unwrap(), Value::Float(47.5));
        assert_eq!(a.value(0, "lo").unwrap(), Value::Int(0));
        assert_eq!(a.value(0, "hi").unwrap(), Value::Int(95));
    }

    #[test]
    fn global_aggregate_produces_single_row() {
        let (datasets, metrics) = ctx_fixture();
        let flow = Dataflow::scan("t", schema_t())
            .aggregate(&[], vec![AggExpr::new(AggFunc::Count, "v", "n")])
            .unwrap();
        let out = run(&datasets, &metrics, &flow);
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, "n").unwrap(), Value::Int(100));
    }

    #[test]
    fn count_distinct_uses_raw_path() {
        let (datasets, metrics) = ctx_fixture();
        let flow = Dataflow::scan("t", schema_t())
            .aggregate(
                &[],
                vec![AggExpr::new(AggFunc::CountDistinct, "k", "groups")],
            )
            .unwrap();
        let out = run(&datasets, &metrics, &flow);
        assert_eq!(out.value(0, "groups").unwrap(), Value::Int(5));
    }

    #[test]
    fn inner_and_left_join() {
        let schema_r = Schema::new(vec![
            Field::new("k", DataType::Str),
            Field::new("label", DataType::Str),
        ])
        .unwrap();
        let right = Table::from_rows(
            schema_r.clone(),
            vec![
                vec![Value::Str("g0".into()), Value::Str("zero".into())],
                vec![Value::Str("g1".into()), Value::Str("one".into())],
            ],
        )
        .unwrap();
        let (mut datasets, metrics) = ctx_fixture();
        datasets.insert("r".to_owned(), PartitionedTable::single(right));
        let left = Dataflow::scan("t", schema_t());
        let right = Dataflow::scan("r", schema_r);
        let inner = left
            .clone()
            .join(right.clone(), &["k"], &["k"], JoinType::Inner)
            .unwrap();
        let out = run(&datasets, &metrics, &inner);
        assert_eq!(out.num_rows(), 40); // g0 and g1: 20 rows each
        let l = left.join(right, &["k"], &["k"], JoinType::Left).unwrap();
        let out = run(&datasets, &metrics, &l);
        assert_eq!(out.num_rows(), 100);
        let labels = out.column("label").unwrap();
        assert_eq!(labels.null_count(), 60);
    }

    #[test]
    fn sort_limit_pipeline() {
        let (datasets, metrics) = ctx_fixture();
        let flow = Dataflow::scan("t", schema_t())
            .sort(&["v"], true)
            .unwrap()
            .limit(3);
        let out = run(&datasets, &metrics, &flow);
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.value(0, "v").unwrap(), Value::Int(99));
        assert_eq!(out.value(2, "v").unwrap(), Value::Int(97));
    }

    #[test]
    fn top_k_fusion_matches_unfused_semantics() {
        let (datasets, metrics) = ctx_fixture();
        let fused = Dataflow::scan("t", schema_t())
            .sort(&["v"], true)
            .unwrap()
            .limit(7);
        let out = run(&datasets, &metrics, &fused);
        assert_eq!(out.num_rows(), 7);
        let vals: Vec<i64> = out
            .column("v")
            .unwrap()
            .iter_values()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(vals, vec![99, 98, 97, 96, 95, 94, 93]);
        // Fusion avoids the gather shuffle entirely.
        let metrics2 = MetricsCollector::new();
        let ctx = ExecContext::new(&datasets, ExecConfig::default(), &metrics2);
        execute(&ctx, fused.plan()).unwrap();
        let m = metrics2.finish(std::time::Duration::from_millis(1), 7, 1);
        assert_eq!(m.total_shuffle_bytes(), 0, "top-k must not shuffle");
    }

    #[test]
    fn top_k_larger_than_input_returns_everything() {
        let (datasets, metrics) = ctx_fixture();
        let fused = Dataflow::scan("t", schema_t())
            .sort(&["v"], false)
            .unwrap()
            .limit(1000);
        let out = run(&datasets, &metrics, &fused);
        assert_eq!(out.num_rows(), 100);
        assert_eq!(out.value(0, "v").unwrap(), Value::Int(0));
    }

    #[test]
    fn distinct_dedups_across_partitions() {
        let (datasets, metrics) = ctx_fixture();
        let flow = Dataflow::scan("t", schema_t())
            .project(vec![("k", col("k"))])
            .unwrap()
            .distinct();
        let out = run(&datasets, &metrics, &flow);
        assert_eq!(out.num_rows(), 5);
    }

    #[test]
    fn union_concatenates() {
        let (datasets, metrics) = ctx_fixture();
        let a = Dataflow::scan("t", schema_t());
        let b = Dataflow::scan("t", schema_t());
        let u = a.union(vec![b]).unwrap();
        let out = run(&datasets, &metrics, &u);
        assert_eq!(out.num_rows(), 200);
    }

    #[test]
    fn sample_is_deterministic_and_proportional() {
        let (datasets, metrics) = ctx_fixture();
        let flow = Dataflow::scan("t", schema_t()).sample(0.5, 7).unwrap();
        let a = run(&datasets, &metrics, &flow);
        let b = run(&datasets, &metrics, &flow);
        assert_eq!(a, b);
        assert!(
            a.num_rows() > 20 && a.num_rows() < 80,
            "got {}",
            a.num_rows()
        );
    }

    #[test]
    fn metrics_report_stages_and_shuffles() {
        let (datasets, metrics) = ctx_fixture();
        let flow = Dataflow::scan("t", schema_t())
            .aggregate(&["k"], vec![AggExpr::new(AggFunc::Count, "v", "n")])
            .unwrap();
        let ctx = ExecContext::new(&datasets, ExecConfig::default(), &metrics);
        execute(&ctx, flow.plan()).unwrap();
        let m = metrics.finish(std::time::Duration::from_millis(1), 5, 4);
        assert!(m.total_shuffle_bytes() > 0);
        assert!(m.stage_count() >= 2, "aggregate crosses a stage boundary");
        assert!(m.tasks_run > 0);
    }

    #[test]
    fn aggregate_skips_null_inputs() {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Str),
            Field::new("v", DataType::Int),
        ])
        .unwrap();
        let t = Table::from_rows(
            schema.clone(),
            vec![
                vec![Value::Str("a".into()), Value::Int(1)],
                vec![Value::Str("a".into()), Value::Null],
                vec![Value::Str("a".into()), Value::Int(3)],
            ],
        )
        .unwrap();
        let mut datasets = HashMap::new();
        datasets.insert("n".to_owned(), PartitionedTable::single(t));
        let metrics = MetricsCollector::new();
        let flow = Dataflow::scan("n", schema)
            .aggregate(
                &["k"],
                vec![
                    AggExpr::new(AggFunc::Count, "v", "n"),
                    AggExpr::new(AggFunc::Mean, "v", "avg"),
                ],
            )
            .unwrap();
        let out = run(&datasets, &metrics, &flow);
        assert_eq!(out.value(0, "n").unwrap(), Value::Int(2));
        assert_eq!(out.value(0, "avg").unwrap(), Value::Float(2.0));
    }

    #[test]
    fn join_null_keys_do_not_match() {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Str),
            Field::new("v", DataType::Int),
        ])
        .unwrap();
        let t = Table::from_rows(
            schema.clone(),
            vec![
                vec![Value::Null, Value::Int(1)],
                vec![Value::Str("a".into()), Value::Int(2)],
            ],
        )
        .unwrap();
        let mut datasets = HashMap::new();
        datasets.insert("n".to_owned(), PartitionedTable::single(t));
        let metrics = MetricsCollector::new();
        let l = Dataflow::scan("n", schema.clone());
        let r = Dataflow::scan("n", schema);
        let inner = l.join(r, &["k"], &["k"], JoinType::Inner).unwrap();
        let out = run(&datasets, &metrics, &inner);
        assert_eq!(out.num_rows(), 1, "null keys must not join");
    }
}
