//! Morsel-driven pipelined execution with work-stealing.
//!
//! The stage-barrier scheduler ([`crate::scheduler`]) hands each partition
//! to one worker as a single task, so a skewed partition pins the whole
//! wave on one core while the rest of the pool idles. This module is the
//! alternative execution path for chains of non-breaking operators: each
//! partition is cut into small row-range **morsels**, every worker owns a
//! deque of pre-assigned morsels (home worker = `partition % workers`),
//! and a worker that drains its own deque *steals* from the back of a
//! sibling's — stragglers on skewed partitions get helped instead of
//! stalling the wave. Materialisation still happens only at true pipeline
//! breakers; the columnar shuffle and the checkpoint codec are untouched.
//!
//! Two interleavings are supported. [`WaveOrder::Independent`] waves (pure
//! filter/project chains) let any worker run any morsel concurrently; the
//! per-partition outputs are concatenated in morsel order, which is
//! bit-identical to whole-partition execution because the operators are
//! elementwise. [`WaveOrder::Serial`] waves (sampling RNG draws,
//! partial-aggregation accumulators) keep each partition's morsels in
//! ascending row order on a single worker, and stealing moves whole
//! partitions between workers instead.
//!
//! Under a memory budget ([`ExecConfig::memory_budget_bytes`]
//! (crate::physical::ExecConfig)), partial-aggregation map output produced
//! by a serial wave may be spilled to paged files — but never from inside
//! this module: spilling happens on the orchestration thread *after* the
//! wave completes (see [`crate::physical`]), because a morsel task can be
//! retried or run speculatively, and a spill inside the task would leak
//! one page file per duplicate attempt.
//!
//! Resilience mirrors the barrier path attempt-for-attempt: retries run
//! inline on the claiming worker under the same
//! [`RetryPolicy`](crate::resilience::RetryPolicy), chaos faults draw from
//! the same deterministic [`ChaosPlan`] coordinates, panics are isolated
//! with `catch_unwind`, and exhausted budgets produce byte-identical final
//! errors — the two paths are differential twins, which is exactly what
//! `tests/morsel_pipeline.rs` exercises. Task deadlines and speculation
//! need a coordinator watching wall clocks from outside the worker, so the
//! physical layer falls back to the barrier scheduler when either is
//! configured.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use toreador_data::table::Table;

use crate::error::{FlowError, Result};
use crate::fault::{ChaosPlan, FaultKind};
use crate::metrics::MetricsCollector;
use crate::resilience::{classify, ErrorClass, RetryPolicy, RunControl};
use crate::scheduler::{panic_message, SchedulerConfig};

/// Sleep granularity for interruptible chaos delays and retry backoffs,
/// mirroring the barrier scheduler's tick.
const TICK_US: u64 = 200;

/// How a wave's morsels may be interleaved across workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WaveOrder {
    /// Elementwise chains: any worker may run any morsel of any partition
    /// concurrently; outputs concatenate in morsel order.
    Independent,
    /// Order-carrying state (RNG draws, accumulators): each partition's
    /// morsels run in ascending row order on one worker.
    Serial,
}

/// A per-partition pipeline body pushed through row-range morsels.
pub(crate) trait PipelineBody: Sync {
    /// Per-partition state threaded through that partition's morsels
    /// (sampling RNGs, aggregation accumulators, output chunks).
    type State: Send;

    /// Build the partition's state before its first morsel runs.
    fn init(&self, partition: usize, part: &Table) -> Result<Self::State>;

    /// Push rows `lo..hi` of `part` through the pipeline.
    fn process(
        &self,
        state: &mut Self::State,
        part: &Table,
        partition: usize,
        lo: usize,
        hi: usize,
    ) -> Result<()>;

    /// Materialise the partition's output after its last morsel.
    fn finish(&self, state: Self::State, part: &Table, partition: usize) -> Result<Table>;
}

/// One schedulable work unit: a single morsel for `Independent` waves, a
/// whole partition (chunked internally, in order) for `Serial` waves.
struct Unit {
    partition: usize,
    /// First morsel index covered (the chunk index; 0 for serial units).
    morsel: usize,
    lo: usize,
    hi: usize,
}

/// Why a unit attempt did not produce a result. Mirrors the barrier
/// scheduler's `AttemptOutcome` so final errors come out identical.
enum UnitOutcome {
    Success(Table),
    Crashed,
    Panicked(String),
    Failed(FlowError),
    Aborted,
}

/// Everything the workers of one pipeline wave share.
struct WaveShared<'a, B: PipelineBody> {
    stage: usize,
    order: WaveOrder,
    morsel_rows: usize,
    parts: &'a [Table],
    units: &'a [Unit],
    body: &'a B,
    metrics: &'a MetricsCollector,
    control: &'a RunControl,
    policy: &'a RetryPolicy,
    chaos: &'a ChaosPlan,
    /// Per-worker steal deques of unit indices; a unit's home deque is
    /// `partition % workers`, so every recorded steal is a morsel the pool
    /// genuinely moved off a straggler.
    deques: Vec<Mutex<VecDeque<usize>>>,
    /// One output slot per unit, written by whichever worker ran it.
    slots: Vec<Mutex<Option<Table>>>,
    halt: AtomicBool,
    /// First error wins, exactly like the barrier coordinator.
    error: Mutex<Option<FlowError>>,
    stage_retries: AtomicU32,
    dispatched: AtomicU64,
    stolen: AtomicU64,
}

impl<B: PipelineBody> WaveShared<'_, B> {
    /// The task coordinate used for chaos draws, retry-backoff seeding and
    /// journal spans: the partition for serial units (identical to the
    /// barrier path's per-partition tasks), the unit index for independent
    /// morsels.
    fn task_coord(&self, unit_idx: usize) -> usize {
        match self.order {
            WaveOrder::Serial => self.units[unit_idx].partition,
            WaveOrder::Independent => unit_idx,
        }
    }

    fn interrupted(&self) -> bool {
        self.halt.load(Ordering::SeqCst) || self.control.is_cancelled()
    }

    fn cancel_reason(&self) -> String {
        self.control
            .reason()
            .unwrap_or_else(|| "run cancelled".to_owned())
    }

    /// The wave is doomed: record it, trip run-wide cancellation, raise the
    /// halt flag. Mirrors the barrier coordinator's `fail_stage`.
    fn fail(&self, err: FlowError) {
        let mut slot = self.error.lock();
        if slot.is_none() {
            self.metrics.run_cancelled(self.stage, &err.to_string());
            self.control.cancel(err.to_string());
            *slot = Some(err);
        }
        self.halt.store(true, Ordering::SeqCst);
    }

    /// Interruptible chunked sleep; false when the wave halted or the run
    /// was cancelled mid-delay.
    fn sleep(&self, micros: u64) -> bool {
        let mut remaining = micros;
        while remaining > 0 {
            if self.interrupted() {
                return false;
            }
            let chunk = remaining.min(TICK_US);
            std::thread::sleep(Duration::from_micros(chunk));
            remaining -= chunk;
        }
        !self.interrupted()
    }

    /// Reserve one retry against the stage and run budgets, mirroring the
    /// barrier coordinator's resolve_failure bookkeeping.
    fn reserve_retry(&self) -> bool {
        if let Some(budget) = self.policy.stage_retry_budget {
            if self
                .stage_retries
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |used| {
                    (used < budget).then_some(used + 1)
                })
                .is_err()
            {
                return false;
            }
        } else {
            self.stage_retries.fetch_add(1, Ordering::SeqCst);
        }
        if self.control.try_reserve_retry(self.policy.run_retry_budget) {
            true
        } else {
            self.stage_retries.fetch_sub(1, Ordering::SeqCst);
            false
        }
    }
}

/// Map an exhausted failure to the same error the barrier scheduler's
/// `final_error` produces, value-for-value.
fn final_error(stage: usize, task: usize, attempts: u32, failure: UnitOutcome) -> FlowError {
    match failure {
        UnitOutcome::Crashed => FlowError::TaskFailed {
            stage,
            partition: task,
            attempts,
            message: "injected fault".to_owned(),
        },
        UnitOutcome::Panicked(message) => FlowError::TaskPanicked {
            stage,
            partition: task,
            attempts,
            message,
        },
        UnitOutcome::Failed(e) => e,
        UnitOutcome::Success(_) | UnitOutcome::Aborted => {
            FlowError::Cancelled("task attempt aborted".to_owned())
        }
    }
}

/// Claim the next unit for worker `w`: own deque front first, then scan
/// siblings and steal from the *back* of the first non-empty one. Returns
/// the unit index and the deque it came from (its home worker).
fn claim(deques: &[Mutex<VecDeque<usize>>], w: usize) -> Option<(usize, usize)> {
    if let Some(u) = deques[w].lock().pop_front() {
        return Some((u, w));
    }
    let n = deques.len();
    for off in 1..n {
        let victim = (w + off) % n;
        if let Some(u) = deques[victim].lock().pop_back() {
            return Some((u, victim));
        }
    }
    None
}

/// Worker loop: claim units (own first, then steal) until every deque is
/// empty or the wave halts. Units are never re-queued — retries run inline
/// on the claiming worker — so an empty scan means this worker is done.
fn run_worker<B: PipelineBody>(shared: &WaveShared<'_, B>, w: usize, busy: &AtomicU64) {
    loop {
        if shared.halt.load(Ordering::SeqCst) {
            return;
        }
        if shared.control.is_cancelled() {
            // External cancel — mirror the barrier coordinator's on_tick:
            // re-raise with the canceller's reason (first reason wins).
            shared.fail(FlowError::Cancelled(shared.cancel_reason()));
            return;
        }
        let Some((unit_idx, home)) = claim(&shared.deques, w) else {
            return;
        };
        let unit = &shared.units[unit_idx];
        if home != w {
            shared.stolen.fetch_add(1, Ordering::Relaxed);
            shared
                .metrics
                .morsel_stolen(shared.stage, unit.partition, unit.morsel, home, w);
        }
        let t0 = Instant::now();
        run_unit(shared, unit_idx, w);
        busy.fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
    }
}

/// Run one unit to completion: attempt, and on transient failure retry
/// inline under the same policy/budget rules as the barrier coordinator.
fn run_unit<B: PipelineBody>(shared: &WaveShared<'_, B>, unit_idx: usize, w: usize) {
    let task = shared.task_coord(unit_idx);
    let mut attempt: u32 = 0;
    loop {
        shared.metrics.task_started(shared.stage, task, attempt);
        let outcome = execute_unit_attempt(shared, unit_idx, task, attempt, w);
        let ok = matches!(outcome, UnitOutcome::Success(_));
        shared
            .metrics
            .task_finished(shared.stage, task, attempt, ok);
        let failure = match outcome {
            UnitOutcome::Success(table) => {
                *shared.slots[unit_idx].lock() = Some(table);
                return;
            }
            UnitOutcome::Aborted => return,
            other => other,
        };
        let transient = match &failure {
            UnitOutcome::Failed(e) => classify(e) == ErrorClass::Transient,
            _ => true,
        };
        let attempts_used = attempt + 1;
        if transient && attempts_used < shared.policy.max_attempts && shared.reserve_retry() {
            let next = attempts_used;
            let delay = shared.policy.delay_us(shared.stage, task, next);
            if delay > 0 {
                shared
                    .metrics
                    .backoff_scheduled(shared.stage, task, next, delay);
                if !shared.sleep(delay) {
                    return;
                }
            }
            shared.metrics.task_retried(shared.stage, task, next);
            attempt = next;
            continue;
        }
        shared.fail(final_error(shared.stage, task, attempts_used, failure));
        return;
    }
}

/// One attempt: apply chaos, then the body under panic isolation. Mirrors
/// the barrier scheduler's `execute_attempt` step for step.
fn execute_unit_attempt<B: PipelineBody>(
    shared: &WaveShared<'_, B>,
    unit_idx: usize,
    task: usize,
    attempt: u32,
    w: usize,
) -> UnitOutcome {
    let stage = shared.stage;
    let mut inject_panic = false;
    match shared.chaos.fault_for(stage, task, attempt) {
        Some(FaultKind::Crash) => {
            shared.metrics.fault_injected(stage, task, attempt);
            return UnitOutcome::Crashed;
        }
        Some(FaultKind::Panic) => {
            shared.metrics.fault_injected(stage, task, attempt);
            inject_panic = true;
        }
        Some(FaultKind::Delay { micros }) => {
            shared.metrics.fault_injected(stage, task, attempt);
            if !shared.sleep(micros) {
                return UnitOutcome::Aborted;
            }
        }
        None => {}
    }
    if shared.interrupted() {
        return UnitOutcome::Aborted;
    }
    match catch_unwind(AssertUnwindSafe(|| {
        if inject_panic {
            panic!("injected panic (chaos plan)");
        }
        run_unit_body(shared, unit_idx, w)
    })) {
        Ok(Ok(table)) => UnitOutcome::Success(table),
        Ok(Err(e)) => UnitOutcome::Failed(e),
        Err(payload) => {
            let message = panic_message(payload);
            shared.metrics.task_panicked(stage, task, attempt, &message);
            UnitOutcome::Panicked(message)
        }
    }
}

/// Push the unit's rows through the pipeline body: one morsel for
/// independent units, an in-order chunk loop for serial (whole-partition)
/// units. Every dispatched morsel gets a completion event — even a failing
/// one — so journal pairing is an invariant, not a happy-path property.
fn run_unit_body<B: PipelineBody>(
    shared: &WaveShared<'_, B>,
    unit_idx: usize,
    w: usize,
) -> Result<Table> {
    let unit = &shared.units[unit_idx];
    let part = &shared.parts[unit.partition];
    let mut state = shared.body.init(unit.partition, part)?;
    match shared.order {
        WaveOrder::Independent => {
            shared.metrics.morsel_dispatched(
                shared.stage,
                unit.partition,
                unit.morsel,
                (unit.hi - unit.lo) as u64,
                w,
            );
            shared.dispatched.fetch_add(1, Ordering::Relaxed);
            let r = shared
                .body
                .process(&mut state, part, unit.partition, unit.lo, unit.hi);
            shared
                .metrics
                .morsel_completed(shared.stage, unit.partition, unit.morsel);
            r?;
        }
        WaveOrder::Serial => {
            let mut lo = unit.lo;
            let mut morsel = unit.morsel;
            while lo < unit.hi {
                if shared.interrupted() {
                    // Cooperative mid-unit cancellation between morsels: the
                    // in-flight morsel always finishes (and pairs its
                    // events) before the unit aborts.
                    return Err(FlowError::Cancelled(shared.cancel_reason()));
                }
                let hi = (lo + shared.morsel_rows).min(unit.hi);
                shared.metrics.morsel_dispatched(
                    shared.stage,
                    unit.partition,
                    morsel,
                    (hi - lo) as u64,
                    w,
                );
                shared.dispatched.fetch_add(1, Ordering::Relaxed);
                let r = shared
                    .body
                    .process(&mut state, part, unit.partition, lo, hi);
                shared
                    .metrics
                    .morsel_completed(shared.stage, unit.partition, morsel);
                r?;
                lo = hi;
                morsel += 1;
            }
        }
    }
    shared.body.finish(state, part, unit.partition)
}

/// Run one pipeline wave over `parts`, returning one output table per
/// partition (in partition order). The caller owns wave numbering and
/// checkpointing; this function owns dispatch, stealing, retries and the
/// wave's journal events.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_wave<B: PipelineBody>(
    config: &SchedulerConfig,
    metrics: &MetricsCollector,
    control: &RunControl,
    stage: usize,
    parts: &[Table],
    order: WaveOrder,
    morsel_rows: usize,
    body: &B,
) -> Result<Vec<Table>> {
    if parts.is_empty() {
        return Ok(Vec::new());
    }
    if control.is_cancelled() {
        return Err(FlowError::Cancelled(
            control
                .reason()
                .unwrap_or_else(|| "run cancelled".to_owned()),
        ));
    }
    let morsel_rows = morsel_rows.max(1);
    // Units are built partition-major with morsels ascending, so each
    // partition's output chunks occupy contiguous slots in morsel order.
    let mut units: Vec<Unit> = Vec::new();
    let mut part_units: Vec<(usize, usize)> = Vec::with_capacity(parts.len());
    for (p, t) in parts.iter().enumerate() {
        let start = units.len();
        let n = t.num_rows();
        match order {
            WaveOrder::Serial => units.push(Unit {
                partition: p,
                morsel: 0,
                lo: 0,
                hi: n,
            }),
            WaveOrder::Independent => {
                if n == 0 {
                    // Empty partitions still contribute one zero-row morsel
                    // so the output keeps its schema and partition count.
                    units.push(Unit {
                        partition: p,
                        morsel: 0,
                        lo: 0,
                        hi: 0,
                    });
                } else {
                    let mut lo = 0;
                    let mut morsel = 0;
                    while lo < n {
                        let hi = (lo + morsel_rows).min(n);
                        units.push(Unit {
                            partition: p,
                            morsel,
                            lo,
                            hi,
                        });
                        lo = hi;
                        morsel += 1;
                    }
                }
            }
        }
        part_units.push((start, units.len()));
    }
    let workers = config.threads.max(1).min(units.len());
    let shared = WaveShared {
        stage,
        order,
        morsel_rows,
        parts,
        units: &units,
        body,
        metrics,
        control,
        policy: &config.resilience.retry,
        chaos: &config.resilience.chaos,
        deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        slots: units.iter().map(|_| Mutex::new(None)).collect(),
        halt: AtomicBool::new(false),
        error: Mutex::new(None),
        stage_retries: AtomicU32::new(0),
        dispatched: AtomicU64::new(0),
        stolen: AtomicU64::new(0),
    };
    for (i, u) in units.iter().enumerate() {
        shared.deques[u.partition % workers].lock().push_back(i);
    }
    let busy: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    crossbeam::thread::scope(|scope| {
        for w in 0..workers {
            let shared = &shared;
            let busy = &busy[w];
            scope.spawn(move |_| run_worker(shared, w, busy));
        }
    })
    .map_err(|_| FlowError::Cancelled("worker thread panicked".to_owned()))?;
    if let Some(err) = shared.error.lock().take() {
        return Err(err);
    }
    let mut out = Vec::with_capacity(parts.len());
    for (start, end) in &part_units {
        let mut chunks = Vec::with_capacity(end - start);
        for slot in &shared.slots[*start..*end] {
            match slot.lock().take() {
                Some(t) => chunks.push(t),
                None => return Err(FlowError::Cancelled("task result missing".to_owned())),
            }
        }
        out.push(if chunks.len() == 1 {
            chunks.pop().expect("one chunk")
        } else {
            Table::concat(&chunks).map_err(FlowError::Data)?
        });
    }
    let slowest = busy
        .iter()
        .map(|b| b.load(Ordering::Relaxed))
        .max()
        .unwrap_or(0);
    let total: u64 = busy.iter().map(|b| b.load(Ordering::Relaxed)).sum();
    metrics.pipeline_completed(
        stage,
        parts.len(),
        shared.dispatched.load(Ordering::Relaxed),
        shared.stolen.load(Ordering::Relaxed),
        workers,
        slowest,
        total as f64 / workers as f64,
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use toreador_data::generate::random_table;

    use crate::fault::TargetedFault;
    use crate::resilience::ResilienceConfig;
    use crate::trace::TraceEventKind;

    /// Identity body: slices the claimed row range back out of the input.
    struct PassThrough;

    impl PipelineBody for PassThrough {
        type State = Vec<Table>;

        fn init(&self, _partition: usize, _part: &Table) -> Result<Self::State> {
            Ok(Vec::new())
        }

        fn process(
            &self,
            state: &mut Self::State,
            part: &Table,
            _partition: usize,
            lo: usize,
            hi: usize,
        ) -> Result<()> {
            state.push(part.slice(lo, hi).map_err(FlowError::Data)?);
            Ok(())
        }

        fn finish(&self, state: Self::State, part: &Table, _partition: usize) -> Result<Table> {
            if state.is_empty() {
                return Ok(Table::empty(part.schema().clone()));
            }
            Table::concat(&state).map_err(FlowError::Data)
        }
    }

    fn parts(n: usize, rows: usize) -> Vec<Table> {
        (0..n)
            .map(|i| random_table(rows + i * 7, 2, i as u64))
            .collect()
    }

    #[test]
    fn independent_morsels_reassemble_each_partition_exactly() {
        let config = SchedulerConfig::new(4);
        let metrics = MetricsCollector::new();
        let control = RunControl::new();
        let input = parts(3, 20);
        let out = run_wave(
            &config,
            &metrics,
            &control,
            0,
            &input,
            WaveOrder::Independent,
            5,
            &PassThrough,
        )
        .unwrap();
        assert_eq!(out.len(), input.len());
        for (o, i) in out.iter().zip(&input) {
            assert_eq!(o, i);
        }
        let totals = metrics.trace().snapshot().pipeline_totals();
        assert_eq!(totals.pipelines, 1);
        // 20, 27, 34 rows at 5 rows/morsel = 4 + 6 + 7 morsels.
        assert_eq!(totals.morsels, 17);
    }

    #[test]
    fn serial_units_chunk_in_row_order_and_reassemble() {
        let config = SchedulerConfig::new(3);
        let metrics = MetricsCollector::new();
        let control = RunControl::new();
        let input = parts(4, 11);
        let out = run_wave(
            &config,
            &metrics,
            &control,
            1,
            &input,
            WaveOrder::Serial,
            4,
            &PassThrough,
        )
        .unwrap();
        for (o, i) in out.iter().zip(&input) {
            assert_eq!(o, i);
        }
        // Serial morsel events per partition must be in ascending index
        // order (the chunk loop never reorders).
        let journal = metrics.trace().snapshot();
        for p in 0..input.len() {
            let seen: Vec<usize> = journal
                .events
                .iter()
                .filter_map(|e| match &e.kind {
                    TraceEventKind::MorselDispatched {
                        partition, morsel, ..
                    } if *partition == p => Some(*morsel),
                    _ => None,
                })
                .collect();
            let mut sorted = seen.clone();
            sorted.sort_unstable();
            assert_eq!(seen, sorted, "partition {p} morsels out of order");
        }
    }

    #[test]
    fn empty_partitions_keep_schema_and_slot() {
        let config = SchedulerConfig::new(2);
        let metrics = MetricsCollector::new();
        let control = RunControl::new();
        let schema = random_table(1, 2, 0).schema().clone();
        let input = vec![Table::empty(schema.clone()), random_table(9, 2, 3)];
        for order in [WaveOrder::Independent, WaveOrder::Serial] {
            let out = run_wave(
                &config,
                &metrics,
                &control,
                0,
                &input,
                order,
                4,
                &PassThrough,
            )
            .unwrap();
            assert_eq!(out.len(), 2);
            assert_eq!(out[0].num_rows(), 0);
            assert_eq!(out[0].schema(), &schema);
            assert_eq!(&out[1], &input[1]);
        }
    }

    #[test]
    fn stealing_claims_from_victim_backs() {
        let deques: Vec<Mutex<VecDeque<usize>>> =
            (0..3).map(|_| Mutex::new(VecDeque::new())).collect();
        deques[1].lock().extend([10, 11, 12]);
        // Worker 0's own deque is empty: it must steal from worker 1's
        // back, not its front.
        assert_eq!(claim(&deques, 0), Some((12, 1)));
        // Worker 1 pops its own front.
        assert_eq!(claim(&deques, 1), Some((10, 1)));
        assert_eq!(claim(&deques, 2), Some((11, 1)));
        assert_eq!(claim(&deques, 0), None);
    }

    #[test]
    fn targeted_crash_is_retried_inline_and_recorded() {
        let resilience = ResilienceConfig::none()
            .with_retry(RetryPolicy::immediate(3))
            .with_chaos(ChaosPlan::none().with_targeted(TargetedFault {
                stage: 0,
                partition: 1,
                attempt: 0,
                kind: FaultKind::Crash,
            }));
        let config = SchedulerConfig::new(2).with_resilience(resilience);
        let metrics = MetricsCollector::new();
        let control = RunControl::new();
        let input = parts(3, 10);
        let out = run_wave(
            &config,
            &metrics,
            &control,
            0,
            &input,
            WaveOrder::Serial,
            4,
            &PassThrough,
        )
        .unwrap();
        assert_eq!(&out[1], &input[1]);
        let m = metrics.finish(Duration::from_millis(1), 0, 0);
        assert_eq!(m.task_retries, 1);
        let journal = metrics.trace().snapshot();
        assert!(journal
            .events
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::FaultInjected { partition: 1, .. })));
    }

    #[test]
    fn exhausted_retries_fail_with_the_barrier_error() {
        let resilience = ResilienceConfig::none()
            .with_retry(RetryPolicy::immediate(2))
            .with_chaos(ChaosPlan::crashes(1.1, 9));
        let config = SchedulerConfig::new(2).with_resilience(resilience);
        let metrics = MetricsCollector::new();
        let control = RunControl::new();
        let input = parts(2, 6);
        let err = run_wave(
            &config,
            &metrics,
            &control,
            3,
            &input,
            WaveOrder::Serial,
            4,
            &PassThrough,
        )
        .unwrap_err();
        match err {
            FlowError::TaskFailed {
                stage,
                attempts,
                message,
                ..
            } => {
                assert_eq!(stage, 3);
                assert_eq!(attempts, 2);
                assert_eq!(message, "injected fault");
            }
            other => panic!("expected TaskFailed, got {other:?}"),
        }
        assert!(control.is_cancelled());
    }

    #[test]
    fn pre_cancelled_control_refuses_the_wave() {
        let config = SchedulerConfig::new(2);
        let metrics = MetricsCollector::new();
        let control = RunControl::new();
        control.cancel("operator abort");
        let err = run_wave(
            &config,
            &metrics,
            &control,
            0,
            &parts(2, 5),
            WaveOrder::Independent,
            4,
            &PassThrough,
        )
        .unwrap_err();
        assert_eq!(err, FlowError::Cancelled("operator abort".to_owned()));
        // Refused before dispatch: nothing beyond the journal's RunStarted.
        assert_eq!(metrics.trace().len(), 1);
    }
}
