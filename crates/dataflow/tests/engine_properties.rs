//! Property-based tests for the dataflow engine's end-to-end invariants:
//! the optimiser never changes results, parallelism never changes results,
//! partial aggregation matches raw aggregation, and the engine matches a
//! naive single-threaded reference implementation.

use proptest::prelude::*;

use toreador_data::generate::random_table;
use toreador_data::prelude::*;
use toreador_dataflow::optimizer::OptimizerConfig;
use toreador_dataflow::prelude::*;

/// A random but always-valid pipeline description over random_table's
/// `c0:Int, c1:Float, c2:Str` columns.
#[derive(Debug, Clone)]
enum Step {
    FilterIntGt(i64),
    FilterStrNotNull,
    ProjectArith,
    Distinct,
    SampleHalf(u64),
    Limit(usize),
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        prop_oneof![
            (-500i64..500).prop_map(Step::FilterIntGt),
            Just(Step::FilterStrNotNull),
            Just(Step::ProjectArith),
            Just(Step::Distinct),
            (0u64..10).prop_map(Step::SampleHalf),
            (1usize..50).prop_map(Step::Limit),
        ],
        0..4,
    )
}

fn build_flow(engine: &Engine, steps: &[Step]) -> Dataflow {
    let mut flow = engine.flow("t").unwrap();
    for s in steps {
        flow = match s {
            Step::FilterIntGt(n) => flow.filter(col("c0").gt(lit(*n))).unwrap(),
            Step::FilterStrNotNull => flow.filter(col("c2").is_not_null()).unwrap(),
            Step::ProjectArith => flow
                .project(vec![
                    ("c0", col("c0")),
                    ("c1", col("c1").mul(lit(2.0)).add(lit(1.0))),
                    ("c2", col("c2")),
                ])
                .unwrap(),
            Step::Distinct => flow.distinct(),
            Step::SampleHalf(seed) => flow.sample(0.5, *seed).unwrap(),
            Step::Limit(n) => flow.limit(*n),
        };
    }
    flow
}

/// Canonical row multiset for order-insensitive comparison.
fn canonical(t: &Table) -> Vec<String> {
    let mut rows: Vec<String> = t.iter_rows().map(|r| format!("{r:?}")).collect();
    rows.sort();
    rows
}

fn engine_with(table: Table, threads: usize, optimizer: OptimizerConfig, partial: bool) -> Engine {
    let mut e = Engine::new(
        EngineConfig::default()
            .with_threads(threads)
            .with_partitions(3)
            .with_optimizer(optimizer)
            .with_partial_aggregation(partial),
    );
    e.register("t", table).unwrap();
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn optimizer_never_changes_results(rows in 0usize..120, seed in 0u64..30, steps in arb_steps()) {
        // Limit interacts with row order across partitions, so compare by
        // count for limit steps and by multiset otherwise.
        let table = random_table(rows, 3, seed);
        let opt = engine_with(table.clone(), 2, OptimizerConfig::default(), true);
        let raw = engine_with(table, 2, OptimizerConfig::disabled(), true);
        let flow_a = build_flow(&opt, &steps);
        let flow_b = build_flow(&raw, &steps);
        let a = opt.run(&flow_a).unwrap().table;
        let b = raw.run(&flow_b).unwrap().table;
        if steps.iter().any(|s| matches!(s, Step::Limit(_))) {
            prop_assert_eq!(a.num_rows(), b.num_rows());
        } else {
            prop_assert_eq!(canonical(&a), canonical(&b));
        }
    }

    #[test]
    fn thread_count_never_changes_results(rows in 0usize..120, seed in 0u64..30, steps in arb_steps()) {
        let table = random_table(rows, 3, seed);
        let one = engine_with(table.clone(), 1, OptimizerConfig::default(), true);
        let many = engine_with(table, 6, OptimizerConfig::default(), true);
        let fa = build_flow(&one, &steps);
        let fb = build_flow(&many, &steps);
        let a = one.run(&fa).unwrap().table;
        let b = many.run(&fb).unwrap().table;
        if steps.iter().any(|s| matches!(s, Step::Limit(_))) {
            prop_assert_eq!(a.num_rows(), b.num_rows());
        } else {
            prop_assert_eq!(canonical(&a), canonical(&b));
        }
    }

    #[test]
    fn partial_and_raw_aggregation_agree(rows in 1usize..150, seed in 0u64..30) {
        let table = random_table(rows, 3, seed);
        let p = engine_with(table.clone(), 3, OptimizerConfig::default(), true);
        let r = engine_with(table, 3, OptimizerConfig::default(), false);
        let make = |e: &Engine| {
            e.flow("t").unwrap()
                .aggregate(&["c2"], vec![
                    AggExpr::new(AggFunc::Count, "c0", "n"),
                    AggExpr::new(AggFunc::Sum, "c0", "s"),
                    AggExpr::new(AggFunc::Mean, "c1", "m"),
                    AggExpr::new(AggFunc::Min, "c1", "lo"),
                    AggExpr::new(AggFunc::Max, "c0", "hi"),
                ]).unwrap()
                .sort(&["c2"], false).unwrap()
        };
        let a = p.run(&make(&p)).unwrap().table;
        let b = r.run(&make(&r)).unwrap().table;
        prop_assert_eq!(a.num_rows(), b.num_rows());
        for (ra, rb) in a.iter_rows().zip(b.iter_rows()) {
            for (va, vb) in ra.iter().zip(&rb) {
                match (va.as_float(), vb.as_float()) {
                    (Ok(fa), Ok(fb)) => prop_assert!((fa - fb).abs() <= fa.abs().max(1.0) * 1e-9),
                    _ => prop_assert_eq!(format!("{va:?}"), format!("{vb:?}")),
                }
            }
        }
    }

    #[test]
    fn engine_aggregate_matches_reference(rows in 1usize..120, seed in 0u64..30) {
        let table = random_table(rows, 3, seed);
        // Reference: single-threaded count per c2 value.
        use std::collections::HashMap;
        let mut expected: HashMap<String, i64> = HashMap::new();
        for row in table.iter_rows() {
            if !row[0].is_null() {
                *expected.entry(format!("{:?}", row[2])).or_insert(0) += 1;
            } else {
                expected.entry(format!("{:?}", row[2])).or_insert(0);
            }
        }
        let e = engine_with(table, 4, OptimizerConfig::default(), true);
        let flow = e.flow("t").unwrap()
            .aggregate(&["c2"], vec![AggExpr::new(AggFunc::Count, "c0", "n")]).unwrap();
        let out = e.run(&flow).unwrap().table;
        prop_assert_eq!(out.num_rows(), expected.len());
        for row in out.iter_rows() {
            let key = format!("{:?}", row[0]);
            prop_assert_eq!(row[1].as_int().unwrap(), expected[&key], "group {}", key);
        }
    }

    #[test]
    fn join_matches_nested_loop_reference(l_rows in 0usize..60, r_rows in 0usize..60, seed in 0u64..20) {
        let left = random_table(l_rows, 2, seed);
        let right = random_table(r_rows, 2, seed.wrapping_add(1));
        // Reference inner join on c0.
        let mut expected = 0usize;
        for lr in left.iter_rows() {
            if lr[0].is_null() { continue; }
            for rr in right.iter_rows() {
                if rr[0].is_null() { continue; }
                if lr[0].group_eq(&rr[0]) {
                    expected += 1;
                }
            }
        }
        let mut e = Engine::new(EngineConfig::default().with_threads(3).with_partitions(3));
        e.register("l", left).unwrap();
        e.register("r", right).unwrap();
        let flow = e.flow("l").unwrap()
            .join(e.flow("r").unwrap(), &["c0"], &["c0"], JoinType::Inner).unwrap();
        let out = e.run(&flow).unwrap().table;
        prop_assert_eq!(out.num_rows(), expected);
    }

    #[test]
    fn left_join_keeps_every_left_row(l_rows in 0usize..60, r_rows in 0usize..60, seed in 0u64..20) {
        let left = random_table(l_rows, 2, seed);
        let right = random_table(r_rows, 2, seed.wrapping_add(7));
        let mut expected = 0usize;
        for lr in left.iter_rows() {
            let matches = if lr[0].is_null() {
                0
            } else {
                right
                    .iter_rows()
                    .filter(|rr| !rr[0].is_null() && lr[0].group_eq(&rr[0]))
                    .count()
            };
            expected += matches.max(1);
        }
        let mut e = Engine::new(EngineConfig::default().with_threads(2).with_partitions(2));
        e.register("l", left).unwrap();
        e.register("r", right).unwrap();
        let flow = e.flow("l").unwrap()
            .join(e.flow("r").unwrap(), &["c0"], &["c0"], JoinType::Left).unwrap();
        let out = e.run(&flow).unwrap().table;
        prop_assert_eq!(out.num_rows(), expected);
    }

    #[test]
    fn fault_injection_never_changes_results(rows in 1usize..80, seed in 0u64..20) {
        let table = random_table(rows, 3, seed);
        let clean = engine_with(table.clone(), 3, OptimizerConfig::default(), true);
        let mut faulty = Engine::new(
            EngineConfig::default()
                .with_threads(3)
                .with_partitions(3)
                .with_faults(FaultPlan::with_rate(0.3, seed, 25)),
        );
        faulty.register("t", table).unwrap();
        let make = |e: &Engine| {
            e.flow("t").unwrap()
                .filter(col("c0").is_not_null()).unwrap()
                .aggregate(&["c2"], vec![AggExpr::new(AggFunc::Sum, "c0", "s")]).unwrap()
                .sort(&["c2"], false).unwrap()
        };
        let a = clean.run(&make(&clean)).unwrap().table;
        let b = faulty.run(&make(&faulty)).unwrap().table;
        prop_assert_eq!(canonical(&a), canonical(&b));
    }
}
