//! Differential property tests for out-of-core execution: a memory budget
//! changes *where* wide-operator state lives, never *what* comes out.
//!
//! The oracle is the unbudgeted engine. For every random pipeline and
//! every budget — including zero (everything spills through a one-frame
//! pool) and larger-than-data (nothing spills) — the budgeted run must
//! produce a value-identical table, not merely an approximately equal one:
//! spilled runs are read back in their original partition order, so even
//! float fold order is preserved.

use proptest::prelude::*;

use toreador_data::generate::random_table;
use toreador_data::prelude::*;
use toreador_dataflow::prelude::*;

/// Budgets that matter: zero (spill everything), tiny and small (spill
/// some), and larger than any test input (spill nothing).
fn arb_budget() -> impl Strategy<Value = u64> {
    prop_oneof![Just(0u64), 1u64..512, 512u64..(64 << 10), Just(1u64 << 30),]
}

fn engine_with(table: Table, budget: Option<u64>, partial: bool) -> Engine {
    let mut config = EngineConfig::default()
        .with_threads(3)
        .with_partitions(3)
        .with_partial_aggregation(partial);
    if let Some(b) = budget {
        config = config.with_memory_budget(b);
    }
    let mut e = Engine::new(config);
    e.register("t", table).unwrap();
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn spilling_aggregation_is_value_identical_to_in_memory(
        rows in 1usize..200,
        seed in 0u64..30,
        budget in arb_budget(),
        partial in any::<bool>(),
    ) {
        let table = random_table(rows, 3, seed);
        let make = |e: &Engine| {
            e.flow("t").unwrap()
                .aggregate(&["c2"], vec![
                    AggExpr::new(AggFunc::Count, "c0", "n"),
                    AggExpr::new(AggFunc::Sum, "c1", "s"),
                    AggExpr::new(AggFunc::Mean, "c1", "m"),
                ]).unwrap()
                .sort(&["c2"], false).unwrap()
        };
        let oracle = engine_with(table.clone(), None, partial);
        let budgeted = engine_with(table, Some(budget), partial);
        let a = oracle.run(&make(&oracle)).unwrap();
        let b = budgeted.run(&make(&budgeted)).unwrap();
        // Value-identical, float sums included: spilled runs merge back in
        // their original partition order, so the fold order is unchanged.
        prop_assert_eq!(&a.table, &b.table);
        prop_assert!(a.trace.spill_totals().is_zero(), "oracle never spills");
        let totals = b.trace.spill_totals();
        if budget == 0 {
            prop_assert!(totals.spills > 0, "zero budget must spill: {totals:?}");
        }
        if budget >= 1 << 30 {
            prop_assert!(totals.is_zero(), "roomy budget must not spill: {totals:?}");
        }
        // The journalled pool residency never exceeded the pool's frame
        // arithmetic: max(1 frame, budget) rounded down to whole pages.
        let capacity = (budget / (32 << 10)).max(1) * (32 << 10);
        prop_assert!(totals.peak_pool_bytes <= capacity, "{totals:?}");
    }

    #[test]
    fn spilling_join_sort_distinct_are_value_identical(
        l_rows in 0usize..80,
        r_rows in 0usize..80,
        seed in 0u64..20,
        budget in arb_budget(),
    ) {
        let left = random_table(l_rows, 2, seed);
        let right = random_table(r_rows, 2, seed.wrapping_add(11));
        let run = |budget: Option<u64>| {
            let mut config = EngineConfig::default().with_threads(2).with_partitions(3);
            if let Some(b) = budget {
                config = config.with_memory_budget(b);
            }
            let mut e = Engine::new(config);
            e.register("l", left.clone()).unwrap();
            e.register("r", right.clone()).unwrap();
            let flow = e.flow("l").unwrap()
                .join(e.flow("r").unwrap(), &["c0"], &["c0"], JoinType::Inner).unwrap()
                .distinct()
                .sort(&["c0"], false).unwrap();
            e.run(&flow).unwrap()
        };
        let a = run(None);
        let b = run(Some(budget));
        prop_assert_eq!(&a.table, &b.table);
        if budget >= 1 << 30 {
            prop_assert!(b.trace.spill_totals().is_zero());
        }
    }
}
