//! The continuous-streaming robustness proofs:
//!
//! 1. **Kill-at-every-ack**: a durable stream is killed right after *each*
//!    ack boundary in turn; every killed run resumes to a final state
//!    byte-identical to the unkilled baseline, with zero acked batches
//!    re-executed (proven from the resumed journal, not asserted on faith).
//! 2. **Backpressure bound**: with a slow consumer the producer stalls, and
//!    the journalled in-flight depth never exceeds the configured cap.
//! 3. **Exact late accounting**: the fraud generator plants a known number
//!    of late arrivals; every late-data policy accounts for exactly that
//!    many rows — none lost, none double-counted, across a kill.
//! 4. **Differential oracle**: on in-order input, the continuous loop's
//!    carried state matches `run_stream` (the event-time micro-batch
//!    oracle) bit-for-bit on counts and to float tolerance on sums.

use std::path::PathBuf;

use toreador_data::generate::{fraud_stream, telemetry};
use toreador_data::table::Table;
use toreador_dataflow::error::FlowError;
use toreador_dataflow::fault::KillMode;
use toreador_dataflow::prelude::*;
use toreador_dataflow::trace::TraceEventKind;

const WINDOW_MS: i64 = 2_000;
const LATENESS_MS: i64 = 500;

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("toreador-stream-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The shared workload: per-channel transaction count and amount sum over
/// the fraud event stream.
fn fraud_flow(e: &Engine, ds: &str) -> toreador_dataflow::error::Result<Dataflow> {
    e.flow(ds)?.aggregate(
        &["channel"],
        vec![
            AggExpr::new(AggFunc::Count, "txn_id", "n"),
            AggExpr::new(AggFunc::Sum, "amount", "total"),
        ],
    )
}

fn fraud_config(lateness: i64, policy: LatePolicy) -> StreamConfig {
    StreamConfig::default()
        .with_engine(EngineConfig::default().with_threads(2))
        .with_ts_column("ts")
        .with_allowed_lateness(lateness)
        .with_late_policy(policy)
        .with_buffer(4)
        .with_pipeline_id("stream-proofs")
}

fn run_fraud(table: &Table, config: &StreamConfig) -> FlowResult<ContinuousRun> {
    let mut source = ArrivalSource::windows(table, "ts", WINDOW_MS)?;
    run_continuous(
        &mut source,
        config,
        &fraud_flow,
        "channel",
        Some("n"),
        Some("total"),
    )
}

#[test]
fn kill_at_every_ack_boundary_resumes_byte_identically() {
    let (table, _) = fraud_stream(1_000, 7, 0.05, 300);
    let config = fraud_config(LATENESS_MS, LatePolicy::Absorb);

    // Unkilled baseline: the state every killed-and-resumed run must reach.
    let baseline = run_fraud(&table, &config).expect("baseline run");
    let oracle_state = baseline.canonical_state();
    let oracle_totals = baseline.totals();
    let n = baseline.acked.len() as u64;
    assert!(n >= 4, "need several ack boundaries, got {n}");

    for k in 0..n {
        let dir = temp_root(&format!("kill-{k}"));
        // Phase 1: die (in-process halt) right after offset k's ack is
        // durable on disk.
        let killed = run_fraud(
            &table,
            &config
                .clone()
                .with_durable(DurableSpec::new(&dir))
                .with_kill_at_ack(k, KillMode::Halt),
        );
        match killed {
            Err(FlowError::KilledAtAck { offset }) => assert_eq!(offset, k),
            other => panic!("kill at ack {k} should halt, got {other:?}"),
        }

        // Phase 2: a fresh run resumes from the WAL and finishes.
        let resumed = run_fraud(
            &table,
            &config
                .clone()
                .with_durable(DurableSpec::new(&dir).with_resume(true)),
        )
        .expect("resumed run");

        // Byte-identical final state.
        assert_eq!(
            resumed.canonical_state(),
            oracle_state,
            "state diverged after kill at ack {k}"
        );
        // Zero acked batches re-executed: the resumed journal starts past k.
        let mut resume_events = 0;
        for e in &resumed.stream_trace.events {
            match e.kind {
                TraceEventKind::BatchAcked { offset, .. } => {
                    assert!(offset > k, "batch {offset} re-acked after kill at {k}")
                }
                TraceEventKind::StreamResumed { next_offset, .. } => {
                    resume_events += 1;
                    assert_eq!(next_offset, k + 1);
                }
                _ => {}
            }
        }
        assert_eq!(resume_events, 1, "exactly one resume event");
        assert_eq!(
            resumed.acked.len() as u64,
            n - k - 1,
            "resumed run executes exactly the unacked suffix"
        );
        // Lifetime totals survive the kill: recovered counters plus the
        // resumed journal equal the unkilled run's accounting.
        let cum = resumed.cumulative_totals();
        assert_eq!(cum.batches_acked, oracle_totals.batches_acked);
        assert_eq!(cum.rows_acked, oracle_totals.rows_acked);
        assert_eq!(cum.late_absorbed, oracle_totals.late_absorbed);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn backpressure_depth_never_exceeds_the_cap() {
    let (table, _) = fraud_stream(600, 3, 0.0, 0);
    const CAP: usize = 2;
    let config = StreamConfig::default()
        .with_engine(EngineConfig::default().with_threads(1))
        .with_ts_column("ts")
        .with_buffer(CAP)
        .with_pipeline_id("backpressure-proof");
    // Many small arrival batches through a deliberately slow consumer: the
    // producer must block rather than queue without bound.
    let mut source = ArrivalSource::new(table, 25).unwrap();
    let run = run_continuous_with(&mut source, &config, None, &mut |_, batch| {
        std::thread::sleep(std::time::Duration::from_millis(2));
        Ok(BatchOutput {
            table: batch.clone(),
            metrics: None,
            trace: None,
        })
    })
    .expect("slow-consumer run");

    let totals = run.totals();
    assert_eq!(totals.batches_acked, 24, "600 rows / 25 per batch");
    assert!(totals.stalls > 0, "a slow consumer must stall the producer");
    assert!(totals.stall_us > 0);
    // The bound, read from the journal: every ingestion's post-push depth.
    let mut ingested = 0;
    for e in &run.stream_trace.events {
        if let TraceEventKind::BatchIngested { depth, .. } = e.kind {
            ingested += 1;
            assert!(depth <= CAP as u64, "depth {depth} exceeds cap {CAP}");
        }
    }
    assert_eq!(ingested, 24, "every batch journals its ingestion");
    assert!(totals.max_in_flight <= CAP as u64);
    assert!(totals.max_in_flight >= 1);
}

#[test]
fn late_accounting_matches_the_planted_rows_exactly() {
    let (table, planted) = fraud_stream(2_000, 13, 0.08, 400);
    assert!(planted > 0, "generator must plant late arrivals");

    // Rows that reached the carried state: count aggregates count every
    // processed row exactly once.
    let state_rows =
        |run: &ContinuousRun| -> i64 { run.state.keys().iter().map(|k| run.state.count(k)).sum() };
    for (policy, pick) in [
        (LatePolicy::Absorb, 0usize),
        (LatePolicy::SideChannel, 1),
        (LatePolicy::Drop, 2),
    ] {
        let run = run_fraud(&table, &fraud_config(LATENESS_MS, policy)).expect("policy run");
        let t = run.totals();
        let counts = [t.late_absorbed, t.late_side_channelled, t.late_dropped];
        assert_eq!(
            counts[pick], planted as u64,
            "{policy:?} must account for every planted row, got {counts:?}"
        );
        for (i, c) in counts.iter().enumerate() {
            if i != pick {
                assert_eq!(*c, 0, "{policy:?} leaked rows into another class");
            }
        }
        // The side channel carries the actual rows, not just a counter.
        let diverted: usize = run.side_channel.iter().map(Table::num_rows).sum();
        assert_eq!(diverted, if pick == 1 { planted } else { 0 });
        // Absorbed rows reach the state; diverted and dropped rows must not.
        let expect_in_state = match policy {
            LatePolicy::Absorb => table.num_rows(),
            _ => table.num_rows() - planted,
        };
        assert_eq!(
            state_rows(&run) as usize,
            expect_in_state,
            "{policy:?} state row accounting"
        );
    }

    // The accounting survives a kill: cumulative counters across a death at
    // a mid-stream ack equal the planted count.
    let dir = temp_root("late-kill");
    let config = fraud_config(LATENESS_MS, LatePolicy::Drop);
    let killed = run_fraud(
        &table,
        &config
            .clone()
            .with_durable(DurableSpec::new(&dir))
            .with_kill_at_ack(3, KillMode::Halt),
    );
    assert!(matches!(killed, Err(FlowError::KilledAtAck { offset: 3 })));
    let resumed = run_fraud(
        &table,
        &config.with_durable(DurableSpec::new(&dir).with_resume(true)),
    )
    .expect("resumed run");
    assert_eq!(resumed.cumulative_totals().late_dropped, planted as u64);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn continuous_state_matches_the_event_time_oracle_on_ordered_input() {
    // Telemetry arrives in event-time order, so arrival-window cutting and
    // event-time tumbling must agree on the carried state.
    let table = telemetry(2_000, 8, 3);
    let window = 3_600_000;
    let make_flow = |e: &Engine, ds: &str| {
        e.flow(ds)?.aggregate(
            &["region"],
            vec![
                AggExpr::new(AggFunc::Count, "reading_id", "n"),
                AggExpr::new(AggFunc::Sum, "kwh", "total"),
            ],
        )
    };

    let batcher = MicroBatcher::tumbling(&table, "ts", window).unwrap();
    let oracle = run_stream(
        EngineConfig::default().with_threads(2),
        &batcher,
        make_flow,
        "region",
        Some("n"),
        Some("total"),
    )
    .unwrap();

    let mut source = ArrivalSource::windows(&table, "ts", window).unwrap();
    let run = run_continuous(
        &mut source,
        &StreamConfig::default()
            .with_engine(EngineConfig::default().with_threads(2))
            .with_ts_column("ts")
            .with_pipeline_id("oracle-diff"),
        &make_flow,
        "region",
        Some("n"),
        Some("total"),
    )
    .unwrap();

    assert_eq!(run.state.keys(), oracle.state.keys());
    for key in oracle.state.keys() {
        assert_eq!(
            run.state.count(key),
            oracle.state.count(key),
            "count diverged for {key}"
        );
        let (a, b) = (run.state.sum(key), oracle.state.sum(key));
        assert!(
            (a - b).abs() < 1e-6,
            "sum diverged for {key}: continuous {a} vs oracle {b}"
        );
    }
    // In-order input is never late.
    let t = run.totals();
    assert_eq!(t.late_absorbed + t.late_side_channelled + t.late_dropped, 0);
    assert_eq!(t.rows_acked, table.num_rows() as u64);
}
