//! Differential proof that the morsel-driven pipelined scheduler is
//! invisible: the same plan run through the pipelined path, the
//! stage-barrier path, and the row-at-a-time oracle engine must agree
//! value-for-value — byte-identical output through the shuffle codec, and
//! identical error messages when chaos makes a wave fail — across generated
//! plans, morsel sizes from one row to the whole partition, and thread
//! counts 1, 2 and 16. A second battery proves work-stealing is invisible:
//! 32 runs of one plan on a 16-thread pool under randomized chaos delays
//! (which scramble steal timing) stay byte-identical with a fully paired
//! morsel journal every time, while the journal shows real steals happened.

use std::collections::HashMap;

use bytes::BytesMut;
use proptest::prelude::*;

use toreador_data::generate::random_table;
use toreador_data::table::Table;
use toreador_dataflow::prelude::*;
use toreador_dataflow::shuffle::encode_table;
use toreador_dataflow::trace::{RunTrace, TraceEventKind};

/// A random always-valid chain of narrow operators over random_table's
/// `c0:Int, c1:Float, c2:Str` columns — the shapes the planner fuses into
/// one morsel pipeline.
#[derive(Debug, Clone)]
enum Step {
    FilterIntGt(i64),
    FilterStrNotNull,
    ProjectArith,
    SampleHalf(u64),
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        prop_oneof![
            (-500i64..500).prop_map(Step::FilterIntGt),
            Just(Step::FilterStrNotNull),
            Just(Step::ProjectArith),
            (0u64..10).prop_map(Step::SampleHalf),
        ],
        0..5,
    )
}

fn build_flow(engine: &Engine, steps: &[Step], agg: bool) -> Dataflow {
    let mut flow = engine.flow("t").unwrap();
    for s in steps {
        flow = match s {
            Step::FilterIntGt(n) => flow.filter(col("c0").gt(lit(*n))).unwrap(),
            Step::FilterStrNotNull => flow.filter(col("c2").is_not_null()).unwrap(),
            Step::ProjectArith => flow
                .project(vec![
                    ("c0", col("c0")),
                    ("c1", col("c1").mul(lit(2.0)).add(lit(1.0))),
                    ("c2", col("c2")),
                ])
                .unwrap(),
            Step::SampleHalf(seed) => flow.sample(0.5, *seed).unwrap(),
        };
    }
    if agg {
        flow = flow
            .aggregate(
                &["c2"],
                vec![
                    AggExpr::new(AggFunc::Count, "c0", "n"),
                    AggExpr::new(AggFunc::Sum, "c0", "s"),
                    AggExpr::new(AggFunc::Mean, "c1", "m"),
                ],
            )
            .unwrap();
    }
    flow
}

/// Engine in one of the three comparison modes. `pipelined == false` is the
/// stage-barrier path; `vectorized == false` is the row-at-a-time oracle
/// (which never fuses, so `pipelined` is moot there).
fn engine_mode(
    table: Table,
    threads: usize,
    pipelined: bool,
    vectorized: bool,
    morsel_rows: usize,
    resilience: ResilienceConfig,
) -> Engine {
    let mut e = Engine::new(
        EngineConfig::default()
            .with_threads(threads)
            .with_partitions(3)
            .with_pipelined(pipelined)
            .with_vectorized(vectorized)
            .with_morsel_rows(morsel_rows)
            .with_resilience(resilience),
    );
    e.register("t", table).unwrap();
    e
}

/// Byte-exact serialization through the shuffle codec: the comparison is
/// value-for-value including float bit patterns and row order.
fn bytes_of(t: &Table) -> BytesMut {
    let mut buf = BytesMut::new();
    encode_table(t, &mut buf);
    buf
}

/// Every dispatched morsel must complete exactly once — even on failing or
/// cancelled waves, an in-flight morsel always pairs.
fn assert_morsels_paired(trace: &RunTrace) {
    let mut open: HashMap<(usize, usize, usize), i64> = HashMap::new();
    for e in &trace.events {
        match e.kind {
            TraceEventKind::MorselDispatched {
                stage,
                partition,
                morsel,
                ..
            } => *open.entry((stage, partition, morsel)).or_insert(0) += 1,
            TraceEventKind::MorselCompleted {
                stage,
                partition,
                morsel,
            } => *open.entry((stage, partition, morsel)).or_insert(0) -= 1,
            _ => {}
        }
    }
    for (key, balance) in &open {
        assert_eq!(
            *balance, 0,
            "morsel {key:?} dispatched/completed out of balance"
        );
    }
}

/// How many property cases to run. The vendored proptest does not read
/// `PROPTEST_CASES`, so this suite honours it by hand — CI pins it.
fn proptest_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(proptest_cases()))]

    /// The tentpole differential: pipelined ≡ stage-barrier ≡ row oracle,
    /// byte-for-byte, for every generated plan × morsel size × thread count.
    #[test]
    fn pipelined_matches_barrier_and_row_oracle(
        rows in 0usize..140,
        seed in 0u64..30,
        steps in arb_steps(),
        agg in any::<bool>(),
        morsel_rows in prop_oneof![Just(1usize), 2usize..64, Just(1usize << 20)],
        threads in prop_oneof![Just(1usize), Just(2usize), Just(16usize)],
    ) {
        let table = random_table(rows, 3, seed);
        let none = ResilienceConfig::none;
        let pip = engine_mode(table.clone(), threads, true, true, morsel_rows, none());
        let bar = engine_mode(table.clone(), threads, false, true, morsel_rows, none());
        let row = engine_mode(table, threads, false, false, morsel_rows, none());
        let a = pip.run(&build_flow(&pip, &steps, agg)).unwrap();
        let b = bar.run(&build_flow(&bar, &steps, agg)).unwrap();
        let c = row.run(&build_flow(&row, &steps, agg)).unwrap();
        prop_assert_eq!(
            bytes_of(&a.table),
            bytes_of(&b.table),
            "pipelined vs stage-barrier"
        );
        prop_assert_eq!(
            bytes_of(&a.table),
            bytes_of(&c.table),
            "pipelined vs row oracle"
        );
        // The pipelined engine really took the morsel path: an aggregation's
        // map side always pipelines, and its journal stays paired.
        if agg {
            prop_assert!(a.trace.pipeline_totals().pipelines >= 1);
        }
        assert_morsels_paired(&a.trace);
        // The other two engines never dispatched a morsel.
        prop_assert_eq!(b.trace.pipeline_totals().morsels, 0);
        prop_assert_eq!(c.trace.pipeline_totals().morsels, 0);
    }
}

/// Error semantics are part of value-for-value: a wave that chaos kills must
/// surface the *same* error message from all three paths.
#[test]
fn injected_failure_messages_match_across_all_three_paths() {
    let table = random_table(90, 3, 11);
    // Map-side aggregation wave (serial morsel units, task = partition):
    // crash partition 1's only two attempts, exhausting the retry budget.
    let chaos = ChaosPlan::none()
        .with_targeted(TargetedFault {
            stage: 0,
            partition: 1,
            attempt: 0,
            kind: FaultKind::Crash,
        })
        .with_targeted(TargetedFault {
            stage: 0,
            partition: 1,
            attempt: 1,
            kind: FaultKind::Crash,
        });
    let resilience = || {
        ResilienceConfig::none()
            .with_retry(RetryPolicy::immediate(2))
            .with_chaos(chaos.clone())
    };
    let pip = engine_mode(table.clone(), 4, true, true, 8, resilience());
    let bar = engine_mode(table.clone(), 4, false, true, 8, resilience());
    let row = engine_mode(table.clone(), 4, false, false, 8, resilience());
    let pe = pip.run(&build_flow(&pip, &[], true)).unwrap_err();
    let be = bar.run(&build_flow(&bar, &[], true)).unwrap_err();
    let re = row.run(&build_flow(&row, &[], true)).unwrap_err();
    assert!(pe.to_string().contains("injected fault"), "{pe}");
    assert_eq!(pe.to_string(), be.to_string(), "pipelined vs barrier");
    assert_eq!(pe.to_string(), re.to_string(), "pipelined vs row oracle");

    // Fused narrow chain (independent morsel units): the first unit of the
    // wave is partition 0's first morsel, the same coordinate the barrier
    // and row engines report for their partition-0 task.
    let chain_chaos = ChaosPlan::none().with_targeted(TargetedFault {
        stage: 0,
        partition: 0,
        attempt: 0,
        kind: FaultKind::Crash,
    });
    let chain_res = || ResilienceConfig::none().with_chaos(chain_chaos.clone());
    let steps = [Step::FilterStrNotNull, Step::ProjectArith];
    let pip = engine_mode(table.clone(), 4, true, true, 1 << 20, chain_res());
    let bar = engine_mode(table.clone(), 4, false, true, 1 << 20, chain_res());
    let row = engine_mode(table, 4, false, false, 1 << 20, chain_res());
    let pe = pip.run(&build_flow(&pip, &steps, false)).unwrap_err();
    let be = bar.run(&build_flow(&bar, &steps, false)).unwrap_err();
    let re = row.run(&build_flow(&row, &steps, false)).unwrap_err();
    assert!(pe.to_string().contains("injected fault"), "{pe}");
    assert_eq!(pe.to_string(), be.to_string(), "pipelined vs barrier");
    assert_eq!(pe.to_string(), re.to_string(), "pipelined vs row oracle");
}

/// Determinism under stealing: the same plan 32 times on a 16-thread pool
/// with tiny morsels and per-run chaos delay seeds (which randomize which
/// worker is busy when, and therefore who steals what from whom). Output
/// must be byte-identical every time, every run's morsel journal must pair,
/// and the journal must show stealing actually happened.
#[test]
fn stealing_is_invisible_across_32_chaotic_runs() {
    let table = random_table(3_000, 3, 7);
    let steps = [Step::FilterStrNotNull, Step::ProjectArith];
    let mut reference: Option<BytesMut> = None;
    let mut total_steals = 0u64;
    let mut total_morsels = 0u64;
    for run_seed in 0..32u64 {
        let resilience = ResilienceConfig::none().with_chaos(ChaosPlan::delays(
            0.25,
            400,
            run_seed.wrapping_mul(0x9e37_79b9).wrapping_add(1),
        ));
        let e = engine_mode(table.clone(), 16, true, true, 7, resilience);
        let result = e.run(&build_flow(&e, &steps, true)).unwrap();
        let bytes = bytes_of(&result.table);
        match &reference {
            None => reference = Some(bytes),
            Some(first) => assert_eq!(
                first, &bytes,
                "run {run_seed}: stealing or delay timing changed the output"
            ),
        }
        assert_morsels_paired(&result.trace);
        let totals = result.trace.pipeline_totals();
        assert!(totals.pipelines >= 1, "run {run_seed} never pipelined");
        total_steals += totals.stolen;
        total_morsels += totals.morsels;
    }
    assert!(total_morsels > 0);
    assert!(
        total_steals > 0,
        "32 sixteen-thread runs over 3 home deques never stole — \
         the work-stealing path is dead"
    );
}

/// One morsel per row and one morsel per partition are the two degenerate
/// decompositions; both must agree with the barrier path even when the
/// chain ends in a Sample step (whose RNG draws are order-sensitive).
#[test]
fn degenerate_morsel_sizes_agree_on_sampled_chains() {
    let table = random_table(257, 3, 23);
    let steps = [
        Step::FilterIntGt(-100),
        Step::SampleHalf(5),
        Step::ProjectArith,
    ];
    let bar = engine_mode(table.clone(), 4, false, true, 64, ResilienceConfig::none());
    let expected = bar.run(&build_flow(&bar, &steps, false)).unwrap();
    for morsel_rows in [1usize, 2, 3, 86, 1 << 20] {
        let pip = engine_mode(
            table.clone(),
            4,
            true,
            true,
            morsel_rows,
            ResilienceConfig::none(),
        );
        let got = pip.run(&build_flow(&pip, &steps, false)).unwrap();
        assert_eq!(
            bytes_of(&got.table),
            bytes_of(&expected.table),
            "morsel_rows {morsel_rows}"
        );
    }
}
