//! Disk-fault matrix for the dataflow durability layers: spill page
//! files and checkpoint waves under a seeded `DiskChaos` injector.
//!
//! The property mirrors the task-fault chaos oracle: a run under storage
//! faults either completes with output identical to the fault-free
//! baseline (the layer retried or the fault missed) or fails with a
//! classified error naming the path and operation — never a panic, never
//! silent divergence, and never a leaked `*.tmp` or `*.pages` once the
//! injector is disarmed and the run's own cleanup has run.
//!
//! Scale the randomized passes with `PROPTEST_CASES` (default 6).

use std::path::{Path, PathBuf};

use toreador_data::generate::clickstream;
use toreador_data::table::Table;
use toreador_dataflow::logical::Dataflow;
use toreador_dataflow::prelude::*;
use toreador_dataflow::session::{Engine, EngineConfig};
use toreador_store::chaos::{DiskChaos, DiskChaosPlan, DiskTarget, INJECTED_MARKER};
use toreador_store::fsck::scan_store_dir;

fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("toreador-disk-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A flow whose partial-aggregation map output is about as big as its
/// input, so a small memory budget forces real spill I/O.
fn wide_flow(e: &Engine) -> Dataflow {
    e.flow("clicks")
        .unwrap()
        .aggregate(
            &["event_id"],
            vec![
                AggExpr::new(AggFunc::Count, "event_id", "n"),
                AggExpr::new(AggFunc::Sum, "price", "revenue"),
            ],
        )
        .unwrap()
        .sort(&["event_id"], false)
        .unwrap()
}

fn baseline() -> Table {
    let mut calm = Engine::new(EngineConfig::default().with_threads(2));
    calm.register("clicks", clickstream(3_000, 7)).unwrap();
    calm.run(&wide_flow(&calm)).unwrap().table
}

/// Run the wide flow with a tight budget spilling into `spill_dir`.
fn spilling_run(spill_dir: &Path) -> Result<Table, FlowError> {
    let mut tight = Engine::new(
        EngineConfig::default()
            .with_threads(2)
            .with_memory_budget(16 << 10)
            .with_spill_dir(spill_dir),
    );
    tight.register("clicks", clickstream(3_000, 7)).unwrap();
    tight.run(&wide_flow(&tight)).map(|r| r.table)
}

/// No `*.tmp` (unpublished) and, after a completed run, no `*.pages`
/// either: the spill manager removes its directory outright on drop.
fn assert_no_residue(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return; // whole dir removed: the strongest form of clean
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        assert!(
            !name.ends_with(".tmp"),
            "leaked temp file {name} in {}",
            dir.display()
        );
    }
}

fn assert_classified(e: &FlowError) {
    let msg = e.to_string();
    assert!(
        matches!(e, FlowError::Spill(_) | FlowError::Checkpoint(_)),
        "storage fault surfaced through the wrong family: {e:?}"
    );
    assert!(
        msg.contains(INJECTED_MARKER),
        "error does not name the injected fault: {msg}"
    );
}

#[test]
fn spill_fault_matrix_identical_or_classified_never_leaky() {
    let reference = baseline();
    // Spill writes land in `<run>.pages.tmp` until the publish rename, so
    // the write-side faults target class `tmp`; the rename is classified
    // by its destination, class `pages`.
    let specs: &[&str] = &[
        "tmp:create:0:eio",
        "tmp:create:2:eio",
        "tmp:write:0:eio",
        "tmp:write:3:eio",
        "tmp:write:1:torn@100",
        "tmp:write:5:enospc",
        "tmp:sync:0:eio",
        "tmp:read:2:eio",
        "pages:rename:0:eio",
        "dir:create:0:eio",
        "any:write:9:eio",
    ];
    for spec in specs {
        let dir = tmp_dir(&format!("matrix-{}", spec.replace([':', '@'], "-")));
        let target = DiskTarget::parse(spec).unwrap();
        let (chaos, _guard) = DiskChaos::register(&dir, DiskChaosPlan::targeted(vec![target]));
        match spilling_run(&dir) {
            Ok(table) => assert_eq!(table, reference, "silent divergence under {spec}"),
            Err(e) => assert_classified(&e),
        }
        chaos.disarm();
        assert_no_residue(&dir);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn spill_enospc_fails_classified_and_cleans_its_temp_files() {
    let dir = tmp_dir("enospc");
    let plan = DiskChaosPlan {
        enospc_after_bytes: Some(40 << 10), // about one spilled run in
        ..DiskChaosPlan::default()
    };
    let (chaos, _guard) = DiskChaos::register(&dir, plan);
    let err = spilling_run(&dir).expect_err("40 KiB cannot hold the spilled runs");
    assert_classified(&err);
    assert!(err.to_string().contains("ENOSPC"), "{err}");
    chaos.disarm();
    assert_no_residue(&dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn background_disk_chaos_over_many_seeds_never_diverges() {
    let reference = baseline();
    for case in 0..cases() {
        let dir = tmp_dir(&format!("flaky-{case}"));
        let (chaos, _guard) = DiskChaos::register(&dir, DiskChaosPlan::flaky(0xCAFE + case, 0.03));
        match spilling_run(&dir) {
            Ok(table) => assert_eq!(table, reference, "silent divergence at seed {case}"),
            Err(e) => assert_classified(&e),
        }
        chaos.disarm();
        assert_no_residue(&dir);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn checkpoint_publish_faults_are_classified_and_leave_a_scannable_dir() {
    let specs: &[&str] = &[
        "tmp:write:0:eio",
        "tmp:write:0:torn@50",
        "tmp:sync:0:eio",
        "wave:rename:0:eio",
        "manifest:rename:0:eio",
    ];
    for spec in specs {
        let root = tmp_dir(&format!("ckpt-{}", spec.replace([':', '@'], "-")));
        let target = DiskTarget::parse(spec).unwrap();
        let (chaos, _guard) = DiskChaos::register(&root, DiskChaosPlan::targeted(vec![target]));
        let mut engine = Engine::new(EngineConfig::default().with_threads(2).with_checkpoint(
            CheckpointSpec {
                root: root.clone(),
                run_id: "chaos-run".into(),
                resume: false,
            },
        ));
        engine.register("clicks", clickstream(2_000, 7)).unwrap();
        let result = engine.run_checkpointed(&wide_flow(&engine), "chaos-run");
        chaos.disarm();
        match result {
            Ok(_) => {}
            Err(e) => assert_classified(&e),
        }
        // Whatever happened, the checkpoint tree must scan without
        // corruption: atomic publish means every artifact is either
        // complete or an orphan `.tmp`, and repair leaves it clean.
        let arts = toreador_dataflow::fsck::scan_tree(&root).unwrap();
        for a in &arts {
            assert!(
                !a.verdict.is_corrupt(),
                "injected publish fault left corruption under {spec}: {a:?}"
            );
        }
        for a in &arts {
            let _ = toreador_store::fsck::repair(a);
        }
        let after = toreador_dataflow::fsck::scan_tree(&root).unwrap();
        assert!(
            after.iter().all(|a| a.verdict.is_clean()),
            "{spec}: {after:?}"
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}

#[test]
fn interior_bit_flip_in_a_page_file_is_classified_corruption() {
    use toreador_dataflow::pager::{SpillManager, PAGE_SIZE};
    use toreador_dataflow::trace::TraceJournal;

    let dir = tmp_dir("page-flip");
    // Budget zero floors the pool at one frame, so read_back must fault
    // every page back in from disk and see the damage.
    let manager = SpillManager::new(0, dir.clone());
    let journal = TraceJournal::new();
    let t = clickstream(700, 13);
    let handle = manager.spill_table(&t, &journal).unwrap();
    // Flip one payload byte inside a data page (slot 1, past its header).
    let path = dir.join("run-000000.pages");
    let mut raw = std::fs::read(&path).unwrap();
    raw[PAGE_SIZE + 100] ^= 0xFF;
    std::fs::write(&path, &raw).unwrap();
    let err = manager
        .read_back(&handle, &journal)
        .expect_err("a flipped page must not decode");
    assert!(
        matches!(err, FlowError::Spill(_)),
        "classified as a spill error: {err:?}"
    );
    assert!(err.to_string().contains("crc mismatch"), "{err}");
    drop(manager);
}

#[test]
fn interior_bit_flip_in_a_wave_file_is_classified_corruption() {
    let root = tmp_dir("wave-flip");
    let mut engine = Engine::new(EngineConfig::default().with_threads(2).with_checkpoint(
        CheckpointSpec {
            root: root.clone(),
            run_id: "flip-run".into(),
            resume: false,
        },
    ));
    engine.register("clicks", clickstream(2_000, 7)).unwrap();
    engine
        .run_checkpointed(&wide_flow(&engine), "flip-run")
        .unwrap();
    let wave = root.join("flip-run").join("wave-0000.ckpt");
    let mut raw = std::fs::read(&wave).unwrap();
    let mid = raw.len() / 2;
    raw[mid] ^= 0xFF;
    std::fs::write(&wave, &raw).unwrap();
    // The resume path refuses the wave with a classified error…
    let mut resumer = Engine::new(
        EngineConfig::default()
            .with_threads(2)
            .with_checkpoint(CheckpointSpec::new(&root, "flip-run")),
    );
    resumer.register("clicks", clickstream(2_000, 7)).unwrap();
    let err = resumer
        .resume(&wide_flow(&resumer), "flip-run")
        .expect_err("a flipped wave must not restore");
    assert!(
        matches!(err, FlowError::Checkpoint(_)),
        "classified as a checkpoint error: {err:?}"
    );
    assert!(err.to_string().contains("corrupt wave file"), "{err}");
    // …and fsck agrees.
    let arts = toreador_dataflow::fsck::scan_tree(&root).unwrap();
    let bad = arts.iter().find(|a| a.path == wave).unwrap();
    assert!(bad.verdict.is_corrupt(), "{:?}", bad.verdict);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn streaming_ack_log_rides_the_same_seam() {
    // The durable ack log is a DurableLog under the hood; prove the
    // injector reaches it through the store scanner by tearing its WAL
    // and watching fsck classify it.
    let dir = tmp_dir("ack-log");
    {
        use toreador_store::log::{DurableLog, LogConfig};
        let (mut log, _) = DurableLog::open(&dir, LogConfig::default()).unwrap();
        for i in 0..4 {
            log.append(format!("ack-{i}").as_bytes()).unwrap();
        }
        log.sync().unwrap();
    }
    let seg = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "log"))
        .unwrap();
    let len = std::fs::metadata(&seg).unwrap().len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&seg)
        .unwrap()
        .set_len(len - 2)
        .unwrap();
    let arts = scan_store_dir(&dir).unwrap();
    assert!(
        arts.iter().any(|a| matches!(
            a.verdict,
            toreador_store::fsck::Verdict::TruncatableTail { .. }
        )),
        "{arts:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
