//! The kill-resume invariant, proven exhaustively: a multi-stage flow on a
//! 16-thread pool is killed at *every* stage boundary in turn; each killed
//! run is resumed by a fresh engine (a stand-in for a fresh process) and
//! must produce byte-identical output to the unkilled baseline — with every
//! checkpointed wave restored, never recomputed. Restores are proven from
//! the trace journal: `StageRestored` events appear, and the resumed run's
//! `TaskStarted` count drops by exactly the restored waves' task counts
//! (zero when the kill hit the last boundary).
//!
//! Stale-checkpoint safety rides along: resuming after the plan, the input
//! data, or the wave-shaping engine config changes must refuse with
//! `FlowError::StaleCheckpoint` naming what changed.

use std::path::{Path, PathBuf};

use bytes::BytesMut;

use toreador_data::generate::clickstream;
use toreador_dataflow::error::FlowError;
use toreador_dataflow::fault::KillMode;
use toreador_dataflow::logical::{AggExpr, AggFunc, Dataflow};
use toreador_dataflow::prelude::*;
use toreador_dataflow::resilience::{classify, ErrorClass, ResilienceConfig};
use toreador_dataflow::shuffle::encode_table;
use toreador_dataflow::trace::{RunTrace, TraceEventKind};

const THREADS: usize = 16;
const ROWS: usize = 2_000;
const SEED: u64 = 42;

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("toreador-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn engine_with(root: &Path, resilience: ResilienceConfig) -> Engine {
    let mut e = Engine::new(
        EngineConfig::default()
            .with_threads(THREADS)
            .with_checkpoint(CheckpointSpec::new(root.to_path_buf(), "unused"))
            .with_resilience(resilience),
    );
    e.register("clicks", clickstream(ROWS, SEED)).unwrap();
    e
}

/// The multi-stage workload: narrow filter, aggregate (map + reduce waves),
/// sort — several shuffle boundaries to kill at.
fn flow_of(e: &Engine) -> Dataflow {
    e.flow("clicks")
        .unwrap()
        .filter(col("action").eq(lit("purchase")))
        .unwrap()
        .aggregate(
            &["country"],
            vec![
                AggExpr::new(AggFunc::Sum, "price", "revenue"),
                AggExpr::new(AggFunc::Count, "event_id", "n"),
            ],
        )
        .unwrap()
        .sort(&["revenue"], true)
        .unwrap()
}

fn count_kind(trace: &RunTrace, pred: impl Fn(&TraceEventKind) -> bool) -> usize {
    trace.events.iter().filter(|e| pred(&e.kind)).count()
}

fn started(trace: &RunTrace) -> usize {
    count_kind(trace, |k| matches!(k, TraceEventKind::TaskStarted { .. }))
}

/// Wave index → partition count, read off the checkpoint events.
fn wave_partitions(trace: &RunTrace) -> Vec<usize> {
    let mut waves: Vec<(usize, usize)> = trace
        .events
        .iter()
        .filter_map(|e| match e.kind {
            TraceEventKind::StageCheckpointed {
                wave, partitions, ..
            } => Some((wave, partitions)),
            _ => None,
        })
        .collect();
    waves.sort_unstable();
    waves.into_iter().map(|(_, p)| p).collect()
}

#[test]
fn kill_at_every_boundary_then_resume_is_byte_identical() {
    let root = temp_root("exhaustive");

    // Unkilled checkpointed baseline: fixes the output bytes and the wave
    // layout (how many waves, how many tasks each).
    let calm = engine_with(&root, ResilienceConfig::none());
    let baseline = calm.run_checkpointed(&flow_of(&calm), "baseline").unwrap();
    let waves = wave_partitions(&baseline.trace);
    assert!(
        waves.len() >= 3,
        "workload must span several boundaries, got {} waves",
        waves.len()
    );
    let baseline_started = started(&baseline.trace);
    assert_eq!(
        baseline_started,
        waves.iter().sum::<usize>(),
        "fault-free: one attempt per task per wave"
    );
    let mut baseline_bytes = BytesMut::new();
    encode_table(&baseline.table, &mut baseline_bytes);

    for kill_wave in 0..waves.len() {
        let run_id = format!("killed-at-{kill_wave}");

        // Kill (in-process halt) at this boundary: the wave just executed
        // is already durable when the run dies.
        let doomed = engine_with(
            &root,
            ResilienceConfig::none()
                .with_chaos(ChaosPlan::none().with_boundary_kill(kill_wave, KillMode::Halt)),
        );
        let err = doomed
            .run_checkpointed(&flow_of(&doomed), &run_id)
            .unwrap_err();
        match err {
            FlowError::KilledAtBoundary { wave, .. } => assert_eq!(wave, kill_wave),
            other => panic!("boundary {kill_wave}: expected KilledAtBoundary, got {other}"),
        }
        assert_eq!(classify(&err), ErrorClass::Permanent);

        // Resume with a fresh engine — fresh process, same campaign.
        let revived = engine_with(&root, ResilienceConfig::none());
        let resumed = revived.resume(&flow_of(&revived), &run_id).unwrap();

        // Byte-identical output.
        assert_eq!(resumed.table, baseline.table, "boundary {kill_wave}");
        let mut resumed_bytes = BytesMut::new();
        encode_table(&resumed.table, &mut resumed_bytes);
        assert_eq!(
            resumed_bytes, baseline_bytes,
            "boundary {kill_wave}: output must be byte-identical"
        );

        // Waves 0..=kill_wave were checkpointed before death: all restored,
        // none recomputed. The journal proves it.
        let restored = count_kind(&resumed.trace, |k| {
            matches!(k, TraceEventKind::StageRestored { .. })
        });
        assert_eq!(restored, kill_wave + 1, "boundary {kill_wave}");
        let skipped_tasks: usize = waves[..=kill_wave].iter().sum();
        assert_eq!(
            started(&resumed.trace),
            baseline_started - skipped_tasks,
            "boundary {kill_wave}: restored waves must not start tasks"
        );
        // The resumed run re-checkpoints only the waves it actually ran.
        assert_eq!(
            wave_partitions(&resumed.trace).len(),
            waves.len() - (kill_wave + 1),
            "boundary {kill_wave}"
        );
    }

    // Killing at the LAST boundary means the resume recomputes nothing at
    // all: zero TaskStarted in the whole resumed run.
    let last = waves.len() - 1;
    let revived = engine_with(&root, ResilienceConfig::none());
    let resumed = revived
        .resume(&flow_of(&revived), format!("killed-at-{last}"))
        .unwrap();
    assert_eq!(resumed.table, baseline.table);
    assert_eq!(started(&resumed.trace), 0, "nothing left to compute");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn pipelined_fused_chain_kill_resume_is_byte_identical() {
    // The morsel-pipelined variant of the exhaustive boundary kill: the
    // leading filter->project chain fuses into one independent morsel wave
    // of ~125 sixteen-row units on a 16-thread pool (so its checkpoint is
    // assembled from stolen and home-run morsels alike), followed by the
    // serial map-side aggregation wave. Killing at every boundary and
    // resuming with a fresh engine must stay byte-identical, restoring
    // every completed wave.
    let root = temp_root("morsel");
    let engine_m = |resilience: ResilienceConfig| {
        let mut e = Engine::new(
            EngineConfig::default()
                .with_threads(THREADS)
                .with_morsel_rows(16)
                .with_checkpoint(CheckpointSpec::new(root.clone(), "unused"))
                .with_resilience(resilience),
        );
        e.register("clicks", clickstream(ROWS, SEED)).unwrap();
        e
    };
    let chain_flow = |e: &Engine| {
        e.flow("clicks")
            .unwrap()
            .filter(col("action").eq(lit("purchase")))
            .unwrap()
            .project(vec![
                ("country", col("country")),
                ("price", col("price").mul(lit(2.0))),
            ])
            .unwrap()
            .aggregate(
                &["country"],
                vec![AggExpr::new(AggFunc::Sum, "price", "revenue")],
            )
            .unwrap()
            .sort(&["revenue"], true)
            .unwrap()
    };

    let calm = engine_m(ResilienceConfig::none());
    let baseline = calm
        .run_checkpointed(&chain_flow(&calm), "baseline")
        .unwrap();
    assert!(
        baseline.trace.pipeline_totals().pipelines >= 2,
        "both the fused chain and the aggregation map side must pipeline"
    );
    let waves = wave_partitions(&baseline.trace);
    assert!(waves.len() >= 3, "got {} waves", waves.len());
    let mut baseline_bytes = BytesMut::new();
    encode_table(&baseline.table, &mut baseline_bytes);

    for kill_wave in 0..waves.len() {
        let run_id = format!("killed-at-{kill_wave}");
        let doomed = engine_m(
            ResilienceConfig::none()
                .with_chaos(ChaosPlan::none().with_boundary_kill(kill_wave, KillMode::Halt)),
        );
        let err = doomed
            .run_checkpointed(&chain_flow(&doomed), &run_id)
            .unwrap_err();
        assert!(
            matches!(err, FlowError::KilledAtBoundary { wave, .. } if wave == kill_wave),
            "boundary {kill_wave}: {err}"
        );

        let revived = engine_m(ResilienceConfig::none());
        let resumed = revived.resume(&chain_flow(&revived), &run_id).unwrap();
        let mut resumed_bytes = BytesMut::new();
        encode_table(&resumed.table, &mut resumed_bytes);
        assert_eq!(
            resumed_bytes, baseline_bytes,
            "boundary {kill_wave}: resumed pipelined output must be byte-identical"
        );
        let restored = count_kind(&resumed.trace, |k| {
            matches!(k, TraceEventKind::StageRestored { .. })
        });
        assert_eq!(restored, kill_wave + 1, "boundary {kill_wave}");
    }

    // The scheduler mode shapes what the journal (and any mid-wave state)
    // means, so a pipelined checkpoint refuses to resume on a barrier-mode
    // engine: the config fingerprint names the mismatch.
    let mut barrier = Engine::new(
        EngineConfig::default()
            .with_threads(THREADS)
            .with_pipelined(false)
            .with_morsel_rows(16)
            .with_checkpoint(CheckpointSpec::new(root.clone(), "unused")),
    );
    barrier.register("clicks", clickstream(ROWS, SEED)).unwrap();
    match barrier.resume(&chain_flow(&barrier), "baseline") {
        Err(FlowError::StaleCheckpoint { mismatch, .. }) => assert_eq!(mismatch, "engine config"),
        other => panic!("expected StaleCheckpoint(engine config), got {other:?}"),
    }

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn resume_refuses_stale_checkpoints_with_named_mismatch() {
    let root = temp_root("stale");
    let calm = engine_with(&root, ResilienceConfig::none());
    calm.run_checkpointed(&flow_of(&calm), "victim").unwrap();

    // Plan changed: same engine, different flow.
    let other_flow = calm
        .flow("clicks")
        .unwrap()
        .filter(col("action").eq(lit("cart")))
        .unwrap()
        .aggregate(
            &["country"],
            vec![
                AggExpr::new(AggFunc::Sum, "price", "revenue"),
                AggExpr::new(AggFunc::Count, "event_id", "n"),
            ],
        )
        .unwrap()
        .sort(&["revenue"], true)
        .unwrap();
    match calm.resume(&other_flow, "victim") {
        Err(FlowError::StaleCheckpoint { mismatch, .. }) => assert_eq!(mismatch, "plan"),
        other => panic!("expected StaleCheckpoint(plan), got {other:?}"),
    }

    // Inputs changed: same plan, different data under the same name.
    let mut reseeded = Engine::new(
        EngineConfig::default()
            .with_threads(THREADS)
            .with_checkpoint(CheckpointSpec::new(root.clone(), "unused")),
    );
    reseeded
        .register("clicks", clickstream(ROWS, SEED + 1))
        .unwrap();
    match reseeded.resume(&flow_of(&reseeded), "victim") {
        Err(FlowError::StaleCheckpoint { mismatch, .. }) => assert_eq!(mismatch, "inputs"),
        other => panic!("expected StaleCheckpoint(inputs), got {other:?}"),
    }

    // Engine config changed: different partition count reshapes every wave.
    let mut repartitioned = Engine::new(
        EngineConfig::default()
            .with_threads(THREADS)
            .with_partitions(7)
            .with_checkpoint(CheckpointSpec::new(root.clone(), "unused")),
    );
    repartitioned
        .register("clicks", clickstream(ROWS, SEED))
        .unwrap();
    match repartitioned.resume(&flow_of(&repartitioned), "victim") {
        Err(FlowError::StaleCheckpoint { mismatch, .. }) => assert_eq!(mismatch, "engine config"),
        other => panic!("expected StaleCheckpoint(engine config), got {other:?}"),
    }

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn resume_of_an_unknown_run_id_starts_fresh() {
    // Resuming a run that never checkpointed anything is just running it —
    // the campaign path relies on this for engines a kill prevented from
    // ever starting.
    let root = temp_root("fresh");
    let e = engine_with(&root, ResilienceConfig::none());
    let r = e.resume(&flow_of(&e), "never-ran").unwrap();
    assert!(r.table.num_rows() > 0);
    assert_eq!(
        count_kind(&r.trace, |k| matches!(
            k,
            TraceEventKind::StageRestored { .. }
        )),
        0
    );
    assert!(!wave_partitions(&r.trace).is_empty(), "it checkpointed");
    // And the run it just recorded is itself resumable.
    let again = e.resume(&flow_of(&e), "never-ran").unwrap();
    assert_eq!(again.table, r.table);
    assert_eq!(started(&again.trace), 0);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn checkpoint_off_engines_have_no_checkpoint_surface() {
    // No checkpoint spec configured: run() never writes anything, and the
    // named entry points refuse rather than guessing a directory.
    let mut e = Engine::new(EngineConfig::default().with_threads(4));
    e.register("clicks", clickstream(500, 1)).unwrap();
    let r = e.run(&flow_of(&e)).unwrap();
    assert_eq!(wave_partitions(&r.trace).len(), 0);
    assert!(matches!(
        e.run_checkpointed(&flow_of(&e), "x"),
        Err(FlowError::Checkpoint(_))
    ));
    assert!(matches!(
        e.resume(&flow_of(&e), "x"),
        Err(FlowError::Checkpoint(_))
    ));
}

#[test]
fn checkpointing_does_not_change_results_or_metrics_parity() {
    let root = temp_root("parity");
    let mut plain = Engine::new(EngineConfig::default().with_threads(THREADS));
    plain.register("clicks", clickstream(ROWS, SEED)).unwrap();
    let a = plain.run(&flow_of(&plain)).unwrap();

    let ck = engine_with(&root, ResilienceConfig::none());
    let b = ck.run_checkpointed(&flow_of(&ck), "parity").unwrap();
    assert_eq!(a.table, b.table, "checkpointing must not change results");
    // Checkpoint events are journal-only: derived metrics still match the
    // run's reported metrics (the flight-recorder invariant).
    assert_eq!(
        b.trace.derive_metrics(
            b.metrics.total_elapsed_us,
            b.metrics.result_rows,
            b.metrics.result_partitions
        ),
        b.metrics
    );
    let _ = std::fs::remove_dir_all(&root);
}
