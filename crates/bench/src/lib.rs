//! Shared fixtures for the experiment benchmarks (E1-E7, DESIGN.md §4).

use toreador_core::compile::Bdaas;
use toreador_core::declarative::CampaignSpec;
use toreador_data::table::Table;

/// A campaign with `n` chained filtering goals plus a final aggregation —
/// the goal-count sweep used by E1.
pub fn spec_with_goals(n: usize) -> String {
    let mut dsl = String::from("campaign sweep on clicks\nseed 1\n");
    for i in 0..n.saturating_sub(1) {
        dsl.push_str(&format!(
            "goal filtering predicate=\"price > {}\"\n",
            i as f64 / 100.0
        ));
    }
    dsl.push_str("goal aggregation group_by=country agg=sum:price:revenue\n");
    dsl
}

/// Parse + compile helper used by several benches.
pub fn compile(bdaas: &Bdaas, dsl: &str, data: &Table) -> toreador_core::compile::CompiledCampaign {
    let spec = bdaas.parse(dsl).expect("bench DSL parses");
    bdaas
        .compile(&spec, data.schema(), data.num_rows())
        .expect("bench campaign compiles")
}

/// Compile an already-built spec.
pub fn compile_spec(
    bdaas: &Bdaas,
    spec: &CampaignSpec,
    data: &Table,
) -> toreador_core::compile::CompiledCampaign {
    bdaas
        .compile(spec, data.schema(), data.num_rows())
        .expect("bench campaign compiles")
}

/// Print a labelled experiment table header to stderr (the benches print
/// the paper-shaped series around the criterion measurements).
pub fn table_header(experiment: &str, claim: &str) {
    eprintln!();
    eprintln!("==== {experiment}: {claim}");
}
