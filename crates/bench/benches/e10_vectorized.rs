//! E10 — what plan-time binding and batch kernels buy (DESIGN.md §9).
//! Two series over the clickstream scenario: (1) kernel-level
//! filter+project on one large partition — bound-expression selection
//! vectors and column kernels against the row-at-a-time interpreter that
//! doubles as the differential-testing oracle; (2) the same narrow chain
//! through the engine under its three execution modes (row, vectorized,
//! vectorized+fused), with the per-operator batch counts the flight
//! recorder journals for each mode.
//!
//! Set `E10_QUICK=1` to shrink the series for CI smoke runs.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use toreador_bench::table_header;
use toreador_data::generate::clickstream;
use toreador_data::table::Table;
use toreador_dataflow::expr::{col, lit, Expr, Func};
use toreador_dataflow::logical::Dataflow;
use toreador_dataflow::session::{Engine, EngineConfig};
use toreador_dataflow::vexpr::BoundExpr;

/// Rows in the kernel-level series; the engine series reuses the table.
fn series_rows() -> usize {
    if quick() {
        100_000
    } else {
        1_000_000
    }
}

fn quick() -> bool {
    std::env::var("E10_QUICK").is_ok_and(|v| v == "1")
}

/// The narrow chain both series run: a selective predicate over a
/// nullable Float and a Str column, then three projections exercising
/// the Float, Int, and Str kernels.
fn predicate() -> Expr {
    col("price")
        .gt(lit(50.0))
        .and(col("action").not_eq(lit("view")))
}

fn projections() -> Vec<(&'static str, Expr)> {
    vec![
        ("revenue", col("price").mul(lit(0.85))),
        ("account", col("user_id").add(col("product_id"))),
        ("tag_len", Expr::call(Func::Length, vec![col("category")])),
    ]
}

/// Row oracle: boolean mask via the row interpreter, materialise the
/// kept rows, then interpret every projection row by row.
fn run_row_oracle(t: &Table, pred: &Expr, projs: &[(&str, Expr)]) -> usize {
    let mask = pred.eval_mask_checked(t).expect("oracle mask");
    let kept = t.filter(&mask).expect("oracle filter");
    for (_, e) in projs {
        black_box(e.eval_table(&kept).expect("oracle projection"));
    }
    kept.num_rows()
}

/// Vectorized path: selection vector from the bound predicate, a single
/// gather, then one batch kernel per bound projection. Binding happens
/// once outside the timed region — that is the plan-time contract.
fn run_vectorized(t: &Table, pred: &BoundExpr, projs: &[BoundExpr]) -> usize {
    let sel = pred.eval_selection(t).expect("bound selection");
    let kept = t.take_sel(&sel).expect("gather");
    for b in projs {
        black_box(b.eval_column(&kept).expect("bound projection"));
    }
    kept.num_rows()
}

fn best_of<F: FnMut() -> usize>(reps: usize, mut f: F) -> (Duration, usize) {
    let mut best = Duration::MAX;
    let mut rows = 0;
    for _ in 0..reps {
        let started = Instant::now();
        rows = f();
        best = best.min(started.elapsed());
    }
    (best, rows)
}

/// Build the filter+project flow the engine series measures.
fn narrow_flow(engine: &Engine) -> Dataflow {
    engine
        .flow("clicks")
        .expect("dataset registered")
        .filter(predicate())
        .expect("filter binds")
        .project(projections())
        .expect("projection binds")
}

fn engine_with(vectorized: bool, fused: bool, data: Table) -> Engine {
    let mut engine = Engine::new(
        EngineConfig::default()
            .with_threads(4)
            .with_partitions(4)
            .with_vectorized(vectorized)
            .with_fuse_narrow(fused),
    );
    engine.register("clicks", data).expect("register");
    engine
}

fn print_series() {
    let rows = series_rows();
    let reps = if quick() { 2 } else { 3 };
    table_header(
        "E10",
        "vectorized filter+project vs the row oracle, and what fusion journals",
    );

    // (1) Kernel-level: one partition, binding hoisted out of the loop.
    let t = clickstream(rows, 42);
    let pred = predicate();
    let projs = projections();
    let bound_pred = BoundExpr::bind(&pred, t.schema()).expect("predicate binds");
    let bound_projs: Vec<BoundExpr> = projs
        .iter()
        .map(|(_, e)| BoundExpr::bind(e, t.schema()).expect("projection binds"))
        .collect();

    let (row_t, row_rows) = best_of(reps, || run_row_oracle(&t, &pred, &projs));
    let (vec_t, vec_rows) = best_of(reps, || run_vectorized(&t, &bound_pred, &bound_projs));
    assert_eq!(row_rows, vec_rows, "both paths keep the same rows");

    eprintln!(
        "{:>28} {:>12} {:>10} {:>9}",
        "kernel series", "elapsed ms", "rows kept", "speedup"
    );
    eprintln!(
        "{:>28} {:>12.2} {:>10} {:>9}",
        "row oracle",
        row_t.as_secs_f64() * 1e3,
        row_rows,
        "1.0x"
    );
    eprintln!(
        "{:>28} {:>12.2} {:>10} {:>8.1}x",
        "vectorized (bound)",
        vec_t.as_secs_f64() * 1e3,
        vec_rows,
        row_t.as_secs_f64() / vec_t.as_secs_f64()
    );

    // (2) Engine-level: the same chain through the scheduler under the
    // three execution modes, plus the batch counts each mode journals.
    eprintln!(
        "{:>28} {:>12} {:>10} {:>9}",
        "engine series", "elapsed ms", "batches", "speedup"
    );
    let mut baseline = None;
    for (label, vectorized, fused) in [
        ("row-at-a-time", false, false),
        ("vectorized, unfused", true, false),
        ("vectorized + fused", true, true),
    ] {
        let engine = engine_with(vectorized, fused, t.clone());
        let flow = narrow_flow(&engine);
        let mut best = Duration::MAX;
        let mut batches = 0u64;
        let mut any_fused = false;
        for _ in 0..reps {
            let started = Instant::now();
            let result = engine.run(&flow).expect("run succeeds");
            best = best.min(started.elapsed());
            batches = result.trace.operator_batches().values().map(|b| b.0).sum();
            any_fused = result.trace.operator_batches().values().any(|b| b.1);
        }
        let base = *baseline.get_or_insert(best);
        eprintln!(
            "{:>28} {:>12.2} {:>7} {:>2} {:>8.1}x",
            label,
            best.as_secs_f64() * 1e3,
            batches,
            if any_fused { "f" } else { "" },
            base.as_secs_f64() / best.as_secs_f64()
        );
    }
    eprintln!("  (batches: journalled OperatorBatches totals; f = fused chain)");
}

fn bench_vectorized(c: &mut Criterion) {
    print_series();

    // Stable statistics on a smaller table so criterion's iteration
    // calibration stays cheap.
    let t = clickstream(if quick() { 20_000 } else { 100_000 }, 7);
    let pred = predicate();
    let projs = projections();
    let bound_pred = BoundExpr::bind(&pred, t.schema()).expect("predicate binds");
    let bound_projs: Vec<BoundExpr> = projs
        .iter()
        .map(|(_, e)| BoundExpr::bind(e, t.schema()).expect("projection binds"))
        .collect();

    let mut group = c.benchmark_group("e10_filter_project");
    group.sample_size(10);
    group.bench_function("row_oracle", |b| {
        b.iter(|| run_row_oracle(&t, &pred, &projs))
    });
    group.bench_function("vectorized", |b| {
        b.iter(|| run_vectorized(&t, &bound_pred, &bound_projs))
    });
    let engine = engine_with(true, true, t.clone());
    let flow = narrow_flow(&engine);
    group.bench_function("engine_fused", |b| {
        b.iter(|| engine.run(&flow).expect("run succeeds").table.num_rows())
    });
    group.finish();
}

criterion_group!(benches, bench_vectorized);
criterion_main!(benches);
