//! E11 — what stage-boundary checkpointing costs and what resume buys
//! (DESIGN.md §10). One multi-stage flow (filter → aggregate → sort) over
//! the clickstream scenario, across row counts: (1) checkpointing overhead
//! — the same run with the checkpoint sink on vs off, with the bytes each
//! run persisted; (2) resume latency — re-entering a fully checkpointed
//! run (every wave restored from disk, zero tasks started) against
//! recomputing it from scratch.
//!
//! Set `E11_QUICK=1` to shrink the series for CI smoke runs.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use toreador_bench::table_header;
use toreador_data::generate::clickstream;
use toreador_dataflow::checkpoint::CheckpointSpec;
use toreador_dataflow::expr::{col, lit};
use toreador_dataflow::logical::{AggExpr, AggFunc, Dataflow};
use toreador_dataflow::session::{Engine, EngineConfig};
use toreador_dataflow::trace::{RunTrace, TraceEventKind};

fn quick() -> bool {
    std::env::var("E11_QUICK").is_ok_and(|v| v == "1")
}

fn series() -> Vec<usize> {
    if quick() {
        vec![1_000, 10_000, 100_000]
    } else {
        vec![1_000, 10_000, 100_000, 1_000_000]
    }
}

fn ckpt_root() -> PathBuf {
    std::env::temp_dir().join(format!("toreador-e11-{}", std::process::id()))
}

fn engine_with(rows: usize, checkpointed: bool) -> Engine {
    let mut config = EngineConfig::default().with_threads(4).with_partitions(4);
    if checkpointed {
        config = config.with_checkpoint(CheckpointSpec::new(ckpt_root(), "unused"));
    }
    let mut engine = Engine::new(config);
    engine
        .register("clicks", clickstream(rows, 42))
        .expect("register");
    engine
}

/// The multi-stage workload: several shuffle boundaries, so a checkpointed
/// run persists several waves.
fn flow_of(engine: &Engine) -> Dataflow {
    engine
        .flow("clicks")
        .expect("dataset registered")
        .filter(col("action").eq(lit("purchase")))
        .expect("filter binds")
        .aggregate(
            &["country"],
            vec![
                AggExpr::new(AggFunc::Sum, "price", "revenue"),
                AggExpr::new(AggFunc::Count, "event_id", "n"),
            ],
        )
        .expect("aggregate binds")
        .sort(&["revenue"], true)
        .expect("sort binds")
}

fn checkpointed_bytes(trace: &RunTrace) -> u64 {
    trace
        .events
        .iter()
        .map(|e| match e.kind {
            TraceEventKind::StageCheckpointed { bytes, .. } => bytes,
            _ => 0,
        })
        .sum()
}

fn restored_waves(trace: &RunTrace) -> usize {
    trace
        .events
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::StageRestored { .. }))
        .count()
}

fn best_of<F: FnMut() -> u64>(reps: usize, mut f: F) -> (Duration, u64) {
    let mut best = Duration::MAX;
    let mut meta = 0;
    for _ in 0..reps {
        let started = Instant::now();
        meta = f();
        best = best.min(started.elapsed());
    }
    (best, meta)
}

fn print_series() {
    let reps = if quick() { 2 } else { 3 };
    table_header(
        "E11",
        "stage-boundary checkpoint overhead, and resume vs recompute",
    );
    eprintln!(
        "{:>10} {:>12} {:>14} {:>9} {:>10} {:>12} {:>9}",
        "rows", "plain ms", "checkpoint ms", "overhead", "ckpt KiB", "resume ms", "speedup"
    );
    for rows in series() {
        let plain = engine_with(rows, false);
        let flow = flow_of(&plain);
        let (plain_t, _) = best_of(reps, || {
            plain.run(&flow).expect("plain run").table.num_rows() as u64
        });

        let ck = engine_with(rows, true);
        let flow = flow_of(&ck);
        let run_id = format!("e11-{rows}");
        // Each rep re-creates the checkpoint from scratch: full write cost.
        let (ck_t, bytes) = best_of(reps, || {
            let r = ck.run_checkpointed(&flow, &run_id).expect("checkpointed");
            checkpointed_bytes(&r.trace)
        });

        // The run above left a complete checkpoint; every resume restores
        // all of it and computes nothing.
        let (resume_t, restored) = best_of(reps, || {
            let r = ck.resume(&flow, &run_id).expect("resume");
            restored_waves(&r.trace) as u64
        });
        assert!(restored > 0, "resume must restore the checkpointed waves");

        eprintln!(
            "{:>10} {:>12.2} {:>14.2} {:>8.1}% {:>10.1} {:>12.2} {:>8.1}x",
            rows,
            plain_t.as_secs_f64() * 1e3,
            ck_t.as_secs_f64() * 1e3,
            (ck_t.as_secs_f64() / plain_t.as_secs_f64() - 1.0) * 100.0,
            bytes as f64 / 1024.0,
            resume_t.as_secs_f64() * 1e3,
            plain_t.as_secs_f64() / resume_t.as_secs_f64(),
        );
    }
    eprintln!("  (overhead: checkpointed run vs plain; speedup: recompute time / resume time)");
    let _ = std::fs::remove_dir_all(ckpt_root());
}

fn bench_checkpoint(c: &mut Criterion) {
    print_series();

    // Stable statistics on one mid-sized table.
    let rows = if quick() { 20_000 } else { 100_000 };
    let plain = engine_with(rows, false);
    let plain_flow = flow_of(&plain);
    let ck = engine_with(rows, true);
    let ck_flow = flow_of(&ck);
    ck.run_checkpointed(&ck_flow, "bench-resume")
        .expect("seed the resume checkpoint");

    let mut group = c.benchmark_group("e11_checkpoint");
    group.sample_size(10);
    group.bench_function("run_plain", |b| {
        b.iter(|| plain.run(&plain_flow).expect("plain").table.num_rows())
    });
    group.bench_function("run_checkpointed", |b| {
        b.iter(|| {
            ck.run_checkpointed(&ck_flow, "bench-write")
                .expect("checkpointed")
                .table
                .num_rows()
        })
    });
    group.bench_function("resume_restored", |b| {
        b.iter(|| {
            ck.resume(&ck_flow, "bench-resume")
                .expect("resume")
                .table
                .num_rows()
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(ckpt_root());
}

criterion_group!(benches, bench_checkpoint);
criterion_main!(benches);
