//! E8 — the campaign store's durability tax (DESIGN.md §7). Two questions:
//! how fast can the WAL absorb run records, and how long does a cold start
//! take to replay a log that grew all week? The sweep covers 1k..100k
//! records, with and without a snapshot to show what compaction buys.

use std::path::PathBuf;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use toreador_bench::table_header;
use toreador_store::{DurableLog, LogConfig};

/// A payload the size of a typical run-record envelope line.
const PAYLOAD_BYTES: usize = 160;

fn payload(i: usize) -> Vec<u8> {
    let mut p = format!("{{\"t\":\"run\",\"trainee\":\"bench\",\"id\":{i},\"v\":\"").into_bytes();
    while p.len() < PAYLOAD_BYTES - 2 {
        p.push(b'x');
    }
    p.extend_from_slice(b"\"}");
    p
}

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("toreador-e8-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Build a log of `n` records; returns the directory. One sync at the end
/// (group-commit style), segments at the default 1 MiB.
fn build_log(tag: &str, n: usize) -> PathBuf {
    let dir = bench_dir(tag);
    let (mut log, _) = DurableLog::open(&dir, LogConfig::default()).unwrap();
    for i in 0..n {
        log.append(&payload(i)).unwrap();
    }
    log.sync().unwrap();
    dir
}

fn print_series() {
    table_header(
        "E8",
        "store append throughput and cold-recovery latency vs log size",
    );
    eprintln!(
        "{:>9} {:>14} {:>14} {:>18} {:>20}",
        "records", "append ms", "records/s", "cold recovery ms", "post-snapshot ms"
    );
    for &n in &[1_000usize, 10_000, 100_000] {
        let dir = bench_dir(&format!("series-{n}"));
        let started = std::time::Instant::now();
        let (mut log, _) = DurableLog::open(&dir, LogConfig::default()).unwrap();
        for i in 0..n {
            log.append(&payload(i)).unwrap();
        }
        log.sync().unwrap();
        let append = started.elapsed();
        drop(log);

        let started = std::time::Instant::now();
        let (mut log, rec) = DurableLog::open(&dir, LogConfig::default()).unwrap();
        let recover = started.elapsed();
        assert_eq!(rec.records.len(), n);

        // Compact the whole history into a snapshot, then reopen: recovery
        // now reads one state blob instead of replaying n records.
        let state: Vec<u8> = rec.records.iter().flat_map(|(_, p)| p.clone()).collect();
        log.snapshot(&state).unwrap();
        drop(log);
        let started = std::time::Instant::now();
        let (_, rec) = DurableLog::open(&dir, LogConfig::default()).unwrap();
        let recover_snap = started.elapsed();
        assert_eq!(rec.snapshot_lsn, n as u64);
        assert!(rec.records.is_empty());

        eprintln!(
            "{n:>9} {:>14.1} {:>14.0} {:>18.2} {:>20.2}",
            append.as_secs_f64() * 1e3,
            n as f64 / append.as_secs_f64(),
            recover.as_secs_f64() * 1e3,
            recover_snap.as_secs_f64() * 1e3,
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    eprintln!(
        "\n(appends are group-committed: one fsync per batch; the typed \
         LabStore syncs every commit)"
    );
}

fn bench_store(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("e8_store");
    group.sample_size(10);

    // Append path: 1k records + one durable sync per iteration.
    group.bench_function("append_1k_group_commit", |b| {
        b.iter(|| {
            let dir = bench_dir("append");
            let (mut log, _) = DurableLog::open(&dir, LogConfig::default()).unwrap();
            for i in 0..1_000 {
                log.append(&payload(i)).unwrap();
            }
            log.sync().unwrap();
            drop(log);
            let _ = std::fs::remove_dir_all(&dir);
        });
    });

    // Per-record fsync, the LabStore discipline: 50 commits.
    group.bench_function("append_50_fsync_each", |b| {
        b.iter(|| {
            let dir = bench_dir("fsync");
            let (mut log, _) = DurableLog::open(&dir, LogConfig::default()).unwrap();
            for i in 0..50 {
                log.append(&payload(i)).unwrap();
                log.sync().unwrap();
            }
            drop(log);
            let _ = std::fs::remove_dir_all(&dir);
        });
    });

    // Cold recovery: replay a prebuilt log (open is read-only on the
    // prefix, so the same directory serves every sample).
    for &n in &[1_000usize, 10_000] {
        let dir = build_log(&format!("recover-{n}"), n);
        group.bench_with_input(BenchmarkId::new("cold_recovery", n), &dir, |b, dir| {
            b.iter(|| {
                let (_, rec) = DurableLog::open(dir, LogConfig::default()).unwrap();
                assert_eq!(rec.records.len(), n);
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
