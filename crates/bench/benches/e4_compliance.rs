//! E4 — §1/§2's "regulatory barrier": regulatory constraints are
//! first-class objectives, checked before execution and enforced during it.
//!
//! Measures (i) static compliance checking latency, (ii) the runtime
//! overhead of privacy enforcement (k-anonymity, DP) over the unprotected
//! pipeline at several data scales, and prints the overhead factors plus
//! the utility cost (suppression) — the paper-shaped trade-off series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use toreador_bench::{compile, table_header};
use toreador_core::compile::Bdaas;
use toreador_core::declarative::Indicator;
use toreador_data::generate::health_records;

fn pseudonymised(rows: usize, seed: u64) -> toreador_data::table::Table {
    health_records(rows, seed)
        .without_column("patient_id")
        .unwrap()
}

const BASELINE: &str = "campaign base on health\nseed 2\ngoal reporting using viz.report.summary\n";
const KANON: &str = r#"
campaign kanon on health
policy healthcare
seed 2
goal anonymization using privacy.kanon k=5 quasi=age,zip,sex
goal anonymization using privacy.ldiv l=2 quasi=age,zip,sex sensitive=diagnosis
goal reporting using viz.report.summary
"#;
const DP: &str = r#"
campaign dp on health
policy healthcare
seed 2
goal private_aggregation epsilon=1.0 column=cost group_by=diagnosis
"#;

fn run_us(bdaas: &Bdaas, dsl: &str, rows: usize) -> (u128, f64, f64) {
    let data = pseudonymised(rows, 3);
    let compiled = compile(bdaas, dsl, &data);
    let started = std::time::Instant::now();
    let outcome = bdaas.run(&compiled, data, &Default::default()).unwrap();
    (
        started.elapsed().as_micros(),
        outcome.indicator(Indicator::Coverage).unwrap_or(1.0),
        outcome.indicator(Indicator::PrivacyRisk).unwrap_or(1.0),
    )
}

fn print_series() {
    table_header(
        "E4",
        "privacy enforcement overhead and utility cost vs data scale",
    );
    let bdaas = Bdaas::new();
    eprintln!(
        "{:>8} {:>14} {:>14} {:>9} {:>14} {:>9} {:>9}",
        "rows", "baseline us", "kanon us", "factor", "dp us", "factor", "k-cov"
    );
    for rows in [1_000usize, 5_000, 20_000] {
        let (base, _, _) = run_us(&bdaas, BASELINE, rows);
        let (kanon, coverage, _) = run_us(&bdaas, KANON, rows);
        let (dp, _, _) = run_us(&bdaas, DP, rows);
        eprintln!(
            "{rows:>8} {base:>14} {kanon:>14} {:>9.2} {dp:>14} {:>9.2} {coverage:>9.3}",
            kanon as f64 / base as f64,
            dp as f64 / base as f64,
        );
    }
    // The compile-time gate: non-compliant campaigns are refused.
    let data = pseudonymised(500, 1);
    let naive = bdaas
        .parse(
            "campaign naive on health\npolicy healthcare\ngoal reporting using viz.report.table\n",
        )
        .unwrap();
    assert!(bdaas.compile(&naive, data.schema(), 500).is_err());
    eprintln!("compile-time gate: non-compliant campaign refused before execution: OK");
}

fn bench_compliance(c: &mut Criterion) {
    print_series();
    let bdaas = Bdaas::new();
    let mut group = c.benchmark_group("e4_compliance");
    group.sample_size(20);

    // Static check latency (manifest inference + policy evaluation) is
    // inside compile; measure the whole gate.
    let data = pseudonymised(1_000, 1);
    let spec = bdaas.parse(KANON).unwrap();
    group.bench_function("compile_with_policy_gate", |b| {
        b.iter(|| bdaas.compile(&spec, data.schema(), 1_000).unwrap());
    });

    for rows in [1_000usize, 5_000] {
        let data = pseudonymised(rows, 3);
        let base = compile(&bdaas, BASELINE, &data);
        let kanon = compile(&bdaas, KANON, &data);
        let dp = compile(&bdaas, DP, &data);
        group.bench_with_input(BenchmarkId::new("baseline", rows), &data, |b, d| {
            b.iter(|| bdaas.run(&base, d.clone(), &Default::default()).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("kanon_enforced", rows), &data, |b, d| {
            b.iter(|| bdaas.run(&kanon, d.clone(), &Default::default()).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("dp_enforced", rows), &data, |b, d| {
            b.iter(|| bdaas.run(&dp, d.clone(), &Default::default()).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compliance);
criterion_main!(benches);
