//! E2 — §3's claim that trainees "identify alternative options" and
//! "investigate the consequences of their choices".
//!
//! Measures the cost of enumerating one-change design alternatives, and
//! prints the consequence matrix across a challenge's full design space —
//! checking that at least one strict trade-off exists (no option dominates
//! on every data-derived axis).

use criterion::{criterion_group, criterion_main, Criterion};

use toreador_bench::table_header;
use toreador_core::alternatives::enumerate;
use toreador_core::compile::Bdaas;
use toreador_labs::prelude::*;

fn print_series() {
    table_header(
        "E2",
        "alternative enumeration + consequence matrices per challenge",
    );
    for c in challenges() {
        let mut session = LabSession::new("bench", Quota::unlimited(), 7);
        for vector in c.all_choice_vectors() {
            let _ = session.attempt(c.id, &vector, Some(1_000));
        }
        match session.consequences(c.id) {
            Ok(matrix) => {
                let front = matrix.pareto_front();
                eprintln!(
                    "\nchallenge {} — {} designs, Pareto front {:?}",
                    c.id,
                    matrix.rows.len(),
                    front
                        .iter()
                        .map(|&i| matrix.rows[i].1.join("/"))
                        .collect::<Vec<_>>()
                );
                eprint!("{}", matrix.render());
            }
            Err(e) => eprintln!("challenge {}: {e}", c.id),
        }
    }
}

fn bench_alternatives(c: &mut Criterion) {
    print_series();
    let bdaas = Bdaas::new();
    let challenge = challenge("health-compliance").unwrap();
    let spec = challenge
        .instantiate(&challenge.reference_vector())
        .unwrap();
    let mut group = c.benchmark_group("e2_alternatives");
    group.sample_size(30);
    group.bench_function("enumerate_one_change_designs", |b| {
        b.iter(|| enumerate(&spec, bdaas.registry(), false).unwrap().len());
    });
    // Ablation (DESIGN.md §4): full design-space sweep of one challenge.
    group.sample_size(10);
    group.bench_function("sweep_design_space_ecomm_revenue", |b| {
        b.iter(|| {
            let c = toreador_labs::catalog::challenge("ecomm-revenue").unwrap();
            let mut session = LabSession::new("s", Quota::unlimited(), 3);
            for vector in c.all_choice_vectors() {
                session.attempt(c.id, &vector, Some(500)).unwrap();
            }
            session.consequences(c.id).unwrap().pareto_front().len()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_alternatives);
criterion_main!(benches);
