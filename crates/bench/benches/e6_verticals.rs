//! E6 — §3's "simplified versions of real-life vertical scenarios":
//! end-to-end throughput of all three verticals' reference campaigns at
//! three data scales. The pass criterion (DESIGN.md §5) is that throughput
//! grows sub-linearly in rows — no accidental quadratic behaviour hides in
//! the composed pipelines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use toreador_bench::table_header;
use toreador_core::compile::Bdaas;
use toreador_labs::prelude::*;

fn run_reference(bdaas: &Bdaas, challenge_id: &str, rows: usize) -> u128 {
    let c = challenge(challenge_id).unwrap();
    let scen = scenario(c.scenario_id).unwrap();
    let spec = c.instantiate(&c.reference_vector()).unwrap();
    let data = scen.generate(rows, 9);
    let aux = scen.auxiliary();
    let compiled = bdaas.compile(&spec, data.schema(), rows).unwrap();
    let started = std::time::Instant::now();
    bdaas.run(&compiled, data, &aux).unwrap();
    started.elapsed().as_micros()
}

/// One representative challenge per vertical.
const REPRESENTATIVES: [&str; 3] = ["ecomm-revenue", "energy-forecast", "health-compliance"];

fn print_series() {
    table_header(
        "E6",
        "vertical scenario throughput at three scales (rows/second)",
    );
    let bdaas = Bdaas::new();
    eprintln!(
        "{:<20} {:>10} {:>10} {:>10}",
        "challenge", "2k", "8k", "32k"
    );
    for id in REPRESENTATIVES {
        let mut cells = Vec::new();
        for rows in [2_000usize, 8_000, 32_000] {
            let us = run_reference(&bdaas, id, rows);
            cells.push(format!("{:.0}", rows as f64 / (us as f64 / 1e6)));
        }
        eprintln!(
            "{id:<20} {:>10} {:>10} {:>10}",
            cells[0], cells[1], cells[2]
        );
    }
    // Sub-linearity check on the cheapest vertical: runtime at 32k must be
    // well under 16x the runtime at 2k (16x rows).
    let small = run_reference(&bdaas, "ecomm-revenue", 2_000);
    let large = run_reference(&bdaas, "ecomm-revenue", 32_000);
    eprintln!(
        "scaling check: 16x rows costs {:.1}x time (sub-quadratic iff << 256)",
        large as f64 / small as f64
    );
}

fn bench_verticals(c: &mut Criterion) {
    print_series();
    let bdaas = Bdaas::new();
    let mut group = c.benchmark_group("e6_verticals");
    group.sample_size(10);
    for id in REPRESENTATIVES {
        for rows in [2_000usize, 8_000] {
            group.bench_with_input(BenchmarkId::new(id, rows), &rows, |b, &rows| {
                b.iter(|| run_reference(&bdaas, id, rows));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_verticals);
criterion_main!(benches);
