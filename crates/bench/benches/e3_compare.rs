//! E3 — §3's claim that the Labs make it possible to "compare different
//! runs of a composite BDA", which professional platforms make difficult.
//!
//! Measures run-pair diffing and consequence-matrix construction as the
//! session history grows, and prints a worked diff so the fidelity claim
//! (exactly the changed fields are reported) is visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use toreador_bench::table_header;
use toreador_labs::compare::{ConsequenceMatrix, RunComparison};
use toreador_labs::prelude::*;

fn session_with_runs(n: usize) -> LabSession {
    let mut session = LabSession::new("bench", Quota::unlimited(), 11);
    let c = challenge("ecomm-revenue").unwrap();
    let vectors = c.all_choice_vectors();
    for v in vectors.iter().cycle().take(n) {
        session
            .attempt(c.id, v, Some(400))
            .expect("bench attempt runs");
    }
    session
}

fn print_series() {
    table_header("E3", "run comparison output and scaling with history size");
    let session = session_with_runs(4);
    eprintln!("{}", session.compare(1, 2).unwrap().render());
    for n in [2usize, 8, 16] {
        let session = session_with_runs(n);
        let records = session.history().to_vec();
        let started = std::time::Instant::now();
        let matrix = ConsequenceMatrix::build(&records).unwrap();
        let us = started.elapsed().as_micros();
        eprintln!(
            "history {n:>3} runs -> matrix {}x{} in {us} us, front size {}",
            matrix.rows.len(),
            matrix.indicator_names.len(),
            matrix.pareto_front().len()
        );
    }
}

fn bench_compare(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("e3_compare");
    group.sample_size(40);
    let session = session_with_runs(8);
    let a = session.run(1).unwrap().clone();
    let b = session.run(2).unwrap().clone();
    group.bench_function("diff_two_runs", |bch| {
        bch.iter(|| RunComparison::diff(&a, &b).unwrap());
    });
    for n in [4usize, 8, 16] {
        let records = session_with_runs(n).history().to_vec();
        group.bench_with_input(
            BenchmarkId::new("consequence_matrix", n),
            &records,
            |bch, r| {
                bch.iter(|| {
                    let m = ConsequenceMatrix::build(r).unwrap();
                    m.pareto_front().len()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_compare);
criterion_main!(benches);
