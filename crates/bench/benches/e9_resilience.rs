//! E9 — what resilience costs and what it buys (DESIGN.md §8). Three
//! series on the scheduler directly, where the effects are measurable in
//! isolation: (1) retry-backoff overhead under a deterministic crash rate,
//! immediate vs exponential; (2) speculation win-rate and latency on a
//! stage with a deterministic straggler; (3) cancellation latency — how
//! fast a permanent failure stops a stage that still has queued work.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use toreador_bench::table_header;
use toreador_data::generate::random_table;
use toreador_data::table::Table;
use toreador_dataflow::error::{FlowError, Result as FlowResult};
use toreador_dataflow::fault::{ChaosPlan, FaultKind, TargetedFault};
use toreador_dataflow::metrics::MetricsCollector;
use toreador_dataflow::resilience::{ResilienceConfig, RetryPolicy, SpeculationPolicy};
use toreador_dataflow::scheduler::{run_stage, SchedulerConfig};

const THREADS: usize = 8;
const TASKS: usize = 32;

fn workload() -> Vec<impl Fn() -> FlowResult<Table> + Send + Sync> {
    (0..TASKS)
        .map(|i| move || -> FlowResult<Table> { Ok(random_table(400, 4, i as u64)) })
        .collect()
}

/// One straggler partition sleeping `straggle_us`; everyone else is quick.
fn skewed_workload(straggle_us: u64) -> Vec<impl Fn() -> FlowResult<Table> + Send + Sync> {
    (0..TASKS)
        .map(move |i| {
            move || -> FlowResult<Table> {
                if i == TASKS - 1 {
                    std::thread::sleep(Duration::from_micros(straggle_us));
                }
                Ok(random_table(50, 2, i as u64))
            }
        })
        .collect()
}

fn timed_run(config: &SchedulerConfig) -> (Duration, MetricsCollector) {
    let metrics = MetricsCollector::new();
    let started = Instant::now();
    run_stage(config, &metrics, 0, workload()).unwrap();
    (started.elapsed(), metrics)
}

fn print_series() {
    table_header(
        "E9",
        "resilience cost: backoff overhead, speculation win-rate, cancellation latency",
    );

    // (1) Backoff overhead at a 20% crash rate, averaged over seeds.
    eprintln!(
        "{:>22} {:>12} {:>10} {:>12}",
        "policy", "elapsed us", "retries", "backoff us"
    );
    let policies: [(&str, Option<RetryPolicy>); 4] = [
        ("fault-free", None),
        ("immediate", Some(RetryPolicy::immediate(8))),
        ("fixed 500us", Some(RetryPolicy::fixed(8, 500))),
        (
            "expo 250..4000us",
            Some(RetryPolicy::exponential(8, 250, 4_000)),
        ),
    ];
    for (label, retry) in policies {
        let mut elapsed_us = 0u128;
        let mut retries = 0u64;
        let mut backoff_us = 0u64;
        const SEEDS: u64 = 5;
        for seed in 0..SEEDS {
            let resilience = match retry {
                None => ResilienceConfig::none(),
                Some(r) => ResilienceConfig::none()
                    .with_retry(r)
                    .with_chaos(ChaosPlan::crashes(0.2, seed)),
            };
            let config = SchedulerConfig::new(THREADS).with_resilience(resilience);
            let (elapsed, metrics) = timed_run(&config);
            let totals = metrics.trace().snapshot().resilience_totals();
            elapsed_us += elapsed.as_micros();
            retries += totals.retries;
            backoff_us += totals.backoff_us;
        }
        eprintln!(
            "{label:>22} {:>12} {:>10.1} {:>12.0}",
            elapsed_us / SEEDS as u128,
            retries as f64 / SEEDS as f64,
            backoff_us as f64 / SEEDS as f64,
        );
    }

    // (2) Speculation on a skewed stage: a deterministic 20 ms straggler.
    eprintln!(
        "\n{:>22} {:>12} {:>10} {:>8}",
        "speculation", "elapsed us", "launched", "won"
    );
    for (label, speculation) in [
        ("off", None),
        ("1.5x median", Some(SpeculationPolicy::new(1.5))),
        ("3x median", Some(SpeculationPolicy::new(3.0))),
    ] {
        let mut resilience = ResilienceConfig::none().with_chaos(
            // The straggle is injected via a targeted delay so the retried
            // (speculative) attempt of the same partition runs clean.
            ChaosPlan::none().with_targeted(TargetedFault {
                stage: 0,
                partition: TASKS - 1,
                attempt: 0,
                kind: FaultKind::Delay { micros: 20_000 },
            }),
        );
        if let Some(s) = speculation {
            resilience = resilience.with_speculation(s.with_min_samples(8));
        }
        let config = SchedulerConfig::new(THREADS).with_resilience(resilience);
        let metrics = MetricsCollector::new();
        let started = Instant::now();
        run_stage(&config, &metrics, 0, skewed_workload(0)).unwrap();
        let elapsed = started.elapsed();
        let totals = metrics.trace().snapshot().resilience_totals();
        eprintln!(
            "{label:>22} {:>12} {:>10} {:>8}",
            elapsed.as_micros(),
            totals.speculative_launched,
            totals.speculative_won,
        );
    }

    // (3) Cancellation latency: task 0 fails permanently at once while 31
    // siblings each hold a worker for 5 ms. Without cooperative
    // cancellation the stage would drain all of them (~20 ms on 8
    // workers); with it, only the in-flight wave finishes.
    let cancel_tasks = || {
        (0..TASKS)
            .map(|i| {
                move || -> FlowResult<Table> {
                    if i == 0 {
                        return Err(FlowError::Plan("poisoned partition".to_owned()));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                    Ok(random_table(10, 2, i as u64))
                }
            })
            .collect::<Vec<_>>()
    };
    let config = SchedulerConfig::new(THREADS);
    let metrics = MetricsCollector::new();
    let started = Instant::now();
    let err = run_stage(&config, &metrics, 0, cancel_tasks()).unwrap_err();
    let elapsed = started.elapsed();
    let full_drain = Duration::from_millis(5) * (TASKS as u32 - 1) / THREADS as u32;
    eprintln!(
        "\ncancellation: permanent failure stopped the stage in {} us \
         (full drain would be ~{} us): {err}",
        elapsed.as_micros(),
        full_drain.as_micros(),
    );
}

fn bench_resilience(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("e9_resilience");
    group.sample_size(10);
    group.bench_function("stage_fault_free", |b| {
        let config = SchedulerConfig::new(THREADS);
        b.iter(|| {
            let metrics = MetricsCollector::new();
            run_stage(&config, &metrics, 0, workload()).unwrap()
        });
    });
    group.bench_function("stage_crash20_immediate_retry", |b| {
        let config = SchedulerConfig::new(THREADS).with_resilience(
            ResilienceConfig::none()
                .with_retry(RetryPolicy::immediate(8))
                .with_chaos(ChaosPlan::crashes(0.2, 1)),
        );
        b.iter(|| {
            let metrics = MetricsCollector::new();
            run_stage(&config, &metrics, 0, workload()).unwrap()
        });
    });
    group.bench_function("stage_crash20_expo_backoff", |b| {
        let config = SchedulerConfig::new(THREADS).with_resilience(
            ResilienceConfig::none()
                .with_retry(RetryPolicy::exponential(8, 250, 4_000).with_jitter(0.25, 1))
                .with_chaos(ChaosPlan::crashes(0.2, 1)),
        );
        b.iter(|| {
            let metrics = MetricsCollector::new();
            run_stage(&config, &metrics, 0, workload()).unwrap()
        });
    });
    group.bench_function("skewed_stage_speculation", |b| {
        let config = SchedulerConfig::new(THREADS).with_resilience(
            ResilienceConfig::none()
                .with_speculation(SpeculationPolicy::new(1.5).with_min_samples(8))
                .with_chaos(ChaosPlan::none().with_targeted(TargetedFault {
                    stage: 0,
                    partition: TASKS - 1,
                    attempt: 0,
                    kind: FaultKind::Delay { micros: 10_000 },
                })),
        );
        b.iter(|| {
            let metrics = MetricsCollector::new();
            run_stage(&config, &metrics, 0, skewed_workload(0)).unwrap()
        });
    });
    group.bench_function("cancellation_latency", |b| {
        let config = SchedulerConfig::new(THREADS);
        b.iter(|| {
            let metrics = MetricsCollector::new();
            let tasks: Vec<_> = (0..TASKS)
                .map(|i| {
                    move || -> FlowResult<Table> {
                        if i == 0 {
                            return Err(FlowError::Plan("poisoned partition".to_owned()));
                        }
                        std::thread::sleep(Duration::from_millis(2));
                        Ok(random_table(10, 2, i as u64))
                    }
                })
                .collect();
            run_stage(&config, &metrics, 0, tasks).unwrap_err()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_resilience);
criterion_main!(benches);
