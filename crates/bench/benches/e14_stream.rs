//! E14 — what continuous streaming costs (DESIGN.md §13). The fraud event
//! stream, cut into arrival-order event windows and run through the
//! continuous loop, across row counts: (1) the durability tax — the same
//! stream with the ack WAL on vs off, with the mean dequeue-to-ack
//! latency; (2) crash-resume — the stream is killed at the midpoint ack
//! boundary and resumed, against rerunning it from scratch; the resumed
//! run replays the WAL and executes only the unacked suffix.
//!
//! Set `E14_QUICK=1` to shrink the series for CI smoke runs.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use toreador_bench::table_header;
use toreador_data::generate::fraud_stream;
use toreador_data::table::Table;
use toreador_dataflow::error::FlowError;
use toreador_dataflow::fault::KillMode;
use toreador_dataflow::logical::{AggExpr, AggFunc, Dataflow};
use toreador_dataflow::session::{Engine, EngineConfig};
use toreador_dataflow::streaming::{
    run_continuous, ArrivalSource, ContinuousRun, DurableSpec, StreamConfig,
};

const WINDOW_MS: i64 = 2_000;

fn quick() -> bool {
    std::env::var("E14_QUICK").is_ok_and(|v| v == "1")
}

fn series() -> Vec<usize> {
    if quick() {
        vec![5_000, 20_000]
    } else {
        vec![5_000, 20_000, 80_000]
    }
}

fn wal_root() -> PathBuf {
    std::env::temp_dir().join(format!("toreador-e14-{}", std::process::id()))
}

fn make_flow(e: &Engine, ds: &str) -> toreador_dataflow::error::Result<Dataflow> {
    e.flow(ds)?.aggregate(
        &["channel"],
        vec![
            AggExpr::new(AggFunc::Count, "txn_id", "n"),
            AggExpr::new(AggFunc::Sum, "amount", "total"),
        ],
    )
}

fn config() -> StreamConfig {
    StreamConfig::default()
        .with_engine(EngineConfig::default().with_threads(2))
        .with_ts_column("ts")
        .with_allowed_lateness(500)
        .with_buffer(8)
        .with_pipeline_id("e14")
}

fn run_with(table: &Table, config: &StreamConfig) -> ContinuousRun {
    let mut source = ArrivalSource::windows(table, "ts", WINDOW_MS).expect("source");
    run_continuous(
        &mut source,
        config,
        &make_flow,
        "channel",
        Some("n"),
        Some("total"),
    )
    .expect("stream run")
}

fn best_of<F: FnMut() -> u64>(reps: usize, mut f: F) -> (Duration, u64) {
    let mut best = Duration::MAX;
    let mut meta = 0;
    for _ in 0..reps {
        let started = Instant::now();
        meta = f();
        best = best.min(started.elapsed());
    }
    (best, meta)
}

fn print_series() {
    let reps = if quick() { 2 } else { 3 };
    table_header(
        "E14",
        "continuous streaming: durable ack overhead, and crash-resume vs rerun",
    );
    eprintln!(
        "{:>9} {:>8} {:>10} {:>12} {:>9} {:>8} {:>11} {:>9}",
        "rows", "batches", "plain ms", "durable ms", "overhead", "ack us", "resume ms", "replayed"
    );
    for rows in series() {
        let (table, _) = fraud_stream(rows, 7, 0.05, 300);
        let cfg = config();

        let (plain_t, batches) = best_of(reps, || run_with(&table, &cfg).totals().batches_acked);

        // Each rep pays the full WAL cost on a fresh directory.
        let mut rep = 0;
        let (durable_t, ack_us) = best_of(reps, || {
            rep += 1;
            let dir = wal_root().join(format!("durable-{rows}-{rep}"));
            let run = run_with(&table, &cfg.clone().with_durable(DurableSpec::new(&dir)));
            let _ = std::fs::remove_dir_all(&dir);
            run.mean_ack_latency_us() as u64
        });

        // Kill at the midpoint ack, then time the resumed run: WAL replay
        // plus execution of only the unacked suffix.
        let kill_at = batches / 2;
        let mut rep = 0;
        let (resume_t, replayed) = best_of(reps, || {
            rep += 1;
            let dir = wal_root().join(format!("resume-{rows}-{rep}"));
            let killed = {
                let mut source = ArrivalSource::windows(&table, "ts", WINDOW_MS).expect("source");
                run_continuous(
                    &mut source,
                    &cfg.clone()
                        .with_durable(DurableSpec::new(&dir))
                        .with_kill_at_ack(kill_at, KillMode::Halt),
                    &make_flow,
                    "channel",
                    Some("n"),
                    Some("total"),
                )
            };
            assert!(
                matches!(killed, Err(FlowError::KilledAtAck { .. })),
                "kill point must fire"
            );
            let run = run_with(
                &table,
                &cfg.clone()
                    .with_durable(DurableSpec::new(&dir).with_resume(true)),
            );
            let replayed = run.recovery.as_ref().map_or(0, |r| r.totals.batches_acked);
            let _ = std::fs::remove_dir_all(&dir);
            replayed
        });
        // resume_t times kill + resume together; the isolated WAL-replay
        // cost is the criterion `wal_replay_only` benchmark below.
        eprintln!(
            "{:>9} {:>8} {:>10.2} {:>12.2} {:>8.1}% {:>8} {:>11.2} {:>9}",
            rows,
            batches,
            plain_t.as_secs_f64() * 1e3,
            durable_t.as_secs_f64() * 1e3,
            (durable_t.as_secs_f64() / plain_t.as_secs_f64() - 1.0) * 100.0,
            ack_us,
            resume_t.as_secs_f64() * 1e3,
            replayed,
        );
    }
    eprintln!(
        "  (durable: ack WAL + fsync per batch; resume ms includes the killed half-run; \
         replayed: batches restored from the WAL without re-execution)"
    );
    let _ = std::fs::remove_dir_all(wal_root());
}

fn bench_stream(c: &mut Criterion) {
    print_series();

    // Stable statistics on one mid-sized stream.
    let rows = if quick() { 5_000 } else { 20_000 };
    let (table, _) = fraud_stream(rows, 7, 0.05, 300);
    let cfg = config();

    // A finished WAL: resuming it replays every ack and executes nothing —
    // the isolated recovery cost.
    let replay_dir = wal_root().join("bench-replay");
    let _ = std::fs::remove_dir_all(&replay_dir);
    run_with(
        &table,
        &cfg.clone().with_durable(DurableSpec::new(&replay_dir)),
    );
    let resume_cfg = cfg
        .clone()
        .with_durable(DurableSpec::new(&replay_dir).with_resume(true));

    let mut group = c.benchmark_group("e14_stream");
    group.sample_size(10);
    group.bench_function("stream_plain", |b| {
        b.iter(|| run_with(&table, &cfg).totals().batches_acked)
    });
    group.bench_function("wal_replay_only", |b| {
        b.iter(|| {
            let run = run_with(&table, &resume_cfg);
            assert_eq!(run.acked.len(), 0, "a finished stream re-executes nothing");
            run.recovery.map_or(0, |r| r.totals.batches_acked)
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(wal_root());
}

criterion_group!(benches, bench_stream);
criterion_main!(benches);
