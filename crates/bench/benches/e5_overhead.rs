//! E5 — the implicit claim of §2: the pipelines the BDAaaS function emits
//! are *real* pipelines, not toys. We quantify the model-driven layer's
//! overhead against a hand-written engine program computing the same
//! answer, sweep threads for both, and run the two engine ablations
//! DESIGN.md calls out (optimizer on/off, map-side combine on/off).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use toreador_bench::{compile, table_header};
use toreador_core::compile::Bdaas;
use toreador_data::generate::clickstream;
use toreador_data::table::Table;
use toreador_dataflow::prelude::*;

const CAMPAIGN: &str = r#"
campaign revenue on clicks
seed 5
goal filtering predicate="action == 'purchase'"
goal aggregation group_by=category agg=sum:price:revenue,count:event_id:n
"#;

fn hand_written(data: &Table, threads: usize, optimizer: bool, partial: bool) -> Table {
    let mut engine = Engine::new(
        EngineConfig::default()
            .with_threads(threads)
            .with_partitions(8)
            .with_partial_aggregation(partial)
            .with_optimizer(if optimizer {
                OptimizerConfig::default()
            } else {
                OptimizerConfig::disabled()
            }),
    );
    engine.register("clicks", data.clone()).unwrap();
    let flow = engine
        .flow("clicks")
        .unwrap()
        .filter(col("action").eq(lit("purchase")))
        .unwrap()
        .aggregate(
            &["category"],
            vec![
                AggExpr::new(AggFunc::Sum, "price", "revenue"),
                AggExpr::new(AggFunc::Count, "event_id", "n"),
            ],
        )
        .unwrap();
    engine.run(&flow).unwrap().table
}

fn print_series() {
    table_header(
        "E5",
        "compiled pipeline vs hand-written baseline; thread sweep; ablations",
    );
    let bdaas = Bdaas::new();
    let data = clickstream(40_000, 5);
    let compiled = compile(&bdaas, CAMPAIGN, &data);
    eprintln!(
        "{:>8} {:>16} {:>16} {:>8}",
        "threads", "handwritten us", "compiled us", "factor"
    );
    for threads in [1usize, 2, 4, 8] {
        let started = std::time::Instant::now();
        let _ = hand_written(&data, threads, true, true);
        let hand_us = started.elapsed().as_micros();
        // The compiled path re-derives its engine config; approximate the
        // thread sweep by timing the fixed deployment (2 workers on the
        // free tier) once and reporting it against every row.
        let started = std::time::Instant::now();
        let _ = bdaas
            .run(&compiled, data.clone(), &Default::default())
            .unwrap();
        let compiled_us = started.elapsed().as_micros();
        eprintln!(
            "{threads:>8} {hand_us:>16} {compiled_us:>16} {:>8.2}",
            compiled_us as f64 / hand_us as f64
        );
    }
    eprintln!("\nablations (hand-written flow, 4 threads, 40k rows):");
    for (label, optimizer, partial) in [
        ("all on", true, true),
        ("optimizer off", false, true),
        ("partial-agg off", true, false),
        ("all off", false, false),
    ] {
        let started = std::time::Instant::now();
        let _ = hand_written(&data, 4, optimizer, partial);
        eprintln!("  {label:<16} {:>12} us", started.elapsed().as_micros());
    }
}

fn bench_overhead(c: &mut Criterion) {
    print_series();
    let bdaas = Bdaas::new();
    let data = clickstream(20_000, 5);
    let compiled = compile(&bdaas, CAMPAIGN, &data);
    let mut group = c.benchmark_group("e5_overhead");
    group.sample_size(10);
    group.bench_function("compiled_pipeline", |b| {
        b.iter(|| {
            bdaas
                .run(&compiled, data.clone(), &Default::default())
                .unwrap()
        });
    });
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("handwritten", threads),
            &threads,
            |b, &t| {
                b.iter(|| hand_written(&data, t, true, true));
            },
        );
    }
    group.bench_function("ablation_no_optimizer", |b| {
        b.iter(|| hand_written(&data, 2, false, true));
    });
    group.bench_function("ablation_no_partial_agg", |b| {
        b.iter(|| hand_written(&data, 2, true, false));
    });
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
