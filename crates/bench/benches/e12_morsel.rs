//! E12 — what morsel-driven pipelining and work-stealing buy on skewed
//! partitions (DESIGN.md §11). One deliberately skewed dataset — the first
//! partition holds ~65% of the rows, the shape a hot key or a bad split
//! produces in practice — runs the E10 narrow chain through three engine
//! modes: the row oracle, the vectorized+fused stage-barrier path (E10's
//! winner, which stalls the whole wave on the fat partition), and the
//! morsel-pipelined path, where idle workers steal row-range morsels off
//! the fat partition's deque. The series prints elapsed, speedup over the
//! row oracle, the journalled steal count, and the skew ratio each mode
//! observed (per-task straggler factor for barrier modes, per-worker busy
//! skew for the pipelined mode).
//!
//! Set `E12_QUICK=1` to shrink the series for CI smoke runs.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use toreador_bench::table_header;
use toreador_data::generate::clickstream;
use toreador_data::partition::{PartitionedTable, Partitioning};
use toreador_dataflow::expr::{col, lit, Expr, Func};
use toreador_dataflow::logical::Dataflow;
use toreador_dataflow::session::{Engine, EngineConfig};

const THREADS: usize = 8;
const PARTITIONS: usize = 8;

fn quick() -> bool {
    std::env::var("E12_QUICK").is_ok_and(|v| v == "1")
}

fn series_rows() -> usize {
    if quick() {
        120_000
    } else {
        1_200_000
    }
}

/// A skewed split: partition 0 gets ~65% of the rows, the remainder is
/// spread evenly over the other seven. Same total data in every mode.
fn skewed_dataset(rows: usize) -> PartitionedTable {
    let t = clickstream(rows, 42);
    let fat = (rows * 65) / 100;
    let rest = (rows - fat) / (PARTITIONS - 1);
    let mut parts = Vec::with_capacity(PARTITIONS);
    let mut lo = 0usize;
    for p in 0..PARTITIONS {
        let hi = if p == 0 { fat } else { (lo + rest).min(rows) };
        let hi = if p == PARTITIONS - 1 { rows } else { hi };
        parts.push(t.slice(lo, hi).expect("slice"));
        lo = hi;
    }
    PartitionedTable::new(parts, Partitioning::Arbitrary).expect("skewed parts")
}

/// The E10 narrow chain, so the speedups are directly comparable.
fn narrow_flow(engine: &Engine) -> Dataflow {
    engine
        .flow("clicks")
        .expect("dataset registered")
        .filter(
            col("price")
                .gt(lit(50.0))
                .and(col("action").not_eq(lit("view"))),
        )
        .expect("filter binds")
        .project(vec![
            ("revenue", col("price").mul(lit(0.85))),
            ("account", col("user_id").add(col("product_id"))),
            ("tag_len", Expr::call(Func::Length, vec![col("category")])),
        ])
        .expect("projection binds")
}

fn engine_with(vectorized: bool, pipelined: bool, data: &PartitionedTable) -> Engine {
    let mut engine = Engine::new(
        EngineConfig::default()
            .with_threads(THREADS)
            .with_partitions(PARTITIONS)
            .with_vectorized(vectorized)
            .with_fuse_narrow(true)
            .with_pipelined(pipelined)
            .with_morsel_rows(16_384),
    );
    engine.register_partitioned("clicks", data.clone());
    engine
}

fn print_series() {
    let rows = series_rows();
    let reps = if quick() { 2 } else { 3 };
    table_header(
        "E12",
        "morsel pipelining + work-stealing vs the stage barrier on a skewed split",
    );
    let data = skewed_dataset(rows);
    eprintln!(
        "  {} rows, {} partitions (partition 0 holds {} rows), {} threads",
        rows,
        PARTITIONS,
        data.parts()[0].num_rows(),
        THREADS
    );
    eprintln!(
        "{:>24} {:>12} {:>8} {:>8} {:>9}",
        "mode", "elapsed ms", "stolen", "skew", "speedup"
    );
    let mut baseline = None;
    for (label, vectorized, pipelined) in [
        ("row-at-a-time", false, false),
        ("fused, stage barrier", true, false),
        ("fused, morsel pipeline", true, true),
    ] {
        let engine = engine_with(vectorized, pipelined, &data);
        let flow = narrow_flow(&engine);
        let mut best = Duration::MAX;
        let mut stolen = 0u64;
        let mut skew = 0.0f64;
        for _ in 0..reps {
            let started = Instant::now();
            let result = engine.run(&flow).expect("run succeeds");
            best = best.min(started.elapsed());
            let totals = result.trace.pipeline_totals();
            stolen = totals.stolen;
            skew = if totals.pipelines > 0 {
                // Pipelined waves balance by stealing: skew is per-worker
                // busy-time imbalance.
                totals.worker_skew
            } else {
                // Barrier waves stall on the fat partition: skew is the
                // per-task straggler factor.
                result.trace.max_skew_ratio().unwrap_or(1.0)
            };
        }
        if std::env::var("E12_PROBE").is_ok() {
            let engine2 = engine_with(vectorized, pipelined, &data);
            let flow2 = narrow_flow(&engine2);
            let r = engine2.run(&flow2).expect("probe");
            let mut first_dispatch = None;
            for e in &r.trace.events {
                use toreador_dataflow::trace::TraceEventKind as K;
                match &e.kind {
                    K::MorselDispatched { .. } if first_dispatch.is_none() => {
                        first_dispatch = Some(e.at_us)
                    }
                    K::PipelineCompleted {
                        slowest_worker_us,
                        mean_worker_us,
                        workers,
                        morsels,
                        ..
                    } => {
                        eprintln!("    probe: wave span {}us (dispatch {} -> done {}), slowest {}us mean {:.0}us workers {} morsels {}",
                            e.at_us - first_dispatch.unwrap_or(0), first_dispatch.unwrap_or(0), e.at_us, slowest_worker_us, mean_worker_us, workers, morsels);
                    }
                    K::TaskStarted { .. } if first_dispatch.is_none() => {}
                    _ => {}
                }
            }
            for n in &r.metrics.nodes {
                eprintln!(
                    "    probe: node {:50} rows {:>9} elapsed {:>8}us",
                    n.operator, n.rows_out, n.elapsed_us
                );
            }
            eprintln!(
                "    probe: total run {}us, result rows {}",
                r.metrics.total_elapsed_us,
                r.table.num_rows()
            );
        }
        let base = *baseline.get_or_insert(best);
        eprintln!(
            "{:>24} {:>12.2} {:>8} {:>8.2} {:>8.1}x",
            label,
            best.as_secs_f64() * 1e3,
            stolen,
            skew,
            base.as_secs_f64() / best.as_secs_f64()
        );
    }
    eprintln!("  (stolen: journalled MorselStolen count; skew: straggler factor, 1.0 = balanced)");
}

fn bench_morsel(c: &mut Criterion) {
    print_series();

    // Stable statistics on a smaller skewed table so criterion's iteration
    // calibration stays cheap.
    let data = skewed_dataset(if quick() { 20_000 } else { 100_000 });
    let mut group = c.benchmark_group("e12_skewed_chain");
    group.sample_size(10);
    for (name, pipelined) in [("stage_barrier", false), ("morsel_pipeline", true)] {
        let engine = engine_with(true, pipelined, &data);
        let flow = narrow_flow(&engine);
        group.bench_function(name, |b| {
            b.iter(|| engine.run(&flow).expect("run succeeds").table.num_rows())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_morsel);
criterion_main!(benches);
