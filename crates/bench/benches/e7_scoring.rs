//! E7 — §3's "trial and error" premise only works if the assessment signal
//! discriminates good designs from bad ones. Scores over the exhaustive
//! choice space of every challenge: the sanctioned reference must top its
//! space, and the spread between best and worst designs must be material.

use criterion::{criterion_group, criterion_main, Criterion};

use toreador_bench::table_header;
use toreador_labs::prelude::*;

fn score_space(challenge_id: &str, rows: usize) -> Vec<(ChoiceVector, f64)> {
    let c = challenge(challenge_id).unwrap();
    let mut session = LabSession::new("bench", Quota::unlimited(), 13);
    let mut out = Vec::new();
    for vector in c.all_choice_vectors() {
        let run_id = match session.attempt(c.id, &vector, Some(rows)) {
            Ok(r) => r.run_id,
            Err(_) => continue,
        };
        out.push((vector, session.score(run_id).unwrap().total));
    }
    out
}

fn print_series() {
    table_header("E7", "score distributions over exhaustive choice spaces");
    eprintln!(
        "{:<20} {:>7} {:>7} {:>7} {:>8} {:<22}",
        "challenge", "best", "worst", "spread", "ref", "reference choices"
    );
    for c in challenges() {
        let scores = score_space(c.id, 800);
        if scores.is_empty() {
            continue;
        }
        let best = scores
            .iter()
            .map(|(_, s)| *s)
            .fold(f64::NEG_INFINITY, f64::max);
        let worst = scores.iter().map(|(_, s)| *s).fold(f64::INFINITY, f64::min);
        let reference = c.reference_vector();
        let ref_score = scores
            .iter()
            .find(|(v, _)| *v == reference)
            .map(|(_, s)| *s)
            .unwrap_or(f64::NAN);
        eprintln!(
            "{:<20} {best:>7.1} {worst:>7.1} {:>7.1} {ref_score:>8.1} {:<22}",
            c.id,
            best - worst,
            reference.join("/")
        );
    }
}

fn bench_scoring(c: &mut Criterion) {
    print_series();
    let ch = challenge("health-compliance").unwrap();
    let mut session = LabSession::new("bench", Quota::unlimited(), 13);
    session
        .attempt(ch.id, &ch.reference_vector(), Some(800))
        .expect("reference runs");
    let record = session.run(1).unwrap().clone();
    let mut group = c.benchmark_group("e7_scoring");
    group.sample_size(50);
    group.bench_function("assess_one_run", |b| {
        b.iter(|| assess(&ch, &record).total);
    });
    group.sample_size(10);
    group.bench_function("score_full_space_ecomm_basket", |b| {
        b.iter(|| score_space("ecomm-basket", 500).len());
    });
    group.finish();
}

criterion_group!(benches, bench_scoring);
criterion_main!(benches);
