//! E15 — what out-of-core execution costs, and what it buys (DESIGN.md §14).
//! A high-cardinality aggregation (group by `event_id`: one group per row,
//! so the hash-aggregation state is proportional to the input) runs under a
//! series of memory budgets, from roomy (nothing spills) down to a budget
//! the working set exceeds by well over 10x. The series prints elapsed,
//! the journalled spill totals (runs spilled, rows, page faults/evictions),
//! the peak buffer-pool residency against the budget's frame capacity, and
//! the slowdown over the unbudgeted run — and asserts the budgeted output
//! is value-identical to the in-memory oracle, because a budget that
//! changed answers would not be an optimisation.
//!
//! Set `E15_QUICK=1` to shrink the series for CI smoke runs.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use toreador_bench::table_header;
use toreador_data::generate::clickstream;
use toreador_dataflow::logical::{AggExpr, AggFunc, Dataflow};
use toreador_dataflow::session::{Engine, EngineConfig};

const THREADS: usize = 4;
const PARTITIONS: usize = 4;
const PAGE: u64 = 32 << 10;

fn quick() -> bool {
    std::env::var("E15_QUICK").is_ok_and(|v| v == "1")
}

fn series_rows() -> usize {
    if quick() {
        30_000
    } else {
        400_000
    }
}

/// The E15 vertical: one group per input row, so wide-operator state scales
/// with the data and a small budget genuinely has to page it out.
fn wide_flow(engine: &Engine) -> Dataflow {
    engine
        .flow("clicks")
        .expect("dataset registered")
        .aggregate(
            &["event_id"],
            vec![
                AggExpr::new(AggFunc::Count, "user_id", "events"),
                AggExpr::new(AggFunc::Sum, "price", "revenue"),
            ],
        )
        .expect("aggregate binds")
        .sort(&["event_id"], false)
        .expect("sort binds")
}

fn engine_with(budget: Option<u64>, data: &toreador_data::table::Table) -> Engine {
    let mut config = EngineConfig::default()
        .with_threads(THREADS)
        .with_partitions(PARTITIONS);
    if let Some(b) = budget {
        config = config.with_memory_budget(b);
    }
    let mut engine = Engine::new(config);
    engine.register("clicks", data.clone()).expect("register");
    engine
}

fn print_series() {
    let rows = series_rows();
    let reps = if quick() { 2 } else { 3 };
    table_header(
        "E15",
        "out-of-core aggregation under a shrinking memory budget",
    );
    let data = clickstream(rows, 42);
    let bytes = data.approx_bytes();
    eprintln!(
        "  {} rows (~{:.1} MiB working set), {} threads, {} partitions, 32 KiB pages",
        rows,
        bytes as f64 / (1 << 20) as f64,
        THREADS,
        PARTITIONS
    );
    eprintln!(
        "{:>16} {:>12} {:>7} {:>10} {:>7} {:>7} {:>11} {:>9}",
        "budget", "elapsed ms", "spills", "rows", "faults", "evict", "peak pool", "slowdown"
    );
    // Budgets from "never spills" down to a working set >= 10x the budget.
    let budgets: &[(&str, Option<u64>)] = &[
        ("unbudgeted", None),
        ("1 GiB", Some(1 << 30)),
        ("2 MiB", Some(2 << 20)),
        ("256 KiB", Some(256 << 10)),
        ("64 KiB", Some(64 << 10)),
    ];
    let oracle_table = {
        let engine = engine_with(None, &data);
        let flow = wide_flow(&engine);
        engine.run(&flow).expect("oracle run").table
    };
    let mut baseline = None;
    for (label, budget) in budgets {
        let engine = engine_with(*budget, &data);
        let flow = wide_flow(&engine);
        let mut best = Duration::MAX;
        let mut totals = Default::default();
        for _ in 0..reps {
            let started = Instant::now();
            let result = engine.run(&flow).expect("run succeeds");
            best = best.min(started.elapsed());
            totals = result.trace.spill_totals();
            // An out-of-core run that changes the answer is a bug, not a
            // trade-off: exact equality, float fold order included.
            assert_eq!(
                result.table, oracle_table,
                "budget {label} changed the output"
            );
        }
        if let Some(b) = budget {
            let capacity = (b / PAGE).max(1) * PAGE;
            assert!(
                totals.peak_pool_bytes <= capacity,
                "budget {label}: peak pool {} exceeds capacity {}",
                totals.peak_pool_bytes,
                capacity
            );
        }
        let base = *baseline.get_or_insert(best);
        eprintln!(
            "{:>16} {:>12.2} {:>7} {:>10} {:>7} {:>7} {:>9} B {:>8.2}x",
            label,
            best.as_secs_f64() * 1e3,
            totals.spills,
            totals.spilled_rows,
            totals.page_faults,
            totals.page_evictions,
            totals.peak_pool_bytes,
            best.as_secs_f64() / base.as_secs_f64()
        );
    }
    eprintln!("  (peak pool: journalled buffer-pool residency; every row is verified against the unbudgeted oracle)");
}

fn bench_spill(c: &mut Criterion) {
    print_series();

    // Stable statistics on a smaller table so criterion's calibration stays
    // cheap; the budget keeps the working set well over 10x the pool.
    let data = clickstream(if quick() { 8_000 } else { 40_000 }, 42);
    let mut group = c.benchmark_group("e15_high_cardinality_agg");
    group.sample_size(10);
    for (name, budget) in [("in_memory", None), ("budget_64k", Some(64u64 << 10))] {
        let engine = engine_with(budget, &data);
        let flow = wide_flow(&engine);
        group.bench_function(name, |b| {
            b.iter(|| engine.run(&flow).expect("run succeeds").table.num_rows())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spill);
criterion_main!(benches);
