//! E1 — §2's claim that BDAaaS is a *function* from goals to a
//! ready-to-run pipeline: compilation must be mechanical and cheap.
//!
//! Measures the full compile path (parse → consistency → plan → bind →
//! compliance manifest) while sweeping the goal count 1..32, and prints the
//! compile-vs-run latency ratio that backs the "as-a-Service" premise: the
//! design step is orders of magnitude cheaper than the execution step.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use toreador_bench::{compile, spec_with_goals, table_header};
use toreador_core::compile::Bdaas;
use toreador_data::generate::clickstream;

fn print_series() {
    table_header("E1", "compile latency vs goal-set size; compile << run");
    let bdaas = Bdaas::new();
    let data = clickstream(5_000, 1);
    eprintln!(
        "{:>6} {:>16} {:>16} {:>10}",
        "goals", "compile (us)", "run (us)", "run/compile"
    );
    for n in [1usize, 2, 4, 8, 16, 32] {
        let dsl = spec_with_goals(n);
        let started = Instant::now();
        let compiled = compile(&bdaas, &dsl, &data);
        let compile_us = started.elapsed().as_micros();
        let started = Instant::now();
        let _ = bdaas
            .run(&compiled, data.clone(), &Default::default())
            .unwrap();
        let run_us = started.elapsed().as_micros();
        eprintln!(
            "{n:>6} {compile_us:>16} {run_us:>16} {:>10.1}",
            run_us as f64 / compile_us.max(1) as f64
        );
    }
}

fn bench_compile(c: &mut Criterion) {
    print_series();
    let bdaas = Bdaas::new();
    let data = clickstream(5_000, 1);
    let mut group = c.benchmark_group("e1_compile");
    group.sample_size(30);
    for n in [1usize, 4, 16, 32] {
        let dsl = spec_with_goals(n);
        group.bench_with_input(BenchmarkId::new("goals", n), &dsl, |b, dsl| {
            b.iter(|| compile(&bdaas, dsl, &data));
        });
    }
    // The three vertical reference campaigns compile end-to-end.
    for challenge in toreador_labs::catalog::challenges() {
        let scen = toreador_labs::scenario::scenario(challenge.scenario_id).unwrap();
        let schema = scen.schema();
        let spec = challenge
            .instantiate(&challenge.reference_vector())
            .unwrap();
        group.bench_function(BenchmarkId::new("challenge", challenge.id), |b| {
            b.iter(|| {
                bdaas
                    .compile(&spec, &schema, scen.default_rows)
                    .expect("reference compiles")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
