//! # toreador-privacy
//!
//! The data-protection substrate behind the paper's "regulatory barrier":
//! the TOREADOR methodology makes regulatory constraints on personal data
//! first-class declarative objectives, checked at design time and enforced
//! in the compiled pipeline. This crate supplies the machinery:
//!
//! * [`policy`] — column classifications + requirements ([`policy::Policy`]);
//! * [`kanon`] — k-anonymity measurement and enforcement by generalisation
//!   ladders + suppression, with a utility-loss score;
//! * [`ldiv`] — distinct l-diversity (the homogeneity-attack guard);
//! * [`dp`] — the Laplace mechanism with an ε budget ledger;
//! * [`checker`] — static (manifest) and dynamic (output table) compliance
//!   checks;
//! * [`audit`] — an append-only audit log for custody evidence.
//!
//! ## Example
//!
//! ```
//! use toreador_privacy::prelude::*;
//! use toreador_data::generate::health_records;
//!
//! let policy = healthcare_default();
//! let records = health_records(300, 1);
//! let qis = vec![
//!     QuasiIdentifier::numeric("age", vec![5.0, 10.0, 25.0]),
//!     QuasiIdentifier::string_prefix("zip", vec![3, 2, 1]),
//! ];
//! let anon = enforce_k_anonymity(&records, &qis, 5).unwrap();
//! assert!(is_k_anonymous(&anon.table, &["age".into(), "zip".into()], 5).unwrap());
//! ```

pub mod audit;
pub mod checker;
pub mod dp;
pub mod error;
pub mod kanon;
pub mod ldiv;
pub mod policy;

/// Convenient glob import of the commonly used types.
pub mod prelude {
    pub use crate::audit::{AuditEvent, AuditLog};
    pub use crate::checker::{check_manifest, check_output, PrivacyManifest, Verdict, Violation};
    pub use crate::dp::{BudgetLedger, LaplaceMechanism};
    pub use crate::error::{PrivacyError, Result as PrivacyResult};
    pub use crate::kanon::{
        anonymity_level, enforce_k_anonymity, is_k_anonymous, AnonymizedTable, Ladder,
        QuasiIdentifier,
    };
    pub use crate::ldiv::{diversity_level, enforce_l_diversity, is_l_diverse};
    pub use crate::policy::{healthcare_default, DataClass, Policy, Requirement};
}
