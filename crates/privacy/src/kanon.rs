//! k-anonymity: measurement and enforcement.
//!
//! Enforcement uses global recoding over per-column generalisation ladders
//! (numeric binning, string prefix masking) plus suppression of the rows
//! left in undersized groups — the classic Samarati/Sweeney scheme. The
//! algorithm greedily generalises the column that most reduces the number
//! of violating rows until the table is k-anonymous, then suppresses any
//! remainder. Utility loss is reported so the Labs can chart the
//! privacy/utility trade-off.

use std::collections::HashMap;

use toreador_data::column::Column;
use toreador_data::schema::Field;
use toreador_data::table::Table;
use toreador_data::value::{DataType, Value};

use crate::error::{PrivacyError, Result};

/// How one quasi-identifier column may be generalised, level by level.
#[derive(Debug, Clone, PartialEq)]
pub enum Ladder {
    /// Round numeric values to multiples of `widths[level-1]`; the last
    /// rung generalises to a single "*" bucket.
    NumericBins { widths: Vec<f64> },
    /// Keep the first `keep[level-1]` characters, masking the rest with
    /// `*`; the last rung is full suppression to "*".
    StringPrefix { keep: Vec<usize> },
}

impl Ladder {
    /// Number of generalisation levels, excluding level 0 (identity) and
    /// including the final full-suppression rung.
    pub fn max_level(&self) -> usize {
        match self {
            Ladder::NumericBins { widths } => widths.len() + 1,
            Ladder::StringPrefix { keep } => keep.len() + 1,
        }
    }

    /// Generalise one value to the given level (0 = identity).
    pub fn apply(&self, v: &Value, level: usize) -> Result<Value> {
        if level == 0 {
            return Ok(v.clone());
        }
        if v.is_null() {
            return Ok(Value::Null);
        }
        match self {
            Ladder::NumericBins { widths } => {
                if level > widths.len() {
                    return Ok(Value::Str("*".to_owned()));
                }
                let w = widths[level - 1];
                if w <= 0.0 {
                    return Err(PrivacyError::InvalidParameter(format!(
                        "bin width {w} must be positive"
                    )));
                }
                let x = v.as_float()?;
                let lo = (x / w).floor() * w;
                Ok(Value::Str(format!("[{lo},{})", lo + w)))
            }
            Ladder::StringPrefix { keep } => {
                if level > keep.len() {
                    return Ok(Value::Str("*".to_owned()));
                }
                let s = v.as_str()?;
                let k = keep[level - 1];
                let kept: String = s.chars().take(k).collect();
                let masked = s.chars().count().saturating_sub(k);
                Ok(Value::Str(format!("{kept}{}", "*".repeat(masked))))
            }
        }
    }
}

/// A quasi-identifier column paired with its generalisation ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct QuasiIdentifier {
    pub column: String,
    pub ladder: Ladder,
}

impl QuasiIdentifier {
    pub fn numeric(column: impl Into<String>, widths: Vec<f64>) -> Self {
        QuasiIdentifier {
            column: column.into(),
            ladder: Ladder::NumericBins { widths },
        }
    }

    pub fn string_prefix(column: impl Into<String>, keep: Vec<usize>) -> Self {
        QuasiIdentifier {
            column: column.into(),
            ladder: Ladder::StringPrefix { keep },
        }
    }
}

/// Group rows by the (already generalised) QI columns.
fn group_sizes(table: &Table, qi_columns: &[String]) -> Result<HashMap<Vec<String>, Vec<usize>>> {
    let idx: Vec<usize> = qi_columns
        .iter()
        .map(|c| table.schema().index_of(c).map_err(PrivacyError::Data))
        .collect::<Result<Vec<_>>>()?;
    let mut groups: HashMap<Vec<String>, Vec<usize>> = HashMap::new();
    for (row_i, row) in table.iter_rows().enumerate() {
        let key: Vec<String> = idx.iter().map(|&i| format!("{:?}", row[i])).collect();
        groups.entry(key).or_default().push(row_i);
    }
    Ok(groups)
}

/// The size of the smallest QI group (∞-like usize::MAX for empty tables).
pub fn anonymity_level(table: &Table, qi_columns: &[String]) -> Result<usize> {
    let groups = group_sizes(table, qi_columns)?;
    Ok(groups.values().map(Vec::len).min().unwrap_or(usize::MAX))
}

/// True if every QI group has at least `k` rows.
pub fn is_k_anonymous(table: &Table, qi_columns: &[String], k: usize) -> Result<bool> {
    Ok(anonymity_level(table, qi_columns)? >= k)
}

/// The result of enforcement.
#[derive(Debug, Clone)]
pub struct AnonymizedTable {
    pub table: Table,
    /// Generalisation level applied per QI column.
    pub levels: Vec<(String, usize)>,
    /// Rows suppressed because no generalisation made their group large enough.
    pub suppressed_rows: usize,
    /// Utility loss in [0, 1]: mean of (level / max_level) over QI columns,
    /// blended with the suppression fraction.
    pub utility_loss: f64,
}

/// Enforce k-anonymity over the given quasi-identifiers.
///
/// Greedy global recoding: while violating rows remain, bump the ladder
/// level of whichever QI column yields the fewest violating rows; if every
/// ladder is exhausted, suppress the remaining violators.
pub fn enforce_k_anonymity(
    table: &Table,
    quasi_identifiers: &[QuasiIdentifier],
    k: usize,
) -> Result<AnonymizedTable> {
    if k < 2 {
        return Err(PrivacyError::InvalidParameter(format!(
            "k={k} must be >= 2"
        )));
    }
    if quasi_identifiers.is_empty() {
        return Err(PrivacyError::InvalidParameter(
            "no quasi-identifiers given".to_owned(),
        ));
    }
    let qi_names: Vec<String> = quasi_identifiers.iter().map(|q| q.column.clone()).collect();
    let mut levels = vec![0usize; quasi_identifiers.len()];
    let mut current = generalize(table, quasi_identifiers, &levels)?;

    let violating = |t: &Table| -> Result<usize> {
        Ok(group_sizes(t, &qi_names)?
            .values()
            .filter(|g| g.len() < k)
            .map(Vec::len)
            .sum())
    };
    let mut current_violations = violating(&current)?;
    while current_violations > 0 {
        // Try bumping each column still below its max level; keep the best.
        let mut best: Option<(usize, Table, usize)> = None;
        for (i, qi) in quasi_identifiers.iter().enumerate() {
            if levels[i] >= qi.ladder.max_level() {
                continue;
            }
            let mut trial_levels = levels.clone();
            trial_levels[i] += 1;
            let trial = generalize(table, quasi_identifiers, &trial_levels)?;
            let v = violating(&trial)?;
            if best.as_ref().map_or(true, |(_, _, bv)| v < *bv) {
                best = Some((i, trial, v));
            }
        }
        match best {
            Some((i, trial, v)) if v < current_violations => {
                levels[i] += 1;
                current = trial;
                current_violations = v;
            }
            Some((i, trial, v)) => {
                // No improvement this step, but ladders remain: accept the
                // bump anyway (a plateau can precede a drop at the coarser
                // level) unless everything is already at the top.
                levels[i] += 1;
                current = trial;
                current_violations = v;
            }
            None => break, // all ladders exhausted: fall through to suppression
        }
    }

    // Suppress residual violators.
    let groups = group_sizes(&current, &qi_names)?;
    let mut keep = vec![true; current.num_rows()];
    let mut suppressed = 0usize;
    for rows in groups.values().filter(|g| g.len() < k) {
        for &r in rows {
            keep[r] = false;
            suppressed += 1;
        }
    }
    let table_out = current.filter(&keep)?;

    let gen_loss: f64 = quasi_identifiers
        .iter()
        .zip(&levels)
        .map(|(q, &l)| l as f64 / q.ladder.max_level() as f64)
        .sum::<f64>()
        / quasi_identifiers.len() as f64;
    let sup_loss = if table.num_rows() == 0 {
        0.0
    } else {
        suppressed as f64 / table.num_rows() as f64
    };
    Ok(AnonymizedTable {
        table: table_out,
        levels: qi_names.into_iter().zip(levels).collect(),
        suppressed_rows: suppressed,
        utility_loss: (gen_loss + sup_loss).min(1.0),
    })
}

/// Apply ladder levels to the QI columns, leaving other columns untouched.
/// Generalised columns become Str (bucket labels).
fn generalize(
    table: &Table,
    quasi_identifiers: &[QuasiIdentifier],
    levels: &[usize],
) -> Result<Table> {
    let mut fields = Vec::with_capacity(table.num_columns());
    let mut columns = Vec::with_capacity(table.num_columns());
    for (field, col) in table.schema().fields().iter().zip(table.columns()) {
        match quasi_identifiers
            .iter()
            .position(|q| q.column == field.name)
            .map(|i| (&quasi_identifiers[i].ladder, levels[i]))
        {
            None | Some((_, 0)) => {
                fields.push(field.clone());
                columns.push(col.clone());
            }
            Some((ladder, level)) => {
                let mut out = Column::with_capacity(DataType::Str, col.len());
                for v in col.iter_values() {
                    let g = ladder.apply(&v, level)?;
                    let g = match g {
                        Value::Null => Value::Null,
                        other => Value::Str(other.to_string()),
                    };
                    out.push(&g)?;
                }
                fields.push(Field {
                    name: field.name.clone(),
                    data_type: DataType::Str,
                    nullable: field.nullable,
                });
                columns.push(out);
            }
        }
    }
    Table::new(toreador_data::schema::Schema::new(fields)?, columns).map_err(PrivacyError::Data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use toreador_data::generate::health_records;

    fn qis() -> Vec<QuasiIdentifier> {
        vec![
            QuasiIdentifier::numeric("age", vec![5.0, 10.0, 25.0]),
            QuasiIdentifier::string_prefix("zip", vec![3, 2, 1]),
            QuasiIdentifier::string_prefix("sex", vec![]),
        ]
    }

    fn qi_names() -> Vec<String> {
        vec!["age".into(), "zip".into(), "sex".into()]
    }

    #[test]
    fn ladders_generalise_progressively() {
        let l = Ladder::NumericBins {
            widths: vec![5.0, 10.0],
        };
        assert_eq!(l.apply(&Value::Int(37), 0).unwrap(), Value::Int(37));
        assert_eq!(
            l.apply(&Value::Int(37), 1).unwrap(),
            Value::Str("[35,40)".into())
        );
        assert_eq!(
            l.apply(&Value::Int(37), 2).unwrap(),
            Value::Str("[30,40)".into())
        );
        assert_eq!(l.apply(&Value::Int(37), 3).unwrap(), Value::Str("*".into()));
        let s = Ladder::StringPrefix { keep: vec![3, 1] };
        assert_eq!(
            s.apply(&Value::Str("26013".into()), 1).unwrap(),
            Value::Str("260**".into())
        );
        assert_eq!(
            s.apply(&Value::Str("26013".into()), 2).unwrap(),
            Value::Str("2****".into())
        );
        assert_eq!(
            s.apply(&Value::Str("26013".into()), 3).unwrap(),
            Value::Str("*".into())
        );
        assert_eq!(s.apply(&Value::Null, 1).unwrap(), Value::Null);
    }

    #[test]
    fn raw_health_data_is_not_anonymous() {
        let t = health_records(500, 1);
        let level = anonymity_level(&t, &qi_names()).unwrap();
        assert!(
            level < 5,
            "raw records should have small groups, got {level}"
        );
        assert!(!is_k_anonymous(&t, &qi_names(), 5).unwrap());
    }

    #[test]
    fn enforcement_reaches_requested_k() {
        let t = health_records(500, 1);
        for k in [2, 5, 20] {
            let a = enforce_k_anonymity(&t, &qis(), k).unwrap();
            assert!(
                is_k_anonymous(&a.table, &qi_names(), k).unwrap(),
                "k={k} not reached; levels {:?}, suppressed {}",
                a.levels,
                a.suppressed_rows
            );
            // Anonymised output retains the non-QI columns untouched.
            assert!(a.table.schema().contains("diagnosis"));
            assert!(a.table.schema().contains("cost"));
        }
    }

    #[test]
    fn utility_loss_increases_with_k() {
        let t = health_records(400, 2);
        let loose = enforce_k_anonymity(&t, &qis(), 2).unwrap();
        let strict = enforce_k_anonymity(&t, &qis(), 50).unwrap();
        assert!(
            strict.utility_loss >= loose.utility_loss,
            "k=50 loss {} < k=2 loss {}",
            strict.utility_loss,
            loose.utility_loss
        );
        assert!(loose.utility_loss > 0.0);
        assert!(strict.utility_loss <= 1.0);
    }

    #[test]
    fn unreachable_k_suppresses_rather_than_fails() {
        let t = health_records(10, 3);
        let a = enforce_k_anonymity(&t, &qis(), 8).unwrap();
        assert!(is_k_anonymous(&a.table, &qi_names(), 8).unwrap() || a.table.num_rows() == 0);
        // Whatever survives satisfies k; totals add up.
        assert_eq!(a.table.num_rows() + a.suppressed_rows, 10);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let t = health_records(10, 0);
        assert!(enforce_k_anonymity(&t, &qis(), 1).is_err());
        assert!(enforce_k_anonymity(&t, &[], 5).is_err());
    }

    #[test]
    fn anonymity_level_of_empty_table_is_max() {
        let t = health_records(10, 0).filter(&[false; 10]).unwrap();
        assert_eq!(anonymity_level(&t, &qi_names()).unwrap(), usize::MAX);
    }

    #[test]
    fn generalisation_only_touches_qi_columns() {
        let t = health_records(50, 4);
        let a = enforce_k_anonymity(&t, &qis(), 3).unwrap();
        // cost column values still numeric.
        assert!(a
            .table
            .column("cost")
            .unwrap()
            .iter_values()
            .all(|v| v.as_float().is_ok()));
    }
}
