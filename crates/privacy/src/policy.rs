//! Data-protection policies.
//!
//! The paper names the "regulatory barrier" — data access, sharing, and
//! custody regulations — as a primary obstacle to BDA adoption, and the
//! TOREADOR methodology makes regulatory constraints declarative objectives
//! alongside analytics goals. A [`Policy`] is the machine-checkable form of
//! those objectives: column classifications plus requirements a pipeline
//! must meet before it may run.

use serde::{Deserialize, Serialize};

use toreador_data::schema::Schema;

use crate::error::{PrivacyError, Result};

/// Classification of a column under the policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataClass {
    /// Directly identifies a person (name, patient id). Must never appear
    /// in pipeline output.
    Identifier,
    /// Combinable with external data to re-identify (age, zip, sex).
    QuasiIdentifier,
    /// The protected attribute itself (diagnosis).
    Sensitive,
    /// Freely usable.
    Public,
}

/// One obligation a compliant pipeline must satisfy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Requirement {
    /// Output containing quasi-identifiers must be k-anonymous.
    MinKAnonymity(usize),
    /// Each k-anonymous group must contain at least l distinct sensitive values.
    MinLDiversity(usize),
    /// Aggregate releases must be ε-differentially private within budget.
    MaxDpEpsilon(f64),
    /// Direct identifiers must not reach the output.
    NoDirectIdentifiers,
}

/// A named data-protection policy over one dataset schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Policy {
    pub name: String,
    classifications: Vec<(String, DataClass)>,
    requirements: Vec<Requirement>,
}

impl Policy {
    pub fn new(name: impl Into<String>) -> Self {
        Policy {
            name: name.into(),
            classifications: Vec::new(),
            requirements: Vec::new(),
        }
    }

    /// Classify a column (replaces any previous classification).
    pub fn classify(mut self, column: impl Into<String>, class: DataClass) -> Self {
        let column = column.into();
        self.classifications.retain(|(c, _)| c != &column);
        self.classifications.push((column, class));
        self
    }

    /// Add a requirement.
    pub fn require(mut self, requirement: Requirement) -> Self {
        self.requirements.push(requirement);
        self
    }

    pub fn requirements(&self) -> &[Requirement] {
        &self.requirements
    }

    /// The classification of a column; unclassified columns are Public.
    pub fn class_of(&self, column: &str) -> DataClass {
        self.classifications
            .iter()
            .find(|(c, _)| c == column)
            .map(|(_, k)| *k)
            .unwrap_or(DataClass::Public)
    }

    /// All columns with the given classification.
    pub fn columns_of(&self, class: DataClass) -> Vec<&str> {
        self.classifications
            .iter()
            .filter(|(_, k)| *k == class)
            .map(|(c, _)| c.as_str())
            .collect()
    }

    /// Validate the policy against a dataset schema: every classified
    /// column must exist, and parameters must be sane.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        for (c, _) in &self.classifications {
            if !schema.contains(c) {
                return Err(PrivacyError::UnknownColumn(c.clone()));
            }
        }
        for r in &self.requirements {
            match r {
                Requirement::MinKAnonymity(k) if *k < 2 => {
                    return Err(PrivacyError::InvalidParameter(format!(
                        "k-anonymity k={k} must be >= 2"
                    )))
                }
                Requirement::MinLDiversity(l) if *l < 2 => {
                    return Err(PrivacyError::InvalidParameter(format!(
                        "l-diversity l={l} must be >= 2"
                    )))
                }
                Requirement::MaxDpEpsilon(eps) if *eps <= 0.0 => {
                    return Err(PrivacyError::InvalidParameter(format!(
                        "DP epsilon {eps} must be positive"
                    )))
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// The k required by the strictest k-anonymity requirement, if any.
    pub fn required_k(&self) -> Option<usize> {
        self.requirements
            .iter()
            .filter_map(|r| match r {
                Requirement::MinKAnonymity(k) => Some(*k),
                _ => None,
            })
            .max()
    }

    /// The l required by the strictest l-diversity requirement, if any.
    pub fn required_l(&self) -> Option<usize> {
        self.requirements
            .iter()
            .filter_map(|r| match r {
                Requirement::MinLDiversity(l) => Some(*l),
                _ => None,
            })
            .max()
    }

    /// The tightest DP epsilon ceiling, if any.
    pub fn max_epsilon(&self) -> Option<f64> {
        self.requirements
            .iter()
            .filter_map(|r| match r {
                Requirement::MaxDpEpsilon(e) => Some(*e),
                _ => None,
            })
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Whether direct identifiers are banned from output.
    pub fn bans_identifiers(&self) -> bool {
        self.requirements
            .contains(&Requirement::NoDirectIdentifiers)
    }
}

/// The GDPR-flavoured default policy for the healthcare vertical.
pub fn healthcare_default() -> Policy {
    Policy::new("healthcare-gdpr")
        .classify("patient_id", DataClass::Identifier)
        .classify("age", DataClass::QuasiIdentifier)
        .classify("zip", DataClass::QuasiIdentifier)
        .classify("sex", DataClass::QuasiIdentifier)
        .classify("diagnosis", DataClass::Sensitive)
        .require(Requirement::NoDirectIdentifiers)
        .require(Requirement::MinKAnonymity(5))
        .require(Requirement::MinLDiversity(2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use toreador_data::generate::health_schema;

    #[test]
    fn classification_lookup_defaults_to_public() {
        let p = healthcare_default();
        assert_eq!(p.class_of("patient_id"), DataClass::Identifier);
        assert_eq!(p.class_of("cost"), DataClass::Public);
        assert_eq!(
            p.columns_of(DataClass::QuasiIdentifier),
            vec!["age", "zip", "sex"]
        );
    }

    #[test]
    fn reclassification_replaces() {
        let p = Policy::new("t")
            .classify("x", DataClass::Sensitive)
            .classify("x", DataClass::Public);
        assert_eq!(p.class_of("x"), DataClass::Public);
        assert_eq!(p.columns_of(DataClass::Sensitive).len(), 0);
    }

    #[test]
    fn validate_catches_unknown_columns_and_bad_params() {
        let schema = health_schema();
        assert!(healthcare_default().validate(&schema).is_ok());
        let bad = Policy::new("t").classify("ghost", DataClass::Sensitive);
        assert!(matches!(
            bad.validate(&schema),
            Err(PrivacyError::UnknownColumn(_))
        ));
        let bad = Policy::new("t").require(Requirement::MinKAnonymity(1));
        assert!(bad.validate(&schema).is_err());
        let bad = Policy::new("t").require(Requirement::MaxDpEpsilon(0.0));
        assert!(bad.validate(&schema).is_err());
        let bad = Policy::new("t").require(Requirement::MinLDiversity(0));
        assert!(bad.validate(&schema).is_err());
    }

    #[test]
    fn strictest_requirements_win() {
        let p = Policy::new("t")
            .require(Requirement::MinKAnonymity(3))
            .require(Requirement::MinKAnonymity(10))
            .require(Requirement::MaxDpEpsilon(1.0))
            .require(Requirement::MaxDpEpsilon(0.5));
        assert_eq!(p.required_k(), Some(10));
        assert_eq!(p.max_epsilon(), Some(0.5));
        assert_eq!(p.required_l(), None);
        assert!(!p.bans_identifiers());
    }

    #[test]
    fn policies_serialize() {
        let p = healthcare_default();
        let j = serde_json::to_string(&p).unwrap();
        let back: Policy = serde_json::from_str(&j).unwrap();
        assert_eq!(p, back);
    }
}
