//! l-diversity: each quasi-identifier group must contain at least `l`
//! distinct values of the sensitive attribute (distinct l-diversity,
//! Machanavajjhala et al.).

use std::collections::{HashMap, HashSet};

use toreador_data::table::Table;

use crate::error::{PrivacyError, Result};

/// The minimum number of distinct sensitive values over all QI groups.
pub fn diversity_level(table: &Table, qi_columns: &[String], sensitive: &str) -> Result<usize> {
    let qi_idx: Vec<usize> = qi_columns
        .iter()
        .map(|c| table.schema().index_of(c).map_err(PrivacyError::Data))
        .collect::<Result<Vec<_>>>()?;
    let s_idx = table
        .schema()
        .index_of(sensitive)
        .map_err(PrivacyError::Data)?;
    let mut groups: HashMap<Vec<String>, HashSet<String>> = HashMap::new();
    for row in table.iter_rows() {
        let key: Vec<String> = qi_idx.iter().map(|&i| format!("{:?}", row[i])).collect();
        groups
            .entry(key)
            .or_default()
            .insert(format!("{:?}", row[s_idx]));
    }
    Ok(groups
        .values()
        .map(HashSet::len)
        .min()
        .unwrap_or(usize::MAX))
}

/// True if every QI group has at least `l` distinct sensitive values.
pub fn is_l_diverse(
    table: &Table,
    qi_columns: &[String],
    sensitive: &str,
    l: usize,
) -> Result<bool> {
    if l < 2 {
        return Err(PrivacyError::InvalidParameter(format!(
            "l={l} must be >= 2"
        )));
    }
    Ok(diversity_level(table, qi_columns, sensitive)? >= l)
}

/// Suppress the rows of groups that violate l-diversity, returning the
/// surviving table and the suppressed count.
pub fn enforce_l_diversity(
    table: &Table,
    qi_columns: &[String],
    sensitive: &str,
    l: usize,
) -> Result<(Table, usize)> {
    if l < 2 {
        return Err(PrivacyError::InvalidParameter(format!(
            "l={l} must be >= 2"
        )));
    }
    let qi_idx: Vec<usize> = qi_columns
        .iter()
        .map(|c| table.schema().index_of(c).map_err(PrivacyError::Data))
        .collect::<Result<Vec<_>>>()?;
    let s_idx = table
        .schema()
        .index_of(sensitive)
        .map_err(PrivacyError::Data)?;
    let mut members: HashMap<Vec<String>, Vec<usize>> = HashMap::new();
    let mut distinct: HashMap<Vec<String>, HashSet<String>> = HashMap::new();
    for (r, row) in table.iter_rows().enumerate() {
        let key: Vec<String> = qi_idx.iter().map(|&i| format!("{:?}", row[i])).collect();
        members.entry(key.clone()).or_default().push(r);
        distinct
            .entry(key)
            .or_default()
            .insert(format!("{:?}", row[s_idx]));
    }
    let mut keep = vec![true; table.num_rows()];
    let mut suppressed = 0usize;
    for (key, rows) in &members {
        if distinct[key].len() < l {
            for &r in rows {
                keep[r] = false;
                suppressed += 1;
            }
        }
    }
    Ok((table.filter(&keep)?, suppressed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use toreador_data::schema::{Field, Schema};
    use toreador_data::value::{DataType, Value};

    fn table(rows: Vec<(&str, &str)>) -> Table {
        let schema = Schema::new(vec![
            Field::new("qi", DataType::Str),
            Field::new("dx", DataType::Str),
        ])
        .unwrap();
        Table::from_rows(
            schema,
            rows.into_iter()
                .map(|(q, d)| vec![Value::Str(q.into()), Value::Str(d.into())]),
        )
        .unwrap()
    }

    #[test]
    fn diversity_counts_distinct_sensitive_values() {
        let t = table(vec![
            ("a", "flu"),
            ("a", "flu"),
            ("a", "asthma"),
            ("b", "flu"),
        ]);
        // Group a has 2 distinct, group b has 1.
        assert_eq!(diversity_level(&t, &["qi".into()], "dx").unwrap(), 1);
        assert!(!is_l_diverse(&t, &["qi".into()], "dx", 2).unwrap());
    }

    #[test]
    fn homogeneous_group_is_the_attack_case() {
        // Classic homogeneity attack: k-anonymous but all members share the
        // diagnosis -> l-diversity catches it.
        let t = table(vec![("g", "cancer"), ("g", "cancer"), ("g", "cancer")]);
        assert_eq!(diversity_level(&t, &["qi".into()], "dx").unwrap(), 1);
        let (kept, suppressed) = enforce_l_diversity(&t, &["qi".into()], "dx", 2).unwrap();
        assert_eq!(kept.num_rows(), 0);
        assert_eq!(suppressed, 3);
    }

    #[test]
    fn enforcement_keeps_diverse_groups() {
        let t = table(vec![
            ("a", "flu"),
            ("a", "asthma"),
            ("b", "flu"),
            ("b", "flu"),
        ]);
        let (kept, suppressed) = enforce_l_diversity(&t, &["qi".into()], "dx", 2).unwrap();
        assert_eq!(kept.num_rows(), 2);
        assert_eq!(suppressed, 2);
        assert!(is_l_diverse(&kept, &["qi".into()], "dx", 2).unwrap());
    }

    #[test]
    fn parameters_validated() {
        let t = table(vec![("a", "x")]);
        assert!(is_l_diverse(&t, &["qi".into()], "dx", 1).is_err());
        assert!(enforce_l_diversity(&t, &["qi".into()], "dx", 0).is_err());
        assert!(diversity_level(&t, &["ghost".into()], "dx").is_err());
        assert!(diversity_level(&t, &["qi".into()], "ghost").is_err());
    }

    #[test]
    fn empty_table_is_vacuously_diverse() {
        let t = table(vec![]).filter(&[]).unwrap();
        assert_eq!(
            diversity_level(&t, &["qi".into()], "dx").unwrap(),
            usize::MAX
        );
    }
}
