//! Compliance checking of pipelines against policies.
//!
//! The checker operates on a [`PrivacyManifest`] — a neutral description of
//! what a pipeline reads, what it outputs, and which protections it applies
//! — so that the model-driven compiler (toreador-core) can be checked
//! without this crate depending on it. Two kinds of check exist:
//!
//! * **static** ([`check_manifest`]): at compile time, before any data
//!   moves — the paper's premise that regulatory constraints are declarative
//!   objectives resolved during design;
//! * **dynamic** ([`check_output`]): post-hoc verification that an actual
//!   output table satisfies the declared k-anonymity / l-diversity.

use serde::{Deserialize, Serialize};

use toreador_data::table::Table;

use crate::error::Result;
use crate::kanon::is_k_anonymous;
use crate::ldiv::is_l_diverse;
use crate::policy::{DataClass, Policy};

/// What a pipeline does, privacy-wise.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PrivacyManifest {
    /// Columns the pipeline reads from the protected dataset.
    pub columns_read: Vec<String>,
    /// Columns appearing in the pipeline output.
    pub columns_output: Vec<String>,
    /// k if k-anonymisation is applied before output.
    pub k_anonymity: Option<usize>,
    /// l if l-diversity enforcement is applied before output.
    pub l_diversity: Option<usize>,
    /// Total ε the pipeline will spend if it uses DP releases.
    pub dp_epsilon: Option<f64>,
}

/// One rule violation found by the checker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    pub requirement: String,
    pub detail: String,
}

/// The checker's verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Verdict {
    pub compliant: bool,
    pub violations: Vec<Violation>,
}

impl Verdict {
    fn from_violations(violations: Vec<Violation>) -> Self {
        Verdict {
            compliant: violations.is_empty(),
            violations,
        }
    }
}

/// Static check: does the manifest satisfy the policy?
///
/// DP-protected pipelines (an ε within the ceiling) release only noisy
/// aggregates, which satisfies the k-anonymity/l-diversity requirements by a
/// stronger guarantee; record-level outputs must anonymise instead.
pub fn check_manifest(policy: &Policy, manifest: &PrivacyManifest) -> Verdict {
    let mut violations = Vec::new();

    // 1. Identifier columns in output.
    if policy.bans_identifiers() {
        for c in &manifest.columns_output {
            if policy.class_of(c) == DataClass::Identifier {
                violations.push(Violation {
                    requirement: "NoDirectIdentifiers".to_owned(),
                    detail: format!("identifier column {c:?} appears in output"),
                });
            }
        }
    }

    // DP cover: a within-budget ε covers group-privacy requirements.
    let dp_covered = match (policy.max_epsilon(), manifest.dp_epsilon) {
        (Some(ceiling), Some(eps)) => eps <= ceiling + 1e-12,
        (None, Some(_)) => true,
        _ => false,
    };
    // An ε above the ceiling is itself a violation.
    if let (Some(ceiling), Some(eps)) = (policy.max_epsilon(), manifest.dp_epsilon) {
        if eps > ceiling + 1e-12 {
            violations.push(Violation {
                requirement: "MaxDpEpsilon".to_owned(),
                detail: format!("pipeline spends ε={eps}, ceiling is ε={ceiling}"),
            });
        }
    }

    // 2. Quasi-identifier exposure requires k-anonymity (unless DP-covered).
    let outputs_qi = manifest
        .columns_output
        .iter()
        .any(|c| policy.class_of(c) == DataClass::QuasiIdentifier);
    if let Some(required_k) = policy.required_k() {
        if outputs_qi && !dp_covered {
            match manifest.k_anonymity {
                Some(k) if k >= required_k => {}
                Some(k) => violations.push(Violation {
                    requirement: "MinKAnonymity".to_owned(),
                    detail: format!("pipeline anonymises at k={k}, policy requires k>={required_k}"),
                }),
                None => violations.push(Violation {
                    requirement: "MinKAnonymity".to_owned(),
                    detail: format!(
                        "output exposes quasi-identifiers without k-anonymisation (need k>={required_k})"
                    ),
                }),
            }
        }
    }

    // 3. Sensitive exposure alongside QIs requires l-diversity (unless DP-covered).
    let outputs_sensitive = manifest
        .columns_output
        .iter()
        .any(|c| policy.class_of(c) == DataClass::Sensitive);
    if let Some(required_l) = policy.required_l() {
        if outputs_qi && outputs_sensitive && !dp_covered {
            match manifest.l_diversity {
                Some(l) if l >= required_l => {}
                Some(l) => violations.push(Violation {
                    requirement: "MinLDiversity".to_owned(),
                    detail: format!("pipeline enforces l={l}, policy requires l>={required_l}"),
                }),
                None => violations.push(Violation {
                    requirement: "MinLDiversity".to_owned(),
                    detail: format!(
                        "output exposes sensitive values per QI group without l-diversity (need l>={required_l})"
                    ),
                }),
            }
        }
    }

    Verdict::from_violations(violations)
}

/// Dynamic check: does an actual output table honour the declared
/// guarantees? `qi_columns` / `sensitive` name the columns as they appear
/// in the output.
pub fn check_output(
    policy: &Policy,
    table: &Table,
    qi_columns: &[String],
    sensitive: Option<&str>,
) -> Result<Verdict> {
    let mut violations = Vec::new();
    let present_qis: Vec<String> = qi_columns
        .iter()
        .filter(|c| table.schema().contains(c))
        .cloned()
        .collect();
    if let Some(k) = policy.required_k() {
        if !present_qis.is_empty() && !is_k_anonymous(table, &present_qis, k)? {
            violations.push(Violation {
                requirement: "MinKAnonymity".to_owned(),
                detail: format!("output has a quasi-identifier group smaller than k={k}"),
            });
        }
    }
    if let (Some(l), Some(s)) = (policy.required_l(), sensitive) {
        if !present_qis.is_empty()
            && table.schema().contains(s)
            && !is_l_diverse(table, &present_qis, s, l)?
        {
            violations.push(Violation {
                requirement: "MinLDiversity".to_owned(),
                detail: format!("output has a group with fewer than l={l} distinct {s:?} values"),
            });
        }
    }
    if policy.bans_identifiers() {
        for c in policy.columns_of(DataClass::Identifier) {
            if table.schema().contains(c) {
                violations.push(Violation {
                    requirement: "NoDirectIdentifiers".to_owned(),
                    detail: format!("identifier column {c:?} present in output"),
                });
            }
        }
    }
    Ok(Verdict::from_violations(violations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kanon::{enforce_k_anonymity, QuasiIdentifier};
    use crate::policy::healthcare_default;
    use toreador_data::generate::health_records;

    fn manifest(outputs: &[&str]) -> PrivacyManifest {
        PrivacyManifest {
            columns_read: vec!["age".into(), "zip".into(), "diagnosis".into()],
            columns_output: outputs.iter().map(|s| s.to_string()).collect(),
            ..Default::default()
        }
    }

    #[test]
    fn identifier_in_output_is_rejected() {
        let p = healthcare_default();
        let v = check_manifest(&p, &manifest(&["patient_id", "cost"]));
        assert!(!v.compliant);
        assert!(v
            .violations
            .iter()
            .any(|x| x.requirement == "NoDirectIdentifiers"));
    }

    #[test]
    fn qi_output_without_kanon_is_rejected() {
        let p = healthcare_default();
        let v = check_manifest(&p, &manifest(&["age", "cost"]));
        assert!(!v.compliant);
        assert!(v
            .violations
            .iter()
            .any(|x| x.requirement == "MinKAnonymity"));
    }

    #[test]
    fn sufficient_kanon_passes_insufficient_fails() {
        let p = healthcare_default();
        let mut m = manifest(&["age", "cost"]);
        m.k_anonymity = Some(5);
        assert!(check_manifest(&p, &m).compliant);
        m.k_anonymity = Some(3);
        assert!(!check_manifest(&p, &m).compliant);
    }

    #[test]
    fn sensitive_with_qi_needs_ldiversity() {
        let p = healthcare_default();
        let mut m = manifest(&["age", "diagnosis"]);
        m.k_anonymity = Some(5);
        let v = check_manifest(&p, &m);
        assert!(v
            .violations
            .iter()
            .any(|x| x.requirement == "MinLDiversity"));
        m.l_diversity = Some(2);
        assert!(check_manifest(&p, &m).compliant);
    }

    #[test]
    fn aggregates_without_qis_are_fine() {
        let p = healthcare_default();
        let v = check_manifest(&p, &manifest(&["cost"]));
        assert!(v.compliant, "{:?}", v.violations);
    }

    #[test]
    fn dp_within_budget_covers_group_privacy() {
        let p = healthcare_default().require(crate::policy::Requirement::MaxDpEpsilon(1.0));
        let mut m = manifest(&["age", "diagnosis"]);
        m.dp_epsilon = Some(0.5);
        assert!(check_manifest(&p, &m).compliant);
        m.dp_epsilon = Some(2.0);
        let v = check_manifest(&p, &m);
        assert!(!v.compliant);
        assert!(v.violations.iter().any(|x| x.requirement == "MaxDpEpsilon"));
    }

    #[test]
    fn dynamic_check_on_real_output() {
        let p = healthcare_default();
        let t = health_records(400, 5);
        let qi: Vec<String> = vec!["age".into(), "zip".into(), "sex".into()];
        // Raw output violates.
        let without_id = t.without_column("patient_id").unwrap();
        let v = check_output(&p, &without_id, &qi, Some("diagnosis")).unwrap();
        assert!(!v.compliant);
        // Anonymised output passes the k check.
        let qis = vec![
            QuasiIdentifier::numeric("age", vec![5.0, 10.0, 25.0]),
            QuasiIdentifier::string_prefix("zip", vec![3, 2, 1]),
            QuasiIdentifier::string_prefix("sex", vec![]),
        ];
        let anon = enforce_k_anonymity(&without_id, &qis, 5).unwrap();
        let v = check_output(&p, &anon.table, &qi, None).unwrap();
        assert!(
            !v.violations
                .iter()
                .any(|x| x.requirement == "MinKAnonymity"),
            "{:?}",
            v.violations
        );
        // Identifier present is caught dynamically too.
        let v = check_output(&p, &t, &qi, None).unwrap();
        assert!(v
            .violations
            .iter()
            .any(|x| x.requirement == "NoDirectIdentifiers"));
    }
}
