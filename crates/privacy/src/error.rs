//! Error type for the privacy substrate.

use std::fmt;

use toreador_data::error::DataError;

/// Errors raised by anonymisation, DP accounting, or compliance checking.
#[derive(Debug, Clone, PartialEq)]
pub enum PrivacyError {
    /// Bubbled up from the data layer.
    Data(DataError),
    /// A parameter is out of range (k < 2, epsilon <= 0, ...).
    InvalidParameter(String),
    /// The differential-privacy budget is exhausted.
    BudgetExhausted { requested: f64, remaining: f64 },
    /// Anonymisation could not reach the requested guarantee.
    Unachievable(String),
    /// A policy references a column the dataset does not have.
    UnknownColumn(String),
}

impl fmt::Display for PrivacyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrivacyError::Data(e) => write!(f, "data error: {e}"),
            PrivacyError::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
            PrivacyError::BudgetExhausted {
                requested,
                remaining,
            } => {
                write!(
                    f,
                    "privacy budget exhausted: requested ε={requested}, remaining ε={remaining}"
                )
            }
            PrivacyError::Unachievable(m) => write!(f, "guarantee unachievable: {m}"),
            PrivacyError::UnknownColumn(c) => write!(f, "policy references unknown column {c:?}"),
        }
    }
}

impl std::error::Error for PrivacyError {}

impl From<DataError> for PrivacyError {
    fn from(e: DataError) -> Self {
        PrivacyError::Data(e)
    }
}

/// Result alias for the privacy layer.
pub type Result<T> = std::result::Result<T, PrivacyError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_message_names_both_sides() {
        let e = PrivacyError::BudgetExhausted {
            requested: 0.5,
            remaining: 0.1,
        };
        let s = e.to_string();
        assert!(s.contains("0.5") && s.contains("0.1"));
    }
}
