//! Append-only audit log of data access and compliance decisions.
//!
//! The "custody" half of the paper's regulatory barrier: every access to a
//! protected dataset and every compliance verdict is recorded, so a
//! campaign can demonstrate after the fact what was read, by which
//! pipeline, under which policy.

use serde::{Deserialize, Serialize};

/// What happened.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AuditEvent {
    /// A pipeline read a dataset.
    DatasetAccess { dataset: String, pipeline: String },
    /// A compliance check ran.
    ComplianceCheck {
        pipeline: String,
        policy: String,
        passed: bool,
    },
    /// An anonymisation was applied.
    Anonymization {
        pipeline: String,
        technique: String,
        parameter: String,
    },
    /// A DP budget spend.
    BudgetSpend {
        pipeline: String,
        label: String,
        epsilon: f64,
    },
}

/// One timestamped entry. Timestamps are logical (monotone sequence
/// numbers) so logs are reproducible.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditEntry {
    pub sequence: u64,
    pub event: AuditEvent,
}

/// An append-only audit log.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditLog {
    entries: Vec<AuditEntry>,
}

impl AuditLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event, assigning the next sequence number.
    pub fn record(&mut self, event: AuditEvent) -> u64 {
        let sequence = self.entries.len() as u64;
        self.entries.push(AuditEntry { sequence, event });
        sequence
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn entries(&self) -> &[AuditEntry] {
        &self.entries
    }

    /// All events touching the named pipeline.
    pub fn for_pipeline(&self, pipeline: &str) -> Vec<&AuditEntry> {
        self.entries
            .iter()
            .filter(|e| match &e.event {
                AuditEvent::DatasetAccess { pipeline: p, .. }
                | AuditEvent::ComplianceCheck { pipeline: p, .. }
                | AuditEvent::Anonymization { pipeline: p, .. }
                | AuditEvent::BudgetSpend { pipeline: p, .. } => p == pipeline,
            })
            .collect()
    }

    /// Total ε spent according to the log (cross-check against ledgers).
    pub fn total_epsilon_spent(&self) -> f64 {
        self.entries
            .iter()
            .filter_map(|e| match &e.event {
                AuditEvent::BudgetSpend { epsilon, .. } => Some(*epsilon),
                _ => None,
            })
            .sum()
    }

    /// Did any compliance check fail?
    pub fn any_failures(&self) -> bool {
        self.entries
            .iter()
            .any(|e| matches!(&e.event, AuditEvent::ComplianceCheck { passed: false, .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_numbers_are_monotone() {
        let mut log = AuditLog::new();
        let a = log.record(AuditEvent::DatasetAccess {
            dataset: "health".into(),
            pipeline: "p1".into(),
        });
        let b = log.record(AuditEvent::ComplianceCheck {
            pipeline: "p1".into(),
            policy: "gdpr".into(),
            passed: true,
        });
        assert_eq!((a, b), (0, 1));
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn filters_by_pipeline() {
        let mut log = AuditLog::new();
        log.record(AuditEvent::DatasetAccess {
            dataset: "d".into(),
            pipeline: "p1".into(),
        });
        log.record(AuditEvent::DatasetAccess {
            dataset: "d".into(),
            pipeline: "p2".into(),
        });
        log.record(AuditEvent::BudgetSpend {
            pipeline: "p1".into(),
            label: "q".into(),
            epsilon: 0.5,
        });
        assert_eq!(log.for_pipeline("p1").len(), 2);
        assert_eq!(log.for_pipeline("p2").len(), 1);
        assert_eq!(log.for_pipeline("ghost").len(), 0);
    }

    #[test]
    fn epsilon_accounting_and_failure_detection() {
        let mut log = AuditLog::new();
        log.record(AuditEvent::BudgetSpend {
            pipeline: "p".into(),
            label: "a".into(),
            epsilon: 0.3,
        });
        log.record(AuditEvent::BudgetSpend {
            pipeline: "p".into(),
            label: "b".into(),
            epsilon: 0.2,
        });
        assert!((log.total_epsilon_spent() - 0.5).abs() < 1e-12);
        assert!(!log.any_failures());
        log.record(AuditEvent::ComplianceCheck {
            pipeline: "p".into(),
            policy: "gdpr".into(),
            passed: false,
        });
        assert!(log.any_failures());
    }

    #[test]
    fn log_serializes() {
        let mut log = AuditLog::new();
        log.record(AuditEvent::Anonymization {
            pipeline: "p".into(),
            technique: "k-anonymity".into(),
            parameter: "k=5".into(),
        });
        let j = serde_json::to_string(&log).unwrap();
        let back: AuditLog = serde_json::from_str(&j).unwrap();
        assert_eq!(log, back);
    }
}
