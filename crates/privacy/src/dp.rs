//! ε-differential privacy: the Laplace mechanism and a budget ledger.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::{PrivacyError, Result};

/// Draw Laplace(0, scale) noise deterministically from a seeded RNG.
///
/// Inverse-CDF sampling: `-scale * sgn(u) * ln(1 - 2|u|)` for `u ∈ (-½, ½)`.
pub fn laplace_noise(rng: &mut StdRng, scale: f64) -> f64 {
    let u: f64 = rng.gen_range(-0.5..0.5);
    -scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
}

/// An ε budget ledger: queries spend from a fixed total, and spending past
/// the total is refused (the sequential-composition rule).
#[derive(Debug, Clone)]
pub struct BudgetLedger {
    total: f64,
    spent: f64,
    entries: Vec<(String, f64)>,
}

impl BudgetLedger {
    pub fn new(total_epsilon: f64) -> Result<Self> {
        if total_epsilon <= 0.0 {
            return Err(PrivacyError::InvalidParameter(format!(
                "budget {total_epsilon} must be positive"
            )));
        }
        Ok(BudgetLedger {
            total: total_epsilon,
            spent: 0.0,
            entries: Vec::new(),
        })
    }

    pub fn total(&self) -> f64 {
        self.total
    }

    pub fn spent(&self) -> f64 {
        self.spent
    }

    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }

    /// Record a spend, refusing if it would exceed the budget.
    pub fn spend(&mut self, label: impl Into<String>, epsilon: f64) -> Result<()> {
        if epsilon <= 0.0 {
            return Err(PrivacyError::InvalidParameter(format!(
                "epsilon {epsilon} must be positive"
            )));
        }
        if self.spent + epsilon > self.total + 1e-12 {
            return Err(PrivacyError::BudgetExhausted {
                requested: epsilon,
                remaining: self.remaining(),
            });
        }
        self.spent += epsilon;
        self.entries.push((label.into(), epsilon));
        Ok(())
    }

    /// The ledger's spend history.
    pub fn entries(&self) -> &[(String, f64)] {
        &self.entries
    }
}

/// A DP release mechanism bound to a ledger and a deterministic RNG.
#[derive(Debug)]
pub struct LaplaceMechanism {
    ledger: BudgetLedger,
    rng: StdRng,
}

impl LaplaceMechanism {
    pub fn new(total_epsilon: f64, seed: u64) -> Result<Self> {
        Ok(LaplaceMechanism {
            ledger: BudgetLedger::new(total_epsilon)?,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    pub fn ledger(&self) -> &BudgetLedger {
        &self.ledger
    }

    /// ε-DP count: true count plus Laplace(1/ε) noise (sensitivity 1).
    pub fn noisy_count(&mut self, label: &str, true_count: usize, epsilon: f64) -> Result<f64> {
        self.ledger.spend(label, epsilon)?;
        Ok(true_count as f64 + laplace_noise(&mut self.rng, 1.0 / epsilon))
    }

    /// ε-DP sum with known per-record bound `clamp` (values are clamped to
    /// [-clamp, clamp], giving sensitivity `clamp`).
    pub fn noisy_sum(
        &mut self,
        label: &str,
        values: &[f64],
        clamp: f64,
        epsilon: f64,
    ) -> Result<f64> {
        if clamp <= 0.0 {
            return Err(PrivacyError::InvalidParameter(format!(
                "clamp {clamp} must be positive"
            )));
        }
        self.ledger.spend(label, epsilon)?;
        let clamped_sum: f64 = values.iter().map(|v| v.clamp(-clamp, clamp)).sum();
        Ok(clamped_sum + laplace_noise(&mut self.rng, clamp / epsilon))
    }

    /// ε-DP mean: splits ε between a noisy sum and a noisy count.
    pub fn noisy_mean(
        &mut self,
        label: &str,
        values: &[f64],
        clamp: f64,
        epsilon: f64,
    ) -> Result<f64> {
        let half = epsilon / 2.0;
        let sum = self.noisy_sum(&format!("{label}/sum"), values, clamp, half)?;
        let count = self.noisy_count(&format!("{label}/count"), values.len(), half)?;
        Ok(sum / count.max(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_enforces_budget() {
        let mut l = BudgetLedger::new(1.0).unwrap();
        l.spend("q1", 0.4).unwrap();
        l.spend("q2", 0.4).unwrap();
        assert!((l.remaining() - 0.2).abs() < 1e-12);
        let err = l.spend("q3", 0.4).unwrap_err();
        assert!(matches!(err, PrivacyError::BudgetExhausted { .. }));
        // Failed spend does not mutate.
        assert!((l.spent() - 0.8).abs() < 1e-12);
        assert_eq!(l.entries().len(), 2);
        // Exactly exhausting is allowed.
        l.spend("q4", 0.2).unwrap();
        assert_eq!(l.remaining(), 0.0);
    }

    #[test]
    fn ledger_rejects_bad_parameters() {
        assert!(BudgetLedger::new(0.0).is_err());
        let mut l = BudgetLedger::new(1.0).unwrap();
        assert!(l.spend("q", 0.0).is_err());
        assert!(l.spend("q", -0.5).is_err());
    }

    #[test]
    fn laplace_noise_has_expected_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let scale = 2.0;
        let xs: Vec<f64> = (0..50_000)
            .map(|_| laplace_noise(&mut rng, scale))
            .collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        // Var of Laplace(b) = 2b² = 8.
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((var - 8.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn noise_shrinks_as_epsilon_grows() {
        // Average absolute error over repeated releases.
        let mut err_small_eps = 0.0;
        let mut err_big_eps = 0.0;
        for seed in 0..200 {
            let mut m = LaplaceMechanism::new(100.0, seed).unwrap();
            err_small_eps += (m.noisy_count("a", 1000, 0.1).unwrap() - 1000.0).abs();
            err_big_eps += (m.noisy_count("b", 1000, 10.0).unwrap() - 1000.0).abs();
        }
        assert!(
            err_small_eps > 20.0 * err_big_eps,
            "ε=0.1 err {err_small_eps} vs ε=10 err {err_big_eps}"
        );
    }

    #[test]
    fn releases_are_deterministic_in_seed() {
        let mut a = LaplaceMechanism::new(10.0, 7).unwrap();
        let mut b = LaplaceMechanism::new(10.0, 7).unwrap();
        assert_eq!(
            a.noisy_count("x", 50, 1.0).unwrap(),
            b.noisy_count("x", 50, 1.0).unwrap()
        );
    }

    #[test]
    fn sum_clamps_outliers() {
        let mut m = LaplaceMechanism::new(1000.0, 3).unwrap();
        // One adversarial outlier of 1e9 is clamped to 10.
        let values = vec![5.0, 5.0, 1e9];
        let s = m.noisy_sum("s", &values, 10.0, 100.0).unwrap();
        assert!((s - 20.0).abs() < 2.0, "clamped sum near 20, got {s}");
        assert!(m.noisy_sum("bad", &values, 0.0, 1.0).is_err());
    }

    #[test]
    fn mean_spends_full_epsilon() {
        let mut m = LaplaceMechanism::new(1.0, 5).unwrap();
        let v: Vec<f64> = (0..100).map(|i| i as f64 % 10.0).collect();
        let mean = m.noisy_mean("m", &v, 10.0, 1.0).unwrap();
        assert!((m.ledger().spent() - 1.0).abs() < 1e-12);
        assert!((mean - 4.5).abs() < 3.0, "rough mean, got {mean}");
        // Budget exhausted now.
        assert!(m.noisy_count("again", 10, 0.1).is_err());
    }
}
