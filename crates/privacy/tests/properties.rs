//! Property-based tests for privacy invariants.

use proptest::prelude::*;

use toreador_data::generate::health_records;
use toreador_privacy::prelude::*;

fn qis() -> Vec<QuasiIdentifier> {
    vec![
        QuasiIdentifier::numeric("age", vec![5.0, 10.0, 25.0]),
        QuasiIdentifier::string_prefix("zip", vec![3, 2, 1]),
        QuasiIdentifier::string_prefix("sex", vec![]),
    ]
}

fn qi_names() -> Vec<String> {
    vec!["age".into(), "zip".into(), "sex".into()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn enforcement_always_reaches_k_or_suppresses(rows in 5usize..300, k in 2usize..20, seed in 0u64..10) {
        let t = health_records(rows, seed);
        let a = enforce_k_anonymity(&t, &qis(), k).unwrap();
        // Whatever survives is k-anonymous.
        prop_assert!(
            a.table.num_rows() == 0 || is_k_anonymous(&a.table, &qi_names(), k).unwrap(),
            "levels {:?} suppressed {}", a.levels, a.suppressed_rows
        );
        // Row accounting.
        prop_assert_eq!(a.table.num_rows() + a.suppressed_rows, rows);
        // Utility loss bounded.
        prop_assert!((0.0..=1.0).contains(&a.utility_loss));
    }

    #[test]
    fn anonymity_level_monotone_in_generalisation(rows in 20usize..150, seed in 0u64..10) {
        // A fully generalised table has anonymity >= the raw table.
        let t = health_records(rows, seed);
        let raw = anonymity_level(&t, &qi_names()).unwrap();
        let a = enforce_k_anonymity(&t, &qis(), 2).unwrap();
        if a.table.num_rows() > 0 {
            let anon = anonymity_level(&a.table, &qi_names()).unwrap();
            prop_assert!(anon >= raw.min(2), "anon {anon} raw {raw}");
        }
    }

    #[test]
    fn ledger_never_overspends(spends in prop::collection::vec(0.01f64..0.5, 1..20), total in 0.5f64..3.0) {
        let mut ledger = BudgetLedger::new(total).unwrap();
        for (i, eps) in spends.iter().enumerate() {
            let _ = ledger.spend(format!("q{i}"), *eps);
        }
        prop_assert!(ledger.spent() <= ledger.total() + 1e-9);
        let from_entries: f64 = ledger.entries().iter().map(|(_, e)| e).sum();
        prop_assert!((from_entries - ledger.spent()).abs() < 1e-9);
    }

    #[test]
    fn noisy_count_error_bounded_by_tail(count in 0usize..10_000, eps in 0.5f64..5.0, seed in 0u64..200) {
        let mut m = LaplaceMechanism::new(100.0, seed).unwrap();
        let noisy = m.noisy_count("c", count, eps).unwrap();
        // P(|noise| > t/eps) = exp(-t); t = 30 makes failure essentially impossible.
        prop_assert!((noisy - count as f64).abs() < 30.0 / eps);
    }

    #[test]
    fn ldiversity_enforcement_is_sound(rows in 10usize..200, l in 2usize..4, seed in 0u64..10) {
        let t = health_records(rows, seed);
        let (kept, suppressed) = enforce_l_diversity(&t, &qi_names(), "diagnosis", l).unwrap();
        prop_assert_eq!(kept.num_rows() + suppressed, rows);
        prop_assert!(
            kept.num_rows() == 0 || is_l_diverse(&kept, &qi_names(), "diagnosis", l).unwrap()
        );
    }

    #[test]
    fn manifest_check_is_deterministic(k in 0usize..10, outputs_id in any::<bool>()) {
        let policy = healthcare_default();
        let mut m = PrivacyManifest {
            columns_output: if outputs_id {
                vec!["patient_id".into(), "age".into()]
            } else {
                vec!["age".into()]
            },
            ..Default::default()
        };
        if k >= 2 {
            m.k_anonymity = Some(k);
        }
        let a = check_manifest(&policy, &m);
        let b = check_manifest(&policy, &m);
        prop_assert_eq!(&a, &b);
        if outputs_id {
            prop_assert!(!a.compliant);
        }
        if !outputs_id && k >= 5 {
            prop_assert!(a.compliant, "{:?}", a.violations);
        }
    }
}
