//! Typed columnar storage.
//!
//! A [`Column`] stores one attribute of a table in a contiguous `Vec` of the
//! native type, with a parallel validity bitmap. This keeps scans cache
//! friendly (the Rust Performance Book's "use contiguous collections"
//! advice) while the row-oriented [`crate::value::Value`] path is reserved
//! for expression evaluation and shuffles.

use serde::{Deserialize, Serialize};

use crate::error::{DataError, Result};
use crate::value::{DataType, Value};

/// Validity bitmap: `true` means the slot holds a value, `false` means null.
///
/// Stored as packed 64-bit words.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Validity {
    words: Vec<u64>,
    len: usize,
    null_count: usize,
}

impl Validity {
    pub fn new() -> Self {
        Validity {
            words: Vec::new(),
            len: 0,
            null_count: 0,
        }
    }

    /// A bitmap of `len` slots, all valid.
    pub fn all_valid(len: usize) -> Self {
        let mut v = Validity {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
            null_count: 0,
        };
        v.mask_tail();
        v
    }

    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn null_count(&self) -> usize {
        self.null_count
    }

    pub fn push(&mut self, valid: bool) {
        let word = self.len / 64;
        let bit = self.len % 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if valid {
            self.words[word] |= 1u64 << bit;
        } else {
            self.null_count += 1;
        }
        self.len += 1;
    }

    pub fn get(&self, index: usize) -> bool {
        debug_assert!(index < self.len);
        (self.words[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Borrow the packed 64-bit words (bit `i % 64` of word `i / 64` is set
    /// when slot `i` is valid; tail bits past `len` are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Append the bits of `other`. Word-aligned destinations splice whole
    /// words; unaligned ones fall back to per-bit pushes.
    pub fn extend_from(&mut self, other: &Validity) {
        if self.len % 64 == 0 {
            self.words.extend_from_slice(&other.words);
            self.len += other.len;
            self.null_count += other.null_count;
            return;
        }
        for i in 0..other.len() {
            self.push(other.get(i));
        }
    }

    /// The bits of `start..end` as a new bitmap. All-valid sources take a
    /// constant-time path; otherwise bits shift over word-by-word.
    pub fn slice_range(&self, start: usize, end: usize) -> Validity {
        debug_assert!(start <= end && end <= self.len);
        let m = end - start;
        if self.null_count == 0 {
            return Validity::all_valid(m);
        }
        let shift = start % 64;
        let first = start / 64;
        let words: Vec<u64> = (0..m.div_ceil(64))
            .map(|w| {
                let lo = self.words.get(first + w).copied().unwrap_or(0) >> shift;
                let hi = if shift == 0 {
                    0
                } else {
                    self.words.get(first + w + 1).copied().unwrap_or(0) << (64 - shift)
                };
                lo | hi
            })
            .collect();
        Validity::from_words(words, m)
    }

    /// Build a bitmap from packed words. Tail bits past `len` are masked
    /// off and the null count is recomputed from the bits.
    pub fn from_words(words: Vec<u64>, len: usize) -> Self {
        let mut v = Validity {
            words,
            len,
            null_count: 0,
        };
        v.words.resize(len.div_ceil(64), 0);
        v.words.truncate(len.div_ceil(64));
        v.mask_tail();
        let ones: usize = v.words.iter().map(|w| w.count_ones() as usize).sum();
        v.null_count = len - ones;
        v
    }

    /// Word-wise intersection: valid where both inputs are valid. The null
    /// propagation step of every binary batch kernel.
    pub fn and(&self, other: &Validity) -> Validity {
        debug_assert_eq!(self.len, other.len);
        if self.null_count == 0 {
            return other.clone();
        }
        if other.null_count == 0 {
            return self.clone();
        }
        let words: Vec<u64> = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a & b)
            .collect();
        Validity::from_words(words, self.len)
    }
}

impl Default for Validity {
    fn default() -> Self {
        Self::new()
    }
}

/// A typed column of values with a validity bitmap.
///
/// The null slots of the data vectors hold an arbitrary default; consumers
/// must consult the bitmap (or use [`Column::value`], which does).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Column {
    Bool {
        data: Vec<bool>,
        validity: Validity,
    },
    Int {
        data: Vec<i64>,
        validity: Validity,
    },
    Float {
        data: Vec<f64>,
        validity: Validity,
    },
    Str {
        data: Vec<String>,
        validity: Validity,
    },
    Timestamp {
        data: Vec<i64>,
        validity: Validity,
    },
}

impl Column {
    /// An empty column of the given type.
    pub fn empty(ty: DataType) -> Self {
        match ty {
            DataType::Bool => Column::Bool {
                data: Vec::new(),
                validity: Validity::new(),
            },
            DataType::Int => Column::Int {
                data: Vec::new(),
                validity: Validity::new(),
            },
            DataType::Float => Column::Float {
                data: Vec::new(),
                validity: Validity::new(),
            },
            DataType::Str => Column::Str {
                data: Vec::new(),
                validity: Validity::new(),
            },
            DataType::Timestamp => Column::Timestamp {
                data: Vec::new(),
                validity: Validity::new(),
            },
        }
    }

    /// An empty column with reserved capacity.
    pub fn with_capacity(ty: DataType, cap: usize) -> Self {
        match ty {
            DataType::Bool => Column::Bool {
                data: Vec::with_capacity(cap),
                validity: Validity::new(),
            },
            DataType::Int => Column::Int {
                data: Vec::with_capacity(cap),
                validity: Validity::new(),
            },
            DataType::Float => Column::Float {
                data: Vec::with_capacity(cap),
                validity: Validity::new(),
            },
            DataType::Str => Column::Str {
                data: Vec::with_capacity(cap),
                validity: Validity::new(),
            },
            DataType::Timestamp => Column::Timestamp {
                data: Vec::with_capacity(cap),
                validity: Validity::new(),
            },
        }
    }

    /// Build a column of type `ty` from values, coercing each one.
    pub fn from_values(ty: DataType, values: &[Value]) -> Result<Self> {
        let mut col = Column::with_capacity(ty, values.len());
        for v in values {
            col.push(v)?;
        }
        Ok(col)
    }

    /// Convenience constructors from native vectors (all-valid).
    pub fn from_ints(data: Vec<i64>) -> Self {
        let validity = Validity::all_valid(data.len());
        Column::Int { data, validity }
    }

    pub fn from_floats(data: Vec<f64>) -> Self {
        let validity = Validity::all_valid(data.len());
        Column::Float { data, validity }
    }

    pub fn from_bools(data: Vec<bool>) -> Self {
        let validity = Validity::all_valid(data.len());
        Column::Bool { data, validity }
    }

    pub fn from_strs<S: Into<String>>(data: Vec<S>) -> Self {
        let data: Vec<String> = data.into_iter().map(Into::into).collect();
        let validity = Validity::all_valid(data.len());
        Column::Str { data, validity }
    }

    pub fn from_timestamps(data: Vec<i64>) -> Self {
        let validity = Validity::all_valid(data.len());
        Column::Timestamp { data, validity }
    }

    pub fn data_type(&self) -> DataType {
        match self {
            Column::Bool { .. } => DataType::Bool,
            Column::Int { .. } => DataType::Int,
            Column::Float { .. } => DataType::Float,
            Column::Str { .. } => DataType::Str,
            Column::Timestamp { .. } => DataType::Timestamp,
        }
    }

    pub fn len(&self) -> usize {
        self.validity().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn null_count(&self) -> usize {
        self.validity().null_count()
    }

    pub fn validity(&self) -> &Validity {
        match self {
            Column::Bool { validity, .. }
            | Column::Int { validity, .. }
            | Column::Float { validity, .. }
            | Column::Str { validity, .. }
            | Column::Timestamp { validity, .. } => validity,
        }
    }

    /// Append a value, coercing to the column type; `Null` appends a null.
    pub fn push(&mut self, value: &Value) -> Result<()> {
        if value.is_null() {
            self.push_null();
            return Ok(());
        }
        match self {
            Column::Bool { data, validity } => {
                data.push(value.as_bool()?);
                validity.push(true);
            }
            Column::Int { data, validity } => {
                data.push(value.as_int()?);
                validity.push(true);
            }
            Column::Float { data, validity } => {
                data.push(value.as_float()?);
                validity.push(true);
            }
            Column::Str { data, validity } => {
                data.push(value.as_str()?.to_owned());
                validity.push(true);
            }
            Column::Timestamp { data, validity } => {
                data.push(value.as_timestamp()?);
                validity.push(true);
            }
        }
        Ok(())
    }

    /// Append a null slot.
    pub fn push_null(&mut self) {
        match self {
            Column::Bool { data, validity } => {
                data.push(false);
                validity.push(false);
            }
            Column::Int { data, validity } | Column::Timestamp { data, validity } => {
                data.push(0);
                validity.push(false);
            }
            Column::Float { data, validity } => {
                data.push(0.0);
                validity.push(false);
            }
            Column::Str { data, validity } => {
                data.push(String::new());
                validity.push(false);
            }
        }
    }

    /// The value at `index` (checked).
    pub fn value(&self, index: usize) -> Result<Value> {
        if index >= self.len() {
            return Err(DataError::RowIndexOutOfBounds {
                index,
                len: self.len(),
            });
        }
        if !self.validity().get(index) {
            return Ok(Value::Null);
        }
        Ok(match self {
            Column::Bool { data, .. } => Value::Bool(data[index]),
            Column::Int { data, .. } => Value::Int(data[index]),
            Column::Float { data, .. } => Value::Float(data[index]),
            Column::Str { data, .. } => Value::Str(data[index].clone()),
            Column::Timestamp { data, .. } => Value::Timestamp(data[index]),
        })
    }

    /// Iterate the column as `Value`s (nulls included).
    pub fn iter_values(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.value(i).expect("index in range"))
    }

    /// Gather the rows at `indices` into a new column (typed fast path, no
    /// per-row `Value` materialization).
    pub fn take(&self, indices: &[usize]) -> Result<Column> {
        if let Some(&bad) = indices.iter().find(|&&i| i >= self.len()) {
            return Err(DataError::RowIndexOutOfBounds {
                index: bad,
                len: self.len(),
            });
        }
        Ok(self.gather(indices.iter().copied()))
    }

    /// Gather by a selection vector (bounds checked in debug builds only —
    /// callers produce selections from this column's own row range).
    pub fn take_sel(&self, sel: &[u32]) -> Column {
        debug_assert!(sel.iter().all(|&i| (i as usize) < self.len()));
        self.gather(sel.iter().map(|&i| i as usize))
    }

    fn gather(&self, indices: impl Iterator<Item = usize> + Clone) -> Column {
        fn pick<T: Clone + Default>(
            data: &[T],
            validity: &Validity,
            indices: impl Iterator<Item = usize> + Clone,
        ) -> (Vec<T>, Validity) {
            if validity.null_count() == 0 {
                let out: Vec<T> = indices.map(|i| data[i].clone()).collect();
                let v = Validity::all_valid(out.len());
                (out, v)
            } else {
                let mut out = Vec::with_capacity(indices.size_hint().0);
                let mut v = Validity::new();
                for i in indices {
                    out.push(data[i].clone());
                    v.push(validity.get(i));
                }
                (out, v)
            }
        }
        match self {
            Column::Bool { data, validity } => {
                let (data, validity) = pick(data, validity, indices);
                Column::Bool { data, validity }
            }
            Column::Int { data, validity } => {
                let (data, validity) = pick(data, validity, indices);
                Column::Int { data, validity }
            }
            Column::Float { data, validity } => {
                let (data, validity) = pick(data, validity, indices);
                Column::Float { data, validity }
            }
            Column::Str { data, validity } => {
                let (data, validity) = pick(data, validity, indices);
                Column::Str { data, validity }
            }
            Column::Timestamp { data, validity } => {
                let (data, validity) = pick(data, validity, indices);
                Column::Timestamp { data, validity }
            }
        }
    }

    /// Keep rows where `mask[i]` is true. `mask.len()` must equal `len()`.
    pub fn filter(&self, mask: &[bool]) -> Result<Column> {
        if mask.len() != self.len() {
            return Err(DataError::LengthMismatch {
                expected: self.len(),
                found: mask.len(),
            });
        }
        let indices: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, &k)| k.then_some(i))
            .collect();
        Ok(self.gather(indices.iter().copied()))
    }

    /// A copy of rows `range.start..range.end` — a contiguous memcpy of the
    /// data plus a word-shifted validity slice, not a per-row gather.
    pub fn slice(&self, start: usize, end: usize) -> Result<Column> {
        if end > self.len() || start > end {
            return Err(DataError::RowIndexOutOfBounds {
                index: end,
                len: self.len(),
            });
        }
        fn cut<T: Clone>(
            data: &[T],
            validity: &Validity,
            start: usize,
            end: usize,
        ) -> (Vec<T>, Validity) {
            (data[start..end].to_vec(), validity.slice_range(start, end))
        }
        Ok(match self {
            Column::Bool { data, validity } => {
                let (data, validity) = cut(data, validity, start, end);
                Column::Bool { data, validity }
            }
            Column::Int { data, validity } => {
                let (data, validity) = cut(data, validity, start, end);
                Column::Int { data, validity }
            }
            Column::Float { data, validity } => {
                let (data, validity) = cut(data, validity, start, end);
                Column::Float { data, validity }
            }
            Column::Str { data, validity } => {
                let (data, validity) = cut(data, validity, start, end);
                Column::Str { data, validity }
            }
            Column::Timestamp { data, validity } => {
                let (data, validity) = cut(data, validity, start, end);
                Column::Timestamp { data, validity }
            }
        })
    }

    /// Append all rows of `other` (same type required). Bulk lane copies —
    /// no per-row `Value` round trip, so concatenating many chunks (the
    /// morsel pipeline's reassembly step) costs a memcpy per lane.
    pub fn extend_from(&mut self, other: &Column) -> Result<()> {
        use Column::*;
        match (&mut *self, other) {
            (
                Bool { data, validity },
                Bool {
                    data: od,
                    validity: ov,
                },
            ) => {
                data.extend_from_slice(od);
                validity.extend_from(ov);
            }
            (
                Int { data, validity },
                Int {
                    data: od,
                    validity: ov,
                },
            )
            | (
                Timestamp { data, validity },
                Timestamp {
                    data: od,
                    validity: ov,
                },
            ) => {
                data.extend_from_slice(od);
                validity.extend_from(ov);
            }
            (
                Float { data, validity },
                Float {
                    data: od,
                    validity: ov,
                },
            ) => {
                data.extend_from_slice(od);
                validity.extend_from(ov);
            }
            (
                Str { data, validity },
                Str {
                    data: od,
                    validity: ov,
                },
            ) => {
                data.extend_from_slice(od);
                validity.extend_from(ov);
            }
            _ => {
                return Err(DataError::TypeMismatch {
                    expected: self.data_type().name().to_owned(),
                    found: other.data_type().name().to_owned(),
                })
            }
        }
        Ok(())
    }

    /// Sum of a numeric column, skipping nulls. Errors on non-numeric.
    pub fn sum_f64(&self) -> Result<f64> {
        match self {
            Column::Int { data, validity } => Ok(data
                .iter()
                .enumerate()
                .filter(|(i, _)| validity.get(*i))
                .map(|(_, &v)| v as f64)
                .sum()),
            Column::Float { data, validity } => Ok(data
                .iter()
                .enumerate()
                .filter(|(i, _)| validity.get(*i))
                .map(|(_, &v)| v)
                .sum()),
            other => Err(DataError::TypeMismatch {
                expected: "numeric".to_owned(),
                found: other.data_type().name().to_owned(),
            }),
        }
    }

    /// Minimum non-null value, or `Value::Null` on an all-null/empty column.
    pub fn min(&self) -> Value {
        self.iter_values()
            .filter(|v| !v.is_null())
            .min_by(|a, b| a.total_cmp(b))
            .unwrap_or(Value::Null)
    }

    /// Maximum non-null value, or `Value::Null` on an all-null/empty column.
    pub fn max(&self) -> Value {
        self.iter_values()
            .filter(|v| !v.is_null())
            .max_by(|a, b| a.total_cmp(b))
            .unwrap_or(Value::Null)
    }

    /// Borrow the raw float data (and validity) when this is a Float column.
    pub fn as_floats(&self) -> Result<(&[f64], &Validity)> {
        match self {
            Column::Float { data, validity } => Ok((data, validity)),
            other => Err(DataError::TypeMismatch {
                expected: "Float".to_owned(),
                found: other.data_type().name().to_owned(),
            }),
        }
    }

    /// Borrow the raw int data (and validity) when this is an Int column.
    pub fn as_ints(&self) -> Result<(&[i64], &Validity)> {
        match self {
            Column::Int { data, validity } => Ok((data, validity)),
            other => Err(DataError::TypeMismatch {
                expected: "Int".to_owned(),
                found: other.data_type().name().to_owned(),
            }),
        }
    }

    /// Borrow the raw string data (and validity) when this is a Str column.
    pub fn as_strs(&self) -> Result<(&[String], &Validity)> {
        match self {
            Column::Str { data, validity } => Ok((data, validity)),
            other => Err(DataError::TypeMismatch {
                expected: "Str".to_owned(),
                found: other.data_type().name().to_owned(),
            }),
        }
    }

    /// Borrow the raw bool data (and validity) when this is a Bool column.
    pub fn as_bools(&self) -> Result<(&[bool], &Validity)> {
        match self {
            Column::Bool { data, validity } => Ok((data, validity)),
            other => Err(DataError::TypeMismatch {
                expected: "Bool".to_owned(),
                found: other.data_type().name().to_owned(),
            }),
        }
    }

    /// Borrow the raw timestamp data (and validity) when this is a
    /// Timestamp column.
    pub fn as_timestamps(&self) -> Result<(&[i64], &Validity)> {
        match self {
            Column::Timestamp { data, validity } => Ok((data, validity)),
            other => Err(DataError::TypeMismatch {
                expected: "Timestamp".to_owned(),
                found: other.data_type().name().to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validity_packs_bits() {
        let mut v = Validity::new();
        for i in 0..130 {
            v.push(i % 3 != 0);
        }
        assert_eq!(v.len(), 130);
        assert!(!v.get(0));
        assert!(v.get(1));
        assert_eq!(!v.get(129), 129 % 3 == 0);
        assert_eq!(v.null_count(), (0..130).filter(|i| i % 3 == 0).count());
    }

    #[test]
    fn all_valid_masks_tail() {
        let v = Validity::all_valid(70);
        assert_eq!(v.len(), 70);
        assert_eq!(v.null_count(), 0);
        assert!(v.get(69));
    }

    #[test]
    fn push_and_read_with_nulls() {
        let mut c = Column::empty(DataType::Int);
        c.push(&Value::Int(1)).unwrap();
        c.push(&Value::Null).unwrap();
        c.push(&Value::Int(3)).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.value(0).unwrap(), Value::Int(1));
        assert_eq!(c.value(1).unwrap(), Value::Null);
        assert!(c.value(3).is_err());
    }

    #[test]
    fn push_rejects_wrong_type() {
        let mut c = Column::empty(DataType::Int);
        assert!(c.push(&Value::Str("x".into())).is_err());
    }

    #[test]
    fn float_column_accepts_ints() {
        let mut c = Column::empty(DataType::Float);
        c.push(&Value::Int(2)).unwrap();
        assert_eq!(c.value(0).unwrap(), Value::Float(2.0));
    }

    #[test]
    fn take_filter_slice() {
        let c = Column::from_ints(vec![10, 20, 30, 40]);
        let t = c.take(&[3, 0]).unwrap();
        assert_eq!(t.value(0).unwrap(), Value::Int(40));
        assert_eq!(t.value(1).unwrap(), Value::Int(10));
        let f = c.filter(&[true, false, true, false]).unwrap();
        assert_eq!(f.len(), 2);
        assert_eq!(f.value(1).unwrap(), Value::Int(30));
        let s = c.slice(1, 3).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.value(0).unwrap(), Value::Int(20));
        assert!(c.filter(&[true]).is_err());
        assert!(c.slice(2, 9).is_err());
    }

    #[test]
    fn aggregates_skip_nulls() {
        let c = Column::from_values(
            DataType::Float,
            &[Value::Float(1.0), Value::Null, Value::Float(3.0)],
        )
        .unwrap();
        assert_eq!(c.sum_f64().unwrap(), 4.0);
        assert_eq!(c.min(), Value::Float(1.0));
        assert_eq!(c.max(), Value::Float(3.0));
    }

    #[test]
    fn aggregates_on_empty_and_all_null() {
        let c = Column::empty(DataType::Int);
        assert_eq!(c.min(), Value::Null);
        let c = Column::from_values(DataType::Int, &[Value::Null, Value::Null]).unwrap();
        assert_eq!(c.max(), Value::Null);
        assert_eq!(c.sum_f64().unwrap(), 0.0);
    }

    #[test]
    fn sum_rejects_strings() {
        let c = Column::from_strs(vec!["a", "b"]);
        assert!(c.sum_f64().is_err());
    }

    #[test]
    fn extend_from_same_type_only() {
        let mut a = Column::from_ints(vec![1]);
        a.extend_from(&Column::from_ints(vec![2, 3])).unwrap();
        assert_eq!(a.len(), 3);
        assert!(a.extend_from(&Column::from_strs(vec!["x"])).is_err());
    }

    #[test]
    fn validity_word_views_round_trip() {
        let mut v = Validity::new();
        for i in 0..100 {
            v.push(i % 7 != 0);
        }
        let rebuilt = Validity::from_words(v.words().to_vec(), v.len());
        assert_eq!(rebuilt, v);
        // from_words masks garbage tail bits and recounts nulls.
        let noisy = Validity::from_words(vec![u64::MAX, u64::MAX], 70);
        assert_eq!(noisy.len(), 70);
        assert_eq!(noisy.null_count(), 0);
        assert_eq!(noisy.words()[1], (1u64 << 6) - 1);
    }

    #[test]
    fn validity_and_intersects() {
        let mut a = Validity::new();
        let mut b = Validity::new();
        for i in 0..130 {
            a.push(i % 2 == 0);
            b.push(i % 3 == 0);
        }
        let c = a.and(&b);
        for i in 0..130 {
            assert_eq!(c.get(i), i % 6 == 0, "slot {i}");
        }
        let all = Validity::all_valid(130);
        assert_eq!(a.and(&all), a);
        assert_eq!(all.and(&b), b);
    }

    #[test]
    fn extend_from_preserves_values_and_nulls() {
        let vals = |range: std::ops::Range<i64>| -> Vec<Value> {
            range
                .map(|i| {
                    if i % 5 == 0 {
                        Value::Null
                    } else {
                        Value::Int(i)
                    }
                })
                .collect()
        };
        // Word-aligned (64 rows) and unaligned (67 rows) destinations both
        // splice correctly.
        for first in [64usize, 67] {
            let mut c = Column::from_values(DataType::Int, &vals(0..first as i64)).unwrap();
            let tail = vals(1000..1100);
            c.extend_from(&Column::from_values(DataType::Int, &tail).unwrap())
                .unwrap();
            assert_eq!(c.len(), first + 100);
            for (i, v) in vals(0..first as i64).iter().chain(tail.iter()).enumerate() {
                assert_eq!(&c.value(i).unwrap(), v, "row {i} (first {first})");
            }
            assert_eq!(
                c.validity().null_count(),
                vals(0..first as i64)
                    .iter()
                    .chain(tail.iter())
                    .filter(|v| v.is_null())
                    .count()
            );
        }
    }

    #[test]
    fn slice_matches_gather_at_every_offset() {
        // Contiguous slices cross word boundaries at every shift; each one
        // must agree bit-for-bit with the per-row gather it replaced.
        let values: Vec<Value> = (0..200)
            .map(|i| {
                if i % 7 == 0 {
                    Value::Null
                } else {
                    Value::Int(i as i64)
                }
            })
            .collect();
        let c = Column::from_values(DataType::Int, &values).unwrap();
        for (start, end) in [
            (0, 200),
            (0, 0),
            (63, 64),
            (1, 199),
            (64, 128),
            (70, 135),
            (199, 200),
        ] {
            let fast = c.slice(start, end).unwrap();
            let indices: Vec<usize> = (start..end).collect();
            let slow = c.take(&indices).unwrap();
            assert_eq!(fast, slow, "range {start}..{end}");
            assert_eq!(fast.validity().null_count(), slow.validity().null_count());
        }
        assert!(c.slice(100, 201).is_err());
        assert!(c.slice(5, 4).is_err());
    }

    #[test]
    fn take_sel_gathers_with_nulls() {
        let c = Column::from_values(
            DataType::Int,
            &[Value::Int(10), Value::Null, Value::Int(30), Value::Int(40)],
        )
        .unwrap();
        let g = c.take_sel(&[3, 1, 0]);
        assert_eq!(g.value(0).unwrap(), Value::Int(40));
        assert_eq!(g.value(1).unwrap(), Value::Null);
        assert_eq!(g.value(2).unwrap(), Value::Int(10));
        // All-valid fast lane.
        let c = Column::from_strs(vec!["a", "b", "c"]);
        let g = c.take_sel(&[2, 2]);
        assert_eq!(g.value(0).unwrap(), Value::Str("c".into()));
        assert_eq!(g.null_count(), 0);
    }

    #[test]
    fn raw_accessors() {
        let c = Column::from_floats(vec![1.5, 2.5]);
        let (d, v) = c.as_floats().unwrap();
        assert_eq!(d, &[1.5, 2.5]);
        assert_eq!(v.null_count(), 0);
        assert!(c.as_ints().is_err());
        let c = Column::from_strs(vec!["a"]);
        assert_eq!(c.as_strs().unwrap().0[0], "a");
    }
}
