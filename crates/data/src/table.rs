//! In-memory tables: a schema plus one [`Column`] per field.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::column::Column;
use crate::error::{DataError, Result};
use crate::schema::{Field, Schema};
use crate::value::{Row, Value};

/// A rectangular, immutable batch of rows.
///
/// Tables are the unit of work the dataflow engine moves between operators.
/// Construction goes through [`Table::new`] (validated) or [`TableBuilder`]
/// (row-at-a-time with nullability enforcement).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl Table {
    /// Build a table from a schema and matching columns.
    ///
    /// Validates column count, per-column type, and equal lengths.
    pub fn new(schema: Schema, columns: Vec<Column>) -> Result<Self> {
        if columns.len() != schema.len() {
            return Err(DataError::LengthMismatch {
                expected: schema.len(),
                found: columns.len(),
            });
        }
        let rows = columns.first().map_or(0, Column::len);
        for (field, col) in schema.fields().iter().zip(&columns) {
            if col.data_type() != field.data_type {
                return Err(DataError::TypeMismatch {
                    expected: field.data_type.name().to_owned(),
                    found: col.data_type().name().to_owned(),
                });
            }
            if col.len() != rows {
                return Err(DataError::LengthMismatch {
                    expected: rows,
                    found: col.len(),
                });
            }
        }
        Ok(Table {
            schema,
            columns,
            rows,
        })
    }

    /// An empty table with the given schema.
    pub fn empty(schema: Schema) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::empty(f.data_type))
            .collect();
        Table {
            schema,
            columns,
            rows: 0,
        }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn num_rows(&self) -> usize {
        self.rows
    }

    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The column with the given name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        Ok(&self.columns[self.schema.index_of(name)?])
    }

    /// The column at the given index.
    pub fn column_at(&self, index: usize) -> Result<&Column> {
        self.columns
            .get(index)
            .ok_or(DataError::ColumnIndexOutOfBounds {
                index,
                width: self.columns.len(),
            })
    }

    /// The value at (`row`, column `name`).
    pub fn value(&self, row: usize, name: &str) -> Result<Value> {
        self.column(name)?.value(row)
    }

    /// Materialise row `index` as an owned `Row`.
    pub fn row(&self, index: usize) -> Result<Row> {
        if index >= self.rows {
            return Err(DataError::RowIndexOutOfBounds {
                index,
                len: self.rows,
            });
        }
        self.columns.iter().map(|c| c.value(index)).collect()
    }

    /// Iterate all rows (materialising each).
    pub fn iter_rows(&self) -> impl Iterator<Item = Row> + '_ {
        (0..self.rows).map(move |i| self.row(i).expect("index in range"))
    }

    /// Build a table from rows, validating against the schema.
    pub fn from_rows(schema: Schema, rows: impl IntoIterator<Item = Row>) -> Result<Self> {
        let mut builder = TableBuilder::new(schema);
        for row in rows {
            builder.push_row(row)?;
        }
        builder.finish()
    }

    /// Keep only the named columns, in the given order.
    pub fn project(&self, names: &[&str]) -> Result<Table> {
        let schema = self.schema.project(names)?;
        let columns = names
            .iter()
            .map(|n| self.column(n).cloned())
            .collect::<Result<Vec<_>>>()?;
        Table::new(schema, columns)
    }

    /// Keep rows where `mask[i]` is true.
    pub fn filter(&self, mask: &[bool]) -> Result<Table> {
        let columns = self
            .columns
            .iter()
            .map(|c| c.filter(mask))
            .collect::<Result<Vec<_>>>()?;
        Table::new(self.schema.clone(), columns)
    }

    /// Gather rows by a selection vector (the vectorized engine's
    /// replacement for boolean masks; indices may repeat / reorder).
    pub fn take_sel(&self, sel: &[u32]) -> Result<Table> {
        if let Some(&bad) = sel.iter().find(|&&i| i as usize >= self.rows) {
            return Err(DataError::RowIndexOutOfBounds {
                index: bad as usize,
                len: self.rows,
            });
        }
        let columns = self.columns.iter().map(|c| c.take_sel(sel)).collect();
        Table::new(self.schema.clone(), columns)
    }

    /// Gather the rows at `indices` (may repeat / reorder).
    pub fn take(&self, indices: &[usize]) -> Result<Table> {
        let columns = self
            .columns
            .iter()
            .map(|c| c.take(indices))
            .collect::<Result<Vec<_>>>()?;
        Table::new(self.schema.clone(), columns)
    }

    /// Copy of rows `start..end`.
    pub fn slice(&self, start: usize, end: usize) -> Result<Table> {
        let columns = self
            .columns
            .iter()
            .map(|c| c.slice(start, end))
            .collect::<Result<Vec<_>>>()?;
        Table::new(self.schema.clone(), columns)
    }

    /// Concatenate tables with identical schemas.
    pub fn concat(parts: &[Table]) -> Result<Table> {
        let first = parts
            .first()
            .ok_or_else(|| DataError::Invalid("concat requires at least one table".to_owned()))?;
        let mut columns: Vec<Column> = first.columns.clone();
        for part in &parts[1..] {
            first.schema.ensure_same(&part.schema)?;
            for (dst, src) in columns.iter_mut().zip(&part.columns) {
                dst.extend_from(src)?;
            }
        }
        Table::new(first.schema.clone(), columns)
    }

    /// Stable sort by the named columns (all ascending unless `descending`).
    pub fn sort_by(&self, keys: &[&str], descending: bool) -> Result<Table> {
        let key_cols: Vec<&Column> = keys
            .iter()
            .map(|k| self.column(k))
            .collect::<Result<Vec<_>>>()?;
        let mut indices: Vec<usize> = (0..self.rows).collect();
        indices.sort_by(|&a, &b| {
            let mut ord = std::cmp::Ordering::Equal;
            for col in &key_cols {
                let va = col.value(a).expect("in range");
                let vb = col.value(b).expect("in range");
                ord = va.total_cmp(&vb);
                if ord != std::cmp::Ordering::Equal {
                    break;
                }
            }
            if descending {
                ord.reverse()
            } else {
                ord
            }
        });
        self.take(&indices)
    }

    /// Append a computed column.
    pub fn with_column(&self, field: Field, column: Column) -> Result<Table> {
        if column.len() != self.rows {
            return Err(DataError::LengthMismatch {
                expected: self.rows,
                found: column.len(),
            });
        }
        let schema = self.schema.with_field(field)?;
        let mut columns = self.columns.clone();
        columns.push(column);
        Table::new(schema, columns)
    }

    /// Drop the named column.
    pub fn without_column(&self, name: &str) -> Result<Table> {
        let idx = self.schema.index_of(name)?;
        let names: Vec<&str> = self
            .schema
            .names()
            .into_iter()
            .enumerate()
            .filter(|(i, _)| *i != idx)
            .map(|(_, n)| n)
            .collect();
        self.project(&names)
    }

    /// Rough in-memory footprint in bytes (used by quota accounting).
    pub fn approx_bytes(&self) -> usize {
        self.columns
            .iter()
            .map(|c| match c {
                Column::Bool { data, .. } => data.len(),
                Column::Int { data, .. } | Column::Timestamp { data, .. } => data.len() * 8,
                Column::Float { data, .. } => data.len() * 8,
                Column::Str { data, .. } => data.iter().map(|s| s.len() + 24).sum(),
            })
            .sum()
    }

    /// Render the first `limit` rows as an aligned text grid (for examples
    /// and the Labs CLI output).
    pub fn show(&self, limit: usize) -> String {
        let names = self.schema.names();
        let n = self.rows.min(limit);
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(n + 1);
        cells.push(names.iter().map(|s| s.to_string()).collect());
        for i in 0..n {
            cells.push(
                self.columns
                    .iter()
                    .map(|c| c.value(i).map(|v| v.to_string()).unwrap_or_default())
                    .collect(),
            );
        }
        let widths: Vec<usize> = (0..names.len())
            .map(|c| cells.iter().map(|r| r[c].len()).max().unwrap_or(0))
            .collect();
        let mut out = String::new();
        for (ri, row) in cells.iter().enumerate() {
            for (ci, cell) in row.iter().enumerate() {
                if ci > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                out.extend(std::iter::repeat(' ').take(widths[ci] - cell.len()));
            }
            out.push('\n');
            if ri == 0 {
                let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
                out.extend(std::iter::repeat('-').take(total));
                out.push('\n');
            }
        }
        if self.rows > limit {
            out.push_str(&format!("... ({} more rows)\n", self.rows - limit));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.show(20))
    }
}

/// Row-at-a-time table construction with nullability enforcement.
#[derive(Debug)]
pub struct TableBuilder {
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl TableBuilder {
    pub fn new(schema: Schema) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::empty(f.data_type))
            .collect();
        TableBuilder {
            schema,
            columns,
            rows: 0,
        }
    }

    pub fn with_capacity(schema: Schema, cap: usize) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::with_capacity(f.data_type, cap))
            .collect();
        TableBuilder {
            schema,
            columns,
            rows: 0,
        }
    }

    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Append one row; checks width, per-field type, and nullability.
    pub fn push_row(&mut self, row: Row) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(DataError::LengthMismatch {
                expected: self.schema.len(),
                found: row.len(),
            });
        }
        for (v, f) in row.iter().zip(self.schema.fields()) {
            if v.is_null() && !f.nullable {
                return Err(DataError::Invalid(format!(
                    "null in non-nullable column {:?}",
                    f.name
                )));
            }
        }
        // Two passes so a mid-row type error cannot leave ragged columns.
        for (v, f) in row.iter().zip(self.schema.fields()) {
            v.coerce(f.data_type)?;
        }
        for (v, col) in row.iter().zip(self.columns.iter_mut()) {
            col.push(v)?;
        }
        self.rows += 1;
        Ok(())
    }

    pub fn finish(self) -> Result<Table> {
        Table::new(self.schema, self.columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn people() -> Table {
        let schema = Schema::new(vec![
            Field::required("id", DataType::Int),
            Field::new("name", DataType::Str),
            Field::new("age", DataType::Int),
        ])
        .unwrap();
        Table::from_rows(
            schema,
            vec![
                vec![Value::Int(1), Value::Str("ada".into()), Value::Int(36)],
                vec![Value::Int(2), Value::Str("bob".into()), Value::Null],
                vec![Value::Int(3), Value::Str("eve".into()), Value::Int(29)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_shape() {
        let schema = Schema::new(vec![Field::new("a", DataType::Int)]).unwrap();
        assert!(Table::new(schema.clone(), vec![]).is_err());
        assert!(Table::new(schema.clone(), vec![Column::from_strs(vec!["x"])]).is_err());
        let t = Table::new(schema, vec![Column::from_ints(vec![1, 2])]).unwrap();
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn ragged_columns_rejected() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
        ])
        .unwrap();
        let err = Table::new(
            schema,
            vec![Column::from_ints(vec![1, 2]), Column::from_ints(vec![1])],
        )
        .unwrap_err();
        assert!(matches!(err, DataError::LengthMismatch { .. }));
    }

    #[test]
    fn row_round_trip() {
        let t = people();
        assert_eq!(
            t.row(1).unwrap(),
            vec![Value::Int(2), Value::Str("bob".into()), Value::Null]
        );
        assert!(t.row(3).is_err());
        assert_eq!(t.iter_rows().count(), 3);
    }

    #[test]
    fn take_sel_matches_take() {
        let t = people();
        let sel = [2u32, 0, 2];
        let indices = [2usize, 0, 2];
        assert_eq!(t.take_sel(&sel).unwrap(), t.take(&indices).unwrap());
        assert!(t.take_sel(&[3]).is_err());
    }

    #[test]
    fn builder_enforces_nullability() {
        let t = people();
        let mut b = TableBuilder::new(t.schema().clone());
        let err = b
            .push_row(vec![Value::Null, Value::Str("x".into()), Value::Int(1)])
            .unwrap_err();
        assert!(err.to_string().contains("non-nullable"));
        // Failed push must not corrupt the builder.
        b.push_row(vec![Value::Int(9), Value::Null, Value::Null])
            .unwrap();
        assert_eq!(b.finish().unwrap().num_rows(), 1);
    }

    #[test]
    fn builder_type_error_keeps_columns_rectangular() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        // First value fine, second wrong type: row must be rejected atomically.
        assert!(b
            .push_row(vec![Value::Int(1), Value::Str("x".into())])
            .is_err());
        b.push_row(vec![Value::Int(1), Value::Int(2)]).unwrap();
        let t = b.finish().unwrap();
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    fn project_take_filter_slice() {
        let t = people();
        let p = t.project(&["name"]).unwrap();
        assert_eq!(p.num_columns(), 1);
        let f = t.filter(&[true, false, true]).unwrap();
        assert_eq!(f.num_rows(), 2);
        let tk = t.take(&[2, 2, 0]).unwrap();
        assert_eq!(tk.value(0, "name").unwrap(), Value::Str("eve".into()));
        assert_eq!(tk.num_rows(), 3);
        let s = t.slice(1, 2).unwrap();
        assert_eq!(s.value(0, "id").unwrap(), Value::Int(2));
    }

    #[test]
    fn concat_requires_same_schema() {
        let t = people();
        let both = Table::concat(&[t.clone(), t.clone()]).unwrap();
        assert_eq!(both.num_rows(), 6);
        let other = t.project(&["id"]).unwrap();
        assert!(Table::concat(&[t, other]).is_err());
        assert!(Table::concat(&[]).is_err());
    }

    #[test]
    fn sort_is_stable_and_null_first() {
        let t = people().sort_by(&["age"], false).unwrap();
        // bob has null age, sorts first ascending.
        assert_eq!(t.value(0, "name").unwrap(), Value::Str("bob".into()));
        assert_eq!(t.value(1, "age").unwrap(), Value::Int(29));
        let d = people().sort_by(&["age"], true).unwrap();
        assert_eq!(d.value(0, "age").unwrap(), Value::Int(36));
    }

    #[test]
    fn multi_key_sort() {
        let schema = Schema::new(vec![
            Field::new("g", DataType::Str),
            Field::new("v", DataType::Int),
        ])
        .unwrap();
        let t = Table::from_rows(
            schema,
            vec![
                vec!["b".into(), Value::Int(1)],
                vec!["a".into(), Value::Int(2)],
                vec!["a".into(), Value::Int(1)],
            ],
        )
        .unwrap();
        let s = t.sort_by(&["g", "v"], false).unwrap();
        assert_eq!(
            s.row(0).unwrap(),
            vec![Value::Str("a".into()), Value::Int(1)]
        );
        assert_eq!(
            s.row(2).unwrap(),
            vec![Value::Str("b".into()), Value::Int(1)]
        );
    }

    #[test]
    fn with_and_without_column() {
        let t = people();
        let t2 = t
            .with_column(
                Field::new("flag", DataType::Bool),
                Column::from_bools(vec![true, false, true]),
            )
            .unwrap();
        assert_eq!(t2.num_columns(), 4);
        assert!(t
            .with_column(
                Field::new("flag", DataType::Bool),
                Column::from_bools(vec![true])
            )
            .is_err());
        let t3 = t2.without_column("flag").unwrap();
        assert_eq!(t3.schema().names(), vec!["id", "name", "age"]);
    }

    #[test]
    fn show_renders_header_and_truncation() {
        let t = people();
        let s = t.show(2);
        assert!(s.contains("id"));
        assert!(s.contains("(1 more rows)"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn approx_bytes_is_positive() {
        assert!(people().approx_bytes() > 0);
    }
}
