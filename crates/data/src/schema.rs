//! Named, typed record schemas.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::{DataError, Result};
use crate::value::DataType;

/// One named, typed column in a schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    pub name: String,
    pub data_type: DataType,
    /// Whether nulls are permitted. Enforced by [`crate::table::TableBuilder`].
    pub nullable: bool,
}

impl Field {
    /// A nullable field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
            nullable: true,
        }
    }

    /// A non-nullable field.
    pub fn required(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
            nullable: false,
        }
    }
}

/// An ordered collection of uniquely named fields.
///
/// Schemas are immutable and cheaply cloneable (`Arc` inside) — the dataflow
/// engine attaches one to every plan node and every batch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    fields: Arc<Vec<Field>>,
}

impl Schema {
    /// Build a schema, rejecting duplicate column names.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(DataError::DuplicateColumn(f.name.clone()));
            }
        }
        Ok(Schema {
            fields: Arc::new(fields),
        })
    }

    /// An empty schema (zero columns).
    pub fn empty() -> Self {
        Schema {
            fields: Arc::new(Vec::new()),
        }
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the column with the given name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| DataError::ColumnNotFound(name.to_owned()))
    }

    /// The field with the given name.
    pub fn field(&self, name: &str) -> Result<&Field> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// The field at the given index.
    pub fn field_at(&self, index: usize) -> Result<&Field> {
        self.fields
            .get(index)
            .ok_or(DataError::ColumnIndexOutOfBounds {
                index,
                width: self.fields.len(),
            })
    }

    /// True if a column with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.fields.iter().any(|f| f.name == name)
    }

    /// All column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// A schema containing only the named columns, in the order given.
    pub fn project(&self, names: &[&str]) -> Result<Schema> {
        let fields = names
            .iter()
            .map(|n| self.field(n).cloned())
            .collect::<Result<Vec<_>>>()?;
        Schema::new(fields)
    }

    /// Concatenate two schemas (for joins); duplicate names from the right
    /// side are disambiguated with a `right_prefix`.
    pub fn join(&self, right: &Schema, right_prefix: &str) -> Result<Schema> {
        let mut fields: Vec<Field> = self.fields.to_vec();
        for f in right.fields() {
            let mut f = f.clone();
            if self.contains(&f.name) {
                f.name = format!("{right_prefix}{}", f.name);
            }
            fields.push(f);
        }
        Schema::new(fields)
    }

    /// Append a field, rejecting duplicates.
    pub fn with_field(&self, field: Field) -> Result<Schema> {
        let mut fields = self.fields.to_vec();
        fields.push(field);
        Schema::new(fields)
    }

    /// Verify two schemas are identical (for unions).
    pub fn ensure_same(&self, other: &Schema) -> Result<()> {
        if self == other {
            Ok(())
        } else {
            Err(DataError::SchemaMismatch {
                left: self.to_string(),
                right: other.to_string(),
            })
        }
    }
}

impl fmt::Display for Schema {
    /// Renders as `(name: Type, required: Type!)` — `!` marks non-nullable.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", field.name, field.data_type)?;
            if !field.nullable {
                write!(f, "!")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Schema {
        Schema::new(vec![
            Field::required("a", DataType::Int),
            Field::new("b", DataType::Str),
            Field::new("c", DataType::Float),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_duplicates() {
        let err = Schema::new(vec![
            Field::new("x", DataType::Int),
            Field::new("x", DataType::Str),
        ])
        .unwrap_err();
        assert_eq!(err, DataError::DuplicateColumn("x".into()));
    }

    #[test]
    fn lookup_by_name_and_index() {
        let s = abc();
        assert_eq!(s.index_of("b").unwrap(), 1);
        assert!(s.index_of("zzz").is_err());
        assert_eq!(s.field_at(2).unwrap().name, "c");
        assert!(s.field_at(3).is_err());
        assert!(s.contains("a") && !s.contains("d"));
    }

    #[test]
    fn projection_reorders() {
        let s = abc().project(&["c", "a"]).unwrap();
        assert_eq!(s.names(), vec!["c", "a"]);
        assert!(abc().project(&["nope"]).is_err());
    }

    #[test]
    fn join_disambiguates() {
        let left = abc();
        let right = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("d", DataType::Bool),
        ])
        .unwrap();
        let joined = left.join(&right, "r_").unwrap();
        assert_eq!(joined.names(), vec!["a", "b", "c", "r_a", "d"]);
    }

    #[test]
    fn display_format() {
        assert_eq!(abc().to_string(), "(a: Int!, b: Str, c: Float)");
    }

    #[test]
    fn ensure_same_detects_difference() {
        assert!(abc().ensure_same(&abc()).is_ok());
        let other = abc().project(&["a", "b"]).unwrap();
        assert!(abc().ensure_same(&other).is_err());
    }

    #[test]
    fn with_field_appends() {
        let s = abc().with_field(Field::new("d", DataType::Bool)).unwrap();
        assert_eq!(s.len(), 4);
        assert!(abc().with_field(Field::new("a", DataType::Bool)).is_err());
    }
}
