//! Minimal CSV reader/writer with quoting and type inference.
//!
//! Implements the RFC 4180 subset the TOREADOR scenarios need: comma
//! separation, `"` quoting with `""` escapes, a header line, and embedded
//! newlines inside quoted fields.

use crate::error::{DataError, Result};
use crate::schema::{Field, Schema};
use crate::table::{Table, TableBuilder};
use crate::value::{DataType, Value};

/// Split raw CSV text into records of fields, honouring quotes.
///
/// Scans raw bytes rather than decoding chars — every delimiter is ASCII,
/// so multi-byte code points pass through untouched. The field between two
/// delimiters is a contiguous run sliced straight out of the input; one
/// reused scratch buffer stitches together the fields that can't be a
/// single slice (quoted content, `""` escapes, dropped `\r`).
fn tokenize(input: &str) -> Result<Vec<Vec<String>>> {
    // Finish the pending field: the scratch prefix (if any) plus the clean
    // run `input[start..end]`. Leaves `scratch` empty but with its capacity
    // intact for the next stitched field.
    fn take(scratch: &mut String, input: &str, start: usize, end: usize) -> String {
        if scratch.is_empty() {
            input[start..end].to_owned()
        } else {
            scratch.push_str(&input[start..end]);
            let field = scratch.clone();
            scratch.clear();
            field
        }
    }

    let bytes = input.as_bytes();
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut scratch = String::new();
    let mut start = 0usize; // start of the current clean run
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut i = 0usize;

    while i < bytes.len() {
        if in_quotes {
            match bytes[i] {
                b'"' => {
                    if bytes.get(i + 1) == Some(&b'"') {
                        // `""` escape: keep the first quote, skip the second.
                        scratch.push_str(&input[start..=i]);
                        start = i + 2;
                        i += 1;
                    } else {
                        scratch.push_str(&input[start..i]);
                        in_quotes = false;
                        start = i + 1;
                    }
                }
                b'\n' => line += 1, // stays in the run
                _ => {}
            }
        } else {
            match bytes[i] {
                b'"' => {
                    if !scratch.is_empty() || i > start {
                        return Err(DataError::Parse {
                            line,
                            message: "quote inside unquoted field".to_owned(),
                        });
                    }
                    in_quotes = true;
                    start = i + 1;
                }
                b',' => {
                    record.push(take(&mut scratch, input, start, i));
                    start = i + 1;
                }
                b'\r' => {
                    // Tolerate CRLF: drop the CR, splice the runs around it.
                    scratch.push_str(&input[start..i]);
                    start = i + 1;
                }
                b'\n' => {
                    record.push(take(&mut scratch, input, start, i));
                    records.push(std::mem::take(&mut record));
                    line += 1;
                    start = i + 1;
                }
                _ => {}
            }
        }
        i += 1;
    }
    if in_quotes {
        return Err(DataError::Parse {
            line,
            message: "unterminated quote".to_owned(),
        });
    }
    let field_empty = scratch.is_empty() && start >= bytes.len();
    if !bytes.is_empty() && (!field_empty || !record.is_empty()) {
        record.push(take(&mut scratch, input, start, bytes.len()));
        records.push(record);
    }
    Ok(records)
}

/// Infer the narrowest type that parses every non-empty token in a column.
///
/// Preference order: Bool, Int, Float, Str. An all-empty column infers Str.
fn infer_type(tokens: impl Iterator<Item = impl AsRef<str>> + Clone) -> DataType {
    let non_empty = tokens.filter(|t| !t.as_ref().is_empty());
    let mut any = false;
    let mut all_bool = true;
    let mut all_int = true;
    let mut all_float = true;
    for t in non_empty {
        any = true;
        let t = t.as_ref();
        all_bool &= matches!(t, "true" | "false" | "TRUE" | "FALSE" | "True" | "False");
        all_int &= t.parse::<i64>().is_ok();
        all_float &= t.parse::<f64>().is_ok();
    }
    if !any {
        DataType::Str
    } else if all_bool {
        DataType::Bool
    } else if all_int {
        DataType::Int
    } else if all_float {
        DataType::Float
    } else {
        DataType::Str
    }
}

/// Parse CSV text with a header row, inferring column types.
pub fn read_csv(input: &str) -> Result<Table> {
    let records = tokenize(input)?;
    let (header, rows) = records.split_first().ok_or(DataError::Parse {
        line: 1,
        message: "empty input".to_owned(),
    })?;
    let width = header.len();
    for (i, r) in rows.iter().enumerate() {
        if r.len() != width {
            return Err(DataError::Parse {
                line: i + 2,
                message: format!("expected {width} fields, found {}", r.len()),
            });
        }
    }
    let types: Vec<DataType> = (0..width)
        .map(|c| infer_type(rows.iter().map(move |r| r[c].as_str())))
        .collect();
    let schema = Schema::new(
        header
            .iter()
            .zip(&types)
            .map(|(name, &ty)| Field::new(name.trim(), ty))
            .collect(),
    )?;
    read_csv_with_schema_records(rows, schema)
}

/// Parse CSV text with a header row against a known schema.
///
/// The header must contain every schema column (extra columns are ignored).
pub fn read_csv_with_schema(input: &str, schema: &Schema) -> Result<Table> {
    let records = tokenize(input)?;
    let (header, rows) = records.split_first().ok_or(DataError::Parse {
        line: 1,
        message: "empty input".to_owned(),
    })?;
    let positions: Vec<usize> = schema
        .fields()
        .iter()
        .map(|f| {
            header
                .iter()
                .position(|h| h.trim() == f.name)
                .ok_or_else(|| DataError::ColumnNotFound(f.name.clone()))
        })
        .collect::<Result<Vec<_>>>()?;
    let mut builder = TableBuilder::with_capacity(schema.clone(), rows.len());
    for (i, rec) in rows.iter().enumerate() {
        let row: Vec<Value> = positions
            .iter()
            .zip(schema.fields())
            .map(|(&p, f)| {
                rec.get(p)
                    .ok_or(DataError::Parse {
                        line: i + 2,
                        message: "short record".to_owned(),
                    })
                    .and_then(|tok| {
                        Value::parse_as(tok, f.data_type).map_err(|e| DataError::Parse {
                            line: i + 2,
                            message: e.to_string(),
                        })
                    })
            })
            .collect::<Result<Vec<_>>>()?;
        builder.push_row(row)?;
    }
    builder.finish()
}

fn read_csv_with_schema_records(rows: &[Vec<String>], schema: Schema) -> Result<Table> {
    let mut builder = TableBuilder::with_capacity(schema.clone(), rows.len());
    for (i, rec) in rows.iter().enumerate() {
        let row: Vec<Value> = rec
            .iter()
            .zip(schema.fields())
            .map(|(tok, f)| {
                Value::parse_as(tok, f.data_type).map_err(|e| DataError::Parse {
                    line: i + 2,
                    message: e.to_string(),
                })
            })
            .collect::<Result<Vec<_>>>()?;
        builder.push_row(row)?;
    }
    builder.finish()
}

fn needs_quoting(s: &str) -> bool {
    s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r')
}

fn quote(s: &str) -> String {
    if needs_quoting(s) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Serialise a table to CSV text with a header row.
pub fn write_csv(table: &Table) -> String {
    let mut out = String::new();
    let names = table.schema().names();
    out.push_str(&names.iter().map(|n| quote(n)).collect::<Vec<_>>().join(","));
    out.push('\n');
    for row in table.iter_rows() {
        let line = row
            .iter()
            .map(|v| match v {
                Value::Str(s) => quote(s),
                other => other.to_string(),
            })
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_round_trip_with_inference() {
        let text = "id,name,score\n1,ada,9.5\n2,bob,7\n";
        let t = read_csv(text).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.schema().field("id").unwrap().data_type, DataType::Int);
        assert_eq!(
            t.schema().field("score").unwrap().data_type,
            DataType::Float
        );
        assert_eq!(t.schema().field("name").unwrap().data_type, DataType::Str);
        let back = read_csv(&write_csv(&t)).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn quoted_fields_with_commas_and_newlines() {
        let text = "a,b\n\"x,y\",\"line1\nline2\"\n\"he said \"\"hi\"\"\",z\n";
        let t = read_csv(text).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.value(0, "a").unwrap(), Value::Str("x,y".into()));
        assert_eq!(t.value(0, "b").unwrap(), Value::Str("line1\nline2".into()));
        assert_eq!(
            t.value(1, "a").unwrap(),
            Value::Str("he said \"hi\"".into())
        );
    }

    #[test]
    fn write_quotes_when_needed() {
        let t = read_csv("a\n\"x,y\"\n").unwrap();
        let out = write_csv(&t);
        assert!(out.contains("\"x,y\""));
    }

    #[test]
    fn empty_tokens_become_null() {
        let t = read_csv("a,b\n1,\n,2\n").unwrap();
        assert_eq!(t.value(0, "b").unwrap(), Value::Null);
        assert_eq!(t.value(1, "a").unwrap(), Value::Null);
        assert_eq!(t.schema().field("a").unwrap().data_type, DataType::Int);
    }

    #[test]
    fn bool_inference() {
        let t = read_csv("flag\ntrue\nfalse\n").unwrap();
        assert_eq!(t.schema().field("flag").unwrap().data_type, DataType::Bool);
        assert_eq!(t.value(0, "flag").unwrap(), Value::Bool(true));
    }

    #[test]
    fn mixed_numeric_becomes_float_then_str() {
        let t = read_csv("x\n1\n2.5\n").unwrap();
        assert_eq!(t.schema().field("x").unwrap().data_type, DataType::Float);
        let t = read_csv("x\n1\nhello\n").unwrap();
        assert_eq!(t.schema().field("x").unwrap().data_type, DataType::Str);
    }

    #[test]
    fn ragged_rows_error_with_line_number() {
        let err = read_csv("a,b\n1,2\n3\n").unwrap_err();
        match err {
            DataError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unterminated_quote_errors() {
        assert!(read_csv("a\n\"oops\n").is_err());
    }

    #[test]
    fn crlf_tolerated_and_missing_trailing_newline() {
        let t = read_csv("a,b\r\n1,2\r\n3,4").unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.value(1, "b").unwrap(), Value::Int(4));
    }

    #[test]
    fn cr_dropped_outside_quotes_kept_inside() {
        // A stray CR mid-field disappears; one inside quotes survives.
        let t = read_csv("a,b\nx\ry,\"p\rq\"\n").unwrap();
        assert_eq!(t.value(0, "a").unwrap(), Value::Str("xy".into()));
        assert_eq!(t.value(0, "b").unwrap(), Value::Str("p\rq".into()));
    }

    #[test]
    fn multibyte_fields_survive_byte_scanning() {
        let t = read_csv("name,quote\nhéllo wörld,\"später, \"\"ja\"\"\"\n").unwrap();
        assert_eq!(
            t.value(0, "name").unwrap(),
            Value::Str("héllo wörld".into())
        );
        assert_eq!(
            t.value(0, "quote").unwrap(),
            Value::Str("später, \"ja\"".into())
        );
    }

    #[test]
    fn quote_error_reports_line_after_embedded_newlines() {
        // The embedded newline inside quotes still advances the line count
        // used by later errors.
        let err = read_csv("a\n\"x\ny\"\nbad\"\n").unwrap_err();
        match err {
            DataError::Parse { line, message } => {
                assert_eq!(line, 4);
                assert_eq!(message, "quote inside unquoted field");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn schema_directed_read_projects_and_types() {
        let schema = Schema::new(vec![
            Field::new("score", DataType::Float),
            Field::new("id", DataType::Int),
        ])
        .unwrap();
        let t = read_csv_with_schema("id,name,score\n1,ada,9.5\n", &schema).unwrap();
        assert_eq!(t.schema().names(), vec!["score", "id"]);
        assert_eq!(t.value(0, "score").unwrap(), Value::Float(9.5));
        let missing = Schema::new(vec![Field::new("zzz", DataType::Int)]).unwrap();
        assert!(read_csv_with_schema("id\n1\n", &missing).is_err());
    }

    #[test]
    fn empty_input_is_error() {
        assert!(read_csv("").is_err());
    }

    #[test]
    fn header_only_gives_empty_table() {
        let t = read_csv("a,b\n").unwrap();
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.num_columns(), 2);
    }
}
