//! Error type shared by the data substrate.

use std::fmt;

/// Errors produced by the data layer.
///
/// The data layer is the lowest level of the workspace, so this type carries
/// enough structure for callers (the dataflow engine, the analytics library)
/// to react programmatically rather than string-match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A column name was not found in a schema.
    ColumnNotFound(String),
    /// A column index was out of bounds for a schema.
    ColumnIndexOutOfBounds { index: usize, width: usize },
    /// A row index was out of bounds for a table or column.
    RowIndexOutOfBounds { index: usize, len: usize },
    /// A value had the wrong type for the operation.
    TypeMismatch { expected: String, found: String },
    /// Two schemas that were required to be identical differ.
    SchemaMismatch { left: String, right: String },
    /// Columns of a table had inconsistent lengths.
    LengthMismatch { expected: usize, found: usize },
    /// A schema declared the same column name twice.
    DuplicateColumn(String),
    /// CSV (or other textual) input could not be parsed.
    Parse { line: usize, message: String },
    /// An arithmetic or aggregation operation was invalid (e.g. empty input).
    Invalid(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::ColumnNotFound(name) => write!(f, "column not found: {name:?}"),
            DataError::ColumnIndexOutOfBounds { index, width } => {
                write!(f, "column index {index} out of bounds for width {width}")
            }
            DataError::RowIndexOutOfBounds { index, len } => {
                write!(f, "row index {index} out of bounds for length {len}")
            }
            DataError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            DataError::SchemaMismatch { left, right } => {
                write!(f, "schema mismatch: {left} vs {right}")
            }
            DataError::LengthMismatch { expected, found } => {
                write!(f, "length mismatch: expected {expected}, found {found}")
            }
            DataError::DuplicateColumn(name) => write!(f, "duplicate column: {name:?}"),
            DataError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            DataError::Invalid(message) => write!(f, "invalid operation: {message}"),
        }
    }
}

impl std::error::Error for DataError {}

/// Convenience result alias for the data layer.
pub type Result<T> = std::result::Result<T, DataError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = DataError::ColumnNotFound("price".into());
        assert_eq!(e.to_string(), "column not found: \"price\"");
        let e = DataError::TypeMismatch {
            expected: "Int".into(),
            found: "Str".into(),
        };
        assert_eq!(e.to_string(), "type mismatch: expected Int, found Str");
        let e = DataError::Parse {
            line: 3,
            message: "unterminated quote".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            DataError::LengthMismatch {
                expected: 2,
                found: 3
            },
            DataError::LengthMismatch {
                expected: 2,
                found: 3
            }
        );
        assert_ne!(
            DataError::ColumnNotFound("a".into()),
            DataError::ColumnNotFound("b".into())
        );
    }
}
