//! # toreador-data
//!
//! Columnar in-memory data substrate for the TOREADOR reproduction.
//!
//! This crate is the bottom of the workspace dependency DAG. It provides:
//!
//! * [`value::Value`] / [`value::DataType`] — dynamically typed scalars, the
//!   row-oriented currency of expression evaluation and shuffles;
//! * [`schema::Schema`] / [`schema::Field`] — named, typed record schemas;
//! * [`column::Column`] — typed columnar vectors with validity bitmaps;
//! * [`table::Table`] — immutable rectangular batches with relational
//!   kernels (project / filter / take / sort / concat);
//! * [`partition::PartitionedTable`] — horizontal partitioning, the unit of
//!   data-parallelism for the dataflow engine;
//! * [`csv`] — RFC-4180-subset reader/writer with type inference;
//! * [`json`] — JSON Lines reader/writer (the "variety" ingest path);
//! * [`generate`] — seeded synthetic generators for the three TOREADOR
//!   vertical scenarios (e-commerce clickstream, smart-energy telemetry,
//!   healthcare records);
//! * [`stats`] — mergeable descriptive statistics (Welford, quantiles,
//!   Pearson, histograms).
//!
//! ## Example
//!
//! ```
//! use toreador_data::prelude::*;
//!
//! let table = toreador_data::generate::clickstream(1_000, 42);
//! let mask: Vec<bool> = table
//!     .column("action")
//!     .unwrap()
//!     .iter_values()
//!     .map(|v| v.as_str().map(|s| s == "purchase").unwrap_or(false))
//!     .collect();
//! let purchases = table.filter(&mask).unwrap();
//! assert!(purchases.num_rows() > 0);
//! ```

pub mod column;
pub mod csv;
pub mod error;
pub mod generate;
pub mod json;
pub mod partition;
pub mod schema;
pub mod stats;
pub mod table;
pub mod value;

/// Convenient glob import of the common types.
pub mod prelude {
    pub use crate::column::Column;
    pub use crate::error::{DataError, Result as DataResult};
    pub use crate::partition::{PartitionedTable, Partitioning};
    pub use crate::schema::{Field, Schema};
    pub use crate::table::{Table, TableBuilder};
    pub use crate::value::{DataType, Row, Value};
}
