//! JSON Lines ingestion and emission.
//!
//! The TOREADOR methodology paper's companion work ([2] in the paper,
//! "Facing Big Data Variety in a Model Driven Approach") is about exactly
//! this: campaigns must absorb heterogeneous source formats. Alongside
//! [`crate::csv`], this module reads newline-delimited JSON objects with
//! schema inference (union of keys, widened types, missing keys as null)
//! and writes tables back out as JSONL.

use serde_json::Value as Json;

use crate::error::{DataError, Result};
use crate::schema::{Field, Schema};
use crate::table::{Table, TableBuilder};
use crate::value::{DataType, Value};

fn json_to_value(j: &Json) -> Result<Value> {
    Ok(match j {
        Json::Null => Value::Null,
        Json::Bool(b) => Value::Bool(*b),
        Json::Number(n) => {
            if let Some(i) = n.as_i64() {
                Value::Int(i)
            } else {
                Value::Float(n.as_f64().ok_or_else(|| DataError::Parse {
                    line: 0,
                    message: format!("unrepresentable number {n}"),
                })?)
            }
        }
        Json::String(s) => Value::Str(s.clone()),
        other => {
            return Err(DataError::Parse {
                line: 0,
                message: format!("nested JSON not supported in tabular ingest: {other}"),
            })
        }
    })
}

fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Bool(b) => Json::Bool(*b),
        Value::Int(i) => Json::from(*i),
        Value::Float(x) => serde_json::Number::from_f64(*x)
            .map(Json::Number)
            .unwrap_or(Json::Null),
        Value::Str(s) => Json::String(s.clone()),
        Value::Timestamp(t) => Json::from(*t),
    }
}

/// Read newline-delimited JSON objects, inferring a schema.
///
/// Column set is the union of keys (sorted); types unify across records
/// (Int widens to Float, anything else conflicting becomes Str); keys
/// missing from a record read as null.
pub fn read_jsonl(input: &str) -> Result<Table> {
    let mut records: Vec<serde_json::Map<String, Json>> = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let parsed: Json = serde_json::from_str(line).map_err(|e| DataError::Parse {
            line: i + 1,
            message: e.to_string(),
        })?;
        match parsed {
            Json::Object(map) => records.push(map),
            other => {
                return Err(DataError::Parse {
                    line: i + 1,
                    message: format!("expected a JSON object per line, got {other}"),
                })
            }
        }
    }
    if records.is_empty() {
        return Err(DataError::Parse {
            line: 1,
            message: "empty JSONL input".to_owned(),
        });
    }
    // Union of keys, sorted for determinism.
    let mut keys: Vec<String> = records.iter().flat_map(|r| r.keys().cloned()).collect();
    keys.sort();
    keys.dedup();
    // Infer per-column types.
    let mut types: Vec<Option<DataType>> = vec![None; keys.len()];
    for r in &records {
        for (k, slot) in keys.iter().zip(types.iter_mut()) {
            let Some(j) = r.get(k) else { continue };
            let v = json_to_value(j)?;
            let Some(t) = v.data_type() else { continue };
            *slot = Some(match slot.take() {
                None => t,
                Some(prev) => prev.unify(t).unwrap_or(DataType::Str),
            });
        }
    }
    let fields: Vec<Field> = keys
        .iter()
        .zip(&types)
        .map(|(k, t)| Field::new(k.clone(), t.unwrap_or(DataType::Str)))
        .collect();
    let schema = Schema::new(fields)?;
    let mut builder = TableBuilder::with_capacity(schema.clone(), records.len());
    for r in &records {
        let row: Vec<Value> = keys
            .iter()
            .zip(schema.fields())
            .map(|(k, f)| {
                let Some(j) = r.get(k) else {
                    return Ok(Value::Null);
                };
                let v = json_to_value(j)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                // Coerce into the unified column type (Str absorbs anything).
                match v.coerce(f.data_type) {
                    Ok(c) => Ok(c),
                    Err(_) => Ok(Value::Str(v.to_string())),
                }
            })
            .collect::<Result<Vec<_>>>()?;
        builder.push_row(row)?;
    }
    builder.finish()
}

/// Serialise a table as newline-delimited JSON objects.
pub fn write_jsonl(table: &Table) -> String {
    let names = table.schema().names();
    let mut out = String::new();
    for row in table.iter_rows() {
        let mut map = serde_json::Map::with_capacity(names.len());
        for (name, v) in names.iter().zip(&row) {
            map.insert(name.to_string(), value_to_json(v));
        }
        out.push_str(&Json::Object(map).to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_homogeneous_records() {
        let text = r#"{"id": 1, "name": "ada", "score": 9.5}
{"id": 2, "name": "bob", "score": 7.0}"#;
        let t = read_jsonl(text).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.schema().names(), vec!["id", "name", "score"]);
        assert_eq!(t.schema().field("id").unwrap().data_type, DataType::Int);
        assert_eq!(
            t.schema().field("score").unwrap().data_type,
            DataType::Float
        );
        assert_eq!(t.value(0, "name").unwrap(), Value::Str("ada".into()));
    }

    #[test]
    fn variety_missing_keys_become_null() {
        let text = r#"{"a": 1, "b": "x"}
{"a": 2}
{"b": "y", "c": true}"#;
        let t = read_jsonl(text).unwrap();
        assert_eq!(t.schema().names(), vec!["a", "b", "c"]);
        assert_eq!(t.value(1, "b").unwrap(), Value::Null);
        assert_eq!(t.value(0, "c").unwrap(), Value::Null);
        assert_eq!(t.value(2, "c").unwrap(), Value::Bool(true));
    }

    #[test]
    fn variety_conflicting_types_widen() {
        // Int + Float unify to Float.
        let t = read_jsonl("{\"x\": 1}\n{\"x\": 2.5}").unwrap();
        assert_eq!(t.schema().field("x").unwrap().data_type, DataType::Float);
        assert_eq!(t.value(0, "x").unwrap(), Value::Float(1.0));
        // Int + Str fall back to Str.
        let t = read_jsonl("{\"x\": 1}\n{\"x\": \"hello\"}").unwrap();
        assert_eq!(t.schema().field("x").unwrap().data_type, DataType::Str);
        assert_eq!(t.value(0, "x").unwrap(), Value::Str("1".into()));
    }

    #[test]
    fn explicit_nulls_and_blank_lines_tolerated() {
        let t = read_jsonl("{\"x\": null}\n\n{\"x\": 3}\n").unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.value(0, "x").unwrap(), Value::Null);
    }

    #[test]
    fn rejects_bad_input_with_line_numbers() {
        match read_jsonl("{\"a\": 1}\nnot json\n") {
            Err(DataError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
        assert!(read_jsonl("[1, 2, 3]\n").is_err(), "arrays rejected");
        assert!(
            read_jsonl("{\"a\": {\"nested\": 1}}\n").is_err(),
            "nesting rejected"
        );
        assert!(read_jsonl("").is_err(), "empty rejected");
    }

    #[test]
    fn round_trip_through_jsonl() {
        let original = crate::generate::health_records(50, 3);
        let text = write_jsonl(&original);
        let back = read_jsonl(&text).unwrap();
        assert_eq!(back.num_rows(), original.num_rows());
        // Keys come back sorted; values survive per column.
        for name in original.schema().names() {
            let a = original.column(name).unwrap();
            let b = back.column(name).unwrap();
            for (x, y) in a.iter_values().zip(b.iter_values()) {
                match (x.as_float(), y.as_float()) {
                    (Ok(fx), Ok(fy)) => assert!((fx - fy).abs() < 1e-9),
                    _ => assert_eq!(x.to_string(), y.to_string()),
                }
            }
        }
    }

    #[test]
    fn csv_and_jsonl_agree_on_the_same_data() {
        // Variety claim: two formats of the same records produce tables
        // with identical contents (modulo column order, which is sorted
        // for JSONL).
        let t = crate::generate::clickstream(80, 9);
        let via_csv = crate::csv::read_csv(&crate::csv::write_csv(&t)).unwrap();
        let via_json = read_jsonl(&write_jsonl(&t)).unwrap();
        assert_eq!(via_csv.num_rows(), via_json.num_rows());
        for name in t.schema().names() {
            let a = via_csv.column(name).unwrap();
            let b = via_json.column(name).unwrap();
            for (x, y) in a.iter_values().zip(b.iter_values()) {
                match (x.as_float(), y.as_float()) {
                    // Same f64 may print differently (shortest-repr vs
                    // Display); compare numerically.
                    (Ok(fx), Ok(fy)) => assert!((fx - fy).abs() < 1e-12, "column {name}"),
                    _ => assert_eq!(x.to_string(), y.to_string(), "column {name}"),
                }
            }
        }
    }

    #[test]
    fn timestamps_serialise_as_integers() {
        use crate::schema::{Field, Schema};
        let schema = Schema::new(vec![Field::new("ts", DataType::Timestamp)]).unwrap();
        let t = Table::from_rows(schema, vec![vec![Value::Timestamp(123)]]).unwrap();
        let text = write_jsonl(&t);
        assert!(text.contains("123"));
        // They come back as Int (JSON has no timestamp type) — a documented
        // variety loss callers can re-cast.
        let back = read_jsonl(&text).unwrap();
        assert_eq!(back.schema().field("ts").unwrap().data_type, DataType::Int);
    }
}
