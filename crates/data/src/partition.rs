//! Horizontal partitioning of tables.
//!
//! The dataflow engine schedules one task per partition, so partitioning is
//! where data-parallelism comes from (mirroring Spark's RDD partitions).

use serde::{Deserialize, Serialize};

use crate::error::{DataError, Result};
use crate::table::{Table, TableBuilder};

/// How rows are distributed across partitions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Partitioning {
    /// No guarantee (the default after a scan or a union).
    Arbitrary,
    /// Rows with equal hash of the named columns share a partition.
    Hash {
        columns: Vec<String>,
        partitions: usize,
    },
    /// Contiguous row ranges from a single ordered source.
    Range,
}

/// A table split into horizontal chunks plus the guarantee describing them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionedTable {
    parts: Vec<Table>,
    partitioning: Partitioning,
}

impl PartitionedTable {
    /// Wrap pre-split parts; all schemas must match.
    pub fn new(parts: Vec<Table>, partitioning: Partitioning) -> Result<Self> {
        let first = parts
            .first()
            .ok_or_else(|| DataError::Invalid("need at least one partition".to_owned()))?;
        for p in &parts[1..] {
            first.schema().ensure_same(p.schema())?;
        }
        Ok(PartitionedTable {
            parts,
            partitioning,
        })
    }

    /// Split a single table into `n` equal-size contiguous chunks.
    ///
    /// Produces exactly `n` partitions (trailing ones may be empty) so that
    /// task counts are predictable.
    pub fn split(table: Table, n: usize) -> Result<Self> {
        if n == 0 {
            return Err(DataError::Invalid(
                "cannot split into 0 partitions".to_owned(),
            ));
        }
        let rows = table.num_rows();
        let per = rows.div_ceil(n.max(1)).max(1);
        let mut parts = Vec::with_capacity(n);
        for i in 0..n {
            let start = (i * per).min(rows);
            let end = ((i + 1) * per).min(rows);
            parts.push(table.slice(start, end)?);
        }
        PartitionedTable::new(parts, Partitioning::Range)
    }

    /// A single-partition wrapper.
    pub fn single(table: Table) -> Self {
        PartitionedTable {
            parts: vec![table],
            partitioning: Partitioning::Range,
        }
    }

    /// Redistribute rows by hash of the named key columns into `n` buckets.
    pub fn hash_repartition(&self, columns: &[&str], n: usize) -> Result<Self> {
        if n == 0 {
            return Err(DataError::Invalid(
                "cannot repartition into 0 buckets".to_owned(),
            ));
        }
        let schema = self.schema().clone();
        let key_idx: Vec<usize> = columns
            .iter()
            .map(|c| schema.index_of(c))
            .collect::<Result<Vec<_>>>()?;
        let mut builders: Vec<TableBuilder> =
            (0..n).map(|_| TableBuilder::new(schema.clone())).collect();
        for part in &self.parts {
            for row in part.iter_rows() {
                let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
                for &k in &key_idx {
                    h = h.rotate_left(5) ^ row[k].hash_code();
                }
                builders[(h % n as u64) as usize].push_row(row)?;
            }
        }
        let parts = builders
            .into_iter()
            .map(TableBuilder::finish)
            .collect::<Result<Vec<_>>>()?;
        PartitionedTable::new(
            parts,
            Partitioning::Hash {
                columns: columns.iter().map(|s| s.to_string()).collect(),
                partitions: n,
            },
        )
    }

    pub fn schema(&self) -> &crate::schema::Schema {
        self.parts[0].schema()
    }

    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    pub fn parts(&self) -> &[Table] {
        &self.parts
    }

    pub fn num_partitions(&self) -> usize {
        self.parts.len()
    }

    pub fn total_rows(&self) -> usize {
        self.parts.iter().map(Table::num_rows).sum()
    }

    /// Collapse back into a single table.
    pub fn collect(&self) -> Result<Table> {
        Table::concat(&self.parts)
    }

    /// Consume into the partition vector.
    pub fn into_parts(self) -> Vec<Table> {
        self.parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::value::{DataType, Value};

    fn numbers(n: i64) -> Table {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Int),
        ])
        .unwrap();
        Table::from_rows(
            schema,
            (0..n).map(|i| vec![Value::Int(i % 7), Value::Int(i)]),
        )
        .unwrap()
    }

    #[test]
    fn split_produces_exact_partition_count() {
        let p = PartitionedTable::split(numbers(10), 4).unwrap();
        assert_eq!(p.num_partitions(), 4);
        assert_eq!(p.total_rows(), 10);
        // Contiguous, order-preserving.
        let c = p.collect().unwrap();
        assert_eq!(c.value(9, "v").unwrap(), Value::Int(9));
    }

    #[test]
    fn split_more_partitions_than_rows() {
        let p = PartitionedTable::split(numbers(2), 5).unwrap();
        assert_eq!(p.num_partitions(), 5);
        assert_eq!(p.total_rows(), 2);
    }

    #[test]
    fn split_zero_is_error() {
        assert!(PartitionedTable::split(numbers(2), 0).is_err());
    }

    #[test]
    fn hash_repartition_groups_keys() {
        let p = PartitionedTable::split(numbers(100), 3).unwrap();
        let h = p.hash_repartition(&["k"], 4).unwrap();
        assert_eq!(h.num_partitions(), 4);
        assert_eq!(h.total_rows(), 100);
        // Every key value must live in exactly one partition.
        for key in 0..7 {
            let holders = h
                .parts()
                .iter()
                .filter(|t| t.iter_rows().any(|r| r[0] == Value::Int(key)))
                .count();
            assert!(holders <= 1, "key {key} appears in {holders} partitions");
        }
    }

    #[test]
    fn repartition_preserves_multiset() {
        let p = PartitionedTable::split(numbers(50), 2).unwrap();
        let h = p.hash_repartition(&["v"], 8).unwrap();
        let mut vs: Vec<i64> = h
            .collect()
            .unwrap()
            .column("v")
            .unwrap()
            .iter_values()
            .map(|v| v.as_int().unwrap())
            .collect();
        vs.sort_unstable();
        assert_eq!(vs, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn new_rejects_mismatched_schemas() {
        let a = numbers(3);
        let b = a.project(&["k"]).unwrap();
        assert!(PartitionedTable::new(vec![a, b], Partitioning::Arbitrary).is_err());
        assert!(PartitionedTable::new(vec![], Partitioning::Arbitrary).is_err());
    }

    #[test]
    fn partitioning_metadata_recorded() {
        let p = PartitionedTable::split(numbers(10), 2).unwrap();
        let h = p.hash_repartition(&["k"], 2).unwrap();
        assert_eq!(
            h.partitioning(),
            &Partitioning::Hash {
                columns: vec!["k".into()],
                partitions: 2
            }
        );
    }
}
