//! Dynamically typed scalar values and their data types.
//!
//! `Value` is the row-oriented currency of the workspace: expression
//! evaluation, shuffles and CSV ingestion all speak `Value`. Bulk storage
//! uses the typed [`crate::column::Column`] representation instead.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{DataError, Result};

/// The static type of a column or value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    Bool,
    Int,
    Float,
    Str,
    /// Milliseconds since the Unix epoch.
    Timestamp,
}

impl DataType {
    /// Human-readable name, used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Bool => "Bool",
            DataType::Int => "Int",
            DataType::Float => "Float",
            DataType::Str => "Str",
            DataType::Timestamp => "Timestamp",
        }
    }

    /// Whether values of this type support arithmetic.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }

    /// The common supertype of two types under implicit coercion, if any.
    ///
    /// Int widens to Float; everything else must match exactly.
    pub fn unify(self, other: DataType) -> Option<DataType> {
        use DataType::*;
        match (self, other) {
            (a, b) if a == b => Some(a),
            (Int, Float) | (Float, Int) => Some(Float),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A dynamically typed scalar, nullable via [`Value::Null`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    /// Milliseconds since the Unix epoch.
    Timestamp(i64),
}

impl Value {
    /// The value's data type, or `None` for `Null` (null is typeless).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Timestamp(_) => Some(DataType::Timestamp),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extract a bool, failing on any other variant.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(type_mismatch(DataType::Bool, other)),
        }
    }

    /// Extract an integer, failing on any other variant.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(type_mismatch(DataType::Int, other)),
        }
    }

    /// Extract a float, transparently widening integers.
    pub fn as_float(&self) -> Result<f64> {
        match self {
            Value::Float(x) => Ok(*x),
            Value::Int(i) => Ok(*i as f64),
            other => Err(type_mismatch(DataType::Float, other)),
        }
    }

    /// Extract a string slice, failing on any other variant.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(type_mismatch(DataType::Str, other)),
        }
    }

    /// Extract a timestamp (ms since epoch), failing on any other variant.
    pub fn as_timestamp(&self) -> Result<i64> {
        match self {
            Value::Timestamp(t) => Ok(*t),
            other => Err(type_mismatch(DataType::Timestamp, other)),
        }
    }

    /// Coerce this value to `target`, applying the implicit widenings of
    /// [`DataType::unify`]. Null coerces to any type.
    pub fn coerce(&self, target: DataType) -> Result<Value> {
        match (self, target) {
            (Value::Null, _) => Ok(Value::Null),
            (v, t) if v.data_type() == Some(t) => Ok(v.clone()),
            (Value::Int(i), DataType::Float) => Ok(Value::Float(*i as f64)),
            (v, t) => Err(type_mismatch(t, v)),
        }
    }

    /// Parse a textual token into the given type. Empty strings parse to
    /// `Null` for every type except `Str`.
    pub fn parse_as(token: &str, ty: DataType) -> Result<Value> {
        if token.is_empty() && ty != DataType::Str {
            return Ok(Value::Null);
        }
        let bad = |why: &str| DataError::Parse {
            line: 0,
            message: format!("{why}: {token:?}"),
        };
        match ty {
            DataType::Bool => match token {
                "true" | "TRUE" | "True" | "1" => Ok(Value::Bool(true)),
                "false" | "FALSE" | "False" | "0" => Ok(Value::Bool(false)),
                _ => Err(bad("invalid bool")),
            },
            DataType::Int => token
                .parse()
                .map(Value::Int)
                .map_err(|_| bad("invalid int")),
            DataType::Float => token
                .parse()
                .map(Value::Float)
                .map_err(|_| bad("invalid float")),
            DataType::Str => Ok(Value::Str(token.to_owned())),
            DataType::Timestamp => token
                .parse()
                .map(Value::Timestamp)
                .map_err(|_| bad("invalid timestamp")),
        }
    }

    /// Total order over values, used for sorting and range partitioning.
    ///
    /// Null sorts first; distinct types sort by a fixed type rank so mixed
    /// columns (which the engine never produces, but user data might) are
    /// still totally ordered. Float NaN sorts after every other float.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
                Value::Timestamp(_) => 4,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Timestamp(a), Value::Timestamp(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Equality for grouping and joins: numerically tolerant across
    /// Int/Float, null equals null (SQL would disagree; grouping semantics
    /// want all nulls in one group).
    pub fn group_eq(&self, other: &Value) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }

    /// A stable hash for partitioning. Int and Float that compare equal hash
    /// equally (integral floats hash as their integer value).
    pub fn hash_code(&self) -> u64 {
        // FNV-1a over a tagged byte encoding; cheap, deterministic across
        // processes (unlike `DefaultHasher`), and good enough for shuffles.
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x1000_0000_01b3;
        fn fnv(bytes: impl IntoIterator<Item = u8>, mut h: u64) -> u64 {
            for b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
            h
        }
        match self {
            Value::Null => fnv([0u8], OFFSET),
            Value::Bool(b) => fnv([1u8, *b as u8], OFFSET),
            Value::Int(i) => fnv([2u8].into_iter().chain(i.to_le_bytes()), OFFSET),
            Value::Float(x) => {
                // Integral floats must hash like ints for group_eq coherence.
                if x.fract() == 0.0
                    && x.is_finite()
                    && *x >= i64::MIN as f64
                    && *x <= i64::MAX as f64
                {
                    fnv([2u8].into_iter().chain((*x as i64).to_le_bytes()), OFFSET)
                } else {
                    fnv([3u8].into_iter().chain(x.to_bits().to_le_bytes()), OFFSET)
                }
            }
            Value::Str(s) => fnv([4u8].into_iter().chain(s.bytes()), OFFSET),
            Value::Timestamp(t) => fnv([5u8].into_iter().chain(t.to_le_bytes()), OFFSET),
        }
    }
}

fn type_mismatch(expected: DataType, found: &Value) -> DataError {
    DataError::TypeMismatch {
        expected: expected.name().to_owned(),
        found: found
            .data_type()
            .map(|t| t.name().to_owned())
            .unwrap_or_else(|| "Null".to_owned()),
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.group_eq(other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str(""),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => f.write_str(s),
            Value::Timestamp(t) => write!(f, "{t}"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(o: Option<T>) -> Self {
        o.map(Into::into).unwrap_or(Value::Null)
    }
}

/// A row is an owned vector of values. Rows are the shuffle currency.
pub type Row = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_enforce_types() {
        assert_eq!(Value::Int(3).as_int().unwrap(), 3);
        assert_eq!(Value::Int(3).as_float().unwrap(), 3.0);
        assert!(Value::Str("x".into()).as_int().is_err());
        assert!(Value::Null.as_bool().is_err());
        assert_eq!(Value::Timestamp(12).as_timestamp().unwrap(), 12);
    }

    #[test]
    fn unify_widens_int_to_float() {
        assert_eq!(DataType::Int.unify(DataType::Float), Some(DataType::Float));
        assert_eq!(DataType::Float.unify(DataType::Int), Some(DataType::Float));
        assert_eq!(DataType::Int.unify(DataType::Int), Some(DataType::Int));
        assert_eq!(DataType::Str.unify(DataType::Int), None);
    }

    #[test]
    fn coercion_follows_unify() {
        assert_eq!(
            Value::Int(2).coerce(DataType::Float).unwrap(),
            Value::Float(2.0)
        );
        assert_eq!(Value::Null.coerce(DataType::Int).unwrap(), Value::Null);
        assert!(Value::Str("a".into()).coerce(DataType::Int).is_err());
    }

    #[test]
    fn parse_as_handles_empty_and_bad_tokens() {
        assert_eq!(Value::parse_as("", DataType::Int).unwrap(), Value::Null);
        assert_eq!(
            Value::parse_as("", DataType::Str).unwrap(),
            Value::Str(String::new())
        );
        assert_eq!(
            Value::parse_as("42", DataType::Int).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            Value::parse_as("4.5", DataType::Float).unwrap(),
            Value::Float(4.5)
        );
        assert_eq!(
            Value::parse_as("true", DataType::Bool).unwrap(),
            Value::Bool(true)
        );
        assert!(Value::parse_as("4.5", DataType::Int).is_err());
        assert!(Value::parse_as("maybe", DataType::Bool).is_err());
    }

    #[test]
    fn total_cmp_orders_nulls_first_and_nan_last() {
        let mut vs = [
            Value::Float(f64::NAN),
            Value::Float(1.0),
            Value::Null,
            Value::Int(0),
        ];
        vs.sort_by(|a, b| a.total_cmp(b));
        assert!(vs[0].is_null());
        assert_eq!(vs[1], Value::Int(0));
        assert_eq!(vs[2], Value::Float(1.0));
        assert!(matches!(vs[3], Value::Float(x) if x.is_nan()));
    }

    #[test]
    fn cross_numeric_comparison() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.0)), Ordering::Equal);
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert!(Value::Int(2).group_eq(&Value::Float(2.0)));
    }

    #[test]
    fn hash_consistent_with_group_eq_for_integral_floats() {
        assert_eq!(Value::Int(7).hash_code(), Value::Float(7.0).hash_code());
        assert_ne!(Value::Int(7).hash_code(), Value::Int(8).hash_code());
        // Strings hash by content.
        assert_eq!(
            Value::Str("ab".into()).hash_code(),
            Value::Str("ab".into()).hash_code()
        );
    }

    #[test]
    fn hash_is_deterministic_across_calls() {
        let v = Value::Str("toreador".into());
        assert_eq!(v.hash_code(), v.hash_code());
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(Some(2.5f64)), Value::Float(2.5));
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
    }

    #[test]
    fn display_round_trips_through_parse_for_scalars() {
        for (v, t) in [
            (Value::Int(-5), DataType::Int),
            (Value::Float(2.25), DataType::Float),
            (Value::Bool(true), DataType::Bool),
            (Value::Timestamp(99), DataType::Timestamp),
        ] {
            let s = v.to_string();
            assert_eq!(Value::parse_as(&s, t).unwrap(), v);
        }
    }

    #[test]
    fn serde_round_trip() {
        let v = Value::Str("x".into());
        let j = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&j).unwrap();
        assert_eq!(v, back);
    }
}
