//! Descriptive statistics over columns and f64 slices.
//!
//! Used by the Labs run-comparison machinery (consequence matrices) and by
//! the analytics library's evaluation module.

use crate::column::Column;
use crate::error::{DataError, Result};

/// Summary statistics of a numeric sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    pub count: usize,
    pub nulls: usize,
    pub mean: f64,
    /// Population variance (n denominator).
    pub variance: f64,
    pub min: f64,
    pub max: f64,
}

impl Summary {
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }
}

/// Welford one-pass mean/variance accumulator.
///
/// Numerically stable (no catastrophic cancellation on large means) and
/// mergeable, so partitions can be summarised independently and combined.
#[derive(Debug, Clone, Copy, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator (parallel variance combination).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance; 0 for fewer than 2 samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    pub fn min(&self) -> f64 {
        self.min
    }

    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Summarise a numeric column, skipping nulls.
pub fn summarize(column: &Column) -> Result<Summary> {
    let mut acc = Welford::new();
    let mut nulls = 0usize;
    for v in column.iter_values() {
        if v.is_null() {
            nulls += 1;
        } else {
            acc.push(v.as_float()?);
        }
    }
    if acc.count() == 0 {
        return Err(DataError::Invalid(
            "summary of empty/all-null column".to_owned(),
        ));
    }
    Ok(Summary {
        count: acc.count() as usize,
        nulls,
        mean: acc.mean(),
        variance: acc.variance(),
        min: acc.min(),
        max: acc.max(),
    })
}

/// The q-quantile (0..=1) of a sample, linear interpolation between ranks.
pub fn quantile(sample: &[f64], q: f64) -> Result<f64> {
    if sample.is_empty() {
        return Err(DataError::Invalid("quantile of empty sample".to_owned()));
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(DataError::Invalid(format!("quantile {q} outside [0,1]")));
    }
    let mut sorted = sample.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Pearson correlation of two equal-length samples.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64> {
    if xs.len() != ys.len() {
        return Err(DataError::LengthMismatch {
            expected: xs.len(),
            found: ys.len(),
        });
    }
    if xs.len() < 2 {
        return Err(DataError::Invalid(
            "correlation needs >=2 points".to_owned(),
        ));
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return Err(DataError::Invalid(
            "correlation undefined for constant sample".to_owned(),
        ));
    }
    Ok(cov / (vx.sqrt() * vy.sqrt()))
}

/// An equal-width histogram over a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    pub lo: f64,
    pub hi: f64,
    pub counts: Vec<u64>,
}

impl Histogram {
    /// Bucket `sample` into `bins` equal-width bins spanning its range.
    pub fn build(sample: &[f64], bins: usize) -> Result<Histogram> {
        if sample.is_empty() || bins == 0 {
            return Err(DataError::Invalid(
                "histogram needs data and >=1 bin".to_owned(),
            ));
        }
        let lo = sample.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = sample.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let width = ((hi - lo) / bins as f64).max(f64::MIN_POSITIVE);
        let mut counts = vec![0u64; bins];
        for &x in sample {
            let mut b = ((x - lo) / width) as usize;
            if b >= bins {
                b = bins - 1; // x == hi lands in the last bin
            }
            counts[b] += 1;
        }
        Ok(Histogram { lo, hi, counts })
    }

    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.count(), 100);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Welford::new();
        a.push(1.0);
        let before = a;
        a.merge(&Welford::new());
        assert_eq!(a.mean(), before.mean());
        let mut empty = Welford::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 1);
    }

    #[test]
    fn summarize_skips_nulls_and_errors_on_empty() {
        let c = Column::from_values(
            crate::value::DataType::Float,
            &[Value::Float(1.0), Value::Null, Value::Float(3.0)],
        )
        .unwrap();
        let s = summarize(&c).unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.nulls, 1);
        assert_eq!(s.mean, 2.0);
        let empty = Column::empty(crate::value::DataType::Float);
        assert!(summarize(&empty).is_err());
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 4.0);
        assert_eq!(quantile(&xs, 0.5).unwrap(), 2.5);
        assert!(quantile(&[], 0.5).is_err());
        assert!(quantile(&xs, 1.5).is_err());
    }

    #[test]
    fn pearson_detects_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg = [6.0, 4.0, 2.0];
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &[1.0, 1.0, 1.0]).is_err());
        assert!(pearson(&xs, &[1.0]).is_err());
    }

    #[test]
    fn histogram_covers_range() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = Histogram::build(&xs, 10).unwrap();
        assert_eq!(h.total(), 100);
        assert_eq!(h.counts, vec![10; 10]);
        assert_eq!(h.lo, 0.0);
        assert_eq!(h.hi, 99.0);
    }

    #[test]
    fn histogram_constant_sample() {
        let h = Histogram::build(&[5.0, 5.0, 5.0], 4).unwrap();
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn histogram_invalid_inputs() {
        assert!(Histogram::build(&[], 4).is_err());
        assert!(Histogram::build(&[1.0], 0).is_err());
    }
}
