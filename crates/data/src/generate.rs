//! Seeded synthetic workload generators for the TOREADOR vertical scenarios.
//!
//! The paper's Labs expose "simplified versions of real-life vertical
//! scenarios"; the original platform used customer datasets we do not have.
//! These generators are the documented substitution (DESIGN.md §2): each
//! vertical plants the statistical structure its challenge needs — funnel
//! conversion and Zipf-popular products in the clickstream, diurnal load
//! curves and injected faults in the telemetry, and quasi-identifier /
//! sensitive-attribute structure in the health records. Everything is
//! deterministic in the seed.

use rand::distributions::{Alphanumeric, Distribution, Uniform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::schema::{Field, Schema};
use crate::table::{Table, TableBuilder};
use crate::value::{DataType, Value};

/// A Zipf-distributed sampler over `0..n` with exponent `s`.
///
/// Implemented by inverse-CDF over the precomputed harmonic weights; O(log n)
/// per sample. Rank 0 is the most popular item.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs n > 0");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Sample from a standard normal via Box–Muller.
pub fn normal(rng: &mut impl Rng, mean: f64, std_dev: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    mean + std_dev * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

const COUNTRIES: &[&str] = &["IT", "ES", "FR", "DE", "UK", "NL", "PL", "SE"];
const CATEGORIES: &[&str] = &[
    "electronics",
    "fashion",
    "home",
    "sports",
    "books",
    "toys",
    "grocery",
    "beauty",
];
const REGIONS: &[&str] = &["north", "south", "east", "west"];
const DIAGNOSES: &[&str] = &[
    "hypertension",
    "diabetes",
    "asthma",
    "arthritis",
    "migraine",
    "flu",
    "healthy",
];

/// The clickstream schema shared by generator and scenarios.
pub fn clickstream_schema() -> Schema {
    Schema::new(vec![
        Field::required("event_id", DataType::Int),
        Field::required("user_id", DataType::Int),
        Field::required("session_id", DataType::Int),
        Field::required("ts", DataType::Timestamp),
        Field::required("product_id", DataType::Int),
        Field::required("category", DataType::Str),
        Field::required("action", DataType::Str),
        Field::new("price", DataType::Float),
        Field::required("country", DataType::Str),
    ])
    .unwrap()
}

/// E-commerce clickstream: sessions walk a view → cart → purchase funnel.
///
/// Planted structure: product popularity is Zipf(1.1); ~30% of views add to
/// cart, ~40% of carts purchase; purchase price correlates with category.
pub fn clickstream(rows: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let products = Zipf::new(500, 1.1);
    let mut b = TableBuilder::with_capacity(clickstream_schema(), rows);
    let mut event_id = 0i64;
    let mut session_id = 0i64;
    let mut ts = 1_488_000_000_000i64; // fixed epoch start for determinism
    while b.num_rows() < rows {
        session_id += 1;
        let user_id = rng.gen_range(0..(rows as i64 / 4 + 1));
        let country = COUNTRIES[rng.gen_range(0..COUNTRIES.len())];
        let session_len = rng.gen_range(1..=8usize);
        for _ in 0..session_len {
            if b.num_rows() >= rows {
                break;
            }
            let product = products.sample(&mut rng) as i64;
            let category = CATEGORIES[(product % CATEGORIES.len() as i64) as usize];
            let base_price = 5.0 + (product % 97) as f64 * 3.7;
            ts += rng.gen_range(500..60_000);
            event_id += 1;
            let push = |action: &str, price: Value, b: &mut TableBuilder, eid: i64, t: i64| {
                b.push_row(vec![
                    Value::Int(eid),
                    Value::Int(user_id),
                    Value::Int(session_id),
                    Value::Timestamp(t),
                    Value::Int(product),
                    Value::Str(category.to_owned()),
                    Value::Str(action.to_owned()),
                    price,
                    Value::Str(country.to_owned()),
                ])
                .expect("generator row matches schema");
            };
            push("view", Value::Null, &mut b, event_id, ts);
            if rng.gen_bool(0.3) && b.num_rows() < rows {
                ts += rng.gen_range(500..30_000);
                event_id += 1;
                push("cart", Value::Float(base_price), &mut b, event_id, ts);
                if rng.gen_bool(0.4) && b.num_rows() < rows {
                    ts += rng.gen_range(500..30_000);
                    event_id += 1;
                    push("purchase", Value::Float(base_price), &mut b, event_id, ts);
                }
            }
        }
    }
    b.finish().expect("generator produces rectangular table")
}

/// The smart-energy telemetry schema.
pub fn telemetry_schema() -> Schema {
    Schema::new(vec![
        Field::required("reading_id", DataType::Int),
        Field::required("meter_id", DataType::Int),
        Field::required("ts", DataType::Timestamp),
        Field::required("kwh", DataType::Float),
        Field::new("voltage", DataType::Float),
        Field::required("temp_c", DataType::Float),
        Field::required("region", DataType::Str),
    ])
    .unwrap()
}

/// Smart-meter telemetry with a diurnal load curve and injected anomalies.
///
/// Planted structure: kwh follows a sinusoid over the hour-of-day plus
/// Gaussian noise; ~0.5% of readings are anomalous spikes (×8 load); kwh
/// correlates negatively with temperature (heating-dominated region).
pub fn telemetry(rows: usize, meters: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let meters = meters.max(1);
    let mut b = TableBuilder::with_capacity(telemetry_schema(), rows);
    let start = 1_488_000_000_000i64;
    for i in 0..rows {
        let meter = (i % meters) as i64;
        let step = (i / meters) as i64;
        let ts = start + step * 900_000; // 15-minute cadence per meter
        let hour = ((ts / 3_600_000) % 24) as f64;
        let diurnal = ((hour - 7.0) / 24.0 * 2.0 * std::f64::consts::PI).sin();
        let temp = 12.0
            + 9.0 * ((hour - 14.0) / 24.0 * 2.0 * std::f64::consts::PI).cos()
            + normal(&mut rng, 0.0, 1.5);
        // Heating-dominated load: the temperature term outweighs the diurnal
        // one so kwh correlates negatively with temp_c (the forecasting
        // challenges rely on this signal).
        let base = 0.5 + 0.2 * diurnal + 0.05 * (18.0 - temp) + normal(&mut rng, 0.0, 0.05);
        let kwh = if rng.gen_bool(0.005) {
            base.max(0.05) * 8.0
        } else {
            base.max(0.05)
        };
        let voltage = if rng.gen_bool(0.02) {
            Value::Null // sensor dropout
        } else {
            Value::Float(230.0 + normal(&mut rng, 0.0, 2.0))
        };
        b.push_row(vec![
            Value::Int(i as i64),
            Value::Int(meter),
            Value::Timestamp(ts),
            Value::Float(kwh),
            voltage,
            Value::Float(temp),
            Value::Str(REGIONS[(meter % REGIONS.len() as i64) as usize].to_owned()),
        ])
        .expect("generator row matches schema");
    }
    b.finish().expect("generator produces rectangular table")
}

/// The healthcare records schema (quasi-identifiers + sensitive attribute).
pub fn health_schema() -> Schema {
    Schema::new(vec![
        Field::required("patient_id", DataType::Int),
        Field::required("age", DataType::Int),
        Field::required("zip", DataType::Str),
        Field::required("sex", DataType::Str),
        Field::required("diagnosis", DataType::Str),
        Field::required("visits", DataType::Int),
        Field::required("cost", DataType::Float),
    ])
    .unwrap()
}

/// Patient records: `age`/`zip`/`sex` are quasi-identifiers, `diagnosis`
/// is the sensitive attribute, and `cost` grows with age and visit count
/// (so regression has signal and anonymisation has utility cost).
pub fn health_records(rows: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let zips = Zipf::new(40, 0.8);
    let mut b = TableBuilder::with_capacity(health_schema(), rows);
    for i in 0..rows {
        let age = rng.gen_range(18..95i64);
        let zip = format!("2{:04}", 6000 + zips.sample(&mut rng) as i64);
        let sex = if rng.gen_bool(0.52) { "F" } else { "M" };
        // Older patients skew toward chronic diagnoses.
        let dx_idx = if age > 60 {
            rng.gen_range(0..4usize)
        } else {
            rng.gen_range(2..DIAGNOSES.len())
        };
        let visits = 1 + (age - 18) / 15 + rng.gen_range(0..4i64);
        let cost = 120.0 * visits as f64 + 8.0 * age as f64 + normal(&mut rng, 0.0, 150.0);
        b.push_row(vec![
            Value::Int(i as i64),
            Value::Int(age),
            Value::Str(zip),
            Value::Str(sex.to_owned()),
            Value::Str(DIAGNOSES[dx_idx].to_owned()),
            Value::Int(visits),
            Value::Float(cost.max(50.0)),
        ])
        .expect("generator row matches schema");
    }
    b.finish().expect("generator produces rectangular table")
}

/// The fraud-detection event-stream schema (time-ordered by arrival).
pub fn fraud_schema() -> Schema {
    Schema::new(vec![
        Field::required("txn_id", DataType::Int),
        Field::required("account_id", DataType::Int),
        Field::required("ts", DataType::Timestamp),
        Field::required("amount", DataType::Float),
        Field::required("merchant", DataType::Str),
        Field::required("channel", DataType::Str),
        Field::required("is_fraud", DataType::Bool),
    ])
    .unwrap()
}

const MERCHANTS: &[&str] = &[
    "grocery",
    "fuel",
    "travel",
    "electronics",
    "restaurant",
    "pharmacy",
    "online",
    "atm",
];
const CHANNELS: &[&str] = &["card_present", "online", "contactless", "transfer"];

/// Card-transaction event stream for the fraud vertical, arrival-ordered
/// with planted out-of-order (late) events.
///
/// Rows arrive at a fixed 10 ms cadence; with probability `late_rate`, a
/// row's *event* timestamp lags its arrival slot by 60 s (an upstream
/// buffering delay), so it lands behind any watermark whose allowed
/// lateness is under a minute. No late rows are planted in the first
/// `guard` rows — set `guard` to at least one micro-batch so the stream's
/// watermark exists before the first late row arrives, which makes the
/// planted count exactly the number of rows a `drop`/`side-channel`
/// policy diverts.
///
/// Planted fraud structure: ~1.5% of transactions are fraudulent with ×12
/// amounts concentrated in the `online`/`transfer` channels.
///
/// Returns the table and the number of late rows planted.
pub fn fraud_stream(rows: usize, seed: u64, late_rate: f64, guard: usize) -> (Table, usize) {
    const STEP_MS: i64 = 10;
    const LATE_LAG_MS: i64 = 60_000;
    let mut rng = StdRng::seed_from_u64(seed);
    let accounts = Zipf::new(200, 0.9);
    let mut b = TableBuilder::with_capacity(fraud_schema(), rows);
    let start = 1_488_000_000_000i64;
    let mut planted_late = 0usize;
    for i in 0..rows {
        let arrival = start + i as i64 * STEP_MS;
        let late = i >= guard && rng.gen_bool(late_rate.clamp(0.0, 1.0));
        let ts = if late { arrival - LATE_LAG_MS } else { arrival };
        if late {
            planted_late += 1;
        }
        let account = accounts.sample(&mut rng) as i64;
        let fraud = rng.gen_bool(0.015);
        let channel = if fraud && rng.gen_bool(0.8) {
            if rng.gen_bool(0.5) {
                "online"
            } else {
                "transfer"
            }
        } else {
            CHANNELS[rng.gen_range(0..CHANNELS.len())]
        };
        let base = 8.0 + (normal(&mut rng, 0.0, 1.0).abs() * 45.0);
        let amount = if fraud { base * 12.0 } else { base };
        b.push_row(vec![
            Value::Int(i as i64),
            Value::Int(account),
            Value::Timestamp(ts),
            Value::Float((amount * 100.0).round() / 100.0),
            Value::Str(MERCHANTS[rng.gen_range(0..MERCHANTS.len())].to_owned()),
            Value::Str(channel.to_owned()),
            Value::Bool(fraud),
        ])
        .expect("generator row matches schema");
    }
    (
        b.finish().expect("generator produces rectangular table"),
        planted_late,
    )
}

/// A generic random table for fuzzing: `cols` columns cycling through the
/// scalar types, `rows` rows, ~5% nulls in nullable columns.
pub fn random_table(rows: usize, cols: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let types = [
        DataType::Int,
        DataType::Float,
        DataType::Str,
        DataType::Bool,
        DataType::Timestamp,
    ];
    let fields: Vec<Field> = (0..cols)
        .map(|c| Field::new(format!("c{c}"), types[c % types.len()]))
        .collect();
    let schema = Schema::new(fields).expect("generated names unique");
    let mut b = TableBuilder::with_capacity(schema.clone(), rows);
    let word = Uniform::new(3usize, 10usize);
    for _ in 0..rows {
        let row: Vec<Value> = schema
            .fields()
            .iter()
            .map(|f| {
                if rng.gen_bool(0.05) {
                    return Value::Null;
                }
                match f.data_type {
                    DataType::Int => Value::Int(rng.gen_range(-1000..1000)),
                    DataType::Float => Value::Float(rng.gen_range(-1e3..1e3)),
                    DataType::Bool => Value::Bool(rng.gen()),
                    DataType::Timestamp => Value::Timestamp(rng.gen_range(0..2_000_000_000_000)),
                    DataType::Str => {
                        let len = word.sample(&mut rng);
                        Value::Str(
                            (&mut rng)
                                .sample_iter(&Alphanumeric)
                                .take(len)
                                .map(char::from)
                                .collect(),
                        )
                    }
                }
            })
            .collect();
        b.push_row(row).expect("generated row matches schema");
    }
    b.finish().expect("generator produces rectangular table")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_monotone_decreasing_in_rank() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[60]);
    }

    #[test]
    #[should_panic(expected = "n > 0")]
    fn zipf_rejects_empty_domain() {
        Zipf::new(0, 1.0);
    }

    #[test]
    fn normal_has_requested_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..20_000).map(|_| normal(&mut rng, 3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn generators_are_deterministic_in_seed() {
        assert_eq!(clickstream(200, 42), clickstream(200, 42));
        assert_ne!(clickstream(200, 42), clickstream(200, 43));
        assert_eq!(telemetry(100, 5, 9), telemetry(100, 5, 9));
        assert_eq!(health_records(100, 1), health_records(100, 1));
        assert_eq!(random_table(50, 6, 3), random_table(50, 6, 3));
    }

    #[test]
    fn clickstream_has_requested_rows_and_funnel() {
        let t = clickstream(2000, 11);
        assert_eq!(t.num_rows(), 2000);
        let actions = t.column("action").unwrap();
        let mut views = 0;
        let mut carts = 0;
        let mut purchases = 0;
        for v in actions.iter_values() {
            match v.as_str().unwrap() {
                "view" => views += 1,
                "cart" => carts += 1,
                "purchase" => purchases += 1,
                other => panic!("unexpected action {other}"),
            }
        }
        assert!(views > carts, "funnel: views {views} > carts {carts}");
        assert!(
            carts > purchases,
            "funnel: carts {carts} > purchases {purchases}"
        );
        assert!(purchases > 0);
    }

    #[test]
    fn clickstream_views_have_null_price() {
        let t = clickstream(500, 5);
        for row in t.iter_rows() {
            let action = row[6].as_str().unwrap().to_owned();
            if action == "view" {
                assert!(row[7].is_null());
            } else {
                assert!(!row[7].is_null());
            }
        }
    }

    #[test]
    fn telemetry_has_anomalies_and_dropouts() {
        let t = telemetry(10_000, 20, 3);
        assert_eq!(t.num_rows(), 10_000);
        let kwh = t.column("kwh").unwrap();
        let s = crate::stats::summarize(kwh).unwrap();
        assert!(
            s.max > 4.0 * s.mean,
            "anomalous spikes present: max {} mean {}",
            s.max,
            s.mean
        );
        assert!(
            t.column("voltage").unwrap().null_count() > 0,
            "sensor dropouts present"
        );
    }

    #[test]
    fn telemetry_kwh_negatively_correlates_with_temp() {
        let t = telemetry(8000, 10, 4);
        let kwh: Vec<f64> = t
            .column("kwh")
            .unwrap()
            .iter_values()
            .map(|v| v.as_float().unwrap())
            .collect();
        let temp: Vec<f64> = t
            .column("temp_c")
            .unwrap()
            .iter_values()
            .map(|v| v.as_float().unwrap())
            .collect();
        let r = crate::stats::pearson(&kwh, &temp).unwrap();
        assert!(r < -0.05, "expected negative correlation, got {r}");
    }

    #[test]
    fn health_records_have_quasi_identifier_structure() {
        let t = health_records(3000, 8);
        assert_eq!(t.num_rows(), 3000);
        // cost correlates positively with age.
        let age: Vec<f64> = t
            .column("age")
            .unwrap()
            .iter_values()
            .map(|v| v.as_float().unwrap())
            .collect();
        let cost: Vec<f64> = t
            .column("cost")
            .unwrap()
            .iter_values()
            .map(|v| v.as_float().unwrap())
            .collect();
        assert!(crate::stats::pearson(&age, &cost).unwrap() > 0.3);
        // All diagnoses drawn from the fixed vocabulary.
        for v in t.column("diagnosis").unwrap().iter_values() {
            assert!(DIAGNOSES.contains(&v.as_str().unwrap()));
        }
    }

    #[test]
    fn fraud_stream_plants_exact_late_rows_behind_the_guard() {
        let (t, planted) = fraud_stream(4000, 17, 0.05, 256);
        assert_eq!(t.num_rows(), 4000);
        assert!(planted > 0, "late rows planted at 5% over 4000 rows");
        // Recount from the data: a row is late iff its ts lags its arrival
        // slot (arrival = start + i * 10ms), and none appear in the guard.
        let start = 1_488_000_000_000i64;
        let mut recounted = 0usize;
        for (i, row) in t.iter_rows().enumerate() {
            let ts = match row[2] {
                Value::Timestamp(v) => v,
                ref other => panic!("unexpected ts {other:?}"),
            };
            let arrival = start + i as i64 * 10;
            if ts < arrival {
                assert_eq!(arrival - ts, 60_000, "late lag is exactly 60s");
                assert!(i >= 256, "no late rows inside the guard (row {i})");
                recounted += 1;
            }
        }
        assert_eq!(recounted, planted);
        // Determinism and fraud structure.
        assert_eq!(
            fraud_stream(500, 3, 0.02, 64).0,
            fraud_stream(500, 3, 0.02, 64).0
        );
        let frauds = t
            .column("is_fraud")
            .unwrap()
            .iter_values()
            .filter(|v| *v == Value::Bool(true))
            .count();
        assert!(frauds > 0, "fraud rows planted");
    }

    #[test]
    fn random_table_shape_and_nulls() {
        let t = random_table(400, 7, 2);
        assert_eq!(t.num_rows(), 400);
        assert_eq!(t.num_columns(), 7);
        let total_nulls: usize = t.columns().iter().map(|c| c.null_count()).sum();
        assert!(total_nulls > 0, "some nulls expected");
    }
}
