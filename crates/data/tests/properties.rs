//! Property-based tests for the data substrate invariants.

use proptest::prelude::*;

use toreador_data::csv::{read_csv, write_csv};
use toreador_data::generate::random_table;
use toreador_data::partition::PartitionedTable;
use toreador_data::prelude::*;
use toreador_data::stats::{quantile, Welford};

/// Arbitrary `Value` covering every variant (strings avoid the empty string,
/// which CSV cannot distinguish from null by design).
fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        (-1e9f64..1e9).prop_map(Value::Float),
        "[a-zA-Z0-9 ,\"\n]{1,12}".prop_map(Value::Str),
        any::<i64>().prop_map(Value::Timestamp),
    ]
}

proptest! {
    #[test]
    fn value_total_cmp_is_total_order(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        // Antisymmetry.
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        // Transitivity (spot-check the chain that applies).
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.total_cmp(&c), Ordering::Greater);
        }
        // Reflexivity.
        prop_assert_eq!(a.total_cmp(&a), Ordering::Equal);
    }

    #[test]
    fn group_eq_implies_equal_hash(a in arb_value(), b in arb_value()) {
        if a.group_eq(&b) {
            prop_assert_eq!(a.hash_code(), b.hash_code());
        }
    }

    #[test]
    fn split_preserves_rows_and_order(rows in 0usize..200, parts in 1usize..16, seed in 0u64..100) {
        let t = random_table(rows, 4, seed);
        let p = PartitionedTable::split(t.clone(), parts).unwrap();
        prop_assert_eq!(p.num_partitions(), parts);
        prop_assert_eq!(p.total_rows(), rows);
        if rows > 0 {
            prop_assert_eq!(p.collect().unwrap(), t);
        }
    }

    #[test]
    fn hash_repartition_preserves_multiset(rows in 1usize..150, buckets in 1usize..8, seed in 0u64..50) {
        let t = random_table(rows, 3, seed);
        let p = PartitionedTable::single(t.clone());
        let h = p.hash_repartition(&["c0"], buckets).unwrap();
        prop_assert_eq!(h.total_rows(), rows);
        let mut orig: Vec<String> = t.iter_rows().map(|r| format!("{r:?}")).collect();
        let mut redis: Vec<String> = h
            .parts()
            .iter()
            .flat_map(|p| p.iter_rows().map(|r| format!("{r:?}")))
            .collect();
        orig.sort();
        redis.sort();
        prop_assert_eq!(orig, redis);
    }

    #[test]
    fn csv_round_trip_is_identity_modulo_empty_strings(rows in 0usize..60, seed in 0u64..100) {
        // random_table's strings are non-empty, so inference round-trips.
        let t = random_table(rows, 5, seed);
        if rows == 0 {
            return Ok(()); // inference has no rows to look at
        }
        let text = write_csv(&t);
        let back = read_csv(&text).unwrap();
        prop_assert_eq!(back.num_rows(), t.num_rows());
        // Values compare equal column-by-column (schema may differ in
        // nullability, which Display/parse does not encode).
        for (ca, cb) in t.columns().iter().zip(back.columns()) {
            for (va, vb) in ca.iter_values().zip(cb.iter_values()) {
                if let (Ok(fa), Ok(fb)) = (va.as_float(), vb.as_float()) {
                    prop_assert!((fa - fb).abs() <= fa.abs() * 1e-12 + 1e-12);
                } else {
                    prop_assert_eq!(va.to_string(), vb.to_string());
                }
            }
        }
    }

    #[test]
    fn sort_output_is_sorted_permutation(rows in 0usize..120, seed in 0u64..100) {
        let t = random_table(rows, 3, seed);
        let s = t.sort_by(&["c0"], false).unwrap();
        prop_assert_eq!(s.num_rows(), t.num_rows());
        let col = s.column("c0").unwrap();
        for i in 1..s.num_rows() {
            let prev = col.value(i - 1).unwrap();
            let cur = col.value(i).unwrap();
            prop_assert_ne!(prev.total_cmp(&cur), std::cmp::Ordering::Greater);
        }
        // Multiset preservation.
        let mut a: Vec<String> = t.column("c0").unwrap().iter_values().map(|v| format!("{v:?}")).collect();
        let mut b: Vec<String> = col.iter_values().map(|v| format!("{v:?}")).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn filter_then_concat_partitions_rows(rows in 0usize..150, seed in 0u64..100) {
        let t = random_table(rows, 2, seed);
        let mask: Vec<bool> = (0..rows).map(|i| i % 3 == 0).collect();
        let inv: Vec<bool> = mask.iter().map(|b| !b).collect();
        let kept = t.filter(&mask).unwrap();
        let dropped = t.filter(&inv).unwrap();
        prop_assert_eq!(kept.num_rows() + dropped.num_rows(), rows);
    }

    #[test]
    fn welford_merge_associative(xs in prop::collection::vec(-1e6f64..1e6, 0..100), split in 0usize..100) {
        let split = split.min(xs.len());
        let mut whole = Welford::new();
        for &x in &xs { whole.push(x); }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..split] { left.push(x); }
        for &x in &xs[split..] { right.push(x); }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        if !xs.is_empty() {
            prop_assert!((left.mean() - whole.mean()).abs() < 1e-6);
            prop_assert!((left.variance() - whole.variance()).abs() < 1e-3);
        }
    }

    #[test]
    fn quantile_is_monotone_in_q(xs in prop::collection::vec(-1e3f64..1e3, 1..80), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&xs, lo).unwrap();
        let b = quantile(&xs, hi).unwrap();
        prop_assert!(a <= b + 1e-9);
    }

    #[test]
    fn take_out_of_range_errors(rows in 0usize..20) {
        let t = random_table(rows, 2, 0);
        prop_assert!(t.take(&[rows]).is_err());
    }
}
