//! A blocking client for the serve wire protocol — one `TcpStream` per
//! request, matching the server's `Connection: close` framing. Used by
//! the CLI's remote mode, the fleet driver, and the integration tests.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::http::percent_encode;
use crate::proto::{
    AttemptReply, AttemptRequest, CompareReply, ErrorBody, ErrorClass, HistoryReply,
    OpenSessionRequest, SessionInfo, StatusReply,
};

/// A client-side failure: either a classified service error (the body the
/// daemon sent) or a transport/protocol problem.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientError {
    pub class: ErrorClass,
    pub message: String,
    /// True when the failure happened below the protocol (connect, read,
    /// malformed response) rather than as a classified service reply.
    /// The fleet driver counts these as protocol errors.
    pub transport: bool,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.class, self.message)
    }
}

impl ClientError {
    fn transport(message: impl Into<String>) -> ClientError {
        ClientError {
            class: ErrorClass::Internal,
            message: message.into(),
            transport: true,
        }
    }
}

/// Result alias for client calls.
pub type ClientResult<T> = Result<T, ClientError>;

/// The blocking client. Cheap to clone; connections are per-request.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    timeout: Duration,
}

impl Client {
    /// A client for the daemon at `addr` (`host:port`).
    pub fn new(addr: impl Into<String>) -> Client {
        Client {
            addr: addr.into(),
            timeout: Duration::from_secs(120),
        }
    }

    /// Override the per-request socket timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    /// `GET /healthz`.
    pub fn healthz(&self) -> ClientResult<bool> {
        let v: serde_json::Value = self.get("/healthz")?;
        Ok(v.as_object()
            .and_then(|o| o.get("ok"))
            .and_then(|b| b.as_bool())
            .unwrap_or(false))
    }

    /// `POST /v1/session/open`.
    pub fn open_session(&self, req: &OpenSessionRequest) -> ClientResult<SessionInfo> {
        self.post("/v1/session/open", req)
    }

    /// `POST /v1/attempt`.
    pub fn attempt(&self, req: &AttemptRequest) -> ClientResult<AttemptReply> {
        self.post("/v1/attempt", req)
    }

    /// `GET /v1/status`.
    pub fn status(&self) -> ClientResult<StatusReply> {
        self.get("/v1/status")
    }

    /// `GET /v1/history`.
    pub fn history(&self, trainee: &str) -> ClientResult<HistoryReply> {
        self.get(&format!("/v1/history?trainee={}", percent_encode(trainee)))
    }

    /// `GET /v1/run` — the full persisted record as JSON.
    pub fn run_record(&self, trainee: &str, run_id: u64) -> ClientResult<serde_json::Value> {
        self.get(&format!(
            "/v1/run?trainee={}&run={run_id}",
            percent_encode(trainee)
        ))
    }

    /// `GET /v1/compare`.
    pub fn compare(&self, trainee: &str, a: u64, b: u64) -> ClientResult<CompareReply> {
        self.get(&format!(
            "/v1/compare?trainee={}&a={a}&b={b}",
            percent_encode(trainee)
        ))
    }

    /// `POST /v1/shutdown` — ask the daemon to drain and exit.
    pub fn shutdown(&self) -> ClientResult<serde_json::Value> {
        self.post(
            "/v1/shutdown",
            &serde_json::Value::Object(serde_json::Map::new()),
        )
    }

    fn get<T: serde::de::DeserializeOwned>(&self, target: &str) -> ClientResult<T> {
        self.roundtrip("GET", target, None)
    }

    fn post<B: serde::Serialize, T: serde::de::DeserializeOwned>(
        &self,
        target: &str,
        body: &B,
    ) -> ClientResult<T> {
        let json =
            serde_json::to_string(body).map_err(|e| ClientError::transport(e.to_string()))?;
        self.roundtrip("POST", target, Some(json.as_bytes()))
    }

    fn roundtrip<T: serde::de::DeserializeOwned>(
        &self,
        method: &str,
        target: &str,
        body: Option<&[u8]>,
    ) -> ClientResult<T> {
        let mut stream = TcpStream::connect(&self.addr)
            .map_err(|e| ClientError::transport(format!("connect {}: {e}", self.addr)))?;
        stream.set_read_timeout(Some(self.timeout)).ok();
        stream.set_write_timeout(Some(self.timeout)).ok();
        let body = body.unwrap_or(b"");
        let head = format!(
            "{method} {target} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
            self.addr,
            body.len()
        );
        stream
            .write_all(head.as_bytes())
            .and_then(|()| stream.write_all(body))
            .map_err(|e| ClientError::transport(format!("send: {e}")))?;

        let mut raw = Vec::new();
        stream
            .read_to_end(&mut raw)
            .map_err(|e| ClientError::transport(format!("read: {e}")))?;
        let (status, payload) = split_response(&raw)?;
        let text = std::str::from_utf8(payload)
            .map_err(|_| ClientError::transport(format!("non-utf8 body (status {status})")))?;
        if (200..300).contains(&status) {
            serde_json::from_str(text).map_err(|e| {
                ClientError::transport(format!("bad response body (status {status}): {e}"))
            })
        } else {
            let body: ErrorBody = serde_json::from_str(text).map_err(|e| {
                ClientError::transport(format!("unparseable error body (status {status}): {e}"))
            })?;
            Err(ClientError {
                class: body.class,
                message: body.message,
                transport: false,
            })
        }
    }
}

/// Split a raw HTTP response into (status, body).
fn split_response(raw: &[u8]) -> ClientResult<(u16, &[u8])> {
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| ClientError::transport("response missing header terminator"))?;
    let head = std::str::from_utf8(&raw[..header_end])
        .map_err(|_| ClientError::transport("non-utf8 response head"))?;
    let status_line = head.lines().next().unwrap_or_default();
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| ClientError::transport(format!("bad status line {status_line:?}")))?;
    Ok((status, &raw[header_end + 4..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_splitting_handles_statuses_and_garbage() {
        let (status, body) =
            split_response(b"HTTP/1.1 429 Too Many\r\nx: y\r\n\r\n{\"a\":1}").unwrap();
        assert_eq!(status, 429);
        assert_eq!(body, b"{\"a\":1}");
        assert!(split_response(b"no terminator").unwrap_err().transport);
        assert!(split_response(b"GARBAGE\r\n\r\n").unwrap_err().transport);
    }

    #[test]
    fn connect_failure_is_a_transport_error() {
        // A port nothing listens on: connect must fail fast and be marked
        // as transport, not as a classified service rejection.
        let client = Client::new("127.0.0.1:1").with_timeout(Duration::from_millis(200));
        let err = client.healthz().unwrap_err();
        assert!(err.transport);
    }
}
