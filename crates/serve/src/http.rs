//! A minimal HTTP/1.1 layer over `std::net` — just enough for the Labs
//! service wire protocol (the workspace vendors no async runtime or HTTP
//! crate, and the protocol needs nothing fancier: one request per
//! connection, JSON bodies, `Connection: close`).

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on a request body; a campaign attempt request is well under
/// a kilobyte, so anything bigger is garbage or abuse.
pub const MAX_BODY_BYTES: usize = 1 << 20;
/// Upper bound on one header line.
const MAX_LINE_BYTES: usize = 8 * 1024;
/// Upper bound on the header count.
const MAX_HEADERS: usize = 64;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Decoded query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a query parameter.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Read and parse one request from the stream. `Err` carries a human
/// message suitable for a 400 body.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut reader = BufReader::new(stream);
    let request_line = read_line(&mut reader)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_owned();
    let target = parts.next().ok_or("request line missing target")?;
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol {version}"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), parse_query(q)),
        None => (target.to_owned(), Vec::new()),
    };

    let mut content_length = 0usize;
    for _ in 0..MAX_HEADERS {
        let line = read_line(&mut reader)?;
        if line.is_empty() {
            let mut body = vec![0u8; content_length];
            if content_length > 0 {
                reader
                    .read_exact(&mut body)
                    .map_err(|e| format!("short body: {e}"))?;
            }
            return Ok(Request {
                method,
                path,
                query,
                body,
            });
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse::<usize>()
                    .map_err(|_| format!("bad content-length {:?}", value.trim()))?;
                if content_length > MAX_BODY_BYTES {
                    return Err(format!("body of {content_length} bytes exceeds limit"));
                }
            }
        }
    }
    Err("too many headers".to_owned())
}

/// Write one response and flush. The connection is one-shot
/// (`Connection: close`), so the body length is always exact.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let reason = reason_phrase(status);
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Read one CRLF-terminated line, rejecting unbounded lines.
fn read_line(reader: &mut BufReader<&mut TcpStream>) -> Result<String, String> {
    let mut line = String::new();
    let mut taken = 0usize;
    loop {
        let mut byte = [0u8; 1];
        reader
            .read_exact(&mut byte)
            .map_err(|e| format!("connection ended mid-line: {e}"))?;
        taken += 1;
        if taken > MAX_LINE_BYTES {
            return Err("header line too long".to_owned());
        }
        match byte[0] {
            b'\n' => {
                if line.ends_with('\r') {
                    line.pop();
                }
                return Ok(line);
            }
            b => line.push(b as char),
        }
    }
}

/// Split `a=1&b=two` into pairs, percent-decoding each side.
fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

/// Minimal percent-decoding (`%2B`, `+` as space). Invalid escapes pass
/// through literally rather than failing the request.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Percent-encode a query value (the client half of [`percent_decode`]).
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Round-trip a raw request through a real socket pair.
    fn parse_raw(raw: &str) -> Result<Request, String> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_owned();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(raw.as_bytes()).unwrap();
        });
        let (mut conn, _) = listener.accept().unwrap();
        let parsed = read_request(&mut conn);
        writer.join().unwrap();
        parsed
    }

    #[test]
    fn parses_request_line_query_and_body() {
        let r = parse_raw(
            "POST /v1/attempt?trainee=ada%20b&x=1 HTTP/1.1\r\ncontent-length: 4\r\n\r\nbody",
        )
        .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/v1/attempt");
        assert_eq!(r.param("trainee"), Some("ada b"));
        assert_eq!(r.param("x"), Some("1"));
        assert_eq!(r.param("missing"), None);
        assert_eq!(r.body, b"body");
    }

    #[test]
    fn rejects_oversized_bodies_and_bad_lengths() {
        let huge = format!("POST /x HTTP/1.1\r\ncontent-length: {}\r\n\r\n", 2 << 20);
        assert!(parse_raw(&huge).unwrap_err().contains("exceeds limit"));
        let bad = "POST /x HTTP/1.1\r\ncontent-length: nope\r\n\r\n";
        assert!(parse_raw(bad).unwrap_err().contains("bad content-length"));
    }

    #[test]
    fn percent_codec_round_trips() {
        for s in ["plain", "with space", "a/b?c=d&e", "café"] {
            assert_eq!(percent_decode(&percent_encode(s)), s);
        }
    }

    #[test]
    fn responses_are_well_formed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            write_response(&mut conn, 429, "application/json", b"{\"x\":1}").unwrap();
        });
        let mut s = TcpStream::connect(addr).unwrap();
        let mut raw = String::new();
        s.read_to_string(&mut raw).unwrap();
        t.join().unwrap();
        assert!(raw.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(raw.contains("content-length: 7\r\n"));
        assert!(raw.ends_with("{\"x\":1}"));
    }
}
