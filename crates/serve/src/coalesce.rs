//! Request coalescing: identical concurrent compiles share one plan.
//!
//! Under fleet load, hundreds of trainees attempt the same challenge with
//! the same choices and row counts — compiling the same `CampaignSpec`
//! each time is pure waste. The cache is keyed on the spec's stable
//! fingerprint combined with the row count (planning is cost-based, so
//! the estimated rows are part of the plan's identity). The first arrival
//! compiles ("leader"); concurrent arrivals with the same key block on a
//! condvar and receive the leader's `Arc<CompiledCampaign>` ("followers").
//! Compile errors propagate to every waiting follower but are *not*
//! cached — a later retry re-attempts the compile.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use toreador_core::compile::CompiledCampaign;

#[derive(Debug, Default)]
struct Cell {
    /// `None` while the leader is compiling.
    outcome: Mutex<Option<Result<Arc<CompiledCampaign>, String>>>,
    ready: Condvar,
}

enum Entry {
    Building(Arc<Cell>),
    Ready(Arc<CompiledCampaign>),
}

/// How an attempt obtained its plan (for the status counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanSource {
    /// This call ran the compiler.
    Compiled,
    /// Served from the cache or coalesced onto a concurrent compile.
    Shared,
}

/// Counters for the status endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Compiles actually executed.
    pub compiled: u64,
    /// Requests served a cached or coalesced plan.
    pub shared: u64,
}

/// The single-flight compile cache. One per daemon.
#[derive(Default)]
pub struct PlanCache {
    entries: Mutex<HashMap<u64, Entry>>,
    compiled: AtomicU64,
    shared: AtomicU64,
}

impl PlanCache {
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// Get the plan for `key`, compiling via `compile` if this call is the
    /// leader. Followers block until the leader finishes.
    pub fn get_or_compile(
        &self,
        key: u64,
        compile: impl FnOnce() -> Result<CompiledCampaign, String>,
    ) -> Result<(Arc<CompiledCampaign>, PlanSource), String> {
        let cell = {
            let mut entries = self.entries.lock().expect("plan cache poisoned");
            match entries.get(&key) {
                Some(Entry::Ready(plan)) => {
                    self.shared.fetch_add(1, Ordering::Relaxed);
                    return Ok((Arc::clone(plan), PlanSource::Shared));
                }
                Some(Entry::Building(cell)) => {
                    // Follower: wait outside the map lock.
                    let cell = Arc::clone(cell);
                    drop(entries);
                    let mut outcome = cell.outcome.lock().expect("plan cell poisoned");
                    while outcome.is_none() {
                        outcome = cell.ready.wait(outcome).expect("plan cell poisoned");
                    }
                    self.shared.fetch_add(1, Ordering::Relaxed);
                    return outcome
                        .clone()
                        .expect("loop exits on Some")
                        .map(|plan| (plan, PlanSource::Shared));
                }
                None => {
                    let cell = Arc::new(Cell::default());
                    entries.insert(key, Entry::Building(Arc::clone(&cell)));
                    cell
                }
            }
        };

        // Leader: compile with no lock held.
        let result = compile().map(Arc::new);
        {
            let mut entries = self.entries.lock().expect("plan cache poisoned");
            match &result {
                Ok(plan) => {
                    entries.insert(key, Entry::Ready(Arc::clone(plan)));
                }
                Err(_) => {
                    // Errors are not cached: drop the entry so a retry
                    // gets a fresh leader.
                    entries.remove(&key);
                }
            }
        }
        let mut outcome = cell.outcome.lock().expect("plan cell poisoned");
        *outcome = Some(result.clone());
        cell.ready.notify_all();
        drop(outcome);

        self.compiled.fetch_add(1, Ordering::Relaxed);
        result.map(|plan| (plan, PlanSource::Compiled))
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> PlanStats {
        PlanStats {
            compiled: self.compiled.load(Ordering::Relaxed),
            shared: self.shared.load(Ordering::Relaxed),
        }
    }

    /// Cached plan count (tests / introspection).
    pub fn len(&self) -> usize {
        self.entries.lock().expect("plan cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The cache key for a compile: the spec fingerprint mixed with the row
/// count the plan was costed at.
pub fn plan_key(spec_fingerprint: u64, rows: usize) -> u64 {
    // Mix with FNV so (fp, rows) pairs spread; XOR alone would collide
    // fingerprints differing only in low bits with nearby row counts.
    let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ spec_fingerprint;
    for byte in (rows as u64).to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    use toreador_core::compile::Bdaas;
    use toreador_labs::prelude::*;

    fn compile_challenge(rows: usize) -> CompiledCampaign {
        let bdaas = Bdaas::new();
        let c = challenge("ecomm-revenue").unwrap();
        let spec = c.instantiate(&c.reference_vector()).unwrap();
        let scen = scenario(c.scenario_id).unwrap();
        let sample = scen.generate(1, 7);
        bdaas.compile(&spec, sample.schema(), rows).unwrap()
    }

    #[test]
    fn concurrent_identical_compiles_run_once() {
        let cache = Arc::new(PlanCache::new());
        let compiles = Arc::new(AtomicUsize::new(0));
        let key = plan_key(42, 500);
        let mut threads = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let compiles = Arc::clone(&compiles);
            threads.push(std::thread::spawn(move || {
                cache
                    .get_or_compile(key, || {
                        compiles.fetch_add(1, Ordering::SeqCst);
                        // Stretch the window so followers really coalesce.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        Ok(compile_challenge(500))
                    })
                    .unwrap()
            }));
        }
        let results: Vec<(Arc<CompiledCampaign>, PlanSource)> =
            threads.into_iter().map(|t| t.join().unwrap()).collect();
        assert_eq!(compiles.load(Ordering::SeqCst), 1, "one compile total");
        let leaders = results
            .iter()
            .filter(|(_, src)| *src == PlanSource::Compiled)
            .count();
        assert_eq!(leaders, 1);
        // Everyone got the same Arc.
        for (plan, _) in &results {
            assert!(Arc::ptr_eq(plan, &results[0].0));
        }
        let stats = cache.stats();
        assert_eq!(stats.compiled, 1);
        assert_eq!(stats.shared, 7);
    }

    #[test]
    fn distinct_keys_compile_separately() {
        let cache = PlanCache::new();
        cache
            .get_or_compile(plan_key(1, 100), || Ok(compile_challenge(100)))
            .unwrap();
        cache
            .get_or_compile(plan_key(1, 200), || Ok(compile_challenge(200)))
            .unwrap();
        assert_eq!(cache.stats().compiled, 2);
        assert_eq!(cache.len(), 2);
        assert_ne!(plan_key(1, 100), plan_key(1, 200));
        assert_ne!(plan_key(1, 100), plan_key(2, 100));
    }

    #[test]
    fn errors_propagate_but_are_not_cached() {
        let cache = PlanCache::new();
        let key = plan_key(9, 50);
        let err = cache
            .get_or_compile(key, || Err("inconsistent spec".to_owned()))
            .unwrap_err();
        assert!(err.contains("inconsistent"));
        assert_eq!(cache.len(), 0, "failure left no entry");
        // A retry becomes a fresh leader and succeeds.
        let (_, src) = cache
            .get_or_compile(key, || Ok(compile_challenge(50)))
            .unwrap();
        assert_eq!(src, PlanSource::Compiled);
        assert_eq!(cache.len(), 1);
    }
}
