//! Admission control: a fair FIFO gate in front of the shared workers.
//!
//! The service runs at most `max_inflight` attempts at once; beyond that,
//! arrivals wait in a bounded ticket queue and are admitted strictly in
//! arrival order (no barging: a releasing permit wakes the *head* ticket,
//! not whichever thread the scheduler favours). A full queue rejects
//! immediately with [`Rejection::Overloaded`] — the classified 503 the
//! fleet driver counts — instead of letting latency grow without bound.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why the gate refused an arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// Queue full: the service is saturated.
    Overloaded,
    /// The gate is closed for drain; no new work is admitted.
    ShuttingDown,
    /// The arrival waited past its deadline without reaching the head.
    TimedOut,
}

#[derive(Debug, Default)]
struct GateState {
    inflight: usize,
    /// Tickets of waiting arrivals, head = next admitted.
    queue: VecDeque<u64>,
    next_ticket: u64,
    closed: bool,
}

/// Counters the status endpoint reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GateStats {
    pub inflight: usize,
    pub queued: usize,
    pub admitted: u64,
    pub rejected_overloaded: u64,
    /// Highest queue depth observed.
    pub peak_queued: usize,
}

/// The admission gate. One per daemon.
#[derive(Debug)]
pub struct Gate {
    max_inflight: usize,
    max_queue: usize,
    state: Mutex<GateState>,
    turnstile: Condvar,
    admitted: AtomicU64,
    rejected_overloaded: AtomicU64,
    peak_queued: AtomicU64,
}

impl Gate {
    /// A gate admitting `max_inflight` concurrent holders with room for
    /// `max_queue` waiters behind them (both clamped to >= 1).
    pub fn new(max_inflight: usize, max_queue: usize) -> Gate {
        Gate {
            max_inflight: max_inflight.max(1),
            max_queue: max_queue.max(1),
            state: Mutex::new(GateState::default()),
            turnstile: Condvar::new(),
            admitted: AtomicU64::new(0),
            rejected_overloaded: AtomicU64::new(0),
            peak_queued: AtomicU64::new(0),
        }
    }

    /// Wait for admission, FIFO-fair, up to `deadline`. On success the
    /// returned [`Permit`] holds one in-flight slot until dropped.
    pub fn acquire(&self, deadline: Duration) -> Result<Permit<'_>, Rejection> {
        let mut state = self.state.lock().expect("gate poisoned");
        if state.closed {
            return Err(Rejection::ShuttingDown);
        }
        // Fast path: a free slot and nobody queued ahead.
        if state.inflight < self.max_inflight && state.queue.is_empty() {
            state.inflight += 1;
            self.admitted.fetch_add(1, Ordering::Relaxed);
            return Ok(Permit { gate: self });
        }
        if state.queue.len() >= self.max_queue {
            self.rejected_overloaded.fetch_add(1, Ordering::Relaxed);
            return Err(Rejection::Overloaded);
        }
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        state.queue.push_back(ticket);
        self.peak_queued
            .fetch_max(state.queue.len() as u64, Ordering::Relaxed);

        let started = std::time::Instant::now();
        loop {
            let at_head = state.queue.front() == Some(&ticket);
            if state.closed {
                state.queue.retain(|&t| t != ticket);
                // Wake the others so they observe the closure too.
                self.turnstile.notify_all();
                return Err(Rejection::ShuttingDown);
            }
            if at_head && state.inflight < self.max_inflight {
                state.queue.pop_front();
                state.inflight += 1;
                self.admitted.fetch_add(1, Ordering::Relaxed);
                // The next waiter may also fit (multiple releases can land
                // between wakes); pass the baton.
                self.turnstile.notify_all();
                return Ok(Permit { gate: self });
            }
            let waited = started.elapsed();
            if waited >= deadline {
                state.queue.retain(|&t| t != ticket);
                self.turnstile.notify_all();
                return Err(Rejection::TimedOut);
            }
            let (next, timeout) = self
                .turnstile
                .wait_timeout(state, deadline - waited)
                .expect("gate poisoned");
            state = next;
            if timeout.timed_out() {
                state.queue.retain(|&t| t != ticket);
                self.turnstile.notify_all();
                return Err(Rejection::TimedOut);
            }
        }
    }

    /// Close the gate: current holders finish, every waiter and every
    /// future arrival gets [`Rejection::ShuttingDown`].
    pub fn close(&self) {
        let mut state = self.state.lock().expect("gate poisoned");
        state.closed = true;
        drop(state);
        self.turnstile.notify_all();
    }

    /// Block until no permit is held (the drain barrier), checking every
    /// few milliseconds.
    pub fn wait_idle(&self) {
        loop {
            {
                let state = self.state.lock().expect("gate poisoned");
                if state.inflight == 0 {
                    return;
                }
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> GateStats {
        let state = self.state.lock().expect("gate poisoned");
        GateStats {
            inflight: state.inflight,
            queued: state.queue.len(),
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected_overloaded: self.rejected_overloaded.load(Ordering::Relaxed),
            peak_queued: self.peak_queued.load(Ordering::Relaxed) as usize,
        }
    }
}

/// One in-flight slot; releasing wakes the queue head.
#[derive(Debug)]
pub struct Permit<'a> {
    gate: &'a Gate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut state = self.gate.state.lock().expect("gate poisoned");
        state.inflight = state.inflight.saturating_sub(1);
        drop(state);
        self.gate.turnstile.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    const LONG: Duration = Duration::from_secs(5);

    #[test]
    fn admits_up_to_capacity_then_queues() {
        let gate = Gate::new(2, 4);
        let a = gate.acquire(LONG).unwrap();
        let _b = gate.acquire(LONG).unwrap();
        assert_eq!(gate.stats().inflight, 2);
        // Third waits; with a tiny deadline it times out.
        assert_eq!(
            gate.acquire(Duration::from_millis(10)).unwrap_err(),
            Rejection::TimedOut
        );
        drop(a);
        let _c = gate.acquire(LONG).unwrap();
        assert_eq!(gate.stats().admitted, 3);
    }

    #[test]
    fn full_queue_rejects_as_overloaded() {
        let gate = Arc::new(Gate::new(1, 1));
        let _holder = gate.acquire(LONG).unwrap();
        // Park one waiter to fill the queue.
        let g = Arc::clone(&gate);
        let waiter = std::thread::spawn(move || g.acquire(LONG).map(|_| ()).unwrap_err());
        while gate.stats().queued == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(
            gate.acquire(Duration::from_millis(5)).unwrap_err(),
            Rejection::Overloaded
        );
        assert_eq!(gate.stats().rejected_overloaded, 1);
        gate.close();
        assert_eq!(waiter.join().unwrap(), Rejection::ShuttingDown);
    }

    #[test]
    fn admission_is_fifo_fair() {
        let gate = Arc::new(Gate::new(1, 16));
        let order = Arc::new(Mutex::new(Vec::new()));
        let holder = gate.acquire(LONG).unwrap();
        let mut threads = Vec::new();
        for i in 0..6 {
            let g = Arc::clone(&gate);
            let o = Arc::clone(&order);
            threads.push(std::thread::spawn(move || {
                let permit = g.acquire(LONG).unwrap();
                o.lock().unwrap().push(i);
                drop(permit);
            }));
            // Serialise arrivals so the expected order is deterministic.
            while gate.stats().queued != i + 1 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        drop(holder);
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn close_drains_and_refuses_new_arrivals() {
        let gate = Arc::new(Gate::new(2, 8));
        let running = Arc::new(AtomicUsize::new(0));
        let mut threads = Vec::new();
        for _ in 0..2 {
            let g = Arc::clone(&gate);
            let r = Arc::clone(&running);
            threads.push(std::thread::spawn(move || {
                let permit = g.acquire(LONG).unwrap();
                r.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(30));
                drop(permit);
            }));
        }
        while running.load(Ordering::SeqCst) < 2 {
            std::thread::sleep(Duration::from_millis(1));
        }
        gate.close();
        assert_eq!(gate.acquire(LONG).unwrap_err(), Rejection::ShuttingDown);
        gate.wait_idle();
        assert_eq!(gate.stats().inflight, 0);
        for t in threads {
            t.join().unwrap();
        }
    }
}
