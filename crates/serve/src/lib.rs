//! # toreador-serve
//!
//! The multi-tenant Labs **service**: the paper's TOREADOR Labs were
//! offered "using a Platform-as-a-Service solution" with free-limited
//! access for cohorts of trainees — not a local CLI. This crate is that
//! serving layer over the existing stack:
//!
//! * [`server`] — the `toreador serve` daemon: a long-running HTTP/JSON
//!   process over the WAL-backed [`SessionStore`], with graceful
//!   SIGINT/SIGTERM drain (in-flight attempts cancel through their
//!   `RunControl`s, the store is checkpointed, the process exits 0);
//! * [`hub`] — multi-tenant session state: per-tenant quota metering with
//!   reservation accounting (concurrent attempts cannot oversubscribe the
//!   last run), per-tenant in-flight caps, durable commit of every
//!   attempt before its reply;
//! * [`admission`] — the service-wide fair FIFO gate: bounded in-flight
//!   attempts, bounded queue, classified `overloaded` rejections beyond;
//! * [`coalesce`] — single-flight compile coalescing: identical
//!   concurrent campaign compiles share one `CompiledCampaign`;
//! * [`proto`] / [`http`] / [`client`] — the JSON wire protocol, the
//!   minimal HTTP/1.1 framing it rides on (the workspace vendors no HTTP
//!   stack), and the blocking client;
//! * [`fleet`] — the `toreador fleet` load driver: thousands of simulated
//!   trainees, per-class latency percentiles, rejection classification,
//!   lost-record verification, and a ramp mode that locates the
//!   saturation knee;
//! * [`signal`] — SIGINT/SIGTERM handling without a signal crate.
//!
//! [`SessionStore`]: toreador_labs::session::SessionStore

pub mod admission;
pub mod client;
pub mod coalesce;
pub mod fleet;
pub mod http;
pub mod hub;
pub mod proto;
pub mod server;
pub mod signal;

/// Convenient glob import of the commonly used types.
pub mod prelude {
    pub use crate::admission::{Gate, GateStats, Rejection};
    pub use crate::client::{Client, ClientError, ClientResult};
    pub use crate::coalesce::{plan_key, PlanCache, PlanSource};
    pub use crate::fleet::{run_fleet, FleetConfig, FleetReport};
    pub use crate::hub::{HubConfig, ServeError, ServeResult, SessionHub};
    pub use crate::proto::{
        AttemptReply, AttemptRequest, CompareReply, ErrorBody, ErrorClass, HistoryReply,
        OpenSessionRequest, SessionInfo, StatusReply,
    };
    pub use crate::server::{ServeSummary, Server, ServerConfig};
}
