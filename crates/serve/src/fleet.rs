//! `toreador fleet`: a load driver simulating concurrent trainee cohorts.
//!
//! Worker threads pull trainee identities off a shared counter; each
//! trainee opens a session, submits its attempts (cycling through a small
//! set of choice vectors so the plan cache sees both hits and misses),
//! and finally verifies its own history against what the service
//! acknowledged — an acknowledged run missing from history counts as
//! **lost**, the one number that must be zero. Latencies are recorded
//! per operation class; rejections are tallied by [`ErrorClass`].
//!
//! With `ramp` the driver runs the same cohort at increasing concurrency
//! levels and reports where throughput stops scaling — the saturation
//! knee E13 records.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::client::Client;
use crate::proto::{AttemptRequest, ErrorClass, OpenSessionRequest};

/// Fleet run parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Daemon address (`host:port`).
    pub addr: String,
    /// Simulated trainees.
    pub trainees: usize,
    /// Attempts each trainee submits.
    pub attempts: usize,
    /// Driver worker threads (concurrent trainees).
    pub workers: usize,
    /// Rows per attempt.
    pub rows: usize,
    /// Challenge every trainee attacks.
    pub challenge: String,
    /// Concurrency levels for a ramp search; empty = single fixed run.
    pub ramp: Vec<usize>,
    /// Fail the run if attempt p99 exceeds this bound (0 = unchecked).
    pub max_p99_ms: u64,
    /// Per-request socket timeout.
    pub timeout: Duration,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            addr: "127.0.0.1:7411".to_owned(),
            trainees: 1000,
            attempts: 2,
            workers: 32,
            rows: 200,
            challenge: "ecomm-revenue".to_owned(),
            ramp: Vec::new(),
            max_p99_ms: 0,
            timeout: Duration::from_secs(120),
        }
    }
}

impl FleetConfig {
    /// The CI-sized quick profile.
    pub fn quick(mut self) -> FleetConfig {
        self.trainees = 30;
        self.attempts = 1;
        self.workers = 6;
        self.rows = 160;
        self
    }
}

/// Latency digest of one operation class.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencyDigest {
    pub count: u64,
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub max_ms: f64,
}

/// The outcome of one fleet run.
#[derive(Debug, Clone, Default)]
pub struct FleetReport {
    pub trainees: usize,
    pub workers: usize,
    /// Attempts acknowledged with a 2xx.
    pub ok: u64,
    /// Classified rejections.
    pub rejected_quota: u64,
    pub rejected_overloaded: u64,
    pub rejected_busy: u64,
    /// Transport failures, malformed responses, unexpected classes —
    /// must be zero on a healthy run.
    pub protocol_errors: u64,
    /// Acknowledged runs missing from post-run history — must be zero.
    pub lost_records: u64,
    pub open_latency: LatencyDigest,
    pub attempt_latency: LatencyDigest,
    pub wall: Duration,
    /// Acknowledged attempts per second of wall clock.
    pub throughput: f64,
    /// Per-level `(workers, throughput)` when ramping.
    pub ramp_points: Vec<(usize, f64)>,
    /// The ramp level after which throughput gains fell under 10%.
    pub saturation_workers: Option<usize>,
}

impl FleetReport {
    /// Whether the run satisfies the hard checks (no protocol errors, no
    /// lost records, p99 under the bound when one is set).
    pub fn healthy(&self, max_p99_ms: u64) -> bool {
        self.protocol_errors == 0
            && self.lost_records == 0
            && (max_p99_ms == 0 || self.attempt_latency.p99_ms <= max_p99_ms as f64)
    }

    /// Render the human summary the CLI prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fleet: {} trainees x attempts via {} workers in {:.2}s\n",
            self.trainees,
            self.workers,
            self.wall.as_secs_f64()
        ));
        out.push_str(&format!(
            "  attempts  ok {}  quota {}  overloaded {}  busy {}  protocol-errors {}\n",
            self.ok,
            self.rejected_quota,
            self.rejected_overloaded,
            self.rejected_busy,
            self.protocol_errors
        ));
        out.push_str(&format!(
            "  latency   open p50 {:.1}ms p99 {:.1}ms | attempt p50 {:.1}ms p99 {:.1}ms max {:.1}ms\n",
            self.open_latency.p50_ms,
            self.open_latency.p99_ms,
            self.attempt_latency.p50_ms,
            self.attempt_latency.p99_ms,
            self.attempt_latency.max_ms
        ));
        out.push_str(&format!(
            "  integrity lost-records {}  throughput {:.1} attempts/s\n",
            self.lost_records, self.throughput
        ));
        if !self.ramp_points.is_empty() {
            out.push_str("  ramp      ");
            for (w, tput) in &self.ramp_points {
                out.push_str(&format!("{w}w:{tput:.1}/s "));
            }
            out.push('\n');
            match self.saturation_workers {
                Some(w) => out.push_str(&format!("  saturation knee at ~{w} workers\n")),
                None => out.push_str("  no saturation knee within the ramp\n"),
            }
        }
        out
    }
}

#[derive(Default)]
struct Tally {
    ok: AtomicU64,
    quota: AtomicU64,
    overloaded: AtomicU64,
    busy: AtomicU64,
    protocol: AtomicU64,
    lost: AtomicU64,
    open_ms: Mutex<Vec<f64>>,
    attempt_ms: Mutex<Vec<f64>>,
}

/// Run the fleet against a live daemon. With `ramp` set, runs each level
/// in sequence (against distinct trainee cohorts) and locates the
/// saturation knee.
pub fn run_fleet(cfg: &FleetConfig) -> FleetReport {
    if cfg.ramp.is_empty() {
        return run_level(cfg, cfg.workers, 0);
    }
    let mut report = FleetReport::default();
    let mut points = Vec::new();
    for (i, &workers) in cfg.ramp.iter().enumerate() {
        let level = run_level(cfg, workers.max(1), i);
        points.push((workers, level.throughput));
        // The report carries the numbers of the last (highest) level.
        report = level;
    }
    // Knee: the first level whose throughput gain over the previous level
    // is below 10%.
    let mut knee = None;
    for pair in points.windows(2) {
        let (_, prev) = pair[0];
        let (w, cur) = pair[1];
        if prev > 0.0 && (cur - prev) / prev < 0.10 {
            knee = Some(w);
            break;
        }
    }
    report.ramp_points = points;
    report.saturation_workers = knee;
    report
}

/// One fixed-concurrency cohort. `cohort` namespaces the trainee ids so
/// ramp levels do not reuse quotas.
fn run_level(cfg: &FleetConfig, workers: usize, cohort: usize) -> FleetReport {
    let tally = Tally::default();
    let next = AtomicUsize::new(0);
    let started = Instant::now();

    std::thread::scope(|scope| {
        for _ in 0..workers.max(1) {
            scope.spawn(|| {
                let client = Client::new(&cfg.addr).with_timeout(cfg.timeout);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= cfg.trainees {
                        return;
                    }
                    drive_trainee(cfg, &client, &tally, cohort, i);
                }
            });
        }
    });

    let wall = started.elapsed();
    let ok = tally.ok.load(Ordering::Relaxed);
    let mut open_ms = std::mem::take(&mut *tally.open_ms.lock().expect("tally poisoned"));
    let mut attempt_ms = std::mem::take(&mut *tally.attempt_ms.lock().expect("tally poisoned"));
    FleetReport {
        trainees: cfg.trainees,
        workers,
        ok,
        rejected_quota: tally.quota.load(Ordering::Relaxed),
        rejected_overloaded: tally.overloaded.load(Ordering::Relaxed),
        rejected_busy: tally.busy.load(Ordering::Relaxed),
        protocol_errors: tally.protocol.load(Ordering::Relaxed),
        lost_records: tally.lost.load(Ordering::Relaxed),
        open_latency: digest(&mut open_ms),
        attempt_latency: digest(&mut attempt_ms),
        wall,
        throughput: ok as f64 / wall.as_secs_f64().max(1e-9),
        ramp_points: Vec::new(),
        saturation_workers: None,
    }
}

/// One trainee's whole lifecycle: open, attempts, history verification.
fn drive_trainee(cfg: &FleetConfig, client: &Client, tally: &Tally, cohort: usize, index: usize) {
    let trainee = format!("fleet-{cohort}-{index}");
    let open_started = Instant::now();
    let opened = client.open_session(&OpenSessionRequest {
        trainee: trainee.clone(),
        quota: None,
        seed: Some(1000 + index as u64),
    });
    let open_ms = open_started.elapsed().as_secs_f64() * 1e3;
    match opened {
        Ok(_) => tally.open_ms.lock().expect("tally poisoned").push(open_ms),
        Err(_) => {
            // A failed open is a protocol error: sessions are unmetered.
            tally.protocol.fetch_add(1, Ordering::Relaxed);
            return;
        }
    }

    // Cycle a few realistic designs so the plan cache coalesces some
    // attempts and compiles others.
    let designs: [&[&str]; 3] = [
        &["full", "batch"],
        &["sample", "batch"],
        &["full", "stream"],
    ];
    let mut acknowledged = Vec::new();
    for a in 0..cfg.attempts {
        let choices: Vec<String> = designs[a % designs.len()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let attempt_started = Instant::now();
        let result = client.attempt(&AttemptRequest {
            trainee: trainee.clone(),
            challenge: cfg.challenge.clone(),
            choices,
            rows: Some(cfg.rows),
        });
        let ms = attempt_started.elapsed().as_secs_f64() * 1e3;
        match result {
            Ok(reply) => {
                tally.attempt_ms.lock().expect("tally poisoned").push(ms);
                tally.ok.fetch_add(1, Ordering::Relaxed);
                acknowledged.push(reply.run_id);
            }
            Err(e) if !e.transport => match e.class {
                ErrorClass::QuotaExceeded => {
                    tally.quota.fetch_add(1, Ordering::Relaxed);
                }
                ErrorClass::Overloaded | ErrorClass::ShuttingDown => {
                    tally.overloaded.fetch_add(1, Ordering::Relaxed);
                }
                ErrorClass::Busy => {
                    tally.busy.fetch_add(1, Ordering::Relaxed);
                }
                _ => {
                    tally.protocol.fetch_add(1, Ordering::Relaxed);
                }
            },
            Err(_) => {
                tally.protocol.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    // Verify: every acknowledged run must be in the service's history.
    if !acknowledged.is_empty() {
        match client.history(&trainee) {
            Ok(h) => {
                for run_id in &acknowledged {
                    let found = h.runs.iter().any(|r| r.run_id == *run_id);
                    if !found {
                        tally.lost.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Err(_) => {
                tally.protocol.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Percentiles over a latency sample (nearest-rank).
fn digest(samples: &mut [f64]) -> LatencyDigest {
    if samples.is_empty() {
        return LatencyDigest::default();
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let rank = |p: f64| {
        let idx = ((p * samples.len() as f64).ceil() as usize).clamp(1, samples.len()) - 1;
        samples[idx]
    };
    LatencyDigest {
        count: samples.len() as u64,
        p50_ms: rank(0.50),
        p99_ms: rank(0.99),
        max_ms: *samples.last().expect("non-empty"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_reports_nearest_rank_percentiles() {
        let mut samples: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        let d = digest(&mut samples);
        assert_eq!(d.count, 100);
        assert_eq!(d.p50_ms, 50.0);
        assert_eq!(d.p99_ms, 99.0);
        assert_eq!(d.max_ms, 100.0);
        assert_eq!(digest(&mut Vec::new()).count, 0);
    }

    #[test]
    fn report_health_checks_the_hard_invariants() {
        let mut r = FleetReport::default();
        assert!(r.healthy(0));
        r.protocol_errors = 1;
        assert!(!r.healthy(0));
        r.protocol_errors = 0;
        r.lost_records = 2;
        assert!(!r.healthy(0));
        r.lost_records = 0;
        r.attempt_latency.p99_ms = 500.0;
        assert!(r.healthy(0), "0 disables the bound");
        assert!(!r.healthy(100));
        assert!(r.healthy(1000));
        // The render names the key numbers.
        let text = r.render();
        assert!(text.contains("protocol-errors 0"));
        assert!(text.contains("lost-records 0"));
    }

    /// A miniature end-to-end fleet against a real in-process daemon.
    #[test]
    fn quick_fleet_against_live_daemon() {
        let _serial = crate::signal::test_serial_lock();
        crate::signal::reset_for_tests();
        let dir = std::env::temp_dir().join(format!("toreador-fleet-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let server = crate::server::Server::bind(
            &dir,
            crate::server::ServerConfig {
                addr: "127.0.0.1:0".to_owned(),
                max_inflight: 2,
                ..crate::server::ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let daemon = std::thread::spawn(move || server.run());

        let report = run_fleet(&FleetConfig {
            addr: addr.clone(),
            trainees: 6,
            attempts: 2,
            workers: 3,
            rows: 120,
            ..FleetConfig::default()
        });
        assert_eq!(report.ok, 12, "{}", report.render());
        assert!(report.healthy(0), "{}", report.render());
        assert!(report.attempt_latency.count == 12);
        assert!(report.throughput > 0.0);

        Client::new(&addr).shutdown().unwrap();
        daemon.join().unwrap().unwrap();
        crate::signal::reset_for_tests();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
