//! The `toreador serve` daemon: accept loop, routing, graceful shutdown.
//!
//! Connections are one request each (`Connection: close`), handled on a
//! plain thread apiece — attempts spend their time inside the engine, so
//! thread-per-request is bounded by the admission gate, not the socket
//! count. The accept loop polls nonblockingly so a SIGINT/SIGTERM (or
//! `POST /v1/shutdown`) can break it; shutdown then closes the gate,
//! cancels in-flight attempts through their [`RunControl`]s, waits for
//! the drain, checkpoints the store, and returns cleanly.
//!
//! [`RunControl`]: toreador_dataflow::resilience::RunControl

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::admission::{Gate, Rejection};
use crate::http::{read_request, write_response, Request};
use crate::hub::{HubConfig, ServeError, SessionHub};
use crate::proto::{AttemptRequest, ErrorClass, OpenSessionRequest, StatusReply};
use crate::signal;

/// Daemon tuning.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// `host:port`; port 0 lets the OS pick (the bound address is printed).
    pub addr: String,
    /// Service-wide concurrent attempt cap.
    pub max_inflight: usize,
    /// Admission queue depth behind the cap.
    pub max_queue: usize,
    /// How long an attempt may wait in the queue before a timeout
    /// rejection.
    pub queue_wait: Duration,
    /// Per-tenant limits and defaults.
    pub hub: HubConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7411".to_owned(),
            max_inflight: 4,
            max_queue: 64,
            queue_wait: Duration::from_secs(30),
            hub: HubConfig::default(),
        }
    }
}

/// Summary the daemon prints (and returns) after a clean shutdown.
#[derive(Debug, Clone, Copy)]
pub struct ServeSummary {
    pub requests: u64,
    pub completed: u64,
    pub cancelled_on_drain: usize,
}

/// The daemon. `bind` + `run` is the whole lifecycle.
pub struct Server {
    listener: TcpListener,
    hub: Arc<SessionHub>,
    gate: Arc<Gate>,
    cfg: ServerConfig,
    active_connections: Arc<AtomicUsize>,
    requests: Arc<std::sync::atomic::AtomicU64>,
}

impl Server {
    /// Open the store (taking its directory lock — a second daemon on the
    /// same dir fails here with the holder's pid) and bind the socket.
    pub fn bind(store_dir: &Path, cfg: ServerConfig) -> Result<Server, String> {
        let hub = SessionHub::open(store_dir, cfg.hub.clone()).map_err(|e| e.message)?;
        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| format!("cannot bind {}: {e}", cfg.addr))?;
        Ok(Server {
            listener,
            hub: Arc::new(hub),
            gate: Arc::new(Gate::new(cfg.max_inflight, cfg.max_queue)),
            cfg,
            active_connections: Arc::new(AtomicUsize::new(0)),
            requests: Arc::new(std::sync::atomic::AtomicU64::new(0)),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> String {
        self.listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| self.cfg.addr.clone())
    }

    /// The hub (tests drive it directly).
    pub fn hub(&self) -> &Arc<SessionHub> {
        &self.hub
    }

    /// Serve until a shutdown signal arrives, then drain and return the
    /// summary. Prints `listening on ADDR` to stdout once ready (scripts
    /// block on that line).
    pub fn run(self) -> Result<ServeSummary, String> {
        signal::install_handlers();
        self.listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking: {e}"))?;
        println!("listening on {}", self.local_addr());
        std::io::stdout().flush().ok();

        loop {
            if signal::shutdown_requested() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.requests.fetch_add(1, Ordering::Relaxed);
                    let hub = Arc::clone(&self.hub);
                    let gate = Arc::clone(&self.gate);
                    let active = Arc::clone(&self.active_connections);
                    let queue_wait = self.cfg.queue_wait;
                    active.fetch_add(1, Ordering::SeqCst);
                    std::thread::spawn(move || {
                        handle_connection(stream, &hub, &gate, queue_wait);
                        active.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(format!("accept failed: {e}")),
            }
        }

        // Drain: refuse new admissions, cancel executing attempts, wait
        // for both the attempts and the connection threads, then fold the
        // WAL into a snapshot.
        self.gate.close();
        let cancelled = self.hub.cancel_all("daemon draining for shutdown");
        self.hub.wait_attempts_done();
        self.gate.wait_idle();
        while self.active_connections.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
        self.hub.checkpoint_store().map_err(|e| e.message)?;
        let counters = self.hub.counters();
        Ok(ServeSummary {
            requests: self.requests.load(Ordering::Relaxed),
            completed: counters.completed,
            cancelled_on_drain: cancelled,
        })
    }
}

/// Read one request, route it, write one response.
fn handle_connection(mut stream: TcpStream, hub: &SessionHub, gate: &Gate, queue_wait: Duration) {
    stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
    let request = match read_request(&mut stream) {
        Ok(r) => r,
        Err(m) => {
            respond_error(&mut stream, &ServeError::new(ErrorClass::BadRequest, m));
            return;
        }
    };
    match route(&request, hub, gate, queue_wait) {
        Ok(body) => {
            let json = serde_json::to_string(&body).unwrap_or_else(|_| "{}".to_owned());
            write_response(&mut stream, 200, "application/json", json.as_bytes()).ok();
        }
        Err(e) => respond_error(&mut stream, &e),
    }
}

fn respond_error(stream: &mut TcpStream, e: &ServeError) {
    let json = serde_json::to_string(&e.body()).unwrap_or_else(|_| "{}".to_owned());
    write_response(
        stream,
        e.class.http_status(),
        "application/json",
        json.as_bytes(),
    )
    .ok();
}

/// Dispatch one request to the hub.
fn route(
    req: &Request,
    hub: &SessionHub,
    gate: &Gate,
    queue_wait: Duration,
) -> Result<serde_json::Value, ServeError> {
    let endpoint = (req.method.as_str(), req.path.as_str());
    match endpoint {
        ("GET", "/healthz") => Ok(flag_object("ok")),
        ("POST", "/v1/session/open") => {
            let body: OpenSessionRequest = parse_body(&req.body)?;
            to_json(hub.open_session(&body)?)
        }
        ("POST", "/v1/attempt") => {
            let body: AttemptRequest = parse_body(&req.body)?;
            // Admission first: the gate is the service-wide cap; the hub
            // then enforces the per-tenant limits.
            let _permit = gate.acquire(queue_wait).map_err(|r| match r {
                Rejection::Overloaded => ServeError::new(
                    ErrorClass::Overloaded,
                    "admission queue full, retry with backoff",
                ),
                Rejection::TimedOut => {
                    ServeError::new(ErrorClass::Overloaded, "timed out waiting for admission")
                }
                Rejection::ShuttingDown => {
                    ServeError::new(ErrorClass::ShuttingDown, "daemon is draining")
                }
            })?;
            to_json(hub.attempt(&body)?)
        }
        ("GET", "/v1/status") => {
            let g = gate.stats();
            let c = hub.counters();
            to_json(StatusReply {
                inflight: g.inflight,
                queued: g.queued,
                admitted: g.admitted,
                completed: c.completed,
                rejected_quota: c.rejected_quota,
                rejected_overloaded: g.rejected_overloaded,
                rejected_busy: c.rejected_busy,
                plans_compiled: c.plans.compiled,
                plans_shared: c.plans.shared,
                tenants: c.tenants,
                draining: signal::shutdown_requested(),
            })
        }
        ("GET", "/v1/history") => {
            let trainee = required_param(req, "trainee")?;
            to_json(hub.history(trainee)?)
        }
        ("GET", "/v1/run") => {
            let trainee = required_param(req, "trainee")?;
            let run = parse_param(req, "run")?;
            hub.run_record(trainee, run)
        }
        ("GET", "/v1/compare") => {
            let trainee = required_param(req, "trainee")?;
            let a = parse_param(req, "a")?;
            let b = parse_param(req, "b")?;
            to_json(hub.compare(trainee, a, b)?)
        }
        ("POST", "/v1/shutdown") => {
            signal::request_shutdown();
            Ok(flag_object("draining"))
        }
        (method, path) => Err(ServeError::new(
            ErrorClass::Unknown,
            format!("no endpoint {method} {path}"),
        )),
    }
}

/// `{"<name>": true}` without a json! macro (the vendored stub has none).
fn flag_object(name: &str) -> serde_json::Value {
    let mut map = serde_json::Map::new();
    map.insert(name.to_owned(), serde_json::Value::Bool(true));
    serde_json::Value::Object(map)
}

fn parse_body<T: serde::de::DeserializeOwned>(body: &[u8]) -> Result<T, ServeError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ServeError::new(ErrorClass::BadRequest, "request body is not utf-8"))?;
    serde_json::from_str(text)
        .map_err(|e| ServeError::new(ErrorClass::BadRequest, format!("bad request body: {e}")))
}

fn to_json<T: serde::Serialize>(value: T) -> Result<serde_json::Value, ServeError> {
    serde_json::to_value(&value).map_err(|e| ServeError::new(ErrorClass::Internal, e.to_string()))
}

fn required_param<'r>(req: &'r Request, name: &str) -> Result<&'r str, ServeError> {
    req.param(name).ok_or_else(|| {
        ServeError::new(
            ErrorClass::BadRequest,
            format!("missing query parameter {name:?}"),
        )
    })
}

fn parse_param(req: &Request, name: &str) -> Result<u64, ServeError> {
    required_param(req, name)?.parse::<u64>().map_err(|_| {
        ServeError::new(
            ErrorClass::BadRequest,
            format!("query parameter {name:?} must be an integer"),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::proto::ErrorClass;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("toreador-server-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Spin a daemon on an OS-assigned port; returns its address and the
    /// thread running it.
    fn spawn_server(
        dir: &Path,
        cfg: ServerConfig,
    ) -> (
        String,
        std::thread::JoinHandle<Result<ServeSummary, String>>,
    ) {
        let server = Server::bind(dir, cfg).unwrap();
        let addr = server.local_addr();
        let t = std::thread::spawn(move || server.run());
        (addr, t)
    }

    #[test]
    fn end_to_end_over_a_real_socket() {
        let _serial = signal::test_serial_lock();
        signal::reset_for_tests();
        let dir = tmp_dir("e2e");
        let (addr, server) = spawn_server(
            &dir,
            ServerConfig {
                addr: "127.0.0.1:0".to_owned(),
                ..ServerConfig::default()
            },
        );
        let client = Client::new(&addr);
        assert!(client.healthz().unwrap());

        let info = client
            .open_session(&OpenSessionRequest {
                trainee: "ada".into(),
                quota: None,
                seed: None,
            })
            .unwrap();
        assert_eq!(info.trainee, "ada");
        assert!(!info.resumed);

        let reply = client
            .attempt(&AttemptRequest {
                trainee: "ada".into(),
                challenge: "ecomm-revenue".into(),
                choices: vec!["full".into(), "batch".into()],
                rows: Some(250),
            })
            .unwrap();
        assert_eq!(reply.run_id, 1);
        assert!(reply.score > 0.0);

        let reply2 = client
            .attempt(&AttemptRequest {
                trainee: "ada".into(),
                challenge: "ecomm-revenue".into(),
                choices: vec!["sample".into(), "batch".into()],
                rows: Some(250),
            })
            .unwrap();
        assert_eq!(reply2.run_id, 2);

        let h = client.history("ada").unwrap();
        assert_eq!(h.runs.len(), 2);
        let cmp = client.compare("ada", 1, 2).unwrap();
        assert_eq!(cmp.choice_diffs.len(), 1);
        let record = client.run_record("ada", 1).unwrap();
        let record_run_id = record
            .as_object()
            .and_then(|o| o.get("run_id"))
            .and_then(|v| v.as_u64());
        assert_eq!(record_run_id, Some(1));
        let status = client.status().unwrap();
        assert_eq!(status.completed, 2);
        assert!(status.plans_compiled >= 2);

        // Unknown entities are classified, not 500s.
        let err = client.history("ghost").unwrap_err();
        assert_eq!(err.class, ErrorClass::Unknown);
        let err = client
            .attempt(&AttemptRequest {
                trainee: "ada".into(),
                challenge: "ecomm-revenue".into(),
                choices: vec!["bogus".into()],
                rows: Some(50),
            })
            .unwrap_err();
        assert_eq!(err.class, ErrorClass::BadRequest);

        // Clean shutdown over the wire.
        client.shutdown().unwrap();
        let summary = server.join().unwrap().unwrap();
        assert_eq!(summary.completed, 2);
        signal::reset_for_tests();
        // The store reopens intact (the daemon released its lock).
        let store = toreador_labs::prelude::SessionStore::open(&dir).unwrap();
        assert_eq!(store.trainee("ada").unwrap().runs.len(), 2);
        assert!(store.stats().snapshot_lsn > 0, "shutdown checkpointed");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn serve_refuses_a_locked_store() {
        let _serial = signal::test_serial_lock();
        signal::reset_for_tests();
        let dir = tmp_dir("locked");
        let _holder = toreador_labs::prelude::SessionStore::open(&dir).unwrap();
        let err = Server::bind(
            &dir,
            ServerConfig {
                addr: "127.0.0.1:0".to_owned(),
                ..ServerConfig::default()
            },
        )
        .map(|_| ())
        .unwrap_err();
        assert!(err.contains("already open by pid"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
