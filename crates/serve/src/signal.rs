//! SIGINT/SIGTERM handling for the daemon, without a signal crate.
//!
//! The handler just flips a global flag; the accept loop polls it between
//! accepts and starts the drain. Installing twice is harmless (the second
//! install is a no-op on the same handler).

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the first SIGINT or SIGTERM.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// SIGINT and SIGTERM numbers (POSIX-stable on the platforms we build).
pub const SIGINT: i32 = 2;
/// See [`SIGINT`].
pub const SIGTERM: i32 = 15;

extern "C" fn on_signal(_sig: i32) {
    // Async-signal-safe: a relaxed store and nothing else.
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// Install the shutdown handler for SIGINT and SIGTERM.
#[cfg(unix)]
pub fn install_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    // Safety: registering an async-signal-safe handler (atomic store only).
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

/// No-op off unix; `/v1/shutdown` remains the way to stop the daemon.
#[cfg(not(unix))]
pub fn install_handlers() {}

/// Whether a shutdown signal has arrived.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

/// Request shutdown from inside the process (the `/v1/shutdown` endpoint
/// funnels through the same flag the signals set).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// Test-only: reset the flag so one process can run several serve
/// lifecycles.
#[doc(hidden)]
pub fn reset_for_tests() {
    SHUTDOWN.store(false, Ordering::Relaxed);
}

/// Test-only: serialise tests that touch the process-global shutdown flag
/// (cargo runs tests of one binary concurrently).
#[doc(hidden)]
pub fn test_serial_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Send `sig` to `pid`. Exposed for integration tests that need to kill a
/// real daemon process with a real signal.
#[doc(hidden)]
#[cfg(unix)]
pub fn send_signal(pid: u32, sig: i32) -> bool {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    // Safety: plain syscall wrapper, no memory involved.
    unsafe { kill(pid as i32, sig) == 0 }
}

#[doc(hidden)]
#[cfg(not(unix))]
pub fn send_signal(_pid: u32, _sig: i32) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_flips_and_resets() {
        let _serial = test_serial_lock();
        reset_for_tests();
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
        reset_for_tests();
        assert!(!shutdown_requested());
    }

    #[cfg(unix)]
    #[test]
    fn real_signal_reaches_the_handler() {
        let _serial = test_serial_lock();
        install_handlers();
        reset_for_tests();
        assert!(send_signal(std::process::id(), SIGTERM));
        // Delivery is async; give the kernel a moment.
        for _ in 0..100 {
            if shutdown_requested() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert!(shutdown_requested());
        reset_for_tests();
    }
}
