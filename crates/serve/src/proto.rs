//! The wire protocol: JSON request/response bodies and error classes.
//!
//! Every endpoint speaks JSON over HTTP/1.1. Failures carry a machine
//! [`ErrorClass`] so a load driver (or a trainee's tooling) can tell a
//! quota rejection from a saturated service from a bug — the distinction
//! the paper's PaaS free tier needs to meter fairly.

use serde::{Deserialize, Serialize};

use toreador_labs::prelude::Quota;

/// Machine-readable failure classes. The HTTP status follows the class
/// (see [`ErrorClass::http_status`]), but clients should switch on the
/// class, not the status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// The tenant's metered quota (runs / cost) is exhausted. Permanent
    /// until the quota changes: retrying does not help.
    QuotaExceeded,
    /// The service-wide admission queue is full. Transient: back off and
    /// retry.
    Overloaded,
    /// This tenant already has its maximum attempts in flight. Transient:
    /// finish or cancel one, or back off.
    Busy,
    /// The request was malformed (bad JSON, missing field, bad choices).
    BadRequest,
    /// The named entity (trainee, run, challenge) does not exist.
    Unknown,
    /// The daemon is draining for shutdown and admits no new work.
    ShuttingDown,
    /// The campaign compiled or executed into an error, or the store
    /// failed — the service-side catch-all.
    Internal,
}

impl ErrorClass {
    /// The stable wire name (snake_case; the vendored serde derive has no
    /// `rename_all`, so the mapping is spelled out).
    pub fn wire_name(self) -> &'static str {
        match self {
            ErrorClass::QuotaExceeded => "quota_exceeded",
            ErrorClass::Overloaded => "overloaded",
            ErrorClass::Busy => "busy",
            ErrorClass::BadRequest => "bad_request",
            ErrorClass::Unknown => "unknown",
            ErrorClass::ShuttingDown => "shutting_down",
            ErrorClass::Internal => "internal",
        }
    }

    fn from_wire_name(name: &str) -> Option<ErrorClass> {
        Some(match name {
            "quota_exceeded" => ErrorClass::QuotaExceeded,
            "overloaded" => ErrorClass::Overloaded,
            "busy" => ErrorClass::Busy,
            "bad_request" => ErrorClass::BadRequest,
            "unknown" => ErrorClass::Unknown,
            "shutting_down" => ErrorClass::ShuttingDown,
            "internal" => ErrorClass::Internal,
            _ => return None,
        })
    }

    /// The HTTP status this class travels under.
    pub fn http_status(self) -> u16 {
        match self {
            ErrorClass::QuotaExceeded | ErrorClass::Busy => 429,
            ErrorClass::Overloaded | ErrorClass::ShuttingDown => 503,
            ErrorClass::BadRequest => 400,
            ErrorClass::Unknown => 404,
            ErrorClass::Internal => 500,
        }
    }
}

impl Serialize for ErrorClass {
    fn serialize<S: serde::ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(serde_json::Value::String(self.wire_name().to_owned()))
    }
}

impl<'de> Deserialize<'de> for ErrorClass {
    fn deserialize<D: serde::de::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.take_value()?;
        let name = value
            .as_str()
            .ok_or_else(|| serde::de::Error::custom("error class must be a string"))?;
        ErrorClass::from_wire_name(name)
            .ok_or_else(|| serde::de::Error::custom(format!("unknown error class {name:?}")))
    }
}

/// The error body every non-2xx response carries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorBody {
    pub class: ErrorClass,
    pub message: String,
}

/// `POST /v1/session/open`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OpenSessionRequest {
    pub trainee: String,
    /// Quota for a NEW trainee; an existing trainee resumes with the
    /// persisted quota (this field is then ignored, mirroring
    /// `LabSession::open`). `None` = the free tier.
    #[serde(default)]
    pub quota: Option<Quota>,
    /// Data seed for a new trainee (persisted seed wins on resume).
    #[serde(default)]
    pub seed: Option<u64>,
}

/// Response to `open`, and the per-tenant half of `status`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionInfo {
    pub trainee: String,
    pub quota: Quota,
    pub runs_used: u64,
    pub cost_used: f64,
    pub seed: u64,
    /// Whether the trainee already existed in the store.
    pub resumed: bool,
}

/// `POST /v1/attempt`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttemptRequest {
    pub trainee: String,
    pub challenge: String,
    pub choices: Vec<String>,
    /// Row count; the scenario default when absent. The tenant quota caps
    /// it either way.
    #[serde(default)]
    pub rows: Option<usize>,
}

/// The slice of a `RunRecord` an attempt response reports. The full
/// record (traces included) stays in the store; `GET /v1/run` serves it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttemptReply {
    pub trainee: String,
    pub run_id: u64,
    pub challenge: String,
    pub score: f64,
    pub rows_in: usize,
    pub rows_out: usize,
    pub cost: f64,
    pub runtime_ms: f64,
    /// Quota headroom after this attempt (runs remaining).
    pub runs_left: u64,
    /// Whether this attempt's compile was coalesced onto a cached plan.
    pub plan_cached: bool,
}

/// `GET /v1/history?trainee=<t>` — one row per persisted run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistoryEntry {
    pub run_id: u64,
    pub challenge: String,
    pub choices: Vec<String>,
    pub score: Option<f64>,
    pub rows_in: usize,
    pub rows_out: usize,
    pub cost: Option<f64>,
}

/// Response to `GET /v1/history`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistoryReply {
    pub trainee: String,
    pub runs: Vec<HistoryEntry>,
}

/// Response to `GET /v1/compare?trainee=<t>&a=<id>&b=<id>` — the choice
/// and indicator deltas between two runs, rendered service-side.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompareReply {
    pub trainee: String,
    pub run_a: u64,
    pub run_b: u64,
    /// `(choice point index, option in a, option in b)` for every
    /// diverging choice.
    pub choice_diffs: Vec<(usize, String, String)>,
    /// `(indicator, value in a, value in b)` for every shared indicator.
    pub indicator_deltas: Vec<(String, f64, f64)>,
}

/// `GET /v1/status` — service-wide counters for operators and the fleet
/// driver.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StatusReply {
    /// Attempts currently executing.
    pub inflight: usize,
    /// Attempts waiting in the admission queue.
    pub queued: usize,
    /// Attempts admitted since start.
    pub admitted: u64,
    /// Attempts committed (run + score + meta durable) since start.
    pub completed: u64,
    /// Rejections by class since start.
    pub rejected_quota: u64,
    pub rejected_overloaded: u64,
    pub rejected_busy: u64,
    /// Plan-cache accounting.
    pub plans_compiled: u64,
    pub plans_shared: u64,
    /// Known tenants.
    pub tenants: usize,
    /// Whether the daemon is draining.
    pub draining: bool,
}

/// Everything 2xx the service can answer with. Keeping the envelope as a
/// plain enum-free union (one type per endpoint) keeps clients simple; this
/// alias just documents the JSON framing: bodies are the types above.
pub type JsonBody = serde_json::Value;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_classes_map_to_stable_statuses_and_names() {
        assert_eq!(ErrorClass::QuotaExceeded.http_status(), 429);
        assert_eq!(ErrorClass::Busy.http_status(), 429);
        assert_eq!(ErrorClass::Overloaded.http_status(), 503);
        assert_eq!(ErrorClass::ShuttingDown.http_status(), 503);
        assert_eq!(ErrorClass::BadRequest.http_status(), 400);
        assert_eq!(ErrorClass::Unknown.http_status(), 404);
        assert_eq!(ErrorClass::Internal.http_status(), 500);
        let j = serde_json::to_string(&ErrorClass::QuotaExceeded).unwrap();
        assert_eq!(j, "\"quota_exceeded\"");
        let back: ErrorClass = serde_json::from_str("\"overloaded\"").unwrap();
        assert_eq!(back, ErrorClass::Overloaded);
    }

    #[test]
    fn requests_round_trip_with_defaults() {
        let r: AttemptRequest = serde_json::from_str(
            r#"{"trainee":"ada","challenge":"ecomm-revenue","choices":["full","batch"]}"#,
        )
        .unwrap();
        assert_eq!(r.rows, None);
        let o: OpenSessionRequest = serde_json::from_str(r#"{"trainee":"ada"}"#).unwrap();
        assert!(o.quota.is_none() && o.seed.is_none());
        let body = ErrorBody {
            class: ErrorClass::Busy,
            message: "2 attempts in flight".into(),
        };
        let back: ErrorBody = serde_json::from_str(&serde_json::to_string(&body).unwrap()).unwrap();
        assert_eq!(back, body);
    }
}
